//! Bank-aware batch scheduler for ORAM path fetches.
//!
//! The paper's Section 2.6 observation — "all ORAM accesses are
//! serialized" — is a property of modeling one path fetch as a single
//! lump-sum latency. A real path fetch is `levels` independent bucket
//! reads, and buckets of one path land in different DRAM rows, so a
//! bank-aware controller can overlap the row-access latencies and pay the
//! shared-bus transfer time only once per bucket (Palermo makes the same
//! move for its ORAM sub-requests).
//!
//! [`BankScheduler`] reproduces the bank/bus discipline of the insecure
//! [`crate::Dram`] model, generalized to variable-size transfers and to
//! whole [`BucketRead`] batches: a batch completes when its last bucket
//! clears the bus. With one bank a batch of `L` buckets costs roughly
//! `L * (latency + transfer)` — the serialized lump sum — while with
//! `>= L` banks it costs `latency + L * transfer`, recovering
//! `(L - 1) * latency` cycles per path.
//!
//! # Examples
//!
//! ```
//! use proram_mem::{BankConfig, BankScheduler, BucketRead};
//!
//! let batch: Vec<BucketRead> = (0..4).map(|b| BucketRead::new(b, 864)).collect();
//! let mut serial = BankScheduler::new(BankConfig { banks: 1, ..BankConfig::default() });
//! let mut banked = BankScheduler::new(BankConfig::default());
//! let one = serial.schedule_batch(0, &batch);
//! let many = banked.schedule_batch(0, &batch);
//! assert!(many.complete_at < one.complete_at);
//! assert_eq!(one.bytes_moved, many.bytes_moved);
//! ```

use crate::request::{BucketRead, Cycle};
use proram_obs::{Obs, ObsEvent};

/// Configuration of the bank-aware path-fetch scheduler.
///
/// Defaults mirror the DRAM model in Table 1: 100-cycle bank latency,
/// 16 bytes/cycle pin bandwidth, 8 banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankConfig {
    /// Independent banks; each holds one in-flight bucket read.
    pub banks: u32,
    /// Row-access latency per bucket read, in cycles.
    pub bank_latency_cycles: u32,
    /// Shared-bus bandwidth in bytes per core cycle.
    pub bytes_per_cycle: u32,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            banks: 8,
            bank_latency_cycles: 100,
            bytes_per_cycle: 16,
        }
    }
}

impl BankConfig {
    /// Bus cycles one transfer of `bytes` occupies (at least one).
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        bytes.div_ceil(u64::from(self.bytes_per_cycle)).max(1)
    }
}

/// Completion of one scheduled batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Cycle at which the last bucket of the batch clears the bus.
    pub complete_at: Cycle,
    /// Total bytes the batch moved (order-independent: the sum of its
    /// bucket sizes).
    pub bytes_moved: u64,
}

/// A bank/bus scheduler over variable-size bucket reads.
///
/// Sequential state machine like every backend: `now` must be
/// non-decreasing across calls.
#[derive(Debug, Clone)]
pub struct BankScheduler {
    config: BankConfig,
    bank_free: Vec<Cycle>,
    bus_free: Cycle,
    bytes_moved: u64,
    busy_cycles: u64,
    obs: Obs,
}

impl BankScheduler {
    /// Creates a scheduler with idle banks and bus.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `bytes_per_cycle` is zero.
    pub fn new(config: BankConfig) -> Self {
        assert!(config.banks > 0, "scheduler needs at least one bank");
        assert!(
            config.bytes_per_cycle > 0,
            "scheduler bandwidth must be positive"
        );
        BankScheduler {
            config,
            bank_free: vec![0; config.banks as usize],
            bus_free: 0,
            bytes_moved: 0,
            busy_cycles: 0,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle; every subsequent dispatch and
    /// batch drain emits a [`ObsEvent::BankDispatch`] /
    /// [`ObsEvent::BankDrain`] event there.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The configuration this scheduler was built with.
    pub fn config(&self) -> &BankConfig {
        &self.config
    }

    /// Total bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total bus-busy cycles so far.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Schedules one bucket read of `bytes` on the earliest-free bank,
    /// returning its completion cycle.
    pub fn schedule_read(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let latency = u64::from(self.config.bank_latency_cycles);
        let (bank_idx, &bank_free) = self
            .bank_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("at least one bank");
        // A bank may start its row access while the bus is still draining
        // an earlier transfer, as long as its own data arrives after.
        let start = now
            .max(bank_free)
            .max(self.bus_free.saturating_sub(latency));
        let transfer = self.config.transfer_cycles(bytes);
        let bus_start = (start + latency).max(self.bus_free);
        let complete = bus_start + transfer;
        self.bank_free[bank_idx] = complete;
        self.bus_free = complete;
        self.bytes_moved += bytes;
        self.busy_cycles += transfer;
        self.obs.emit(|| ObsEvent::BankDispatch {
            bank: bank_idx as u32,
            start,
            complete,
        });
        complete
    }

    /// Schedules a whole batch of bucket reads issued at `now`, overlapping
    /// them across banks. The batch completes when its last bucket clears
    /// the bus.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty.
    pub fn schedule_batch(&mut self, now: Cycle, batch: &[BucketRead]) -> BatchOutcome {
        assert!(!batch.is_empty(), "cannot schedule an empty batch");
        let mut complete_at = 0;
        let mut bytes_moved = 0;
        for read in batch {
            complete_at = complete_at.max(self.schedule_read(now, read.bytes));
            bytes_moved += read.bytes;
        }
        self.obs.emit(|| ObsEvent::BankDrain {
            buckets: batch.len() as u32,
            bytes: bytes_moved,
            complete: complete_at,
        });
        BatchOutcome {
            complete_at,
            bytes_moved,
        }
    }

    /// Cycles one batch of `buckets` reads of `bucket_bytes` each takes on
    /// an idle scheduler — the per-path fetch cost a controller charges
    /// when it overlaps a path's bucket reads across banks.
    pub fn path_fetch_cycles(config: BankConfig, bucket_bytes: u64, buckets: u64) -> u64 {
        let mut fresh = BankScheduler::new(config);
        let batch: Vec<BucketRead> = (0..buckets)
            .map(|b| BucketRead::new(b, bucket_bytes))
            .collect();
        fresh.schedule_batch(0, &batch).complete_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(buckets: u64, bytes: u64) -> Vec<BucketRead> {
        (0..buckets).map(|b| BucketRead::new(b, bytes)).collect()
    }

    #[test]
    fn single_bank_serializes_to_lump_sum() {
        // One bank: every bucket pays latency + transfer back to back.
        // 864 bytes at 16 B/cycle = 54 transfer cycles; 100 latency.
        let cfg = BankConfig {
            banks: 1,
            ..BankConfig::default()
        };
        let mut s = BankScheduler::new(cfg);
        let o = s.schedule_batch(0, &batch(13, 864));
        assert_eq!(o.complete_at, 13 * (100 + 54));
        assert_eq!(o.bytes_moved, 13 * 864);
    }

    #[test]
    fn multi_bank_overlaps_latencies() {
        // >= L banks: one latency up front, then the bus streams all L
        // transfers — latency + L * transfer.
        let cfg = BankConfig {
            banks: 16,
            ..BankConfig::default()
        };
        let mut s = BankScheduler::new(cfg);
        let o = s.schedule_batch(0, &batch(13, 864));
        assert_eq!(o.complete_at, 100 + 13 * 54);
        assert_eq!(o.bytes_moved, 13 * 864);
    }

    #[test]
    fn overlap_win_is_per_bucket_latency() {
        let one = BankScheduler::path_fetch_cycles(
            BankConfig {
                banks: 1,
                ..BankConfig::default()
            },
            864,
            13,
        );
        let many = BankScheduler::path_fetch_cycles(
            BankConfig {
                banks: 16,
                ..BankConfig::default()
            },
            864,
            13,
        );
        assert_eq!(one - many, 12 * 100);
    }

    #[test]
    fn intermediate_bank_counts_are_monotonic() {
        let cycles: Vec<u64> = [1u32, 2, 4, 8, 16]
            .iter()
            .map(|&banks| {
                BankScheduler::path_fetch_cycles(
                    BankConfig {
                        banks,
                        ..BankConfig::default()
                    },
                    864,
                    13,
                )
            })
            .collect();
        for pair in cycles.windows(2) {
            assert!(pair[0] >= pair[1], "more banks must not slow a batch");
        }
        assert!(cycles[0] > cycles[4]);
    }

    #[test]
    fn batch_order_never_changes_bytes_moved() {
        // Property-style: a seeded xorshift permutes bucket sizes; total
        // bytes (and bus-busy cycles) must be order-invariant.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..64 {
            let mut sizes: Vec<u64> = (0..12).map(|_| 64 + next() % 1024).collect();
            let forward: Vec<BucketRead> = sizes
                .iter()
                .enumerate()
                .map(|(i, &b)| BucketRead::new(i as u64, b))
                .collect();
            // A seeded shuffle (Fisher-Yates over the same generator).
            for i in (1..sizes.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                sizes.swap(i, j);
            }
            let shuffled: Vec<BucketRead> = sizes
                .iter()
                .enumerate()
                .map(|(i, &b)| BucketRead::new(i as u64, b))
                .collect();
            let mut a = BankScheduler::new(BankConfig::default());
            let mut b = BankScheduler::new(BankConfig::default());
            let oa = a.schedule_batch(0, &forward);
            let ob = b.schedule_batch(0, &shuffled);
            assert_eq!(oa.bytes_moved, ob.bytes_moved);
            assert_eq!(a.busy_cycles(), b.busy_cycles());
            assert_eq!(a.bytes_moved(), b.bytes_moved());
        }
    }

    #[test]
    fn back_to_back_batches_respect_bus_state() {
        let mut s = BankScheduler::new(BankConfig::default());
        let first = s.schedule_batch(0, &batch(4, 864));
        let second = s.schedule_batch(first.complete_at, &batch(4, 864));
        assert!(second.complete_at > first.complete_at);
    }

    #[test]
    fn tiny_transfer_still_occupies_one_cycle() {
        assert_eq!(BankConfig::default().transfer_cycles(1), 1);
        assert_eq!(BankConfig::default().transfer_cycles(0), 1);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        BankScheduler::new(BankConfig::default()).schedule_batch(0, &[]);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        BankScheduler::new(BankConfig {
            banks: 0,
            ..BankConfig::default()
        });
    }

    #[test]
    fn attached_sink_sees_dispatches_and_drains() {
        let obs = Obs::ring(64);
        let mut s = BankScheduler::new(BankConfig::default());
        s.attach_obs(obs.clone());
        let o = s.schedule_batch(0, &batch(4, 864));
        let events = obs.events();
        let dispatches = events
            .iter()
            .filter(|e| matches!(e, ObsEvent::BankDispatch { .. }))
            .count();
        assert_eq!(dispatches, 4, "one dispatch per bucket");
        assert!(events.iter().any(|e| matches!(
            e,
            ObsEvent::BankDrain { buckets: 4, complete, .. } if *complete == o.complete_at
        )));
    }

    #[test]
    fn detached_scheduler_behaves_identically() {
        let mut plain = BankScheduler::new(BankConfig::default());
        let mut observed = BankScheduler::new(BankConfig::default());
        observed.attach_obs(Obs::ring(8));
        let a = plain.schedule_batch(0, &batch(6, 864));
        let b = observed.schedule_batch(0, &batch(6, 864));
        assert_eq!(a, b, "observability must not perturb scheduling");
        assert_eq!(plain.busy_cycles(), observed.busy_cycles());
    }
}
