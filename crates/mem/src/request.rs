//! Request and address types shared by every memory backend.

use std::fmt;

/// Simulator time, in core clock cycles (1 GHz in the paper's Table 1).
pub type Cycle = u64;

/// Address of one memory block.
///
/// The memory system operates at the granularity of one cache line, which
/// is also the ORAM *basic block* (128 bytes in the paper's default
/// configuration). A `BlockAddr` is the program byte address divided by the
/// line size; neighbor arithmetic for super blocks (Section 3.2) happens
/// directly on these values.
///
/// # Examples
///
/// ```
/// use proram_mem::BlockAddr;
///
/// let a = BlockAddr::from_byte_addr(0x1280, 128);
/// assert_eq!(a, BlockAddr(0x25));
/// assert_eq!(a.byte_addr(128), 0x1280);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Converts a byte address to a block address.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn from_byte_addr(byte_addr: u64, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        BlockAddr(byte_addr >> line_bytes.trailing_zeros())
    }

    /// The first byte address covered by this block.
    pub fn byte_addr(self, line_bytes: u64) -> u64 {
        self.0 * line_bytes
    }

    /// The block at `self + offset` in the block address space.
    pub fn offset(self, offset: u64) -> Self {
        BlockAddr(self.0 + offset)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:#x}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(v: u64) -> Self {
        BlockAddr(v)
    }
}

/// Whether an access reads or writes the block.
///
/// Path ORAM treats both identically on the wire (that indistinguishability
/// is part of its security definition), but the cache hierarchy needs the
/// distinction for dirty tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load / fill request.
    Read,
    /// A store / writeback request.
    Write,
}

/// One bucket read inside a path-fetch batch.
///
/// A Path ORAM access reads every bucket on one tree path; the staged
/// pipeline turns that into a batch of `BucketRead`s handed to the
/// bank-aware scheduler ([`crate::BankScheduler`]) so independent buckets
/// can overlap across banks. The bucket index only labels the transfer (a
/// tree node id); timing depends solely on `bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BucketRead {
    /// Tree-bucket index this read targets (label only).
    pub bucket: u64,
    /// Bytes the bucket transfer moves (ciphertext + metadata, read and
    /// write-back halves combined when the caller charges a full path).
    pub bytes: u64,
}

impl BucketRead {
    /// A read of `bytes` from tree bucket `bucket`.
    pub fn new(bucket: u64, bytes: u64) -> Self {
        BucketRead { bucket, bytes }
    }
}

impl fmt::Display for BucketRead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bkt{}:{}B", self.bucket, self.bytes)
    }
}

/// One request presented to a [`crate::MemoryBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// The block being accessed.
    pub block: BlockAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// `true` if this request was issued by a prefetcher rather than the
    /// core. Prefetch requests contend for the same memory resources —
    /// which is exactly the effect Section 3.1 of the paper studies.
    pub prefetch: bool,
}

impl MemRequest {
    /// A demand read of `block`.
    pub fn read(block: BlockAddr) -> Self {
        MemRequest {
            block,
            kind: AccessKind::Read,
            prefetch: false,
        }
    }

    /// A demand write of `block`.
    pub fn write(block: BlockAddr) -> Self {
        MemRequest {
            block,
            kind: AccessKind::Write,
            prefetch: false,
        }
    }

    /// A prefetcher-issued read of `block`.
    pub fn prefetch(block: BlockAddr) -> Self {
        MemRequest {
            block,
            kind: AccessKind::Read,
            prefetch: true,
        }
    }
}

impl fmt::Display for MemRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        };
        let pf = if self.prefetch { "+pf" } else { "" };
        write!(f, "{kind}{pf} {}", self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_block_round_trip() {
        for line in [64u64, 128, 256] {
            for byte in [0u64, 127, 128, 4096, 123_456_789] {
                let b = BlockAddr::from_byte_addr(byte, line);
                assert_eq!(b.byte_addr(line), byte / line * line);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_line_panics() {
        BlockAddr::from_byte_addr(0, 100);
    }

    #[test]
    fn offset_moves_block() {
        assert_eq!(BlockAddr(10).offset(3), BlockAddr(13));
    }

    #[test]
    fn constructors_set_fields() {
        let r = MemRequest::read(BlockAddr(1));
        assert_eq!(r.kind, AccessKind::Read);
        assert!(!r.prefetch);
        let w = MemRequest::write(BlockAddr(2));
        assert_eq!(w.kind, AccessKind::Write);
        let p = MemRequest::prefetch(BlockAddr(3));
        assert!(p.prefetch);
        assert_eq!(p.kind, AccessKind::Read);
    }

    #[test]
    fn display_formats() {
        assert_eq!(BlockAddr(255).to_string(), "b0xff");
        assert_eq!(MemRequest::read(BlockAddr(1)).to_string(), "R b0x1");
        assert_eq!(MemRequest::prefetch(BlockAddr(1)).to_string(), "R+pf b0x1");
        assert_eq!(MemRequest::write(BlockAddr(1)).to_string(), "W b0x1");
    }

    #[test]
    fn from_u64() {
        let b: BlockAddr = 9u64.into();
        assert_eq!(b, BlockAddr(9));
    }
}
