//! Timing-channel protection via periodic memory accesses.
//!
//! Section 2.5 of the paper: "periodic ORAM accesses are needed to protect
//! the timing channel. ... we use `O_int` as the public time interval
//! between two consecutive ORAM accesses. ... If there is no pending memory
//! request when an ORAM access needs to happen due to periodicity, a dummy
//! access will be issued." Section 5.6 evaluates the schemes under this
//! discipline with `O_int = 100` cycles.
//!
//! [`Periodic`] wraps any [`MemoryBackend`]: real requests start only on
//! multiples of `O_int`, and every periodic slot that passes without a
//! pending request triggers one dummy access on the inner backend (which,
//! for ORAM, is a background eviction that keeps mutating the stash —
//! important for super-block behaviour).

use crate::backend::{AccessOutcome, BackendStats, CacheProbe, MemoryBackend};
use crate::request::{Cycle, MemRequest};

/// A backend wrapper that enforces strictly periodic access timing.
///
/// # Examples
///
/// ```
/// use proram_mem::{BlockAddr, Dram, DramConfig, MemRequest, MemoryBackend, NoProbe, Periodic};
///
/// let dram = Dram::new(DramConfig::default());
/// let mut periodic = Periodic::new(dram, 100);
/// let o = periodic.access(42, MemRequest::read(BlockAddr(1)), &NoProbe);
/// // The access could not start before cycle 100 (the next slot).
/// assert!(o.complete_at >= 200);
/// ```
#[derive(Debug, Clone)]
pub struct Periodic<B> {
    inner: B,
    interval: Cycle,
    /// Time the current (or last) access finishes on the inner backend.
    next_issue: Cycle,
    label: String,
}

impl<B: MemoryBackend> Periodic<B> {
    /// Wraps `inner` so accesses begin only at multiples of `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(inner: B, interval: Cycle) -> Self {
        assert!(interval > 0, "periodic interval must be positive");
        let label = format!("{}_intvl", inner.label());
        Periodic {
            inner,
            interval,
            next_issue: 0,
            label,
        }
    }

    /// The public access interval `O_int`.
    pub fn interval(&self) -> Cycle {
        self.interval
    }

    /// Changes the interval from this point onward (used by the adaptive
    /// scheme at public epoch boundaries).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn set_interval(&mut self, interval: Cycle) {
        assert!(interval > 0, "periodic interval must be positive");
        self.interval = interval;
    }

    /// Gives back the wrapped backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Borrows the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn round_up(&self, t: Cycle) -> Cycle {
        t.div_ceil(self.interval) * self.interval
    }

    /// Fills periodic slots with dummy accesses up to (not including) the
    /// slot at which a real request issued at `now` would start.
    fn drain_dummies_until(&mut self, now: Cycle) {
        // The memory resource performs an access every time it is free and
        // a periodic slot arrives, whether or not a real request is
        // pending. Replay the dummy accesses that must have happened while
        // the processor was not asking for memory.
        loop {
            let slot = self.round_up(self.next_issue.max(self.inner.free_at()));
            // A dummy happens in this slot only if it starts strictly
            // before the demand request could: the demand claims the first
            // slot at or after `now`.
            if slot >= self.round_up(now.max(self.next_issue)) {
                break;
            }
            let done = self.inner.dummy_access(slot);
            self.next_issue = done.max(slot + self.interval);
        }
    }
}

impl<B: MemoryBackend> MemoryBackend for Periodic<B> {
    fn access(&mut self, now: Cycle, req: MemRequest, llc: &dyn CacheProbe) -> AccessOutcome {
        self.drain_dummies_until(now);
        let slot = self.round_up(now.max(self.next_issue).max(self.inner.free_at()));
        let outcome = self.inner.access(slot, req, llc);
        self.next_issue = outcome.complete_at.max(slot + self.interval);
        outcome
    }

    fn dummy_access(&mut self, now: Cycle) -> Cycle {
        let slot = self.round_up(now.max(self.next_issue).max(self.inner.free_at()));
        let done = self.inner.dummy_access(slot);
        self.next_issue = done.max(slot + self.interval);
        done
    }

    fn free_at(&self) -> Cycle {
        self.next_issue.max(self.inner.free_at())
    }

    fn note_llc_hit(&mut self, block: crate::BlockAddr) {
        self.inner.note_llc_hit(block);
    }

    fn note_llc_eviction(&mut self, block: crate::BlockAddr) {
        self.inner.note_llc_eviction(block);
    }

    fn stats(&self) -> BackendStats {
        self.inner.stats()
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn attach_obs(&mut self, obs: proram_obs::Obs) {
        self.inner.attach_obs(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NoProbe;
    use crate::dram::{Dram, DramConfig};
    use crate::request::BlockAddr;

    fn periodic_dram(interval: Cycle) -> Periodic<Dram> {
        Periodic::new(Dram::new(DramConfig::default()), interval)
    }

    #[test]
    fn access_starts_on_slot_boundary() {
        let mut p = periodic_dram(100);
        let o = p.access(42, MemRequest::read(BlockAddr(0)), &NoProbe);
        // The controller is strictly periodic from cycle 0: a dummy fires in
        // slot 0 (no request was pending) and finishes at 108, so the demand
        // claims the next reachable slot, 200, completing at 308.
        assert_eq!(o.complete_at, 308);
        assert_eq!(p.stats().dummy_accesses, 1);
    }

    #[test]
    fn access_behind_in_flight_dummy_waits_for_next_slot() {
        let mut p = periodic_dram(100);
        let o = p.access(100, MemRequest::read(BlockAddr(0)), &NoProbe);
        // Slot 0's dummy is still in flight (finishes at 108); the demand
        // starts at slot 200.
        assert_eq!(o.complete_at, 308);
    }

    #[test]
    fn first_access_at_cycle_zero_needs_no_dummy() {
        let mut p = periodic_dram(100);
        let o = p.access(0, MemRequest::read(BlockAddr(0)), &NoProbe);
        assert_eq!(o.complete_at, 108);
        assert_eq!(p.stats().dummy_accesses, 0);
    }

    #[test]
    fn idle_gaps_filled_with_dummies() {
        let mut p = periodic_dram(100);
        p.access(0, MemRequest::read(BlockAddr(0)), &NoProbe);
        // Long compute phase: cycle 0..10_000. The memory must have kept
        // issuing dummy accesses meanwhile.
        p.access(10_000, MemRequest::read(BlockAddr(1)), &NoProbe);
        // Each dummy takes 108 cycles with O_int = 100, so dummies land on
        // every other slot: ~49 of them in 10_000 cycles.
        let s = p.stats();
        assert!(s.dummy_accesses > 40, "dummies={}", s.dummy_accesses);
        assert_eq!(s.demand_accesses, 2);
    }

    #[test]
    fn no_dummies_under_back_to_back_load() {
        let mut p = periodic_dram(100);
        let mut now = 0;
        for i in 0..50 {
            now = p
                .access(now, MemRequest::read(BlockAddr(i)), &NoProbe)
                .complete_at;
        }
        assert_eq!(p.stats().dummy_accesses, 0);
    }

    #[test]
    fn starts_are_strictly_periodic() {
        // With O_int larger than the access time, completions must land at
        // slot + access_time exactly.
        let mut p = periodic_dram(500);
        let a = p.access(1, MemRequest::read(BlockAddr(0)), &NoProbe);
        assert_eq!(a.complete_at, 608); // slot 500
        let b = p.access(a.complete_at, MemRequest::read(BlockAddr(1)), &NoProbe);
        assert_eq!(b.complete_at, 1108); // slot 1000
    }

    #[test]
    fn interval_accessors() {
        let p = periodic_dram(100);
        assert_eq!(p.interval(), 100);
        assert_eq!(p.label(), "dram_intvl");
        assert_eq!(p.inner().label(), "dram");
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        periodic_dram(0);
    }

    #[test]
    fn interval_can_be_rearmed() {
        let mut p = periodic_dram(100);
        p.set_interval(500);
        assert_eq!(p.interval(), 500);
        let o = p.access(0, MemRequest::read(BlockAddr(0)), &NoProbe);
        assert_eq!(o.complete_at, 108); // slot 0 at the new cadence
    }

    #[test]
    fn into_inner_returns_backend() {
        let mut p = periodic_dram(100);
        p.access(0, MemRequest::read(BlockAddr(0)), &NoProbe);
        let d = p.into_inner();
        assert_eq!(d.stats().demand_accesses, 1);
    }

    #[test]
    fn explicit_dummy_respects_slots() {
        let mut p = periodic_dram(100);
        let done = p.dummy_access(42);
        assert_eq!(done, 208);
        assert_eq!(p.stats().dummy_accesses, 1);
    }
}
