//! Dynamically-adjusted periodic accesses with leakage accounting.
//!
//! Paper Section 2.5: "If one is willing to leak a few bits, timing
//! channel protection schemes that allow for dynamically-changing `O_int`
//! may be attractive \[9\], since they provide better performance. These
//! schemes can be used with the techniques proposed in this paper if
//! small data leakage is allowed."
//!
//! [`AdaptivePeriodic`] implements the epoch scheme of Fletcher et al.
//! \[9\]: the interval is fixed within an *epoch*; at each epoch boundary
//! the controller publicly picks the next interval from a small ladder
//! based on the observed demand rate. Every choice is adversary-visible,
//! so the leakage is bounded by `epochs * log2(ladder size)` bits — the
//! struct keeps that running total so users can budget it explicitly.

use crate::backend::{AccessOutcome, BackendStats, CacheProbe, MemoryBackend};
use crate::periodic::Periodic;
use crate::request::{BlockAddr, Cycle, MemRequest};

/// Configuration of the adaptive timing protection.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePeriodicConfig {
    /// The public interval ladder, ascending. The controller only ever
    /// selects intervals from this set (each choice leaks
    /// `log2(intervals.len())` bits).
    pub intervals: Vec<Cycle>,
    /// Memory requests per epoch (the decision granularity).
    pub epoch_requests: u64,
    /// Target utilization: fraction of periodic slots that should carry a
    /// real request. Above it the interval shrinks (more bandwidth);
    /// below it the interval grows (less energy).
    pub target_utilization: f64,
}

impl Default for AdaptivePeriodicConfig {
    fn default() -> Self {
        AdaptivePeriodicConfig {
            intervals: vec![100, 200, 400, 800, 1600],
            epoch_requests: 256,
            target_utilization: 0.5,
        }
    }
}

impl AdaptivePeriodicConfig {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty or unsorted, the epoch is zero, or
    /// the utilization target is outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(
            !self.intervals.is_empty(),
            "interval ladder must not be empty"
        );
        assert!(
            self.intervals.windows(2).all(|w| w[0] < w[1]),
            "ladder must be ascending"
        );
        assert!(self.intervals[0] > 0, "intervals must be positive");
        assert!(self.epoch_requests > 0, "epoch must be positive");
        assert!(
            self.target_utilization > 0.0 && self.target_utilization <= 1.0,
            "target utilization in (0, 1]"
        );
    }
}

/// A periodic-access wrapper whose interval adapts at public epoch
/// boundaries (Fletcher et al. \[9\]).
///
/// # Examples
///
/// ```
/// use proram_mem::{AdaptivePeriodic, AdaptivePeriodicConfig, Dram, DramConfig};
///
/// let protected = AdaptivePeriodic::new(Dram::new(DramConfig::default()),
///                                       AdaptivePeriodicConfig::default());
/// assert_eq!(protected.leaked_bits(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptivePeriodic<B> {
    inner: Periodic<B>,
    config: AdaptivePeriodicConfig,
    ladder_index: usize,
    epoch_demand: u64,
    epoch_start: Cycle,
    epoch_decisions: u64,
    label: String,
}

impl<B: MemoryBackend> AdaptivePeriodic<B> {
    /// Wraps `inner` with adaptive timing protection, starting at the
    /// middle of the ladder.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(inner: B, config: AdaptivePeriodicConfig) -> Self {
        config.validate();
        let ladder_index = config.intervals.len() / 2;
        let label = format!("{}_adintvl", inner.label());
        AdaptivePeriodic {
            inner: Periodic::new(inner, config.intervals[ladder_index]),
            config,
            ladder_index,
            epoch_demand: 0,
            epoch_start: 0,
            epoch_decisions: 0,
            label,
        }
    }

    /// The interval currently in force.
    pub fn current_interval(&self) -> Cycle {
        self.config.intervals[self.ladder_index]
    }

    /// Upper bound on the bits leaked so far: one ladder choice per epoch
    /// boundary.
    pub fn leaked_bits(&self) -> f64 {
        self.epoch_decisions as f64 * (self.config.intervals.len() as f64).log2()
    }

    /// Epoch boundaries crossed so far.
    pub fn epochs(&self) -> u64 {
        self.epoch_decisions
    }

    fn maybe_rotate_epoch(&mut self, now: Cycle) {
        if self.epoch_demand < self.config.epoch_requests {
            return;
        }
        // Public decision: compare achieved slot utilization in the epoch
        // against the target and move one rung.
        let elapsed = now.saturating_sub(self.epoch_start).max(1);
        let slots = (elapsed / self.current_interval()).max(1);
        let utilization = self.epoch_demand as f64 / slots as f64;
        if utilization > self.config.target_utilization && self.ladder_index > 0 {
            self.ladder_index -= 1; // busy: speed up
        } else if utilization < self.config.target_utilization / 2.0
            && self.ladder_index + 1 < self.config.intervals.len()
        {
            self.ladder_index += 1; // idle: slow down, save dummies
        }
        self.epoch_decisions += 1;
        self.epoch_demand = 0;
        self.epoch_start = now;
        // Re-arm the wrapper at the newly chosen interval. The switch
        // point is a public function of public information only.
        self.inner.set_interval(self.current_interval());
    }
}

impl<B: MemoryBackend> MemoryBackend for AdaptivePeriodic<B> {
    fn access(&mut self, now: Cycle, req: MemRequest, llc: &dyn CacheProbe) -> AccessOutcome {
        self.epoch_demand += 1;
        let outcome = self.inner.access(now, req, llc);
        self.maybe_rotate_epoch(outcome.complete_at);
        outcome
    }

    fn dummy_access(&mut self, now: Cycle) -> Cycle {
        self.inner.dummy_access(now)
    }

    fn free_at(&self) -> Cycle {
        self.inner.free_at()
    }

    fn note_llc_hit(&mut self, block: BlockAddr) {
        self.inner.note_llc_hit(block);
    }

    fn note_llc_eviction(&mut self, block: BlockAddr) {
        self.inner.note_llc_eviction(block);
    }

    fn stats(&self) -> BackendStats {
        self.inner.stats()
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn attach_obs(&mut self, obs: proram_obs::Obs) {
        self.inner.attach_obs(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NoProbe;
    use crate::dram::{Dram, DramConfig};

    fn protected() -> AdaptivePeriodic<Dram> {
        AdaptivePeriodic::new(
            Dram::new(DramConfig::default()),
            AdaptivePeriodicConfig::default(),
        )
    }

    #[test]
    fn starts_mid_ladder_with_zero_leakage() {
        let p = protected();
        assert_eq!(p.current_interval(), 400);
        assert_eq!(p.leaked_bits(), 0.0);
        assert_eq!(p.epochs(), 0);
    }

    #[test]
    fn busy_traffic_shrinks_the_interval() {
        let mut p = protected();
        let mut now = 0;
        for i in 0..600u64 {
            now = p
                .access(now, MemRequest::read(BlockAddr(i)), &NoProbe)
                .complete_at;
        }
        assert!(
            p.current_interval() < 400,
            "interval should shrink under load"
        );
        assert!(p.epochs() >= 1);
    }

    #[test]
    fn idle_traffic_grows_the_interval() {
        let mut p = protected();
        let mut now = 0;
        for i in 0..600u64 {
            now += 50_000; // long idle gaps between requests
            now = p
                .access(now, MemRequest::read(BlockAddr(i)), &NoProbe)
                .complete_at;
        }
        assert!(p.current_interval() > 400, "interval should grow when idle");
    }

    #[test]
    fn leakage_grows_with_epochs_only() {
        let mut p = protected();
        let mut now = 0;
        for i in 0..1100u64 {
            now = p
                .access(now, MemRequest::read(BlockAddr(i)), &NoProbe)
                .complete_at;
        }
        let epochs = p.epochs();
        assert!(epochs >= 2);
        let expected = epochs as f64 * 5f64.log2();
        assert!((p.leaked_bits() - expected).abs() < 1e-9);
    }

    #[test]
    fn accesses_still_periodic_within_epoch() {
        // Within an epoch the wrapper is a plain Periodic: dummies fill
        // idle slots.
        let mut p = protected();
        p.access(0, MemRequest::read(BlockAddr(0)), &NoProbe);
        p.access(100_000, MemRequest::read(BlockAddr(1)), &NoProbe);
        assert!(p.stats().dummy_accesses > 0);
    }

    #[test]
    #[should_panic(expected = "ladder must be ascending")]
    fn unsorted_ladder_rejected() {
        let cfg = AdaptivePeriodicConfig {
            intervals: vec![200, 100],
            ..Default::default()
        };
        AdaptivePeriodic::new(Dram::new(DramConfig::default()), cfg);
    }

    #[test]
    fn label_reflects_protection() {
        assert_eq!(protected().label(), "dram_adintvl");
    }
}
