//! The insecure DRAM baseline.
//!
//! Matches the Graphite DRAM model used by the paper (Section 5.1): a flat
//! access latency (100 cycles) plus a pin-bandwidth-limited transfer
//! (16 GB/s on a 1 GHz chip = 16 bytes/cycle), and bank-level parallelism
//! so multiple requests — e.g. a demand miss plus prefetches — can overlap.
//! "While the insecure DRAM model can exploit bank-level parallelism and
//! issue multiple memory requests at the same time, all ORAM accesses are
//! serialized."

use crate::backend::{AccessOutcome, BackendStats, CacheProbe, Fill, MemoryBackend};
use crate::request::{Cycle, MemRequest};

/// Configuration of the DRAM timing model.
///
/// Defaults reproduce the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Flat access latency in cycles (row access + on-chip traversal).
    pub latency_cycles: u32,
    /// Pin bandwidth, bytes per core cycle (16 GB/s at 1 GHz = 16).
    pub bytes_per_cycle: u32,
    /// Cache line / transfer unit size in bytes.
    pub line_bytes: u32,
    /// Number of independent banks; each can hold one in-flight access.
    pub banks: u32,
}

impl DramConfig {
    /// Cycles the shared data bus is occupied per line transfer.
    pub fn transfer_cycles(&self) -> u64 {
        u64::from(self.line_bytes.div_ceil(self.bytes_per_cycle).max(1))
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            latency_cycles: 100,
            bytes_per_cycle: 16,
            line_bytes: 128,
            banks: 8,
        }
    }
}

/// The DRAM timing model.
///
/// Each access claims the earliest-free bank and then the shared data bus:
/// `complete = max(now, bank_free, bus_free) + latency + transfer`. With
/// an idle bus this yields the flat 108-cycle access of the paper's
/// default configuration; under prefetch pressure the bus serializes
/// transfers, modeling the bandwidth ceiling.
///
/// # Examples
///
/// ```
/// use proram_mem::{BlockAddr, Dram, DramConfig, MemRequest, MemoryBackend, NoProbe};
///
/// let mut dram = Dram::new(DramConfig::default());
/// let first = dram.access(0, MemRequest::read(BlockAddr(1)), &NoProbe);
/// assert_eq!(first.complete_at, 108);
/// // A second access issued at the same time overlaps in another bank and
/// // only waits for the bus.
/// let second = dram.access(0, MemRequest::read(BlockAddr(2)), &NoProbe);
/// assert_eq!(second.complete_at, 116);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    bank_free: Vec<Cycle>,
    bus_free: Cycle,
    stats: BackendStats,
    label: String,
}

impl Dram {
    /// Creates a DRAM model with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `bytes_per_cycle` is zero.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.banks > 0, "dram needs at least one bank");
        assert!(
            config.bytes_per_cycle > 0,
            "dram bandwidth must be positive"
        );
        Dram {
            config,
            bank_free: vec![0; config.banks as usize],
            bus_free: 0,
            stats: BackendStats::default(),
            label: "dram".to_owned(),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    fn schedule(&mut self, now: Cycle) -> Cycle {
        // Earliest-free bank, then the shared bus.
        let (bank_idx, &bank_free) = self
            .bank_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("at least one bank");
        let start = now.max(bank_free).max(
            self.bus_free
                .saturating_sub(u64::from(self.config.latency_cycles)),
        );
        let transfer = self.config.transfer_cycles();
        // The bus is claimed after the latency portion.
        let bus_start = (start + u64::from(self.config.latency_cycles)).max(self.bus_free);
        let complete = bus_start + transfer;
        self.bank_free[bank_idx] = complete;
        self.bus_free = bus_start + transfer;
        self.stats.busy_cycles += transfer;
        self.stats.bytes_moved += u64::from(self.config.line_bytes);
        self.stats.physical_accesses += 1;
        complete
    }
}

impl MemoryBackend for Dram {
    fn access(&mut self, now: Cycle, req: MemRequest, _llc: &dyn CacheProbe) -> AccessOutcome {
        if req.prefetch {
            self.stats.prefetch_requests += 1;
        } else {
            self.stats.demand_accesses += 1;
        }
        let complete_at = self.schedule(now);
        self.stats.data_path_cycles += self.config.transfer_cycles();
        AccessOutcome {
            complete_at,
            fills: vec![Fill {
                block: req.block,
                prefetched: req.prefetch,
            }],
        }
    }

    fn dummy_access(&mut self, now: Cycle) -> Cycle {
        self.stats.dummy_accesses += 1;
        let complete = self.schedule(now);
        self.stats.dummy_path_cycles += self.config.transfer_cycles();
        complete
    }

    fn free_at(&self) -> Cycle {
        self.bank_free.iter().copied().min().unwrap_or(0)
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NoProbe;
    use crate::request::BlockAddr;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn single_access_latency() {
        let mut d = dram();
        let o = d.access(0, MemRequest::read(BlockAddr(0)), &NoProbe);
        // 100 latency + 128/16 = 8 transfer.
        assert_eq!(o.complete_at, 108);
        assert_eq!(o.fills, vec![Fill::demand(BlockAddr(0))]);
    }

    #[test]
    fn accesses_overlap_across_banks() {
        let mut d = dram();
        let a = d.access(0, MemRequest::read(BlockAddr(0)), &NoProbe);
        let b = d.access(0, MemRequest::read(BlockAddr(1)), &NoProbe);
        // Bank-parallel: only the bus serializes, so the second access
        // finishes one transfer later, not one full access later.
        assert_eq!(b.complete_at, a.complete_at + d.config().transfer_cycles());
    }

    #[test]
    fn bus_saturates_with_many_parallel_requests() {
        let mut d = dram();
        let mut last = 0;
        for i in 0..32 {
            last = d
                .access(0, MemRequest::read(BlockAddr(i)), &NoProbe)
                .complete_at;
        }
        // 32 transfers of 8 cycles each must occupy >= 256 bus cycles.
        assert!(last >= 100 + 32 * 8, "last={last}");
    }

    #[test]
    fn idle_gaps_do_not_accumulate() {
        let mut d = dram();
        d.access(0, MemRequest::read(BlockAddr(0)), &NoProbe);
        let late = d.access(10_000, MemRequest::read(BlockAddr(1)), &NoProbe);
        assert_eq!(late.complete_at, 10_108);
    }

    #[test]
    fn prefetch_counted_separately() {
        let mut d = dram();
        d.access(0, MemRequest::read(BlockAddr(0)), &NoProbe);
        d.access(0, MemRequest::prefetch(BlockAddr(1)), &NoProbe);
        let s = d.stats();
        assert_eq!(s.demand_accesses, 1);
        assert_eq!(s.prefetch_requests, 1);
        assert_eq!(s.physical_accesses, 2);
    }

    #[test]
    fn prefetch_fill_is_marked() {
        let mut d = dram();
        let o = d.access(0, MemRequest::prefetch(BlockAddr(5)), &NoProbe);
        assert_eq!(o.fills, vec![Fill::prefetch(BlockAddr(5))]);
    }

    #[test]
    fn dummy_access_occupies_resources() {
        let mut d = dram();
        let c = d.dummy_access(0);
        assert_eq!(c, 108);
        assert_eq!(d.stats().dummy_accesses, 1);
        assert_eq!(d.stats().physical_accesses, 1);
    }

    #[test]
    fn stage_attribution_covers_all_busy_cycles() {
        let mut d = dram();
        d.access(0, MemRequest::read(BlockAddr(0)), &NoProbe);
        d.access(0, MemRequest::prefetch(BlockAddr(1)), &NoProbe);
        d.dummy_access(0);
        let s = d.stats();
        assert!(s.stage_cycles_consistent());
        assert_eq!(s.data_path_cycles, 2 * d.config().transfer_cycles());
        assert_eq!(s.dummy_path_cycles, d.config().transfer_cycles());
        assert_eq!(s.posmap_path_cycles, 0);
    }

    #[test]
    fn bytes_moved_accumulates() {
        let mut d = dram();
        d.access(0, MemRequest::read(BlockAddr(0)), &NoProbe);
        d.access(0, MemRequest::write(BlockAddr(1)), &NoProbe);
        assert_eq!(d.stats().bytes_moved, 256);
    }

    #[test]
    fn bandwidth_sweep_changes_transfer_time() {
        for (bpc, expect) in [(4u32, 32u64), (8, 16), (16, 8)] {
            let cfg = DramConfig {
                bytes_per_cycle: bpc,
                ..DramConfig::default()
            };
            assert_eq!(cfg.transfer_cycles(), expect);
        }
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        Dram::new(DramConfig {
            banks: 0,
            ..DramConfig::default()
        });
    }

    #[test]
    fn free_at_tracks_earliest_bank() {
        let mut d = dram();
        assert_eq!(d.free_at(), 0);
        for i in 0..8 {
            d.access(0, MemRequest::read(BlockAddr(i)), &NoProbe);
        }
        assert!(d.free_at() > 0);
    }

    #[test]
    fn label_is_dram() {
        assert_eq!(dram().label(), "dram");
    }
}
