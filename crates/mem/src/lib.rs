//! Memory subsystem substrate for the PrORAM simulator.
//!
//! This crate defines the contract between the processor side of the
//! simulator (core + caches) and main memory, and provides the insecure
//! baseline: a DRAM timing model equivalent to the Graphite model used in
//! the paper (flat access latency plus a pin-bandwidth-limited data bus,
//! with bank-level overlap).
//!
//! The key abstraction is [`MemoryBackend`]: both the DRAM model here and
//! the ORAM controllers in `proram-oram` / `proram-core` implement it, so
//! the system simulator can swap memory technologies without changing the
//! core or cache models — exactly the comparison the paper's evaluation
//! performs.
//!
//! [`Periodic`] wraps any backend and enforces the paper's timing-channel
//! protection (Sections 2.5 and 5.6): accesses start only on multiples of
//! `O_int`, and idle slots are filled with dummy accesses.
//!
//! # Examples
//!
//! ```
//! use proram_mem::{BlockAddr, Dram, DramConfig, MemRequest, MemoryBackend, NoProbe};
//!
//! let mut dram = Dram::new(DramConfig::default());
//! let req = MemRequest::read(BlockAddr(42));
//! let outcome = dram.access(0, req, &NoProbe);
//! assert!(outcome.complete_at >= u64::from(DramConfig::default().latency_cycles));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive_periodic;
pub mod backend;
pub mod dram;
pub mod periodic;
pub mod request;
pub mod scheduler;

pub use adaptive_periodic::{AdaptivePeriodic, AdaptivePeriodicConfig};
pub use backend::{
    AccessOutcome, BackendStats, CacheProbe, FaultStats, Fill, MemoryBackend, NoProbe,
};
pub use dram::{Dram, DramConfig};
pub use periodic::Periodic;
pub use request::{AccessKind, BlockAddr, BucketRead, Cycle, MemRequest};
pub use scheduler::{BankConfig, BankScheduler, BatchOutcome};
