//! The [`MemoryBackend`] trait connecting the cache hierarchy to main
//! memory, implemented by the DRAM model and by the ORAM controllers.

use crate::request::{BlockAddr, Cycle, MemRequest};
use proram_obs::{MetricsRegistry, Obs};

/// Read-only view of the last-level cache's tag array.
///
/// The PrORAM merge scheme (paper Section 4.2) probes the LLC to decide
/// whether a block's neighbor is resident: "we need to probe the LLC to
/// check if the neighbor block B' exists in the cache. Only the tag array
/// of the LLC needs to be accessed." This trait is that tag-array port.
pub trait CacheProbe {
    /// `true` if `block` is currently resident in the cache.
    fn contains(&self, block: BlockAddr) -> bool;
}

/// A probe that reports nothing resident.
///
/// Used by backends that do not need LLC information (DRAM) and by unit
/// tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl CacheProbe for NoProbe {
    fn contains(&self, _block: BlockAddr) -> bool {
        false
    }
}

/// One block delivered to the LLC by a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fill {
    /// The block delivered.
    pub block: BlockAddr,
    /// `true` if the block was not the demand target (a super-block
    /// prefetch or a prefetcher fill); it enters the LLC with its prefetch
    /// bit set and hit bit clear (paper Section 4.3).
    pub prefetched: bool,
}

impl Fill {
    /// A demand fill of `block`.
    pub fn demand(block: BlockAddr) -> Self {
        Fill {
            block,
            prefetched: false,
        }
    }

    /// A prefetch fill of `block`.
    pub fn prefetch(block: BlockAddr) -> Self {
        Fill {
            block,
            prefetched: true,
        }
    }
}

/// Result of one [`MemoryBackend::access`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Absolute cycle at which the requested data is available.
    pub complete_at: Cycle,
    /// Blocks to insert into the LLC (demand block first, then any blocks
    /// prefetched alongside it).
    pub fills: Vec<Fill>,
}

/// Fault-injection, detection and recovery counters of a backend whose
/// storage sits in untrusted memory (the ORAM controllers; all-zero for
/// DRAM).
///
/// Injection counters are ground truth recorded by the fault injector
/// itself; detection/recovery counters are recorded by the controller's
/// verification and repair paths. `undetected` counts injected corruptions
/// that survived a full authenticated read — the false negatives the
/// fault-sweep experiment asserts to be zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Ciphertext bit flips injected.
    pub injected_bit_flips: u64,
    /// Torn (partially applied) bucket writes injected.
    pub injected_torn_writes: u64,
    /// Dropped bucket writes injected (rollback to the previous image).
    pub injected_rollbacks: u64,
    /// Transient read-attempt failures injected.
    pub injected_transients: u64,
    /// Reads that failed authentication (corruption detected).
    pub detected_integrity: u64,
    /// Reads that authenticated but carried a stale version counter
    /// (rollback detected).
    pub detected_rollback: u64,
    /// Read retries performed for transient failures.
    pub transient_retries: u64,
    /// Extra cycles spent in retry backoff.
    pub backoff_cycles: u64,
    /// Faults survived: transient reads that succeeded on retry plus
    /// corrupted/rolled-back buckets repaired from the trusted state.
    pub recovered: u64,
    /// Typed errors that could not be recovered and were reported upward.
    pub unrecovered: u64,
    /// Emergency background evictions run past the normal per-access bound
    /// because the stash crossed its hard capacity (degradation mode).
    pub emergency_evictions: u64,
    /// Periodic full-image scrub passes completed.
    pub scrub_runs: u64,
    /// Buckets verified by scrub passes.
    pub scrub_buckets: u64,
    /// Injected faults overwritten by a later write before any read could
    /// observe them (not detectable, and nothing to detect).
    pub masked_by_overwrite: u64,
    /// Injected corruptions that survived a full authenticated read — the
    /// false negatives; must stay zero.
    pub undetected: u64,
}

impl FaultStats {
    /// All injected faults (corruptions plus transients).
    pub fn total_injected(&self) -> u64 {
        self.injected_bit_flips
            + self.injected_torn_writes
            + self.injected_rollbacks
            + self.injected_transients
    }

    /// Corruptions injected and still observable (not masked by a later
    /// write) — the denominator of [`FaultStats::detection_rate`].
    pub fn observable_corruptions(&self) -> u64 {
        (self.injected_bit_flips + self.injected_torn_writes + self.injected_rollbacks)
            .saturating_sub(self.masked_by_overwrite)
    }

    /// Corruption detections (integrity + rollback).
    pub fn total_detected(&self) -> u64 {
        self.detected_integrity + self.detected_rollback
    }

    /// Fraction of observable injected corruptions that were detected;
    /// `None` when nothing observable was injected.
    pub fn detection_rate(&self) -> Option<f64> {
        let obs = self.observable_corruptions();
        (obs > 0).then(|| {
            let caught = obs - self.undetected;
            caught as f64 / obs as f64
        })
    }

    /// Adds every counter to `registry` under `prefix` (e.g.
    /// `"backend.faults."`), so fault telemetry from any number of
    /// backends lands in one namespace.
    pub fn snapshot_into(&self, registry: &mut MetricsRegistry, prefix: &str) {
        let pairs = [
            ("injected_bit_flips", self.injected_bit_flips),
            ("injected_torn_writes", self.injected_torn_writes),
            ("injected_rollbacks", self.injected_rollbacks),
            ("injected_transients", self.injected_transients),
            ("detected_integrity", self.detected_integrity),
            ("detected_rollback", self.detected_rollback),
            ("transient_retries", self.transient_retries),
            ("backoff_cycles", self.backoff_cycles),
            ("recovered", self.recovered),
            ("unrecovered", self.unrecovered),
            ("emergency_evictions", self.emergency_evictions),
            ("scrub_runs", self.scrub_runs),
            ("scrub_buckets", self.scrub_buckets),
            ("masked_by_overwrite", self.masked_by_overwrite),
            ("undetected", self.undetected),
        ];
        for (name, value) in pairs {
            registry.counter_add(&format!("{prefix}{name}"), value);
        }
    }
}

impl std::ops::Add for FaultStats {
    type Output = FaultStats;

    /// Field-wise sum; aggregates injector- and controller-side counters.
    fn add(self, rhs: FaultStats) -> FaultStats {
        FaultStats {
            injected_bit_flips: self.injected_bit_flips + rhs.injected_bit_flips,
            injected_torn_writes: self.injected_torn_writes + rhs.injected_torn_writes,
            injected_rollbacks: self.injected_rollbacks + rhs.injected_rollbacks,
            injected_transients: self.injected_transients + rhs.injected_transients,
            detected_integrity: self.detected_integrity + rhs.detected_integrity,
            detected_rollback: self.detected_rollback + rhs.detected_rollback,
            transient_retries: self.transient_retries + rhs.transient_retries,
            backoff_cycles: self.backoff_cycles + rhs.backoff_cycles,
            recovered: self.recovered + rhs.recovered,
            unrecovered: self.unrecovered + rhs.unrecovered,
            emergency_evictions: self.emergency_evictions + rhs.emergency_evictions,
            scrub_runs: self.scrub_runs + rhs.scrub_runs,
            scrub_buckets: self.scrub_buckets + rhs.scrub_buckets,
            masked_by_overwrite: self.masked_by_overwrite + rhs.masked_by_overwrite,
            undetected: self.undetected + rhs.undetected,
        }
    }
}

impl std::ops::Sub for FaultStats {
    type Output = FaultStats;

    /// Field-wise difference; used for warmup-baseline subtraction.
    fn sub(self, rhs: FaultStats) -> FaultStats {
        FaultStats {
            injected_bit_flips: self.injected_bit_flips - rhs.injected_bit_flips,
            injected_torn_writes: self.injected_torn_writes - rhs.injected_torn_writes,
            injected_rollbacks: self.injected_rollbacks - rhs.injected_rollbacks,
            injected_transients: self.injected_transients - rhs.injected_transients,
            detected_integrity: self.detected_integrity - rhs.detected_integrity,
            detected_rollback: self.detected_rollback - rhs.detected_rollback,
            transient_retries: self.transient_retries - rhs.transient_retries,
            backoff_cycles: self.backoff_cycles - rhs.backoff_cycles,
            recovered: self.recovered - rhs.recovered,
            unrecovered: self.unrecovered - rhs.unrecovered,
            emergency_evictions: self.emergency_evictions - rhs.emergency_evictions,
            scrub_runs: self.scrub_runs - rhs.scrub_runs,
            scrub_buckets: self.scrub_buckets - rhs.scrub_buckets,
            masked_by_overwrite: self.masked_by_overwrite - rhs.masked_by_overwrite,
            undetected: self.undetected - rhs.undetected,
        }
    }
}

/// Aggregate statistics exposed by every backend.
///
/// Fields that do not apply to a given technology are zero (e.g. DRAM has
/// no background evictions). `physical_accesses` is the quantity the paper
/// normalizes as "Norm. Memory Accesses" — proportional to memory-subsystem
/// energy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Logical demand requests served (reads + writes, no prefetches).
    pub demand_accesses: u64,
    /// Prefetcher-issued requests served.
    pub prefetch_requests: u64,
    /// Physical memory operations, including ORAM path accesses for
    /// position maps and dummy/background-eviction accesses.
    pub physical_accesses: u64,
    /// Dummy accesses (ORAM background evictions + periodic filler).
    pub dummy_accesses: u64,
    /// ORAM position-map tree accesses (0 for DRAM).
    pub posmap_accesses: u64,
    /// Total bytes moved on the memory bus.
    pub bytes_moved: u64,
    /// Super-block / prefetcher blocks that were later used by the core.
    pub prefetch_hits: u64,
    /// Super-block / prefetcher blocks evicted or reloaded unused.
    pub prefetch_misses: u64,
    /// Cycles during which the memory resource was busy.
    pub busy_cycles: u64,
    /// Busy cycles attributable to demand-data path accesses (for DRAM,
    /// demand + prefetch transfers).
    pub data_path_cycles: u64,
    /// Busy cycles attributable to position-map path accesses (0 for
    /// DRAM).
    pub posmap_path_cycles: u64,
    /// Busy cycles attributable to dummy / background-eviction accesses.
    pub dummy_path_cycles: u64,
    /// Treetop-cache bucket hits: path buckets served from trusted
    /// on-chip memory instead of the encrypted store (0 for DRAM and
    /// for `treetop_levels = 0`).
    pub treetop_hits: u64,
    /// Bytes that never crossed the memory bus because the treetop
    /// cache absorbed them.
    pub treetop_bytes_saved: u64,
    /// Fault injection / detection / recovery counters (all-zero without
    /// fault injection).
    pub faults: FaultStats,
}

impl std::ops::Sub for BackendStats {
    type Output = BackendStats;

    /// Field-wise difference; used to exclude a measurement-warmup
    /// prefix from run statistics.
    fn sub(self, rhs: BackendStats) -> BackendStats {
        BackendStats {
            demand_accesses: self.demand_accesses - rhs.demand_accesses,
            prefetch_requests: self.prefetch_requests - rhs.prefetch_requests,
            physical_accesses: self.physical_accesses - rhs.physical_accesses,
            dummy_accesses: self.dummy_accesses - rhs.dummy_accesses,
            posmap_accesses: self.posmap_accesses - rhs.posmap_accesses,
            bytes_moved: self.bytes_moved - rhs.bytes_moved,
            prefetch_hits: self.prefetch_hits - rhs.prefetch_hits,
            prefetch_misses: self.prefetch_misses - rhs.prefetch_misses,
            busy_cycles: self.busy_cycles - rhs.busy_cycles,
            data_path_cycles: self.data_path_cycles - rhs.data_path_cycles,
            posmap_path_cycles: self.posmap_path_cycles - rhs.posmap_path_cycles,
            dummy_path_cycles: self.dummy_path_cycles - rhs.dummy_path_cycles,
            treetop_hits: self.treetop_hits - rhs.treetop_hits,
            treetop_bytes_saved: self.treetop_bytes_saved - rhs.treetop_bytes_saved,
            faults: self.faults - rhs.faults,
        }
    }
}

impl std::ops::Add for BackendStats {
    type Output = BackendStats;

    /// Field-wise sum; used to aggregate statistics across shards or
    /// measurement windows.
    fn add(self, rhs: BackendStats) -> BackendStats {
        BackendStats {
            demand_accesses: self.demand_accesses + rhs.demand_accesses,
            prefetch_requests: self.prefetch_requests + rhs.prefetch_requests,
            physical_accesses: self.physical_accesses + rhs.physical_accesses,
            dummy_accesses: self.dummy_accesses + rhs.dummy_accesses,
            posmap_accesses: self.posmap_accesses + rhs.posmap_accesses,
            bytes_moved: self.bytes_moved + rhs.bytes_moved,
            prefetch_hits: self.prefetch_hits + rhs.prefetch_hits,
            prefetch_misses: self.prefetch_misses + rhs.prefetch_misses,
            busy_cycles: self.busy_cycles + rhs.busy_cycles,
            data_path_cycles: self.data_path_cycles + rhs.data_path_cycles,
            posmap_path_cycles: self.posmap_path_cycles + rhs.posmap_path_cycles,
            dummy_path_cycles: self.dummy_path_cycles + rhs.dummy_path_cycles,
            treetop_hits: self.treetop_hits + rhs.treetop_hits,
            treetop_bytes_saved: self.treetop_bytes_saved + rhs.treetop_bytes_saved,
            faults: self.faults + rhs.faults,
        }
    }
}

impl BackendStats {
    /// Counters accumulated since `baseline` was captured.
    ///
    /// This is the snapshot-diff the tile engine uses to exclude a
    /// measurement-warmup prefix: capture `stats()` at the warmup
    /// boundary, then diff the final counters against it.
    pub fn since(self, baseline: BackendStats) -> BackendStats {
        self - baseline
    }

    /// Fraction of prefetched blocks that were used; `None` if nothing was
    /// prefetched yet.
    pub fn prefetch_hit_rate(&self) -> Option<f64> {
        let total = self.prefetch_hits + self.prefetch_misses;
        (total > 0).then(|| self.prefetch_hits as f64 / total as f64)
    }

    /// `true` if the per-stage cycle attribution is complete: every busy
    /// cycle is claimed by exactly one of the data / position-map / dummy
    /// categories. Backends that attribute stages must keep this exact;
    /// the run-metrics invariant check asserts it.
    pub fn stage_cycles_consistent(&self) -> bool {
        self.data_path_cycles + self.posmap_path_cycles + self.dummy_path_cycles == self.busy_cycles
    }

    /// Fraction of physical accesses that were dummies.
    pub fn dummy_rate(&self) -> f64 {
        if self.physical_accesses == 0 {
            0.0
        } else {
            self.dummy_accesses as f64 / self.physical_accesses as f64
        }
    }

    /// Adds every counter to `registry` under `prefix` (e.g.
    /// `"backend."`); fault counters land under `prefix + "faults."`.
    pub fn snapshot_into(&self, registry: &mut MetricsRegistry, prefix: &str) {
        let pairs = [
            ("demand_accesses", self.demand_accesses),
            ("prefetch_requests", self.prefetch_requests),
            ("physical_accesses", self.physical_accesses),
            ("dummy_accesses", self.dummy_accesses),
            ("posmap_accesses", self.posmap_accesses),
            ("bytes_moved", self.bytes_moved),
            ("prefetch_hits", self.prefetch_hits),
            ("prefetch_misses", self.prefetch_misses),
            ("busy_cycles", self.busy_cycles),
            ("data_path_cycles", self.data_path_cycles),
            ("posmap_path_cycles", self.posmap_path_cycles),
            ("dummy_path_cycles", self.dummy_path_cycles),
            ("treetop_hits", self.treetop_hits),
            ("treetop_bytes_saved", self.treetop_bytes_saved),
        ];
        for (name, value) in pairs {
            registry.counter_add(&format!("{prefix}{name}"), value);
        }
        self.faults
            .snapshot_into(registry, &format!("{prefix}faults."));
    }
}

/// A main-memory technology: DRAM, Path ORAM, or an ORAM with super
/// blocks.
///
/// The simulator core is agnostic to what sits behind this trait; swapping
/// implementations is how the paper's `dram` / `oram` / `stat` / `dyn`
/// configurations are produced.
///
/// Backends are sequential state machines: calls must be made with
/// non-decreasing `now` values, and the backend internally serializes
/// accesses onto its resources (a single ORAM access saturates the DRAM
/// pins — paper Section 2.6 — so the ORAM backends model exactly one
/// in-flight access).
pub trait MemoryBackend {
    /// Performs `req`, issued by the LLC at absolute cycle `now`.
    ///
    /// `llc` is the tag-probe port used by the dynamic super block merge
    /// scheme; backends that do not need it ignore it.
    fn access(&mut self, now: Cycle, req: MemRequest, llc: &dyn CacheProbe) -> AccessOutcome;

    /// Performs one dummy access starting no earlier than `now`, returning
    /// its completion cycle. For ORAM this is a background eviction
    /// (Section 2.4); for DRAM it is a plain bus-occupying read.
    fn dummy_access(&mut self, now: Cycle) -> Cycle;

    /// First cycle at which a new access could begin.
    fn free_at(&self) -> Cycle;

    /// Informs the backend that the LLC hit on `block`.
    ///
    /// ORAM super-block schemes use this to set the block's *hit bit*
    /// (paper Algorithm 2: "In Processor: when block b is accessed,
    /// b.hit = true"). The default implementation ignores it.
    fn note_llc_hit(&mut self, _block: BlockAddr) {}

    /// Informs the backend that `block` was evicted from the LLC without a
    /// writeback (clean eviction). Dirty evictions instead arrive as
    /// [`MemRequest::write`] accesses. The default implementation ignores
    /// it.
    fn note_llc_eviction(&mut self, _block: BlockAddr) {}

    /// Statistics accumulated since construction.
    fn stats(&self) -> BackendStats;

    /// Short human-readable name used in experiment output.
    fn label(&self) -> &str;

    /// Attaches an observability handle; the backend (and everything it
    /// wraps) emits its events and per-stage profile there from now on.
    /// The default implementation discards the handle, so backends with
    /// nothing to report need not care.
    fn attach_obs(&mut self, _obs: Obs) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_probe_is_empty() {
        assert!(!NoProbe.contains(BlockAddr(0)));
        assert!(!NoProbe.contains(BlockAddr(u64::MAX)));
    }

    #[test]
    fn fill_constructors() {
        assert!(!Fill::demand(BlockAddr(1)).prefetched);
        assert!(Fill::prefetch(BlockAddr(1)).prefetched);
    }

    #[test]
    fn stats_hit_rate() {
        let mut s = BackendStats::default();
        assert_eq!(s.prefetch_hit_rate(), None);
        s.prefetch_hits = 3;
        s.prefetch_misses = 1;
        assert_eq!(s.prefetch_hit_rate(), Some(0.75));
    }

    #[test]
    fn stats_add_and_since_round_trip() {
        let a = BackendStats {
            demand_accesses: 3,
            physical_accesses: 10,
            bytes_moved: 1024,
            ..Default::default()
        };
        let b = BackendStats {
            demand_accesses: 2,
            physical_accesses: 5,
            prefetch_hits: 1,
            ..Default::default()
        };
        let sum = a + b;
        assert_eq!(sum.demand_accesses, 5);
        assert_eq!(sum.physical_accesses, 15);
        assert_eq!(sum.since(b), a);
        assert_eq!(sum.since(a), b);
    }

    #[test]
    fn fault_stats_rates_and_arithmetic() {
        let mut f = FaultStats::default();
        assert_eq!(f.detection_rate(), None);
        f.injected_bit_flips = 4;
        f.injected_rollbacks = 2;
        f.masked_by_overwrite = 1;
        f.detected_integrity = 4;
        f.detected_rollback = 1;
        assert_eq!(f.observable_corruptions(), 5);
        assert_eq!(f.detection_rate(), Some(1.0));
        f.undetected = 1;
        assert_eq!(f.detection_rate(), Some(0.8));
        let sum = f + f;
        assert_eq!(sum.injected_bit_flips, 8);
        assert_eq!(sum - f, f);
    }

    #[test]
    fn stage_cycle_attribution_sums_to_busy() {
        let mut s = BackendStats {
            busy_cycles: 100,
            data_path_cycles: 60,
            posmap_path_cycles: 30,
            dummy_path_cycles: 10,
            ..Default::default()
        };
        assert!(s.stage_cycles_consistent());
        s.dummy_path_cycles = 11;
        assert!(!s.stage_cycles_consistent());
    }

    #[test]
    fn stats_dummy_rate() {
        let mut s = BackendStats::default();
        assert_eq!(s.dummy_rate(), 0.0);
        s.physical_accesses = 10;
        s.dummy_accesses = 4;
        assert!((s.dummy_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn snapshot_covers_every_counter() {
        let s = BackendStats {
            demand_accesses: 1,
            prefetch_requests: 2,
            physical_accesses: 3,
            dummy_accesses: 4,
            posmap_accesses: 5,
            bytes_moved: 6,
            prefetch_hits: 7,
            prefetch_misses: 8,
            busy_cycles: 9,
            data_path_cycles: 10,
            posmap_path_cycles: 11,
            dummy_path_cycles: 12,
            treetop_hits: 15,
            treetop_bytes_saved: 16,
            faults: FaultStats {
                injected_bit_flips: 13,
                undetected: 14,
                ..Default::default()
            },
        };
        let mut reg = MetricsRegistry::new();
        s.snapshot_into(&mut reg, "backend.");
        assert_eq!(reg.counter("backend.demand_accesses"), 1);
        assert_eq!(reg.counter("backend.dummy_path_cycles"), 12);
        assert_eq!(reg.counter("backend.treetop_hits"), 15);
        assert_eq!(reg.counter("backend.treetop_bytes_saved"), 16);
        assert_eq!(reg.counter("backend.faults.injected_bit_flips"), 13);
        assert_eq!(reg.counter("backend.faults.undetected"), 14);
        // 14 backend counters + 15 fault counters, all registered.
        assert_eq!(reg.counters_with_prefix("backend.").count(), 29);
        // Snapshotting a second copy accumulates (shard aggregation).
        s.snapshot_into(&mut reg, "backend.");
        assert_eq!(reg.counter("backend.demand_accesses"), 2);
    }
}
