//! Randomized tests over the memory timing wrappers, generated with the
//! workspace's deterministic RNG so every case reproduces from its seed.

use proram_mem::{
    AdaptivePeriodic, AdaptivePeriodicConfig, BlockAddr, Dram, DramConfig, MemRequest,
    MemoryBackend, NoProbe, Periodic,
};
use proram_stats::{Rng64, Xoshiro256};

/// DRAM with a flat, deterministic access time (one bank keeps every
/// access serial, so completion = start + 108).
fn flat_dram() -> Dram {
    Dram::new(DramConfig {
        banks: 1,
        ..DramConfig::default()
    })
}

#[test]
fn periodic_accesses_start_on_slot_boundaries() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from(0x9E12 + case);
        let interval = rng.next_range(1, 2000);
        let num_gaps = rng.next_range(1, 40);
        let mut p = Periodic::new(flat_dram(), interval);
        let mut now = 0;
        for i in 0..num_gaps {
            now += rng.next_below(5000);
            let o = p.access(now, MemRequest::read(BlockAddr(i)), &NoProbe);
            // With a single serial bank, completion - 108 is the start
            // cycle, which must be a multiple of the interval.
            let start = o.complete_at - 108;
            assert_eq!(
                start % interval,
                0,
                "start {start} not on an O_int boundary (case {case})"
            );
            assert!(start >= now, "access started before it was issued");
            now = o.complete_at;
        }
    }
}

#[test]
fn periodic_timing_is_independent_of_addresses() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from(0xAD00 + case);
        let interval = rng.next_range(50, 500);
        let addrs_a: Vec<u64> = (0..20).map(|_| rng.next_below(1000)).collect();
        let addrs_b: Vec<u64> = (0..20).map(|_| rng.next_below(1000)).collect();
        let gaps: Vec<u64> = (0..20).map(|_| rng.next_below(3000)).collect();
        // Two different address sequences with identical request timing
        // must produce identical completion timing — the timing channel
        // carries no address information.
        let run = |addrs: &[u64]| {
            let mut p = Periodic::new(flat_dram(), interval);
            let mut now = 0;
            let mut completions = Vec::new();
            for (a, g) in addrs.iter().zip(&gaps) {
                now += g;
                let o = p.access(now, MemRequest::read(BlockAddr(*a)), &NoProbe);
                completions.push(o.complete_at);
                now = o.complete_at;
            }
            (completions, p.stats().dummy_accesses)
        };
        let (ca, da) = run(&addrs_a);
        let (cb, db) = run(&addrs_b);
        assert_eq!(ca, cb, "completion times depend on addresses (case {case})");
        assert_eq!(da, db, "dummy counts depend on addresses (case {case})");
    }
}

#[test]
fn adaptive_interval_always_on_the_ladder() {
    for case in 0..32u64 {
        let mut rng = Xoshiro256::seed_from(0x1ADD + case);
        let num_gaps = rng.next_range(1, 400);
        let cfg = AdaptivePeriodicConfig {
            intervals: vec![100, 400, 1600],
            epoch_requests: 32,
            target_utilization: 0.5,
        };
        let mut p = AdaptivePeriodic::new(flat_dram(), cfg.clone());
        let mut now = 0;
        for i in 0..num_gaps {
            now += rng.next_below(60_000);
            now = p
                .access(now, MemRequest::read(BlockAddr(i)), &NoProbe)
                .complete_at;
            assert!(
                cfg.intervals.contains(&p.current_interval()),
                "interval off the ladder (case {case})"
            );
        }
        // Leakage accounting is exactly one decision per completed epoch.
        let expected_epochs = num_gaps / cfg.epoch_requests;
        assert_eq!(p.epochs(), expected_epochs, "epoch count (case {case})");
    }
}

#[test]
fn dram_completions_are_monotonic() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from(0xD3A0 + case);
        let num_reqs = rng.next_range(1, 100);
        let mut d = Dram::new(DramConfig::default());
        let mut now = 0;
        let mut last_complete = 0;
        for _ in 0..num_reqs {
            let addr = rng.next_below(10_000);
            now += rng.next_below(500);
            let o = d.access(now, MemRequest::read(BlockAddr(addr)), &NoProbe);
            assert!(
                o.complete_at >= last_complete || o.complete_at > now,
                "completion went backwards (case {case})"
            );
            last_complete = last_complete.max(o.complete_at);
            now = now.max(o.complete_at.saturating_sub(108));
        }
    }
}
