//! Property tests over the memory timing wrappers.

use proptest::prelude::*;
use proram_mem::{
    AdaptivePeriodic, AdaptivePeriodicConfig, BlockAddr, Dram, DramConfig, MemRequest,
    MemoryBackend, NoProbe, Periodic,
};

/// DRAM with a flat, deterministic access time (one bank keeps every
/// access serial, so completion = start + 108).
fn flat_dram() -> Dram {
    Dram::new(DramConfig {
        banks: 1,
        ..DramConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn periodic_accesses_start_on_slot_boundaries(
        interval in 1u64..2000,
        gaps in proptest::collection::vec(0u64..5000, 1..40),
    ) {
        let mut p = Periodic::new(flat_dram(), interval);
        let mut now = 0;
        for (i, gap) in gaps.iter().enumerate() {
            now += gap;
            let o = p.access(now, MemRequest::read(BlockAddr(i as u64)), &NoProbe);
            // With a single serial bank, completion - 108 is the start
            // cycle, which must be a multiple of the interval.
            let start = o.complete_at - 108;
            prop_assert_eq!(start % interval, 0, "start {} not on an O_int boundary", start);
            prop_assert!(start >= now, "access started before it was issued");
            now = o.complete_at;
        }
    }

    #[test]
    fn periodic_timing_is_independent_of_addresses(
        interval in 50u64..500,
        addrs_a in proptest::collection::vec(0u64..1000, 20),
        addrs_b in proptest::collection::vec(0u64..1000, 20),
        gaps in proptest::collection::vec(0u64..3000, 20),
    ) {
        // Two different address sequences with identical request timing
        // must produce identical completion timing — the timing channel
        // carries no address information.
        let run = |addrs: &[u64]| {
            let mut p = Periodic::new(flat_dram(), interval);
            let mut now = 0;
            let mut completions = Vec::new();
            for (a, g) in addrs.iter().zip(&gaps) {
                now += g;
                let o = p.access(now, MemRequest::read(BlockAddr(*a)), &NoProbe);
                completions.push(o.complete_at);
                now = o.complete_at;
            }
            (completions, p.stats().dummy_accesses)
        };
        let (ca, da) = run(&addrs_a);
        let (cb, db) = run(&addrs_b);
        prop_assert_eq!(ca, cb, "completion times depend on addresses");
        prop_assert_eq!(da, db, "dummy counts depend on addresses");
    }

    #[test]
    fn adaptive_interval_always_on_the_ladder(
        gaps in proptest::collection::vec(0u64..60_000, 1..400),
    ) {
        let cfg = AdaptivePeriodicConfig {
            intervals: vec![100, 400, 1600],
            epoch_requests: 32,
            target_utilization: 0.5,
        };
        let mut p = AdaptivePeriodic::new(flat_dram(), cfg.clone());
        let mut now = 0;
        for (i, gap) in gaps.iter().enumerate() {
            now += gap;
            now = p.access(now, MemRequest::read(BlockAddr(i as u64)), &NoProbe).complete_at;
            prop_assert!(cfg.intervals.contains(&p.current_interval()));
        }
        // Leakage accounting is exactly one decision per completed epoch.
        let expected_epochs = gaps.len() as u64 / cfg.epoch_requests;
        prop_assert_eq!(p.epochs(), expected_epochs);
    }

    #[test]
    fn dram_completions_are_monotonic(
        reqs in proptest::collection::vec((0u64..10_000, 0u64..500), 1..100),
    ) {
        let mut d = Dram::new(DramConfig::default());
        let mut now = 0;
        let mut last_complete = 0;
        for (addr, gap) in reqs {
            now += gap;
            let o = d.access(now, MemRequest::read(BlockAddr(addr)), &NoProbe);
            prop_assert!(o.complete_at >= last_complete || o.complete_at > now,
                "completion went backwards");
            last_complete = last_complete.max(o.complete_at);
            now = now.max(o.complete_at.saturating_sub(108));
        }
    }
}
