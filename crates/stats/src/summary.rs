//! Streaming summary statistics.
//!
//! [`Summary`] accumulates mean and variance with Welford's algorithm so the
//! simulator can track quantities like stash occupancy without storing every
//! sample.

use std::fmt;

/// Streaming mean / variance / min / max accumulator.
///
/// # Examples
///
/// ```
/// use proram_stats::Summary;
///
/// let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
/// assert_eq!(s.len(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert_eq!(s.min(), Some(1.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, x: f64) {
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean of the samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; `0.0` with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(no samples)");
        }
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min,
            self.max
        )
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Geometric mean of a set of strictly positive values.
///
/// The paper reports average speedups; geometric means are the conventional
/// way to average ratios across benchmarks.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
///
/// # Examples
///
/// ```
/// use proram_stats::summary::geometric_mean;
///
/// let g = geometric_mean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a slice; `0.0` when empty.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(format!("{s}"), "(no samples)");
    }

    #[test]
    fn single_sample() {
        let s: Summary = [3.5].into_iter().collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn merge_matches_sequential() {
        let all: Summary = (0..100).map(|i| i as f64).collect();
        let mut a: Summary = (0..40).map(|i| i as f64).collect();
        let b: Summary = (40..100).map(|i| i as f64).collect();
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.len(), all.len());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geometric_mean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn arithmetic_mean_basics() {
        assert_eq!(arithmetic_mean(&[]), 0.0);
        assert!((arithmetic_mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_has_fields() {
        let s: Summary = [1.0, 3.0].into_iter().collect();
        let txt = format!("{s}");
        assert!(txt.contains("n=2"));
        assert!(txt.contains("mean=2.0000"));
    }
}
