//! Statistical tests used by the obliviousness test suite.
//!
//! Path ORAM's security argument says the observed leaf sequence is a
//! sequence of independent uniform random values. The integration tests
//! check the simulator's adversary-visible trace against that claim with a
//! chi-square uniformity test and a lag-1 serial-correlation test.

use crate::histogram::Histogram;

/// Result of a chi-square uniformity test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The chi-square statistic.
    pub statistic: f64,
    /// Degrees of freedom (`bins - 1`).
    pub dof: u64,
    /// Number of samples that entered the test.
    pub samples: u64,
}

impl Chi2Result {
    /// `true` if the statistic is within `z` standard deviations of the
    /// chi-square mean (`dof`), using the normal approximation
    /// `chi2 ~ N(dof, 2*dof)` valid for large `dof`.
    ///
    /// The obliviousness tests use `z = 6`, a bound that a uniform source
    /// fails with probability < 1e-8 yet any structured access pattern
    /// exceeds by orders of magnitude.
    pub fn is_plausibly_uniform(&self, z: f64) -> bool {
        let mean = self.dof as f64;
        let sd = (2.0 * self.dof as f64).sqrt();
        (self.statistic - mean).abs() <= z * sd
    }
}

/// Chi-square test that `samples` are uniform over `0..bins`.
///
/// # Panics
///
/// Panics if `bins < 2` or any sample is out of range.
///
/// # Examples
///
/// ```
/// use proram_stats::{chi2_uniform, Rng64, Xoshiro256};
///
/// let mut rng = Xoshiro256::seed_from(3);
/// let samples: Vec<u64> = (0..10_000).map(|_| rng.next_below(16)).collect();
/// let r = chi2_uniform(&samples, 16);
/// assert!(r.is_plausibly_uniform(6.0));
/// ```
pub fn chi2_uniform(samples: &[u64], bins: u64) -> Chi2Result {
    assert!(bins >= 2, "chi-square needs at least 2 bins");
    let mut hist = Histogram::new();
    for &s in samples {
        assert!(s < bins, "sample {s} out of range 0..{bins}");
        hist.record(s);
    }
    let n = samples.len() as f64;
    let expected = n / bins as f64;
    let mut statistic = 0.0;
    for bin in 0..bins {
        let observed = hist.count(bin) as f64;
        let d = observed - expected;
        statistic += d * d / expected;
    }
    Chi2Result {
        statistic,
        dof: bins - 1,
        samples: samples.len() as u64,
    }
}

/// Lag-1 serial correlation coefficient of a sequence.
///
/// For independent uniform draws the coefficient is ~0; linkable ORAM
/// accesses (e.g. re-using the previous leaf) push it away from zero.
/// Returns `0.0` for sequences shorter than 2 or with no variance.
pub fn serial_correlation(samples: &[u64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / n;
    let var: f64 = samples
        .iter()
        .map(|&s| (s as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = samples
        .windows(2)
        .map(|w| (w[0] as f64 - mean) * (w[1] as f64 - mean))
        .sum::<f64>()
        / (n - 1.0);
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng64, Xoshiro256};

    #[test]
    fn uniform_source_passes() {
        let mut rng = Xoshiro256::seed_from(17);
        let samples: Vec<u64> = (0..50_000).map(|_| rng.next_below(64)).collect();
        let r = chi2_uniform(&samples, 64);
        assert!(
            r.is_plausibly_uniform(6.0),
            "stat={} dof={}",
            r.statistic,
            r.dof
        );
        assert_eq!(r.dof, 63);
        assert_eq!(r.samples, 50_000);
    }

    #[test]
    fn skewed_source_fails() {
        // Half the mass on bin 0.
        let mut rng = Xoshiro256::seed_from(18);
        let samples: Vec<u64> = (0..50_000)
            .map(|_| {
                if rng.next_bool(0.5) {
                    0
                } else {
                    rng.next_below(64)
                }
            })
            .collect();
        let r = chi2_uniform(&samples, 64);
        assert!(!r.is_plausibly_uniform(6.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_sample_panics() {
        chi2_uniform(&[5], 4);
    }

    #[test]
    #[should_panic(expected = "at least 2 bins")]
    fn one_bin_panics() {
        chi2_uniform(&[0], 1);
    }

    #[test]
    fn independent_sequence_has_low_serial_correlation() {
        let mut rng = Xoshiro256::seed_from(20);
        let samples: Vec<u64> = (0..50_000).map(|_| rng.next_below(1 << 20)).collect();
        let rho = serial_correlation(&samples);
        assert!(rho.abs() < 0.05, "rho={rho}");
    }

    #[test]
    fn linked_sequence_has_high_serial_correlation() {
        // A random walk is strongly serially correlated.
        let mut rng = Xoshiro256::seed_from(21);
        let mut x = 1_000_000i64;
        let samples: Vec<u64> = (0..10_000)
            .map(|_| {
                x += rng.next_below(21) as i64 - 10;
                x.max(0) as u64
            })
            .collect();
        let rho = serial_correlation(&samples);
        assert!(rho > 0.9, "rho={rho}");
    }

    #[test]
    fn degenerate_sequences() {
        assert_eq!(serial_correlation(&[]), 0.0);
        assert_eq!(serial_correlation(&[5]), 0.0);
        assert_eq!(serial_correlation(&[5, 5, 5, 5]), 0.0);
    }
}
