//! Integer histograms.
//!
//! Used throughout the simulator for stash-occupancy distributions, path
//! usage counts and prefetch-distance profiles.

use std::collections::BTreeMap;
use std::fmt;

/// Values below this bound are counted in a dense array; hot-path
/// histograms (stash occupancy, prefetch distances) never leave it.
const DENSE_LIMIT: u64 = 512;

/// A histogram over `u64` sample values.
///
/// Small values (below 512) are counted in a dense array — recording those
/// is an index increment, cheap enough for once-per-ORAM-access use.
/// Larger values fall back to a `BTreeMap`, so sparse ranges (e.g. 2^25
/// ORAM leaves) cost no memory until observed. Iteration is in sample
/// order either way.
///
/// # Examples
///
/// ```
/// use proram_stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(3);
/// h.record(3);
/// h.record(7);
/// assert_eq!(h.count(3), 2);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.max(), Some(7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    /// Counts for values `0..DENSE_LIMIT`, indexed by value; grown lazily
    /// to the largest observed small value.
    dense: Vec<u64>,
    /// Counts for values `>= DENSE_LIMIT`.
    sparse: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if value < DENSE_LIMIT {
            let idx = value as usize;
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, 0);
            }
            self.dense[idx] += n;
        } else {
            *self.sparse.entry(value).or_insert(0) += n;
        }
        self.total += n;
    }

    /// Number of observations of exactly `value`.
    pub fn count(&self, value: u64) -> u64 {
        if value < DENSE_LIMIT {
            self.dense.get(value as usize).copied().unwrap_or(0)
        } else {
            self.sparse.get(&value).copied().unwrap_or(0)
        }
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest observed value, if any.
    pub fn min(&self) -> Option<u64> {
        self.dense
            .iter()
            .position(|&c| c > 0)
            .map(|v| v as u64)
            .or_else(|| self.sparse.keys().next().copied())
    }

    /// Largest observed value, if any.
    pub fn max(&self) -> Option<u64> {
        self.sparse
            .keys()
            .next_back()
            .copied()
            .or_else(|| self.dense.iter().rposition(|&c| c > 0).map(|v| v as u64))
    }

    /// Mean of the observations; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let sum: f64 = self.iter().map(|(v, c)| v as f64 * c as f64).sum();
        Some(sum / self.total as f64)
    }

    /// Smallest value `v` such that at least `q` (in `\[0,1\]`) of the mass is
    /// at or below `v`; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `\[0, 1\]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (v, c) in self.iter() {
            acc += c;
            if acc >= target {
                return Some(v);
            }
        }
        self.max()
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        // Dense values all precede sparse ones, so chaining keeps the
        // sample order.
        self.dense
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
            .chain(self.sparse.iter().map(|(&v, &c)| (v, c)))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            self.record_n(v, c);
        }
    }
}

impl PartialEq for Histogram {
    /// Logical equality: the same observations, regardless of how the
    /// dense array happens to be sized.
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total && self.iter().eq(other.iter())
    }
}

impl Eq for Histogram {}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(empty histogram)");
        }
        writeln!(
            f,
            "total={} mean={:.2}",
            self.total,
            self.mean().unwrap_or(0.0)
        )?;
        for (v, c) in self.iter() {
            writeln!(f, "{v:>8}: {c}")?;
        }
        Ok(())
    }
}

impl Extend<u64> for Histogram {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(5);
        h.record(1);
        assert_eq!(h.count(5), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(4, 0);
        assert!(h.is_empty());
        assert_eq!(h.count(4), 0);
    }

    #[test]
    fn min_max_mean() {
        let h: Histogram = [2u64, 4, 4, 10].into_iter().collect();
        assert_eq!(h.min(), Some(2));
        assert_eq!(h.max(), Some(10));
        assert!((h.mean().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(format!("{h}"), "(empty histogram)");
    }

    #[test]
    fn quantiles() {
        let h: Histogram = (1..=100u64).collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_out_of_range_panics() {
        let h: Histogram = [1u64].into_iter().collect();
        h.quantile(1.5);
    }

    #[test]
    fn merge_adds_mass() {
        let mut a: Histogram = [1u64, 2].into_iter().collect();
        let b: Histogram = [2u64, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(1), 1);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(3), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn iter_is_sorted() {
        let h: Histogram = [9u64, 1, 5, 5].into_iter().collect();
        let values: Vec<u64> = h.iter().map(|(v, _)| v).collect();
        assert_eq!(values, vec![1, 5, 9]);
    }

    #[test]
    fn dense_and_sparse_ranges_mix() {
        let mut h = Histogram::new();
        h.record(3); // dense
        h.record_n(100_000, 2); // sparse
        h.record(511);
        h.record(512);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.count(100_000), 2);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(100_000));
        let values: Vec<u64> = h.iter().map(|(v, _)| v).collect();
        assert_eq!(values, vec![3, 511, 512, 100_000]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn equality_is_logical() {
        // Two histograms with the same observations are equal even if one
        // grew its dense array further via values later superseded.
        let a: Histogram = [1u64, 5].into_iter().collect();
        let b: Histogram = [5u64, 1].into_iter().collect();
        assert_eq!(a, b);
        let c: Histogram = [1u64, 6].into_iter().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn display_contains_counts() {
        let h: Histogram = [3u64, 3].into_iter().collect();
        let s = format!("{h}");
        assert!(s.contains("total=2"));
        assert!(s.contains("3"));
    }
}
