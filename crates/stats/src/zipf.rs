//! Zipfian sampling for skewed workloads.
//!
//! The YCSB-like workload in the paper's DBMS evaluation draws record keys
//! from a Zipfian distribution. This module implements the rejection-based
//! sampler from Gray et al., "Quickly generating billion-record synthetic
//! databases" (the same algorithm the YCSB client uses), so key popularity
//! matches the real benchmark's shape.

use crate::rng::Rng64;

/// A Zipfian distribution over `0..n` with exponent `theta`.
///
/// Rank 0 is the most popular item. `theta = 0.99` reproduces the YCSB
/// default skew.
///
/// # Examples
///
/// ```
/// use proram_stats::{Rng64, Xoshiro256, Zipf};
///
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = Xoshiro256::seed_from(1);
/// let k = zipf.sample(&mut rng);
/// assert!(k < 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a Zipfian distribution over `0..n` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or `theta` is not in `[0, 1)` (the Gray et al.
    /// recurrence requires `theta < 1`; use a uniform sampler for 0 skew).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf population must be positive");
        assert!((0.0..1.0).contains(&theta), "zipf theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// Number of items in the population.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation; populations in the simulator are at most a few
        // million so this is fine and exact.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws a rank in `0..n`; rank 0 is the hottest.
    pub fn sample<R: Rng64>(&self, rng: &mut R) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let raw = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        raw.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn samples_are_in_range() {
        let zipf = Zipf::new(100, 0.99);
        let mut rng = Xoshiro256::seed_from(7);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let zipf = Zipf::new(1000, 0.99);
        let mut rng = Xoshiro256::seed_from(9);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max, "rank 0 should be the hottest item");
        // With theta=0.99 the head should dominate: top-10 ranks should be a
        // large fraction of all samples.
        let head: u64 = counts[..10].iter().sum();
        assert!(head > 30_000, "head mass too small: {head}");
    }

    #[test]
    fn near_uniform_when_theta_small() {
        let zipf = Zipf::new(10, 0.01);
        let mut rng = Xoshiro256::seed_from(2);
        let mut counts = vec![0u64; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        // Every item gets within 3x of the uniform share.
        for &c in &counts {
            assert!(c > 10_000 / 3, "unexpectedly cold item: {c}");
        }
    }

    #[test]
    fn population_of_one_always_returns_zero() {
        let zipf = Zipf::new(1, 0.5);
        let mut rng = Xoshiro256::seed_from(4);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn zero_population_panics() {
        Zipf::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn theta_one_panics() {
        Zipf::new(10, 1.0);
    }

    #[test]
    fn accessors_round_trip() {
        let zipf = Zipf::new(42, 0.75);
        assert_eq!(zipf.population(), 42);
        assert!((zipf.theta() - 0.75).abs() < 1e-12);
    }
}
