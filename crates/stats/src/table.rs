//! Plain-text table rendering.
//!
//! The experiment harness prints each regenerated paper table/figure as an
//! aligned text table so results can be eyeballed against the paper and
//! diffed across runs.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use proram_stats::Table;
///
/// let mut t = Table::new(&["bench", "speedup"]);
/// t.row(&["fft", "0.18"]);
/// t.row(&["ocean_c", "0.42"]);
/// let s = t.to_string();
/// assert!(s.contains("ocean_c"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: AsRef<str>>(headers: &[S]) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers: headers.iter().map(|h| h.as_ref().to_owned()).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row of cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_owned()).collect());
        self
    }

    /// Appends a row from mixed displayable values.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings)
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The title, if set.
    pub fn title(&self) -> Option<&str> {
        self.title.as_deref()
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        if let Some(title) = &self.title {
            writeln!(f, "== {title} ==")?;
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(rule_len))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a ratio as a signed percentage string, e.g. `+20.2%`.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Formats a float with three significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]).with_title("demo");
        t.row(&["a", "1"]);
        t.row(&["longer", "22"]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name"));
        let lines: Vec<&str> = s.lines().collect();
        // title + header + rule + 2 rows
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        Table::new::<&str>(&[]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn row_display_converts() {
        let mut t = Table::new(&["a", "b"]);
        t.row_display(&[&1.5f64, &"x"]);
        assert!(t.to_string().contains("1.5"));
    }

    #[test]
    fn accessors_expose_contents() {
        let mut t = Table::new(&["a", "b"]).with_title("t");
        t.row(&["1", "2"]);
        assert_eq!(t.headers(), &["a".to_owned(), "b".to_owned()]);
        assert_eq!(t.rows()[0], vec!["1".to_owned(), "2".to_owned()]);
        assert_eq!(t.title(), Some("t"));
    }

    #[test]
    fn pct_and_f3_formatting() {
        assert_eq!(pct(0.202), "+20.2%");
        assert_eq!(pct(-0.05), "-5.0%");
        assert_eq!(f3(1.23456), "1.235");
    }
}
