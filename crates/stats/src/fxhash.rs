//! A fast, deterministic hasher for hot-path hash maps.
//!
//! The standard library's default `SipHash` is keyed per process for HashDoS
//! resistance, which the simulator neither needs (keys are block addresses
//! it generates itself) nor wants: it costs a large constant per lookup on
//! paths executed millions of times, and per-process keying makes map
//! iteration order vary across runs. This is the multiply-rotate scheme
//! used by rustc ("FxHash"), fixed-seeded, so lookups are cheap and
//! iteration order is reproducible for a given insertion history.
//!
//! Simulation-internal only — like [`crate::rng`], not for adversarial
//! input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// rustc's FxHash multiplier (64-bit golden-ratio-derived constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The multiply-rotate hasher.
///
/// # Examples
///
/// ```
/// use proram_stats::FxHashMap;
///
/// let mut m: FxHashMap<u64, &str> = FxHashMap::default();
/// m.insert(7, "seven");
/// assert_eq!(m.get(&7), Some(&"seven"));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Builds [`FxHasher`]s from the fixed seed.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 3);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hashing_is_deterministic() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn byte_writes_cover_remainders() {
        for len in [0usize, 1, 7, 8, 9, 16, 23] {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut a = FxHasher::default();
            a.write(&bytes);
            let mut b = FxHasher::default();
            b.write(&bytes);
            assert_eq!(a.finish(), b.finish(), "len={len}");
        }
    }

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for i in 0..100 {
                m.insert(i * 17, i);
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
