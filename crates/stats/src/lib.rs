//! Deterministic random number generation and statistics for the PrORAM
//! simulator.
//!
//! Every stochastic component of the simulator (leaf remapping, workload
//! generators, synthetic traces) draws from the [`Rng64`] trait implemented
//! by [`Xoshiro256`], a seedable, platform-stable generator. Keeping the RNG
//! in-tree guarantees that a given seed reproduces the same experiment on any
//! machine, which the paper's evaluation methodology depends on.
//!
//! The crate also provides the statistical toolkit used by the experiment
//! harness and the security tests:
//!
//! * [`Zipf`] — Zipfian sampler for the YCSB-like workload,
//! * [`Histogram`] — integer histograms (stash occupancy, path usage),
//! * [`Summary`] — streaming mean / variance / min / max,
//! * [`chi2`] — chi-square uniformity tests over observed leaf sequences,
//! * [`table`] — plain-text table rendering for figure/table regeneration.
//!
//! # Examples
//!
//! ```
//! use proram_stats::{Rng64, Xoshiro256};
//!
//! let mut rng = Xoshiro256::seed_from(42);
//! let a = rng.next_u64();
//! let b = rng.next_u64();
//! assert_ne!(a, b);
//! // Same seed, same stream:
//! let mut rng2 = Xoshiro256::seed_from(42);
//! assert_eq!(rng2.next_u64(), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod chi2;
pub mod fxhash;
pub mod histogram;
pub mod rng;
pub mod summary;
pub mod table;
pub mod zipf;

pub use chart::BarChart;
pub use chi2::{chi2_uniform, serial_correlation};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use histogram::Histogram;
pub use rng::{Rng64, SplitMix64, Xoshiro256};
pub use summary::Summary;
pub use table::Table;
pub use zipf::Zipf;
