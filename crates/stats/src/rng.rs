//! Seedable, platform-stable pseudo-random number generators.
//!
//! The simulator must be bit-for-bit reproducible from a seed so that every
//! experiment in the paper can be re-run deterministically. We therefore ship
//! two small, well-known generators instead of depending on an external
//! crate whose stream might change between versions:
//!
//! * [`SplitMix64`] — used for seeding and for the ORAM encryption keystream,
//! * [`Xoshiro256`] — xoshiro256** 1.0, the general-purpose generator.

/// A source of 64-bit random values.
///
/// All simulator randomness flows through this trait so components can be
/// tested with scripted generators.
///
/// # Examples
///
/// ```
/// use proram_stats::{Rng64, Xoshiro256};
///
/// let mut rng = Xoshiro256::seed_from(7);
/// let die = rng.next_below(6) + 1;
/// assert!((1..=6).contains(&die));
/// ```
pub trait Rng64 {
    /// Returns the next 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// Uses rejection sampling (Lemire-style threshold) so the result is
    /// exactly uniform for any bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Reject values in the final partial copy of `0..bound` so every
        // residue class is equally likely.
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniformly distributed value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "next_range requires lo < hi");
        lo + self.next_below(hi - lo)
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `\[0, 1\]`).
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// SplitMix64: a tiny, fast generator mainly used to expand seeds.
///
/// The output sequence is the reference sequence from Steele, Lea &
/// Flood, "Fast splittable pseudorandom number generators".
///
/// # Examples
///
/// ```
/// use proram_stats::{Rng64, SplitMix64};
///
/// let mut sm = SplitMix64::new(0);
/// assert_eq!(sm.next_u64(), 0xE220A8397B1DCDAF);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// The golden-ratio increment added to the state each step.
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Creates a generator with the given state.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The output function: a pure mix of one state value.
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Advances the generator four steps and returns all four outputs —
    /// exactly the values four [`Rng64::next_u64`] calls would produce.
    ///
    /// SplitMix's only loop-carried dependency is the state increment, so
    /// the four mixes are data-independent and schedule in parallel; the
    /// keystream XOR in `proram-oram`'s cipher uses this to process 32
    /// bytes per round without changing a single output byte.
    #[inline]
    pub fn next4(&mut self) -> [u64; 4] {
        let base = self.state;
        self.state = base.wrapping_add(Self::GAMMA.wrapping_mul(4));
        [
            Self::mix(base.wrapping_add(Self::GAMMA)),
            Self::mix(base.wrapping_add(Self::GAMMA.wrapping_mul(2))),
            Self::mix(base.wrapping_add(Self::GAMMA.wrapping_mul(3))),
            Self::mix(base.wrapping_add(Self::GAMMA.wrapping_mul(4))),
        ]
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x9E37_79B9_7F4A_7C15)
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        Self::mix(self.state)
    }
}

/// xoshiro256** 1.0 by Blackman and Vigna: the simulator's main generator.
///
/// Seeded through [`SplitMix64`] as the authors recommend, so any `u64` seed
/// produces a well-mixed initial state.
///
/// # Examples
///
/// ```
/// use proram_stats::{Rng64, Xoshiro256};
///
/// let mut rng = Xoshiro256::seed_from(1234);
/// let samples: Vec<u64> = (0..4).map(|_| rng.next_below(100)).collect();
/// assert!(samples.iter().all(|&v| v < 100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256 state must be nonzero"
        );
        Xoshiro256 { s }
    }

    /// Returns the full 256-bit state, suitable for serializing into a
    /// checkpoint record and later restoring via
    /// [`from_state`](Xoshiro256::from_state).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256::from_state([sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()])
    }

    /// Derives an independent child generator.
    ///
    /// Used to give each simulator component (stash, workload, crypto) its
    /// own stream without the streams being correlated.
    pub fn fork(&mut self) -> Self {
        Xoshiro256::seed_from(self.next_u64())
    }
}

impl Default for Xoshiro256 {
    fn default() -> Self {
        Xoshiro256::seed_from(0)
    }
}

impl Rng64 for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // implementation by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn next4_matches_four_scalar_steps() {
        for seed in [0u64, 1, 1234567, u64::MAX] {
            let mut scalar = SplitMix64::new(seed);
            let mut wide = SplitMix64::new(seed);
            for _ in 0..8 {
                let expect = [
                    scalar.next_u64(),
                    scalar.next_u64(),
                    scalar.next_u64(),
                    scalar.next_u64(),
                ];
                assert_eq!(wide.next4(), expect, "seed={seed}");
            }
            // Interleaving wide and scalar steps stays on the sequence.
            assert_eq!(wide.next_u64(), scalar.next_u64());
        }
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256::seed_from(99);
        let mut b = Xoshiro256::seed_from(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_streams_differ_across_seeds() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_is_in_range_and_covers_all_residues() {
        let mut rng = Xoshiro256::seed_from(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_below_power_of_two_fast_path() {
        let mut rng = Xoshiro256::seed_from(5);
        for _ in 0..1000 {
            assert!(rng.next_below(64) < 64);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256::seed_from(0).next_below(0);
    }

    #[test]
    fn next_range_bounds() {
        let mut rng = Xoshiro256::seed_from(11);
        for _ in 0..1000 {
            let v = rng.next_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn next_f64_is_unit_interval() {
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn next_bool_extremes() {
        let mut rng = Xoshiro256::seed_from(4);
        assert!((0..100).all(|_| !rng.next_bool(0.0)));
        assert!((0..100).all(|_| rng.next_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from(8);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements the identity permutation is astronomically
        // unlikely; the shuffle must have moved something.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_uncorrelated_stream() {
        let mut parent = Xoshiro256::seed_from(42);
        let mut child = parent.fork();
        let same = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    #[should_panic(expected = "state must be nonzero")]
    fn zero_state_rejected() {
        Xoshiro256::from_state([0; 4]);
    }

    #[test]
    fn state_round_trips_through_from_state() {
        let mut a = Xoshiro256::seed_from(17);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = Xoshiro256::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
