//! Dependency-free SVG bar charts for experiment tables.
//!
//! The experiment harness prints text tables; with `--svg` it also
//! renders each as a grouped bar chart so the regenerated figures can be
//! compared against the paper's plots visually.

use crate::table::Table;
use std::fmt::Write as _;

/// Chart geometry.
const WIDTH: f64 = 860.0;
const HEIGHT: f64 = 420.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 30.0;
const MARGIN_TOP: f64 = 50.0;
const MARGIN_BOTTOM: f64 = 70.0;

/// Series colors (color-blind-friendly).
const COLORS: &[&str] = &[
    "#0072b2", "#e69f00", "#009e73", "#cc79a7", "#d55e00", "#56b4e9",
];

/// Parses a numeric cell: plain floats, `+20.2%` percentages (as 0.202),
/// and `-` (skipped).
fn parse_cell(cell: &str) -> Option<f64> {
    let cell = cell.trim();
    if cell == "-" || cell.is_empty() {
        return None;
    }
    if let Some(stripped) = cell.strip_suffix('%') {
        return stripped.parse::<f64>().ok().map(|v| v / 100.0);
    }
    cell.parse::<f64>().ok()
}

/// A grouped bar chart extracted from a [`Table`]: first column =
/// category labels, every numeric column = one series.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    categories: Vec<String>,
    series: Vec<(String, Vec<Option<f64>>)>,
}

impl BarChart {
    /// Extracts a chart from a table. Returns `None` when the table has
    /// no numeric columns or no rows.
    pub fn from_table(table: &Table) -> Option<BarChart> {
        let headers = table.headers();
        let rows = table.rows();
        if rows.is_empty() || headers.len() < 2 {
            return None;
        }
        let categories: Vec<String> = rows.iter().map(|r| r[0].clone()).collect();
        let mut series = Vec::new();
        for col in 1..headers.len() {
            let values: Vec<Option<f64>> = rows.iter().map(|r| parse_cell(&r[col])).collect();
            // A real data series is mostly numeric; columns of prose with
            // an incidental number (configuration tables) are skipped.
            let numeric = values.iter().flatten().count();
            if numeric * 2 >= values.len() && numeric >= 1 {
                series.push((headers[col].clone(), values));
            }
        }
        if series.is_empty() {
            return None;
        }
        Some(BarChart {
            title: table.title().unwrap_or("chart").to_owned(),
            categories,
            series,
        })
    }

    /// Renders the chart as a standalone SVG document.
    pub fn to_svg(&self) -> String {
        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
        let values: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().flatten().copied())
            .collect();
        let vmax = values.iter().copied().fold(0.0f64, f64::max).max(1e-9);
        let vmin = values.iter().copied().fold(0.0f64, f64::min);
        let span = (vmax - vmin).max(1e-9);
        let y_of = |v: f64| MARGIN_TOP + plot_h * (1.0 - (v - vmin) / span);

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">{}</text>"#,
            WIDTH / 2.0,
            xml_escape(&self.title)
        );
        // Axes and zero line.
        let _ = write!(
            svg,
            r#"<line x1="{MARGIN_LEFT}" y1="{MARGIN_TOP}" x2="{MARGIN_LEFT}" y2="{}" stroke="black"/>"#,
            MARGIN_TOP + plot_h
        );
        let zero_y = y_of(0.0);
        let _ = write!(
            svg,
            r#"<line x1="{MARGIN_LEFT}" y1="{zero_y}" x2="{}" y2="{zero_y}" stroke="black"/>"#,
            MARGIN_LEFT + plot_w
        );
        // Y-axis ticks.
        for i in 0..=4 {
            let v = vmin + span * f64::from(i) / 4.0;
            let y = y_of(v);
            let _ = write!(
                svg,
                r#"<line x1="{}" y1="{y}" x2="{MARGIN_LEFT}" y2="{y}" stroke="black"/><text x="{}" y="{}" font-family="sans-serif" font-size="11" text-anchor="end">{v:.2}</text>"#,
                MARGIN_LEFT - 5.0,
                MARGIN_LEFT - 8.0,
                y + 4.0
            );
        }
        // Bars.
        let cat_w = plot_w / self.categories.len() as f64;
        let bar_w = (cat_w * 0.8) / self.series.len() as f64;
        for (ci, cat) in self.categories.iter().enumerate() {
            let x0 = MARGIN_LEFT + cat_w * ci as f64 + cat_w * 0.1;
            for (si, (_, values)) in self.series.iter().enumerate() {
                if let Some(v) = values[ci] {
                    let y = y_of(v.max(0.0));
                    let h = (y_of(v.min(0.0)) - y).abs().max(0.5);
                    let _ = write!(
                        svg,
                        r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{}"/>"#,
                        x0 + bar_w * si as f64,
                        y.min(zero_y),
                        bar_w * 0.92,
                        h,
                        COLORS[si % COLORS.len()]
                    );
                }
            }
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="end" transform="rotate(-35 {:.1} {:.1})">{}</text>"#,
                x0 + cat_w * 0.4,
                MARGIN_TOP + plot_h + 16.0,
                x0 + cat_w * 0.4,
                MARGIN_TOP + plot_h + 16.0,
                xml_escape(cat)
            );
        }
        // Legend.
        for (si, (name, _)) in self.series.iter().enumerate() {
            let x = MARGIN_LEFT + 120.0 * si as f64;
            let y = HEIGHT - 18.0;
            let _ = write!(
                svg,
                r#"<rect x="{x}" y="{}" width="12" height="12" fill="{}"/><text x="{}" y="{}" font-family="sans-serif" font-size="12">{}</text>"#,
                y - 11.0,
                COLORS[si % COLORS.len()],
                x + 16.0,
                y,
                xml_escape(name)
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new(&["bench", "stat", "dyn"]).with_title("demo figure");
        t.row(&["fft", "-7.1%", "+3.1%"]);
        t.row(&["ocean_c", "+12.7%", "+9.7%"]);
        t
    }

    #[test]
    fn parses_percent_and_float_cells() {
        assert!((parse_cell("+20.2%").unwrap() - 0.202).abs() < 1e-12);
        assert!((parse_cell("-5.0%").unwrap() + 0.05).abs() < 1e-12);
        assert_eq!(parse_cell("1.234"), Some(1.234));
        assert_eq!(parse_cell("-"), None);
        assert_eq!(parse_cell("ocean_c"), None);
    }

    #[test]
    fn chart_extraction() {
        let chart = BarChart::from_table(&sample_table()).expect("numeric table");
        assert_eq!(chart.categories, vec!["fft", "ocean_c"]);
        assert_eq!(chart.series.len(), 2);
        assert_eq!(chart.series[0].0, "stat");
    }

    #[test]
    fn non_numeric_table_yields_no_chart() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x", "y"]);
        assert!(BarChart::from_table(&t).is_none());
    }

    #[test]
    fn mostly_textual_columns_are_skipped() {
        // A configuration table with one incidental number must not
        // become a chart.
        let mut t = Table::new(&["param", "value"]);
        t.row(&["cores", "1 GHz, in order"]);
        t.row(&["Z", "3"]);
        t.row(&["stash", "100 blocks"]);
        t.row(&["latency", "2364 cycles"]);
        t.row(&["bandwidth", "16 GB/s"]);
        assert!(BarChart::from_table(&t).is_none());
    }

    #[test]
    fn empty_table_yields_no_chart() {
        let t = Table::new(&["a", "b"]);
        assert!(BarChart::from_table(&t).is_none());
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = BarChart::from_table(&sample_table()).unwrap().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("demo figure"));
        assert!(svg.contains("ocean_c"));
        // Two categories x two series = four bars plus axis rects.
        assert!(svg.matches("<rect").count() >= 5);
        // Balanced text elements.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn negative_values_render_below_zero_line() {
        let mut t = Table::new(&["x", "v"]).with_title("neg");
        t.row(&["a", "-50.0%"]);
        t.row(&["b", "+50.0%"]);
        let svg = BarChart::from_table(&t).unwrap().to_svg();
        assert!(
            svg.contains("<rect"),
            "bars must render for negative values"
        );
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut t = Table::new(&["x", "v"]).with_title("a<b>&c");
        t.row(&["<cat>", "1.0"]);
        let svg = BarChart::from_table(&t).unwrap().to_svg();
        assert!(svg.contains("a&lt;b&gt;&amp;c"));
        assert!(!svg.contains("<cat>"));
    }
}
