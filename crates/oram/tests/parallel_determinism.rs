//! Determinism goldens for the crypto worker pool.
//!
//! The pooled hot paths (parallel bucket re-encryption on write-back,
//! parallel decrypt+verify on the gated image walk) must be *invisible*
//! in every observable: nonces and versions are assigned in path order
//! on the caller thread before dispatch, workers are pure, and results
//! merge in bucket order — so the stats counters, stash histogram,
//! physical access trace, and the encrypted image itself are
//! byte-identical at any `crypto_threads` setting. These tests replay
//! the shared `common` golden workload across thread counts and compare
//! whole digests, including against the pinned single-threaded goldens.

mod common;

use common::{assert_golden, golden_config, replay_cfg, GOLDEN_OPAQUE, GOLDEN_PAYLOADS};

/// Thread counts swept: serial (0), degenerate pool (1), even splits,
/// and a count exceeding the path length's divisibility (7).
const SWEEP: [usize; 5] = [0, 1, 2, 4, 7];

fn replay_threads(store_payloads: bool, verify_image: bool, threads: usize) -> common::RunDigest {
    let cfg = golden_config(store_payloads)
        .to_builder()
        .verify_image(verify_image)
        .crypto_threads(threads)
        .build()
        .expect("valid golden configuration");
    replay_cfg(cfg)
}

/// The encrypted (payloads-on) golden run matches the pinned goldens at
/// every pool size: the pooled write-back produces the digests captured
/// on the serial implementation.
#[test]
fn encrypted_goldens_hold_at_every_thread_count() {
    for threads in SWEEP {
        let d = replay_threads(true, false, threads);
        assert_golden(&d, &GOLDEN_PAYLOADS);
    }
}

/// The opaque (payloads-off) run has no encrypted store, so the pool
/// never engages — but the config must still be accepted and the
/// goldens must still hold.
#[test]
fn opaque_goldens_hold_at_every_thread_count() {
    for threads in SWEEP {
        let d = replay_threads(false, false, threads);
        assert_golden(&d, &GOLDEN_OPAQUE);
    }
}

/// With the per-read image verification gated on, the pooled
/// decrypt+verify walk engages on every access; the run must still
/// digest identically to the serial verify walk at every pool size.
#[test]
fn verified_image_digests_identical_at_every_thread_count() {
    let baseline = replay_threads(true, true, 0);
    assert_golden(&baseline, &GOLDEN_PAYLOADS);
    for threads in SWEEP {
        let d = replay_threads(true, true, threads);
        assert_eq!(
            d, baseline,
            "verify_image digest diverged at {threads} threads"
        );
    }
}

/// Whole-digest equality across thread counts (stronger than the pinned
/// subset: every field of the digest, compared pairwise).
#[test]
fn digests_identical_across_thread_counts() {
    let baseline = replay_threads(true, false, 0);
    for threads in SWEEP {
        let d = replay_threads(true, false, threads);
        assert_eq!(d, baseline, "digest diverged at {threads} threads");
    }
}
