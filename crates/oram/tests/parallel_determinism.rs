//! Determinism goldens for the crypto worker pool.
//!
//! The pooled hot paths (parallel bucket re-encryption on write-back,
//! parallel decrypt+verify on the gated image walk) must be *invisible*
//! in every observable: nonces and versions are assigned in path order
//! on the caller thread before dispatch, workers are pure, and results
//! merge in bucket order — so the stats counters, stash histogram,
//! physical access trace, and the encrypted image itself are
//! byte-identical at any `crypto_threads` setting. These tests replay
//! the shared `common` golden workload across thread counts and compare
//! whole digests, including against the pinned single-threaded goldens.

mod common;

use common::{
    assert_golden, digest_state, golden_config, replay_cfg, GOLDEN_OPAQUE, GOLDEN_PAYLOADS,
};

/// Thread counts swept: serial (0), degenerate pool (1), even splits,
/// and a count exceeding the path length's divisibility (7).
const SWEEP: [usize; 5] = [0, 1, 2, 4, 7];

fn replay_threads(store_payloads: bool, verify_image: bool, threads: usize) -> common::RunDigest {
    let cfg = golden_config(store_payloads)
        .to_builder()
        .verify_image(verify_image)
        .crypto_threads(threads)
        .build()
        .expect("valid golden configuration");
    replay_cfg(cfg)
}

/// The encrypted (payloads-on) golden run matches the pinned goldens at
/// every pool size: the pooled write-back produces the digests captured
/// on the serial implementation.
#[test]
fn encrypted_goldens_hold_at_every_thread_count() {
    for threads in SWEEP {
        let d = replay_threads(true, false, threads);
        assert_golden(&d, &GOLDEN_PAYLOADS);
    }
}

/// The opaque (payloads-off) run has no encrypted store, so the pool
/// never engages — but the config must still be accepted and the
/// goldens must still hold.
#[test]
fn opaque_goldens_hold_at_every_thread_count() {
    for threads in SWEEP {
        let d = replay_threads(false, false, threads);
        assert_golden(&d, &GOLDEN_OPAQUE);
    }
}

/// With the per-read image verification gated on, the pooled
/// decrypt+verify walk engages on every access; the run must still
/// digest identically to the serial verify walk at every pool size.
#[test]
fn verified_image_digests_identical_at_every_thread_count() {
    let baseline = replay_threads(true, true, 0);
    assert_golden(&baseline, &GOLDEN_PAYLOADS);
    for threads in SWEEP {
        let d = replay_threads(true, true, threads);
        assert_eq!(
            d, baseline,
            "verify_image digest diverged at {threads} threads"
        );
    }
}

/// Whole-digest equality across thread counts (stronger than the pinned
/// subset: every field of the digest, compared pairwise).
#[test]
fn digests_identical_across_thread_counts() {
    let baseline = replay_threads(true, false, 0);
    for threads in SWEEP {
        let d = replay_threads(true, false, threads);
        assert_eq!(d, baseline, "digest diverged at {threads} threads");
    }
}

/// Treetop caching shrinks the pooled batches (only the off-chip
/// suffix is dispatched); the digest must stay identical across thread
/// counts with `treetop_levels = 2`, pool or no pool.
#[test]
fn treetop_digests_identical_across_thread_counts() {
    let replay_treetop = |threads: usize| {
        let cfg = golden_config(true)
            .to_builder()
            .treetop_levels(2)
            .verify_image(true)
            .crypto_threads(threads)
            .build()
            .expect("valid treetop configuration");
        replay_cfg(cfg)
    };
    let baseline = replay_treetop(0);
    for threads in SWEEP {
        let d = replay_treetop(threads);
        assert_eq!(d, baseline, "treetop digest diverged at {threads} threads");
    }
}

/// A worker panicking mid-batch must not abort the process: the batch
/// surfaces as `Err(PoolError)`, the store falls back to byte-identical
/// serial writes, and the run still reproduces the pinned goldens.
#[test]
fn mid_batch_worker_panic_falls_back_to_serial_and_stays_golden() {
    use proram_mem::{AccessKind, BlockAddr};
    use proram_oram::PathOram;
    use proram_stats::{Rng64, Xoshiro256};

    let cfg = golden_config(true)
        .to_builder()
        .crypto_threads(4)
        .build()
        .expect("valid golden configuration");
    let baseline = replay_cfg(cfg.clone());
    assert_golden(&baseline, &GOLDEN_PAYLOADS);

    let mut oram = PathOram::new(cfg, common::ORAM_SEED);
    let mut rng = Xoshiro256::seed_from(common::WORKLOAD_SEED);
    for i in 0..common::ACCESSES {
        // Periodically make one job of the next pooled write batch panic
        // inside its worker, at varying positions within the batch.
        if i % 400 == 200 {
            oram.storage_mut()
                .expect("payloads on")
                .inject_pool_panic((i / 400) as usize % 3);
        }
        oram.try_access_block(
            BlockAddr(rng.next_below(common::TREE_BLOCKS)),
            AccessKind::Read,
        )
        .expect("panicked batches must fall back, not fail");
    }
    let d = digest_state(&oram);
    assert_eq!(d, baseline, "serial fallback diverged from the pooled run");
}
