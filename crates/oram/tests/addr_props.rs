//! Property tests over the unified address space and the encrypted
//! store.

use proptest::prelude::*;
use proram_mem::BlockAddr;
use proram_oram::{AddressSpace, Block, Bucket, EncryptedStore, Leaf, Payload, PosEntry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn posmap_chain_is_consistent(
        num_blocks in 1u64..5000,
        fanout in 2u64..64,
        hierarchies in 0u8..4,
        probe in 0u64..5000,
    ) {
        let space = AddressSpace::new(num_blocks, fanout, hierarchies);
        let addr = BlockAddr(probe % num_blocks);
        // Walking up the hierarchy always terminates at the top, and every
        // parent covers its child.
        let mut current = addr;
        for h in 1..=space.top_hierarchy() {
            let pm = space.posmap_block_for(current, h);
            prop_assert_eq!(space.hierarchy_of(current) + 1, h);
            let first = space.first_child(pm);
            let count = space.child_count(pm) as u64;
            prop_assert!(current.0 >= first.0 && current.0 < first.0 + count,
                "{current:?} not covered by its posmap block {pm:?}");
            let idx = space.entry_index(current) as u64;
            prop_assert_eq!(first.0 + idx, current.0, "entry index round trip");
            current = pm;
        }
    }

    #[test]
    fn regions_partition_the_space(
        num_blocks in 1u64..5000,
        fanout in 2u64..64,
        hierarchies in 0u8..4,
    ) {
        let space = AddressSpace::new(num_blocks, fanout, hierarchies);
        let mut expected_base = 0;
        for h in 0..=space.top_hierarchy() {
            prop_assert_eq!(space.region_base(h), expected_base);
            expected_base += space.region_len(h);
        }
        // Every tree block classifies into exactly the region it sits in.
        for probe in [0, num_blocks / 2, num_blocks - 1] {
            prop_assert_eq!(space.hierarchy_of(BlockAddr(probe)), 0);
        }
    }

    #[test]
    fn encrypted_store_round_trips_arbitrary_buckets(
        seed in any::<u64>(),
        blocks in proptest::collection::vec((0u64..1000, 0u32..64, any::<bool>()), 0..3),
        fill in any::<u8>(),
    ) {
        let mut store = EncryptedStore::new(4, 3, 128, seed);
        let mut bucket = Bucket::new(3);
        let mut used = std::collections::HashSet::new();
        for &(addr, leaf, hit) in &blocks {
            if !used.insert(addr) {
                continue; // bucket addresses must be unique
            }
            let mut b = Block::with_data(BlockAddr(addr), Leaf(leaf), vec![fill; 128].into());
            b.hit = hit;
            bucket.push(b);
        }
        store.write_bucket(2, &bucket);
        let got = store.try_read_bucket(2).expect("authentic");
        prop_assert_eq!(got.len(), bucket.len());
        for b in &got {
            prop_assert!(bucket.iter().any(|o| o.addr == b.addr && o.leaf == b.leaf && o.hit == b.hit));
            match &b.payload {
                Payload::Data(bytes) => prop_assert!(bytes.iter().all(|&x| x == fill)),
                other => prop_assert!(false, "wrong payload {other:?}"),
            }
        }
    }

    #[test]
    fn any_single_byte_corruption_of_a_written_bucket_is_detected(
        offset in 8usize..100, // past the plaintext nonce
        mask in 1u8..=255,
    ) {
        let mut store = EncryptedStore::new(2, 2, 64, 77);
        let mut bucket = Bucket::new(2);
        bucket.push(Block::with_data(BlockAddr(5), Leaf(1), vec![0xAA; 64].into()));
        bucket.push(Block::posmap(
            BlockAddr(9),
            Leaf(2),
            vec![PosEntry::new(Leaf(3)); 4].into(),
        ));
        store.write_bucket(1, &bucket);
        let bb = store.bucket_bytes();
        store.corrupt_byte(1, offset % bb, mask);
        prop_assert!(store.try_read_bucket(1).is_err(), "corruption escaped detection");
    }
}
