//! Randomized tests over the unified address space and the encrypted
//! store, generated with the workspace's deterministic RNG so every case
//! reproduces from its seed.

use proram_mem::BlockAddr;
use proram_oram::{AddressSpace, Block, Bucket, EncryptedStore, Leaf, Payload, PosEntry};
use proram_stats::{Rng64, Xoshiro256};

#[test]
fn posmap_chain_is_consistent() {
    let mut rng = Xoshiro256::seed_from(0xA0);
    for case in 0..128 {
        let num_blocks = rng.next_range(1, 5000);
        let fanout = rng.next_range(2, 64);
        let hierarchies = rng.next_below(4) as u8;
        let probe = rng.next_below(5000);
        let space = AddressSpace::new(num_blocks, fanout, hierarchies);
        let addr = BlockAddr(probe % num_blocks);
        // Walking up the hierarchy always terminates at the top, and every
        // parent covers its child.
        let mut current = addr;
        for h in 1..=space.top_hierarchy() {
            let pm = space.posmap_block_for(current, h);
            assert_eq!(space.hierarchy_of(current) + 1, h, "case {case}");
            let first = space.first_child(pm);
            let count = space.child_count(pm) as u64;
            assert!(
                current.0 >= first.0 && current.0 < first.0 + count,
                "{current:?} not covered by its posmap block {pm:?} (case {case})"
            );
            let idx = space.entry_index(current) as u64;
            assert_eq!(
                first.0 + idx,
                current.0,
                "entry index round trip (case {case})"
            );
            current = pm;
        }
    }
}

#[test]
fn regions_partition_the_space() {
    let mut rng = Xoshiro256::seed_from(0x9A97);
    for case in 0..128 {
        let num_blocks = rng.next_range(1, 5000);
        let fanout = rng.next_range(2, 64);
        let hierarchies = rng.next_below(4) as u8;
        let space = AddressSpace::new(num_blocks, fanout, hierarchies);
        let mut expected_base = 0;
        for h in 0..=space.top_hierarchy() {
            assert_eq!(space.region_base(h), expected_base, "case {case}");
            expected_base += space.region_len(h);
        }
        // Every tree block classifies into exactly the region it sits in.
        for probe in [0, num_blocks / 2, num_blocks - 1] {
            assert_eq!(space.hierarchy_of(BlockAddr(probe)), 0, "case {case}");
        }
    }
}

#[test]
fn encrypted_store_round_trips_arbitrary_buckets() {
    let mut rng = Xoshiro256::seed_from(0xE5C);
    for case in 0..128 {
        let seed = rng.next_u64();
        let num_blocks = rng.next_below(3) as usize;
        let fill = rng.next_below(256) as u8;
        let mut store = EncryptedStore::new(4, 3, 128, seed);
        let mut bucket = Bucket::new(3);
        let mut used = std::collections::HashSet::new();
        for _ in 0..num_blocks {
            let addr = rng.next_below(1000);
            let leaf = rng.next_below(64) as u32;
            let hit = rng.next_bool(0.5);
            if !used.insert(addr) {
                continue; // bucket addresses must be unique
            }
            let mut b = Block::with_data(BlockAddr(addr), Leaf(leaf), vec![fill; 128].into());
            b.hit = hit;
            bucket.push(b);
        }
        store.write_bucket(2, &bucket);
        let got = store.try_read_bucket(2).expect("authentic");
        assert_eq!(got.len(), bucket.len(), "case {case}");
        for b in &got {
            assert!(
                bucket
                    .iter()
                    .any(|o| o.addr == b.addr && o.leaf == b.leaf && o.hit == b.hit),
                "block metadata mismatch (case {case})"
            );
            match &b.payload {
                Payload::Data(bytes) => {
                    assert!(bytes.iter().all(|&x| x == fill), "case {case}")
                }
                other => panic!("wrong payload {other:?} (case {case})"),
            }
        }
    }
}

#[test]
fn any_single_byte_corruption_of_a_written_bucket_is_detected() {
    let mut rng = Xoshiro256::seed_from(0xC0);
    for case in 0..128 {
        let offset = rng.next_range(8, 100) as usize; // past the plaintext nonce
        let mask = rng.next_range(1, 256) as u8;
        let mut store = EncryptedStore::new(2, 2, 64, 77);
        let mut bucket = Bucket::new(2);
        bucket.push(Block::with_data(
            BlockAddr(5),
            Leaf(1),
            vec![0xAA; 64].into(),
        ));
        bucket.push(Block::posmap(
            BlockAddr(9),
            Leaf(2),
            vec![PosEntry::new(Leaf(3)); 4].into(),
        ));
        store.write_bucket(1, &bucket);
        let bb = store.bucket_bytes();
        store.corrupt_byte(1, offset % bb, mask);
        assert!(
            store.try_read_bucket(1).is_err(),
            "corruption escaped detection (case {case})"
        );
    }
}
