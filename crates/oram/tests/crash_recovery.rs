//! Crash-consistency acceptance suite (DESIGN.md section 15).
//!
//! Exhaustively sweeps every [`KillPoint`] over several crossing indices,
//! and after every injected crash requires:
//!
//! * **auditor-clean recovery** — block conservation (every logical block
//!   exactly once across stash ∪ PLB ∪ tree) and posmap↔tree agreement
//!   ([`PathOram::audit_full`]);
//! * **determinism** — the post-recovery state digest equals the
//!   crash-free run's digest (rollbacks retry with the checkpointed RNG,
//!   replays keep the committed state);
//! * **observational silence when disarmed** — an armed-but-never-fired
//!   injector and no injector at all produce byte-identical images.

use proram_mem::{AccessKind, BlockAddr, Fill, MemRequest, MemoryBackend, NoProbe};
use proram_oram::{
    CrashConfig, CrashStats, KillPoint, OramConfig, OramError, PathOram, RecoveryMode,
};
use proram_stats::{Rng64, Xoshiro256};

const BLOCKS: u64 = 128;
const ACCESSES: usize = 40;
const ORAM_SEED: u64 = 7;
const WORKLOAD_SEED: u64 = 3;

fn base_config(crypto_threads: usize) -> OramConfig {
    OramConfig {
        crypto_threads,
        ..OramConfig::small_for_tests(BLOCKS)
    }
}

/// The fixed workload: `ACCESSES` reads at externally-drawn addresses (so
/// the address sequence is independent of the controller's RNG).
fn addresses() -> Vec<BlockAddr> {
    let mut rng = Xoshiro256::seed_from(WORKLOAD_SEED);
    (0..ACCESSES)
        .map(|_| BlockAddr(rng.next_below(BLOCKS)))
        .collect()
}

/// Runs the workload crash-free under `cfg` and returns the final state
/// digest.
fn crash_free_digest_cfg(cfg: OramConfig) -> u64 {
    let mut oram = PathOram::new(cfg, ORAM_SEED);
    for &addr in &addresses() {
        oram.try_access_block(addr, AccessKind::Read).unwrap();
    }
    oram.audit_full();
    oram.state_digest()
}

/// Runs the workload crash-free and returns the final state digest.
fn crash_free_digest(crypto_threads: usize) -> u64 {
    crash_free_digest_cfg(base_config(crypto_threads))
}

/// Runs the workload with `crash` armed, recovering (and, after a
/// rollback, retrying) every injected kill. Returns the final digest and
/// the crash counters.
fn run_with_recovery(crash: CrashConfig, crypto_threads: usize) -> (u64, CrashStats) {
    run_with_recovery_cfg(crash, base_config(crypto_threads))
}

/// [`run_with_recovery`] under an arbitrary base configuration.
fn run_with_recovery_cfg(crash: CrashConfig, base: OramConfig) -> (u64, CrashStats) {
    let cfg = OramConfig {
        crash: Some(crash),
        ..base
    };
    let mut oram = PathOram::new(cfg, ORAM_SEED);
    for &addr in &addresses() {
        match oram.try_access_block(addr, AccessKind::Read) {
            Ok(_) => {}
            Err(OramError::Crashed { point }) => {
                let rec = oram.recover();
                oram.audit_full();
                if rec.mode != RecoveryMode::Replayed {
                    oram.try_access_block(addr, AccessKind::Read)
                        .unwrap_or_else(|e| panic!("retry after {point} rollback failed: {e}"));
                }
            }
            Err(e) => panic!("unexpected error under {}: {e}", crash.point),
        }
    }
    oram.audit_full();
    (oram.state_digest(), oram.crash_stats())
}

#[test]
fn exhaustive_kill_point_sweep_recovers_to_crash_free_state() {
    let serial_digest = crash_free_digest(1);
    let pooled_digest = crash_free_digest(2);
    // Pooled and serial crypto are byte-identical by contract, so the
    // plaintext state digest cannot differ either.
    assert_eq!(serial_digest, pooled_digest, "pool changed behavior");
    for point in KillPoint::ALL {
        for crossing in 1..=3u64 {
            let threads = if point == KillPoint::PooledEncrypt {
                2
            } else {
                1
            };
            let crash = CrashConfig::at(point, crossing);
            let (digest, stats) = run_with_recovery(crash, threads);
            assert_eq!(
                stats.crashes_injected, 1,
                "{point} crossing {crossing}: kill never fired"
            );
            assert_eq!(
                stats.rollbacks + stats.replays + stats.clean_recoveries,
                1,
                "{point} crossing {crossing}: recovery miscounted"
            );
            assert_eq!(
                digest, serial_digest,
                "{point} crossing {crossing}: post-recovery state diverged"
            );
        }
    }
}

/// With a nonzero treetop, checkpoints carry the on-chip buckets: a
/// pre-flip kill rolls the treetop back to its pre-access contents
/// (checkpoint A), a post-flip kill replays the committed ones
/// (checkpoint B), and either way the recovered state matches the
/// crash-free run under the same treetop exactly.
#[test]
fn treetop_rollback_and_replay_recover_to_crash_free_state() {
    for treetop in [1u32, 2] {
        let base = base_config(1)
            .to_builder()
            .treetop_levels(treetop)
            .build()
            .expect("valid treetop configuration");
        let clean = crash_free_digest_cfg(base.clone());
        for (point, rolls_back) in [(KillPoint::WriteBack, true), (KillPoint::MidFlip, false)] {
            let (digest, stats) = run_with_recovery_cfg(CrashConfig::at(point, 2), base.clone());
            assert_eq!(
                stats.crashes_injected, 1,
                "treetop {treetop}, {point}: kill never fired"
            );
            if rolls_back {
                assert_eq!(
                    stats.rollbacks, 1,
                    "treetop {treetop}: {point} must roll back"
                );
            } else {
                assert_eq!(stats.replays, 1, "treetop {treetop}: {point} must replay");
            }
            assert_eq!(
                digest, clean,
                "treetop {treetop}, {point}: post-recovery state diverged"
            );
        }
    }
}

#[test]
fn recovery_is_deterministic_across_runs() {
    for point in [
        KillPoint::WriteBack,
        KillPoint::MidJournal,
        KillPoint::MidFlip,
    ] {
        let a = run_with_recovery(CrashConfig::at(point, 2), 1);
        let b = run_with_recovery(CrashConfig::at(point, 2), 1);
        assert_eq!(a, b, "{point}: same seed, different recovery outcome");
    }
}

#[test]
fn pre_flip_crashes_roll_back_and_post_flip_crashes_replay() {
    let (_, writeback) = run_with_recovery(CrashConfig::first(KillPoint::WriteBack), 1);
    assert_eq!(writeback.rollbacks, 1, "pre-flip kill must roll back");
    assert_eq!(writeback.replays, 0);

    let (_, mid_flip) = run_with_recovery(CrashConfig::first(KillPoint::MidFlip), 1);
    assert_eq!(mid_flip.replays, 1, "post-flip kill must replay");
    assert_eq!(mid_flip.rollbacks, 0);

    // A kill at the very first stage entry strikes before any journaled
    // write: recovery finds nothing pending.
    let (_, resolve) = run_with_recovery(CrashConfig::first(KillPoint::ResolvePosmap), 1);
    assert_eq!(resolve.clean_recoveries + resolve.rollbacks, 1);
}

#[test]
fn armed_but_unfired_injector_is_observationally_silent() {
    let run = |crash: Option<CrashConfig>| {
        let cfg = OramConfig {
            crash,
            ..base_config(1)
        };
        let mut oram = PathOram::new(cfg, ORAM_SEED);
        for &addr in &addresses() {
            oram.try_access_block(addr, AccessKind::Read).unwrap();
        }
        let image: Vec<Vec<u8>> = (0..oram.storage().unwrap().num_buckets())
            .map(|i| oram.storage().unwrap().ciphertext(i).to_vec())
            .collect();
        (oram.state_digest(), image)
    };
    // A crossing far past anything the workload reaches never fires; the
    // run must match the no-injector run byte for byte.
    let (armed_digest, armed_image) = run(Some(CrashConfig::at(KillPoint::MidFlip, 1_000_000)));
    let (clean_digest, clean_image) = run(None);
    assert_eq!(armed_digest, clean_digest);
    assert_eq!(
        armed_image, clean_image,
        "commit protocol changed the image"
    );
}

#[test]
fn memory_backend_recovers_and_retries_transparently() {
    let cfg = OramConfig {
        crash: Some(CrashConfig::at(KillPoint::WriteBack, 2)),
        ..base_config(1)
    };
    let mut oram = PathOram::new(cfg, ORAM_SEED);
    let mut now = 0;
    for &addr in &addresses() {
        let out = oram.access(now, MemRequest::read(addr), &NoProbe);
        assert_eq!(out.fills, vec![Fill::demand(addr)], "fill must be served");
        now = out.complete_at;
    }
    let stats = oram.crash_stats();
    assert_eq!(stats.crashes_injected, 1, "the armed kill never fired");
    assert_eq!(stats.rollbacks, 1);
    // The degraded-fault counter must stay clean: the crash was recovered,
    // not absorbed.
    assert_eq!(MemoryBackend::stats(&oram).faults.unrecovered, 0);
    oram.audit_full();
}

#[test]
fn recover_without_a_crash_is_a_clean_no_op() {
    let mut oram = PathOram::new(base_config(1), ORAM_SEED);
    oram.try_access_block(BlockAddr(5), AccessKind::Read)
        .unwrap();
    let before = oram.state_digest();
    let rec = oram.recover();
    assert_eq!(rec.mode, RecoveryMode::Clean);
    assert_eq!(rec.journal_entries, 0);
    assert_eq!(rec.cycles, 0);
    assert_eq!(oram.state_digest(), before);
    assert_eq!(oram.crash_stats().clean_recoveries, 1);
}

#[test]
fn recovery_reports_work_and_charges_latency() {
    let cfg = OramConfig {
        crash: Some(CrashConfig::at(KillPoint::MidJournal, 3)),
        ..base_config(1)
    };
    let mut oram = PathOram::new(cfg, ORAM_SEED);
    let mut report = None;
    for &addr in &addresses() {
        match oram.try_access_block(addr, AccessKind::Read) {
            Ok(_) => {}
            Err(OramError::Crashed { .. }) => {
                report = Some(oram.recover());
                break;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    let report = report.expect("mid-journal kill fired");
    assert_eq!(report.mode, RecoveryMode::RolledBack);
    assert!(report.journal_entries > 0, "journal held no entries");
    assert_eq!(report.buckets_restored, report.journal_entries);
    assert!(report.buckets_reverified >= report.buckets_restored);
    assert!(report.cycles > 0, "recovery must cost cycles");
}

#[test]
fn crash_events_reach_an_attached_sink() {
    use proram_obs::{Obs, ObsEvent};

    let cfg = OramConfig {
        crash: Some(CrashConfig::first(KillPoint::WriteBack)),
        ..base_config(1)
    };
    let mut oram = PathOram::new(cfg, ORAM_SEED);
    oram.attach_obs_handle(Obs::ring(4096));
    let addr = addresses()[0];
    let err = oram
        .try_access_block(addr, AccessKind::Read)
        .expect_err("first write-back entry must crash");
    assert!(matches!(
        err,
        OramError::Crashed {
            point: KillPoint::WriteBack
        }
    ));
    oram.recover();
    oram.try_access_block(addr, AccessKind::Read).unwrap();
    let events = oram.obs().events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ObsEvent::CrashInject { crossing: 1, .. })),
        "crash_inject missing"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ObsEvent::RecoverReplay { replay: false, .. })),
        "recover_replay missing"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ObsEvent::JournalCommit { .. })),
        "journal_commit missing (retry must commit)"
    );
}
