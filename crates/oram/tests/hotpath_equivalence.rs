//! Behavior-identity goldens for the allocation-free hot path.
//!
//! The hot-path optimizations (reusable path scratch, counting-bucket
//! write-back, wide stream-cipher XOR, gated image verification) must
//! not change *what* the ORAM does — only how fast. These tests replay
//! the fixed-seed workload from the shared `common` fixture and compare
//! every observable of the run against goldens captured on the seed
//! implementation: the stats counters, the stash-occupancy histogram,
//! the physical access trace, and the stash peak. Any change to path
//! selection, eviction order, or byte accounting shows up as a hash
//! mismatch here.

mod common;

use common::{
    assert_golden, fnv, golden_config, replay, replay_cfg, replay_observed, FNV_INIT,
    GOLDEN_OPAQUE, GOLDEN_PAYLOADS,
};
use proram_mem::{AccessKind, BlockAddr};
use proram_obs::{NoopSink, Obs};
use proram_oram::{FaultConfig, OramConfig, PathOram};
use proram_stats::{Rng64, Xoshiro256};

#[test]
fn golden_run_with_payloads() {
    assert_golden(&replay(true), &GOLDEN_PAYLOADS);
}

#[test]
fn golden_run_without_payloads() {
    assert_golden(&replay(false), &GOLDEN_OPAQUE);
}

/// A structurally present but zero-rate fault injector must leave every
/// golden observable untouched: the injector draws from its own RNG, so
/// installing it cannot perturb path selection, eviction, byte
/// accounting, or the adversary-visible trace.
#[test]
fn golden_run_with_silent_fault_injector() {
    let cfg = golden_config(true)
        .to_builder()
        .fault(FaultConfig::silent(0xDEAD))
        .build()
        .expect("valid golden configuration");
    assert_golden(&replay_cfg(cfg), &GOLDEN_PAYLOADS);
}

/// Attaching an enabled-but-retaining-nothing observability sink must
/// leave every golden byte-identical: the obs layer reads controller
/// state but never feeds back into path selection, eviction, or byte
/// accounting.
#[test]
fn goldens_unchanged_with_noop_sink_attached() {
    let d = replay_observed(golden_config(true), Obs::with_sink(Box::new(NoopSink)));
    assert_golden(&d, &GOLDEN_PAYLOADS);
}

/// Same property with the retaining ring sink: events accumulate on the
/// side, and the run itself still matches the disabled-path goldens.
#[test]
fn goldens_unchanged_with_ring_sink_attached() {
    let obs = Obs::ring(1 << 12);
    let d = replay_observed(golden_config(false), obs.clone());
    assert_golden(&d, &GOLDEN_OPAQUE);
    // The sink really was live for the whole replay.
    assert!(obs.event_count() > 0 || obs.dropped() > 0);
}

/// The gated per-read image verification must not change behavior when
/// enabled — it re-derives what the opaque path already computed.
#[test]
fn verify_image_is_observationally_silent() {
    let run = |verify_image: bool| {
        let cfg = OramConfig::small_for_tests(256)
            .to_builder()
            .store_payloads(true)
            .verify_image(verify_image)
            .build()
            .expect("valid golden configuration");
        let mut oram = PathOram::new(cfg, 42);
        let mut rng = Xoshiro256::seed_from(7);
        for _ in 0..500 {
            oram.try_access_block(BlockAddr(rng.next_below(256)), AccessKind::Read)
                .unwrap();
        }
        let leaves = oram.trace().observed_leaves();
        let mut h = FNV_INIT;
        for l in &leaves {
            h = fnv(h, *l);
        }
        (oram.oram_stats().bytes_moved, h)
    };
    assert_eq!(run(false), run(true));
}
