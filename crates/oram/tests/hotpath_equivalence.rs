//! Behavior-identity goldens for the allocation-free hot path.
//!
//! The hot-path optimizations (reusable path scratch, counting-bucket
//! write-back, wide stream-cipher XOR, gated image verification) must
//! not change *what* the ORAM does — only how fast. These tests replay
//! a fixed-seed workload and compare every observable of the run
//! against goldens captured on the seed implementation: the stats
//! counters, the stash-occupancy histogram, the physical access trace,
//! and the stash peak. Any change to path selection, eviction order,
//! or byte accounting shows up as a hash mismatch here.

use proram_mem::{AccessKind, BlockAddr};
use proram_obs::{NoopSink, Obs};
use proram_oram::{FaultConfig, OramConfig, PathOram};
use proram_stats::{Rng64, Xoshiro256};

/// FNV-1a-style fold used when the goldens were captured.
fn fnv(acc: u64, v: u64) -> u64 {
    (acc ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

const FNV_INIT: u64 = 0xcbf29ce484222325;

struct RunDigest {
    logical: u64,
    data_paths: u64,
    posmap_paths: u64,
    background: u64,
    bytes_moved: u64,
    hist_hash: u64,
    hist_total: u64,
    trace_hash: u64,
    trace_events: usize,
    trace_dropped: u64,
    stash_peak: usize,
    allocs_avoided: u64,
}

/// Replays the golden workload: 256-block tree, ORAM seed 42, 2000
/// uniform reads from a Xoshiro stream seeded with 7.
fn replay(store_payloads: bool) -> RunDigest {
    replay_cfg(golden_config(store_payloads))
}

fn golden_config(store_payloads: bool) -> OramConfig {
    OramConfig::small_for_tests(256)
        .to_builder()
        .store_payloads(store_payloads)
        .build()
        .expect("valid golden configuration")
}

fn replay_cfg(cfg: OramConfig) -> RunDigest {
    replay_observed(cfg, Obs::disabled())
}

fn replay_observed(cfg: OramConfig, obs: Obs) -> RunDigest {
    let mut oram = PathOram::new(cfg, 42);
    oram.attach_obs_handle(obs);
    let mut rng = Xoshiro256::seed_from(7);
    for _ in 0..2000 {
        oram.try_access_block(BlockAddr(rng.next_below(256)), AccessKind::Read)
            .unwrap();
    }
    let s = oram.oram_stats();
    let h = oram.stash().occupancy_histogram();
    let mut hist_hash = FNV_INIT;
    for (v, c) in h.iter() {
        hist_hash = fnv(fnv(hist_hash, v), c);
    }
    let leaves = oram.trace().observed_leaves();
    let mut trace_hash = FNV_INIT;
    for l in &leaves {
        trace_hash = fnv(trace_hash, *l);
    }
    RunDigest {
        logical: s.logical_accesses,
        data_paths: s.data_path_accesses,
        posmap_paths: s.posmap_path_accesses,
        background: s.background_evictions,
        bytes_moved: s.bytes_moved,
        hist_hash,
        hist_total: h.total(),
        trace_hash,
        trace_events: leaves.len(),
        trace_dropped: oram.trace().dropped(),
        stash_peak: oram.stash().peak(),
        allocs_avoided: oram.allocs_avoided(),
    }
}

fn assert_common(d: &RunDigest) {
    assert_eq!(d.logical, 2000);
    assert_eq!(d.data_paths, 2000);
    assert_eq!(d.posmap_paths, 2210);
    assert_eq!(d.background, 0);
    assert_eq!(d.bytes_moved, 38_799_360);
    assert_eq!(d.hist_total, 4210);
    assert_eq!(d.trace_events, 4210);
    assert_eq!(d.trace_dropped, 0);
    // Every one of the 4210 path accesses reuses the scratch buffers
    // (initialization warms them before the first access).
    assert_eq!(d.allocs_avoided, 4210);
}

#[test]
fn golden_run_with_payloads() {
    let d = replay(true);
    assert_common(&d);
    assert_eq!(d.hist_hash, 0x7e34_7ba1_61c4_bef3);
    assert_eq!(d.trace_hash, 0xb5a0_c950_fe1e_8801);
    assert_eq!(d.stash_peak, 19);
}

#[test]
fn golden_run_without_payloads() {
    let d = replay(false);
    assert_common(&d);
    assert_eq!(d.hist_hash, 0x06db_69e5_5d8e_25fe);
    assert_eq!(d.trace_hash, 0xd4fb_1582_f412_add7);
    assert_eq!(d.stash_peak, 21);
}

/// A structurally present but zero-rate fault injector must leave every
/// golden observable untouched: the injector draws from its own RNG, so
/// installing it cannot perturb path selection, eviction, byte
/// accounting, or the adversary-visible trace.
#[test]
fn golden_run_with_silent_fault_injector() {
    let cfg = OramConfig::small_for_tests(256)
        .to_builder()
        .store_payloads(true)
        .fault(FaultConfig::silent(0xDEAD))
        .build()
        .expect("valid golden configuration");
    let d = replay_cfg(cfg);
    assert_common(&d);
    assert_eq!(d.hist_hash, 0x7e34_7ba1_61c4_bef3);
    assert_eq!(d.trace_hash, 0xb5a0_c950_fe1e_8801);
    assert_eq!(d.stash_peak, 19);
}

/// Attaching an enabled-but-retaining-nothing observability sink must
/// leave every golden byte-identical: the obs layer reads controller
/// state but never feeds back into path selection, eviction, or byte
/// accounting.
#[test]
fn goldens_unchanged_with_noop_sink_attached() {
    let d = replay_observed(golden_config(true), Obs::with_sink(Box::new(NoopSink)));
    assert_common(&d);
    assert_eq!(d.hist_hash, 0x7e34_7ba1_61c4_bef3);
    assert_eq!(d.trace_hash, 0xb5a0_c950_fe1e_8801);
    assert_eq!(d.stash_peak, 19);
}

/// Same property with the retaining ring sink: events accumulate on the
/// side, and the run itself still matches the disabled-path goldens.
#[test]
fn goldens_unchanged_with_ring_sink_attached() {
    let obs = Obs::ring(1 << 12);
    let d = replay_observed(golden_config(false), obs.clone());
    assert_common(&d);
    assert_eq!(d.hist_hash, 0x06db_69e5_5d8e_25fe);
    assert_eq!(d.trace_hash, 0xd4fb_1582_f412_add7);
    assert_eq!(d.stash_peak, 21);
    // The sink really was live for the whole replay.
    assert!(obs.event_count() > 0 || obs.dropped() > 0);
}

/// The gated per-read image verification must not change behavior when
/// enabled — it re-derives what the opaque path already computed.
#[test]
fn verify_image_is_observationally_silent() {
    let run = |verify_image: bool| {
        let cfg = OramConfig::small_for_tests(256)
            .to_builder()
            .store_payloads(true)
            .verify_image(verify_image)
            .build()
            .expect("valid golden configuration");
        let mut oram = PathOram::new(cfg, 42);
        let mut rng = Xoshiro256::seed_from(7);
        for _ in 0..500 {
            oram.try_access_block(BlockAddr(rng.next_below(256)), AccessKind::Read)
                .unwrap();
        }
        let leaves = oram.trace().observed_leaves();
        let mut h = FNV_INIT;
        for l in &leaves {
            h = fnv(h, *l);
        }
        (oram.oram_stats().bytes_moved, h)
    };
    assert_eq!(run(false), run(true));
}
