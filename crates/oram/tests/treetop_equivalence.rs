//! Behavior-identity goldens for the functional treetop cache and the
//! subtree-packed store layout.
//!
//! Treetop caching keeps the top `treetop_levels` buckets in trusted
//! on-chip memory, so a path access only serializes/encrypts/verifies
//! the off-chip suffix. That is a *physical* optimization: path
//! selection, eviction order, stash behavior and the adversary-visible
//! leaf trace must stay byte-identical to the uncached run — only the
//! DRAM byte accounting shrinks, by exactly the cached levels' share.
//! The subtree-packed layout is a pure address permutation of the
//! off-chip store and must be invisible to *every* observable.

mod common;

use common::{
    assert_golden, golden_config, replay_cfg, RunDigest, ACCESSES, GOLDEN_PAYLOADS, ORAM_SEED,
    TREE_BLOCKS,
};
use proram_mem::{AccessKind, BlockAddr};
use proram_oram::{FaultClass, FaultConfig, OramConfig, PathOram, TreeLayout};
use proram_stats::{Rng64, Xoshiro256};

/// Tree levels of the golden 256-block configuration.
const GOLDEN_LEVELS: u64 = 8;

fn treetop_config(treetop_levels: u32, layout: TreeLayout) -> OramConfig {
    golden_config(true)
        .to_builder()
        .treetop_levels(treetop_levels)
        .tree_layout(layout)
        .build()
        .expect("valid treetop configuration")
}

/// `treetop_levels = 0` with the flat layout is the pre-treetop code
/// path: it must still reproduce the seed goldens bit for bit.
#[test]
fn treetop_zero_flat_matches_the_goldens() {
    assert_golden(
        &replay_cfg(treetop_config(0, TreeLayout::Flat)),
        &GOLDEN_PAYLOADS,
    );
}

/// Treetop caching changes only the DRAM byte accounting: every logical
/// observable of the golden run — trace hash included — matches the
/// uncached digest, and `bytes_moved` shrinks by exactly the cached
/// levels' share of each path.
#[test]
fn treetop_levels_change_only_the_byte_accounting() {
    let base = replay_cfg(treetop_config(0, TreeLayout::Flat));
    for treetop in [1u32, 2] {
        let d = replay_cfg(treetop_config(treetop, TreeLayout::Flat));
        // bytes_moved is linear in the off-chip level count.
        assert_eq!(
            d.bytes_moved * GOLDEN_LEVELS,
            base.bytes_moved * (GOLDEN_LEVELS - u64::from(treetop)),
            "treetop {treetop} must save exactly its levels' bytes"
        );
        let normalized = RunDigest {
            bytes_moved: base.bytes_moved,
            ..d
        };
        assert_eq!(
            normalized, base,
            "treetop {treetop} changed a logical observable"
        );
    }
}

/// The subtree-packed layout is a bijective relabeling of the off-chip
/// store: at any packing height, every observable — byte accounting
/// included — matches the flat layout exactly.
#[test]
fn subtree_packed_layout_is_invisible_at_every_height() {
    for (treetop, heights) in [(0u32, vec![1u32, 2, 4, 8]), (2, vec![1, 2, 3, 6])] {
        let flat = replay_cfg(treetop_config(treetop, TreeLayout::Flat));
        for height in heights {
            let packed = replay_cfg(treetop_config(
                treetop,
                TreeLayout::SubtreePacked { height },
            ));
            assert_eq!(
                packed, flat,
                "subtree_packed({height}) at treetop {treetop} diverged from flat"
            );
        }
    }
}

/// The encrypted store holds exactly the off-chip buckets — the treetop
/// has no ciphertext image, so neither the fault injector nor any other
/// store-level adversary can reach it.
#[test]
fn store_holds_only_off_chip_buckets() {
    for treetop in [0u32, 1, 2, 4] {
        let oram = PathOram::new(treetop_config(treetop, TreeLayout::Flat), ORAM_SEED);
        let layout = oram.store_layout();
        assert_eq!(layout.treetop_levels(), treetop);
        assert_eq!(
            oram.storage().expect("payloads on").num_buckets(),
            layout.num_off_chip(),
            "store must be sized to the off-chip suffix"
        );
        // Treetop hit accounting: cached levels are charged per access.
        let mut oram = oram;
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..50 {
            oram.try_access_block(BlockAddr(rng.next_below(TREE_BLOCKS)), AccessKind::Read)
                .unwrap();
        }
        let s = oram.oram_stats();
        if treetop == 0 {
            assert_eq!(s.treetop_hits, 0);
            assert_eq!(s.treetop_bytes_saved, 0);
        } else {
            assert_eq!(s.treetop_hits, s.total_path_accesses() * u64::from(treetop));
            assert!(s.treetop_bytes_saved > 0);
        }
    }
}

/// Fault sweep with a nonzero treetop: injected store corruption lands
/// only on off-chip buckets, the verify/repair machinery still detects
/// and recovers everything, and no false negatives appear.
#[test]
fn fault_sweep_recovers_with_nonzero_treetop() {
    for class in [
        FaultClass::BitFlip,
        FaultClass::TornWrite,
        FaultClass::Rollback,
    ] {
        let cfg = treetop_config(2, TreeLayout::SubtreePacked { height: 3 })
            .to_builder()
            .fault(FaultConfig::single(class, 0.05, 0xF00D))
            .build()
            .expect("valid faulty treetop configuration");
        let mut oram = PathOram::new(cfg, ORAM_SEED);
        let mut rng = Xoshiro256::seed_from(9);
        for _ in 0..ACCESSES / 4 {
            oram.try_access_block(BlockAddr(rng.next_below(TREE_BLOCKS)), AccessKind::Read)
                .expect("injected faults must be recovered");
        }
        let f = oram.fault_stats();
        assert!(f.total_injected() > 0, "{}: nothing injected", class.name());
        assert_eq!(f.undetected, 0, "{}: false negatives", class.name());
        assert!(f.recovered > 0, "{}: nothing repaired", class.name());
        oram.audit_full();
    }
}
