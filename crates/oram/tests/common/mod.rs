//! Shared golden-workload fixture for the behavior-identity tests.
//!
//! The golden workload is: a 256-block tree, ORAM seed 42, 2000 uniform
//! reads drawn from a Xoshiro stream seeded with 7. Every observable of
//! that run — stats counters, stash-occupancy histogram, physical access
//! trace, stash peak — was captured on the seed implementation and is
//! pinned here as constants. `hotpath_equivalence.rs` asserts the
//! allocation-free hot path reproduces them; `parallel_determinism.rs`
//! asserts the crypto worker pool reproduces them at every thread count.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use proram_mem::{AccessKind, BlockAddr};
use proram_obs::Obs;
use proram_oram::{OramConfig, PathOram};
use proram_stats::{Rng64, Xoshiro256};

/// Data blocks in the golden tree.
pub const TREE_BLOCKS: u64 = 256;
/// Seed the golden `PathOram` is constructed with.
pub const ORAM_SEED: u64 = 42;
/// Seed of the Xoshiro stream driving the golden accesses.
pub const WORKLOAD_SEED: u64 = 7;
/// Uniform reads the golden workload performs.
pub const ACCESSES: u64 = 2000;

/// FNV-1a-style fold used when the goldens were captured.
pub const FNV_INIT: u64 = 0xcbf29ce484222325;

/// One FNV-1a-style folding step.
pub fn fnv(acc: u64, v: u64) -> u64 {
    (acc ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

/// Every observable of one golden replay. Two replays that agree on all
/// fields produced byte-identical adversary-visible behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDigest {
    /// Logical accesses the controller served.
    pub logical: u64,
    /// Data-tree path accesses.
    pub data_paths: u64,
    /// Position-map path accesses.
    pub posmap_paths: u64,
    /// Background evictions.
    pub background: u64,
    /// Path bytes moved.
    pub bytes_moved: u64,
    /// FNV fold of the stash-occupancy histogram.
    pub hist_hash: u64,
    /// Total samples in the histogram.
    pub hist_total: u64,
    /// FNV fold of the observed leaf trace.
    pub trace_hash: u64,
    /// Events the trace retained.
    pub trace_events: usize,
    /// Events the trace dropped.
    pub trace_dropped: u64,
    /// All-time stash peak.
    pub stash_peak: usize,
    /// Path-scratch reuses (allocation-free round trips).
    pub allocs_avoided: u64,
}

/// The goldens that differ between the payloads-on and payloads-off
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Goldens {
    /// Expected [`RunDigest::hist_hash`].
    pub hist_hash: u64,
    /// Expected [`RunDigest::trace_hash`].
    pub trace_hash: u64,
    /// Expected [`RunDigest::stash_peak`].
    pub stash_peak: usize,
}

/// Goldens of the golden run with `store_payloads(true)`.
pub const GOLDEN_PAYLOADS: Goldens = Goldens {
    hist_hash: 0x7e34_7ba1_61c4_bef3,
    trace_hash: 0xb5a0_c950_fe1e_8801,
    stash_peak: 19,
};

/// Goldens of the golden run with `store_payloads(false)`.
pub const GOLDEN_OPAQUE: Goldens = Goldens {
    hist_hash: 0x06db_69e5_5d8e_25fe,
    trace_hash: 0xd4fb_1582_f412_add7,
    stash_peak: 21,
};

/// The golden configuration with payloads on or off.
pub fn golden_config(store_payloads: bool) -> OramConfig {
    OramConfig::small_for_tests(TREE_BLOCKS)
        .to_builder()
        .store_payloads(store_payloads)
        .build()
        .expect("valid golden configuration")
}

/// Replays the golden workload under the default configuration.
pub fn replay(store_payloads: bool) -> RunDigest {
    replay_cfg(golden_config(store_payloads))
}

/// Replays the golden workload under `cfg` with observability detached.
pub fn replay_cfg(cfg: OramConfig) -> RunDigest {
    replay_observed(cfg, Obs::disabled())
}

/// Replays the golden workload under `cfg` with `obs` attached and
/// digests every observable.
pub fn replay_observed(cfg: OramConfig, obs: Obs) -> RunDigest {
    let mut oram = PathOram::new(cfg, ORAM_SEED);
    oram.attach_obs_handle(obs);
    let mut rng = Xoshiro256::seed_from(WORKLOAD_SEED);
    for _ in 0..ACCESSES {
        oram.try_access_block(BlockAddr(rng.next_below(TREE_BLOCKS)), AccessKind::Read)
            .unwrap();
    }
    digest_state(&oram)
}

/// Digests every observable of a finished replay (for tests that drive
/// the workload themselves, e.g. with mid-run injection).
pub fn digest_state(oram: &PathOram) -> RunDigest {
    let s = oram.oram_stats();
    let h = oram.stash().occupancy_histogram();
    let mut hist_hash = FNV_INIT;
    for (v, c) in h.iter() {
        hist_hash = fnv(fnv(hist_hash, v), c);
    }
    let leaves = oram.trace().observed_leaves();
    let mut trace_hash = FNV_INIT;
    for l in &leaves {
        trace_hash = fnv(trace_hash, *l);
    }
    RunDigest {
        logical: s.logical_accesses,
        data_paths: s.data_path_accesses,
        posmap_paths: s.posmap_path_accesses,
        background: s.background_evictions,
        bytes_moved: s.bytes_moved,
        hist_hash,
        hist_total: h.total(),
        trace_hash,
        trace_events: leaves.len(),
        trace_dropped: oram.trace().dropped(),
        stash_peak: oram.stash().peak(),
        allocs_avoided: oram.allocs_avoided(),
    }
}

/// Asserts the goldens shared by every configuration of the golden run.
pub fn assert_common(d: &RunDigest) {
    assert_eq!(d.logical, 2000);
    assert_eq!(d.data_paths, 2000);
    assert_eq!(d.posmap_paths, 2210);
    assert_eq!(d.background, 0);
    assert_eq!(d.bytes_moved, 38_799_360);
    assert_eq!(d.hist_total, 4210);
    assert_eq!(d.trace_events, 4210);
    assert_eq!(d.trace_dropped, 0);
    // Every one of the 4210 path accesses reuses the scratch buffers
    // (initialization warms them before the first access).
    assert_eq!(d.allocs_avoided, 4210);
}

/// Asserts [`assert_common`] plus the configuration-specific goldens.
pub fn assert_golden(d: &RunDigest, g: &Goldens) {
    assert_common(d);
    assert_eq!(d.hist_hash, g.hist_hash);
    assert_eq!(d.trace_hash, g.trace_hash);
    assert_eq!(d.stash_peak, g.stash_peak);
}
