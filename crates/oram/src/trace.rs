//! The adversary's view of the ORAM.
//!
//! An adversary watching the memory bus sees which physical locations are
//! touched — for Path ORAM, which root-to-leaf path each access reads and
//! writes — and the (re-encrypted) ciphertexts, but nothing else. The
//! security tests replay this trace and check the distributional claims of
//! Section 4.6: observed leaves are uniform, independent, and carry no
//! information about merging/breaking or the logical access pattern.

use crate::addr::Leaf;

/// One adversary-observable event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysEvent {
    /// A path was read and written back (a normal or super-block access —
    /// indistinguishable by design).
    PathAccess(Leaf),
    /// A dummy access (background eviction or periodic filler). On the
    /// wire this is *identical* to `PathAccess`; the distinction exists
    /// only for test assertions that want ground truth. Security tests
    /// must treat both variants as the same observable.
    DummyAccess(Leaf),
}

impl PhysEvent {
    /// The observed leaf, regardless of ground-truth kind.
    pub fn leaf(&self) -> Leaf {
        match *self {
            PhysEvent::PathAccess(l) | PhysEvent::DummyAccess(l) => l,
        }
    }
}

/// Bounded recorder of physical events.
///
/// Disabled by default (the timing experiments generate hundreds of
/// thousands of accesses); the security tests enable it with a capacity.
///
/// # Examples
///
/// ```
/// use proram_oram::{Leaf, PhysEvent, TraceRecorder};
///
/// let mut rec = TraceRecorder::enabled(10);
/// rec.record(PhysEvent::PathAccess(Leaf(3)));
/// assert_eq!(rec.events().len(), 1);
/// assert_eq!(rec.observed_leaves(), vec![3]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<PhysEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl TraceRecorder {
    /// A disabled recorder (records nothing).
    pub fn disabled() -> Self {
        TraceRecorder::default()
    }

    /// A recorder keeping up to `capacity` events; later events are
    /// counted but dropped.
    pub fn enabled(capacity: usize) -> Self {
        TraceRecorder {
            events: Vec::new(),
            capacity,
            enabled: true,
            dropped: 0,
        }
    }

    /// `true` if events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    pub fn record(&mut self, event: PhysEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[PhysEvent] {
        &self.events
    }

    /// Number of events that arrived after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The observed leaf sequence as raw labels — the input to the
    /// uniformity and independence statistics.
    pub fn observed_leaves(&self) -> Vec<u64> {
        self.events.iter().map(|e| u64::from(e.leaf().0)).collect()
    }

    /// Discards recorded events (keeps the enabled state).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut r = TraceRecorder::disabled();
        r.record(PhysEvent::PathAccess(Leaf(1)));
        assert!(r.events().is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn capacity_bound_respected() {
        let mut r = TraceRecorder::enabled(2);
        for i in 0..5 {
            r.record(PhysEvent::DummyAccess(Leaf(i)));
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn leaf_extraction_ignores_kind() {
        assert_eq!(PhysEvent::PathAccess(Leaf(4)).leaf(), Leaf(4));
        assert_eq!(PhysEvent::DummyAccess(Leaf(4)).leaf(), Leaf(4));
    }

    #[test]
    fn observed_leaves_sequence() {
        let mut r = TraceRecorder::enabled(10);
        r.record(PhysEvent::PathAccess(Leaf(1)));
        r.record(PhysEvent::DummyAccess(Leaf(2)));
        assert_eq!(r.observed_leaves(), vec![1, 2]);
    }

    #[test]
    fn clear_resets() {
        let mut r = TraceRecorder::enabled(1);
        r.record(PhysEvent::PathAccess(Leaf(1)));
        r.record(PhysEvent::PathAccess(Leaf(2)));
        r.clear();
        assert!(r.events().is_empty());
        assert_eq!(r.dropped(), 0);
        assert!(r.is_enabled());
    }
}
