//! Position-map entries.
//!
//! Each position-map block stores the leaf labels of
//! `entries_per_block` consecutive child blocks, "along with their merge
//! and break bits" (paper Section 4.1, Figure 4). The prefetch bit is also
//! kept here (Section 4.5.1: "The merge bit, break bit and the prefetch
//! bit are stored in the Pos-Map blocks").
//!
//! The bits are opaque to this crate; the super-block schemes in
//! `proram-core` reconstruct merge/break counters from them. Because the
//! paper leaves exact counter widths underspecified (a size-2 super
//! block's break counter must hold the initial value 4 in 2 physical
//! bits), we store a small signed counter field per entry and let the
//! scheme clamp it to a configurable width — see DESIGN.md, "Design
//! liberties".

use crate::addr::Leaf;

/// One position-map entry: the leaf label of a child block plus the
/// per-block bits used by the dynamic super-block scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PosEntry {
    /// Leaf the child block is mapped to.
    pub leaf: Leaf,
    /// Merge-counter contribution of this block (paper's merge bits).
    pub merge: i16,
    /// Break-counter contribution of this block (paper's break bits).
    pub brk: i16,
    /// Set while the block sits in the LLC as an unconsumed prefetch.
    pub prefetch: bool,
}

impl PosEntry {
    /// Creates an entry mapping the child to `leaf`, all bits clear.
    pub fn new(leaf: Leaf) -> Self {
        PosEntry {
            leaf,
            merge: 0,
            brk: 0,
            prefetch: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clears_bits() {
        let e = PosEntry::new(Leaf(12));
        assert_eq!(e.leaf, Leaf(12));
        assert_eq!(e.merge, 0);
        assert_eq!(e.brk, 0);
        assert!(!e.prefetch);
    }

    #[test]
    fn default_is_leaf_zero() {
        let e = PosEntry::default();
        assert_eq!(e.leaf, Leaf(0));
    }
}
