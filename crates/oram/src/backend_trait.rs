//! The primitive interface super-block schemes build on.
//!
//! Paper Section 6.1: "other ORAM schemes (e.g., \[27\]) have similar
//! binary tree structure to Path ORAM. After adding background eviction,
//! these ORAM schemes can also benefit from using super blocks. In
//! general, all ORAM schemes should be able to take advantage of super
//! blocks as long as they have support for background eviction."
//!
//! [`OramBackend`] captures exactly the primitives the super-block
//! controller in `proram-core` needs: position-map access, a
//! read-path/write-path pair, stash access, remapping and background
//! eviction. [`crate::PathOram`] implements it natively; so does the
//! Shi-style tree ORAM in [`crate::shi`], which is how the Section 6.1
//! claim is reproduced.

use crate::addr::{AddressSpace, Leaf};
use crate::block::Block;
use crate::controller::{OramStats, PathKind};
use crate::posmap::PosEntry;
use proram_mem::BlockAddr;

/// A tree-based ORAM offering the primitives super-block schemes need.
pub trait OramBackend {
    /// The unified block-address-space layout.
    fn space(&self) -> &AddressSpace;

    /// Ensures the position-map entries covering `child`'s group are
    /// on-chip; returns the tree accesses spent doing so.
    fn resolve_posmap(&mut self, child: BlockAddr) -> u64;

    /// Borrows `child`'s position-map entry (requires a prior resolve).
    fn entry(&self, child: BlockAddr) -> &PosEntry;

    /// Mutably borrows `child`'s position-map entry.
    fn entry_mut(&mut self, child: BlockAddr) -> &mut PosEntry;

    /// Read phase of one access: brings every real block that the access
    /// may serve into the stash, recording the adversary-visible event.
    fn read_path_into_stash(&mut self, leaf: Leaf, kind: PathKind);

    /// Write phase of one access, paired with the preceding read.
    fn write_path_from_stash(&mut self, leaf: Leaf);

    /// Whether `addr` currently sits in the stash.
    fn stash_contains(&self, addr: BlockAddr) -> bool;

    /// Mutably borrows a stashed block.
    fn stash_block_mut(&mut self, addr: BlockAddr) -> Option<&mut Block>;

    /// Draws a fresh uniform leaf.
    fn random_leaf(&mut self) -> Leaf;

    /// One background eviction (a dummy access on the wire).
    fn background_evict(&mut self);

    /// Background-evicts until the stash is under its trigger; returns
    /// the evictions run.
    fn drain_background(&mut self) -> u64;

    /// Cycles one physical tree access costs.
    fn path_cycles(&self) -> u64;

    /// Statistics so far.
    fn oram_stats(&self) -> OramStats;

    /// Short name of the underlying ORAM ("path", "shi", ...).
    fn backend_name(&self) -> &'static str;
}
