//! The primitive interface super-block schemes build on.
//!
//! Paper Section 6.1: "other ORAM schemes (e.g., \[27\]) have similar
//! binary tree structure to Path ORAM. After adding background eviction,
//! these ORAM schemes can also benefit from using super blocks. In
//! general, all ORAM schemes should be able to take advantage of super
//! blocks as long as they have support for background eviction."
//!
//! [`OramBackend`] captures exactly the primitives the super-block
//! controller in `proram-core` needs: position-map access, a
//! read-path/write-path pair, stash access, remapping and background
//! eviction. [`crate::PathOram`] implements it natively; so does the
//! Shi-style tree ORAM in [`crate::shi`], which is how the Section 6.1
//! claim is reproduced.

use crate::addr::{AddressSpace, Leaf};
use crate::block::Block;
use crate::controller::{OramStats, PathKind};
use crate::crash::RecoveryReport;
use crate::error::OramError;
use crate::posmap::PosEntry;
use proram_mem::{BlockAddr, FaultStats};
use proram_obs::Obs;

/// A tree-based ORAM offering the primitives super-block schemes need.
///
/// The fallible methods return [`OramError`] for faults the backend
/// detected but could not recover from (corruption or rollback with
/// recovery disabled, exhausted transient retries, stash overflow past the
/// hard capacity); backends with recovery enabled repair in place and
/// return `Ok`.
pub trait OramBackend {
    /// The unified block-address-space layout.
    fn space(&self) -> &AddressSpace;

    /// Ensures the position-map entries covering `child`'s group are
    /// on-chip; returns the tree accesses spent doing so.
    ///
    /// # Errors
    ///
    /// Propagates unrecovered faults from the path reads.
    fn resolve_posmap(&mut self, child: BlockAddr) -> Result<u64, OramError>;

    /// Borrows `child`'s position-map entry (requires a prior resolve).
    fn entry(&self, child: BlockAddr) -> &PosEntry;

    /// Mutably borrows `child`'s position-map entry.
    fn entry_mut(&mut self, child: BlockAddr) -> &mut PosEntry;

    /// Read phase of one access: brings every real block that the access
    /// may serve into the stash, recording the adversary-visible event.
    ///
    /// # Errors
    ///
    /// Returns the detected [`OramError`] when recovery is disabled.
    fn read_path_into_stash(&mut self, leaf: Leaf, kind: PathKind) -> Result<(), OramError>;

    /// Write phase of one access, paired with the preceding read.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::Crashed`] when a store-level crash kill point
    /// fired during the write-back (the write is dropped and the caller
    /// must run recovery); backends without crash injection always return
    /// `Ok`.
    fn write_path_from_stash(&mut self, leaf: Leaf) -> Result<(), OramError>;

    /// Opens the crash-consistent commit transaction of one composite
    /// access (DESIGN.md section 15), so the scheme layer's multi-path
    /// accesses roll back or replay as one unit. No-op for backends
    /// without a commit protocol (the default) and for backends whose
    /// crash injection is disabled.
    fn txn_begin(&mut self) {}

    /// Commits the transaction opened by [`OramBackend::txn_begin`].
    ///
    /// # Errors
    ///
    /// [`OramError::Crashed`] when a kill point fires inside the commit;
    /// the caller must run [`OramBackend::recover_crash`].
    fn txn_commit(&mut self) -> Result<(), OramError> {
        Ok(())
    }

    /// Recovers after an access returned [`OramError::Crashed`]: the
    /// backend restores its last consistent state and reports what
    /// recovery did. `None` (the default) means the backend has no commit
    /// protocol and the caller must treat the crash as unrecovered.
    fn recover_crash(&mut self) -> Option<RecoveryReport> {
        None
    }

    /// Whether `addr` currently sits in the stash.
    fn stash_contains(&self, addr: BlockAddr) -> bool;

    /// Mutably borrows a stashed block.
    fn stash_block_mut(&mut self, addr: BlockAddr) -> Option<&mut Block>;

    /// Draws a fresh uniform leaf.
    fn random_leaf(&mut self) -> Leaf;

    /// One background eviction (a dummy access on the wire).
    ///
    /// # Errors
    ///
    /// Propagates unrecovered faults from the path read.
    fn background_evict(&mut self) -> Result<(), OramError>;

    /// Background-evicts until the stash is under its trigger; returns
    /// the evictions run.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::StashOverflow`] if even emergency eviction
    /// cannot respect a configured hard capacity, or propagates
    /// unrecovered path-read faults.
    fn drain_background(&mut self) -> Result<u64, OramError>;

    /// Cycles one physical tree access costs.
    fn path_cycles(&self) -> u64;

    /// Cycles one physical tree access costs with the fetch pipeline
    /// applied. Equal to [`OramBackend::path_cycles`] for backends
    /// without a bank-aware fetch stage (the default), and smaller when
    /// bucket reads overlap across banks.
    fn fetch_cycles(&self) -> u64 {
        self.path_cycles()
    }

    /// Statistics so far.
    fn oram_stats(&self) -> OramStats;

    /// Fault injection/detection/recovery counters; all-zero for backends
    /// without fault injection (the default).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Short name of the underlying ORAM ("path", "shi", ...).
    fn backend_name(&self) -> &'static str;

    /// Attaches an observability handle; backends without instrumentation
    /// ignore it (the default).
    fn attach_obs(&mut self, _obs: Obs) {}
}
