//! First-principles Path ORAM timing.
//!
//! "The 16 GB/s is calculated assuming a 1 GHz chip with 128 pins and pins
//! are the bottleneck of the data transfer" (paper Section 5.1). A path
//! access reads and writes `levels * Z` blocks, so its latency is the
//! bytes moved divided by the pin bandwidth, plus a fixed controller
//! overhead (decryption pipeline, DRAM command overhead).

/// Timing parameters for one ORAM tree access.
///
/// # Examples
///
/// ```
/// use proram_oram::OramTiming;
///
/// let t = OramTiming::default();
/// // 2 (read+write) * 26 levels * Z=3 * (128+16) bytes / 16 B-per-cycle.
/// assert_eq!(t.path_cycles(26, 3), 1404 + 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OramTiming {
    /// Pin bandwidth in bytes per cycle (16 GB/s at 1 GHz = 16).
    pub bytes_per_cycle: u32,
    /// Data payload bytes per block (the cache-line size).
    pub block_bytes: u32,
    /// Per-block metadata moved on the wire (address + leaf + IV share).
    pub meta_bytes: u32,
    /// Fixed per-path-access overhead: decryption pipeline fill, DRAM
    /// command/row overhead.
    pub fixed_overhead_cycles: u32,
    /// Multiplier on the bytes-moved term modelling achievable DRAM
    /// efficiency (1.0 = pure pin-bandwidth limit). The paper's quoted
    /// 2364-cycle default latency corresponds to a derate of about 1.6
    /// over the pure-pin number; see EXPERIMENTS.md.
    pub bandwidth_derate: f64,
}

impl OramTiming {
    /// Cycles for one full path access (read + write of every bucket on
    /// the path) of a tree with `levels` levels and `z` blocks per bucket.
    pub fn path_cycles(&self, levels: u32, z: usize) -> u64 {
        let bytes =
            2u64 * u64::from(levels) * z as u64 * u64::from(self.block_bytes + self.meta_bytes);
        let transfer =
            (bytes as f64 * self.bandwidth_derate / f64::from(self.bytes_per_cycle)).ceil() as u64;
        transfer + u64::from(self.fixed_overhead_cycles)
    }

    /// Bytes moved on the memory bus by one path access.
    pub fn path_bytes(&self, levels: u32, z: usize) -> u64 {
        2u64 * u64::from(levels) * z as u64 * u64::from(self.block_bytes + self.meta_bytes)
    }

    /// Derate-adjusted wire bytes one bucket moves per path access (read
    /// and write-back halves combined) — the per-bucket transfer size the
    /// bank-aware fetch scheduler overlaps across banks. Summed over the
    /// off-chip levels this reproduces the transfer term of
    /// [`OramTiming::path_cycles`].
    pub fn bucket_wire_bytes(&self, z: usize) -> u64 {
        let bytes = 2u64 * z as u64 * u64::from(self.block_bytes + self.meta_bytes);
        (bytes as f64 * self.bandwidth_derate).ceil() as u64
    }

    /// Timing with the paper's Table 1 parameters and a derate calibrated
    /// so the full-scale (8 GB, 26-level, Z=3) access costs the paper's
    /// 2364 cycles.
    pub fn paper_calibrated() -> Self {
        OramTiming {
            bandwidth_derate: 1.64,
            fixed_overhead_cycles: 62,
            ..OramTiming::default()
        }
    }

    /// Timing with a different line size (Fig 14 sweep).
    pub fn with_block_bytes(mut self, block_bytes: u32) -> Self {
        self.block_bytes = block_bytes;
        self
    }

    /// Timing with a different pin bandwidth in GB/s at 1 GHz (Fig 11
    /// sweep: 4, 8, 16).
    pub fn with_bandwidth_gbps(mut self, gbps: u32) -> Self {
        self.bytes_per_cycle = gbps;
        self
    }
}

impl Default for OramTiming {
    fn default() -> Self {
        OramTiming {
            bytes_per_cycle: 16,
            block_bytes: 128,
            meta_bytes: 16,
            fixed_overhead_cycles: 60,
            bandwidth_derate: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_formula() {
        let t = OramTiming::default();
        // 2 * 20 * 3 * 144 / 16 = 1080, + 60 overhead.
        assert_eq!(t.path_cycles(20, 3), 1140);
        assert_eq!(t.path_bytes(20, 3), 17_280);
    }

    #[test]
    fn paper_scale_calibration() {
        // Full-scale tree: 8 GB / 128 B = 2^26 data blocks; with the
        // posmap regions the unified tree needs 2^25 leaves => 26 levels.
        let t = OramTiming::paper_calibrated();
        let cycles = t.path_cycles(26, 3);
        let err = (cycles as f64 - 2364.0).abs() / 2364.0;
        assert!(
            err < 0.02,
            "calibrated latency {cycles} not within 2% of 2364"
        );
    }

    #[test]
    fn bucket_wire_bytes_matches_path_formula() {
        let t = OramTiming::default();
        // 2 * 3 * 144 = 864 bytes per bucket at derate 1.0.
        assert_eq!(t.bucket_wire_bytes(3), 864);
        assert_eq!(t.bucket_wire_bytes(3) * 20, t.path_bytes(20, 3));
        let cal = OramTiming::paper_calibrated();
        assert_eq!(cal.bucket_wire_bytes(3), (864.0f64 * 1.64).ceil() as u64);
    }

    #[test]
    fn z4_costs_more_than_z3() {
        let t = OramTiming::default();
        assert!(t.path_cycles(20, 4) > t.path_cycles(20, 3));
    }

    #[test]
    fn halving_bandwidth_roughly_doubles_transfer() {
        let t16 = OramTiming::default();
        let t8 = OramTiming::default().with_bandwidth_gbps(8);
        let base = t16.path_cycles(20, 3) - 60;
        assert_eq!(t8.path_cycles(20, 3) - 60, base * 2);
    }

    #[test]
    fn block_size_scales_bytes() {
        let t64 = OramTiming::default().with_block_bytes(64);
        let t256 = OramTiming::default().with_block_bytes(256);
        assert!(t64.path_bytes(20, 3) < t256.path_bytes(20, 3));
    }
}
