//! Seeded fault injection for the encrypted DRAM image.
//!
//! The PrORAM threat model places the ORAM tree in untrusted memory; this
//! module makes that adversary concrete. A [`FaultyStore`] wraps the raw
//! byte backing of [`crate::EncryptedStore`] and, driven by its own
//! deterministic RNG (never the ORAM's — a zero-rate injector is
//! observationally silent), injects four fault classes:
//!
//! * **Bit flips** ([`FaultClass::BitFlip`]): one random ciphertext byte
//!   of a just-written bucket is XOR-ed with a random nonzero mask.
//! * **Torn writes** ([`FaultClass::TornWrite`]): a bucket write is only
//!   partially applied — a random suffix of the previous image survives.
//! * **Rollback** ([`FaultClass::Rollback`]): a bucket write is dropped
//!   entirely, replaying the previously valid (authentic!) ciphertext.
//! * **Transient read failures** ([`FaultClass::Transient`]): a bucket
//!   read fails and must be retried, with exponential backoff, up to the
//!   configured retry budget.
//!
//! The store also keeps the ground truth needed to prove *zero false
//! negatives*: every injected corruption is remembered as pending until
//! either a read detects it (clearing it) or a fresh write overwrites it
//! (counted as masked). A clean read of a bucket with a pending fault
//! increments [`proram_mem::FaultStats::undetected`] — the counter the
//! fault-sweep experiment and CI assert to be zero.

use proram_mem::FaultStats;
use proram_stats::{Rng64, Xoshiro256};

use crate::error::OramError;

/// The injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A single ciphertext byte of a written bucket is corrupted.
    BitFlip,
    /// A bucket write is torn: only a prefix of the new image lands.
    TornWrite,
    /// A bucket write is dropped, rolling the bucket back to its previous
    /// (authentic) image.
    Rollback,
    /// A bucket read transiently fails and must be retried.
    Transient,
}

impl FaultClass {
    /// All classes, for sweeps.
    pub const ALL: [FaultClass; 4] = [
        FaultClass::BitFlip,
        FaultClass::TornWrite,
        FaultClass::Rollback,
        FaultClass::Transient,
    ];

    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::BitFlip => "bit-flip",
            FaultClass::TornWrite => "torn-write",
            FaultClass::Rollback => "rollback",
            FaultClass::Transient => "transient",
        }
    }
}

/// Configuration of the fault injector.
///
/// Write-fault rates (`bit_flip_rate`, `torn_write_rate`, `rollback_rate`)
/// are per bucket *write*; `transient_rate` is per bucket *read attempt*.
/// All-zero rates make the injector a deterministic no-op: the injection
/// RNG is separate from the ORAM's, so enabling a zero-rate injector does
/// not perturb any ORAM behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the injector's own RNG.
    pub seed: u64,
    /// Probability a bucket write gets one ciphertext byte flipped.
    pub bit_flip_rate: f64,
    /// Probability a bucket write is torn (random suffix of the old image
    /// survives).
    pub torn_write_rate: f64,
    /// Probability a bucket write is dropped entirely (rollback replay).
    pub rollback_rate: f64,
    /// Probability one bucket read attempt fails transiently.
    pub transient_rate: f64,
    /// Retries allowed after the first failed read attempt before the
    /// failure is reported as [`OramError::Transient`].
    pub retry_budget: u32,
    /// Backoff cost (cycles) of the first retry; each further retry of the
    /// same read doubles it.
    pub retry_backoff_cycles: u64,
}

impl FaultConfig {
    /// An injector with every rate zero — structurally present but
    /// behaviorally silent.
    pub fn silent(seed: u64) -> Self {
        FaultConfig {
            seed,
            bit_flip_rate: 0.0,
            torn_write_rate: 0.0,
            rollback_rate: 0.0,
            transient_rate: 0.0,
            retry_budget: 3,
            retry_backoff_cycles: 64,
        }
    }

    /// An injector exercising a single fault class at `rate`.
    pub fn single(class: FaultClass, rate: f64, seed: u64) -> Self {
        let mut cfg = FaultConfig::silent(seed);
        match class {
            FaultClass::BitFlip => cfg.bit_flip_rate = rate,
            FaultClass::TornWrite => cfg.torn_write_rate = rate,
            FaultClass::Rollback => cfg.rollback_rate = rate,
            FaultClass::Transient => cfg.transient_rate = rate,
        }
        cfg
    }

    /// Checks rates are probabilities and write-fault rates are mutually
    /// exclusive per write.
    ///
    /// # Panics
    ///
    /// Panics on a rate outside `[0, 1]` or write rates summing past 1.
    pub fn validate(&self) {
        for (name, r) in [
            ("bit_flip_rate", self.bit_flip_rate),
            ("torn_write_rate", self.torn_write_rate),
            ("rollback_rate", self.rollback_rate),
            ("transient_rate", self.transient_rate),
        ] {
            assert!((0.0..=1.0).contains(&r), "{name} {r} outside [0, 1]");
        }
        assert!(
            self.bit_flip_rate + self.torn_write_rate + self.rollback_rate <= 1.0,
            "write-fault rates must sum to at most 1"
        );
    }

    fn write_rate(&self) -> f64 {
        self.bit_flip_rate + self.torn_write_rate + self.rollback_rate
    }
}

/// The fault-injecting byte backing of an [`crate::EncryptedStore`].
#[derive(Debug, Clone)]
pub struct FaultyStore {
    data: Vec<u8>,
    bucket_bytes: usize,
    cfg: FaultConfig,
    rng: Xoshiro256,
    /// Ground truth: the injected-and-not-yet-resolved fault per bucket.
    pending: Vec<Option<FaultClass>>,
    /// Pre-write image of the bucket between `begin_write` and
    /// `commit_write` (torn writes and rollbacks restore from it).
    old: Vec<u8>,
    stats: FaultStats,
}

impl FaultyStore {
    /// Wraps an existing byte image of `data.len() / bucket_bytes` buckets.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `data` is not a whole
    /// number of buckets.
    pub fn new(data: Vec<u8>, bucket_bytes: usize, cfg: FaultConfig) -> Self {
        cfg.validate();
        assert!(bucket_bytes > 0, "bucket size must be positive");
        assert_eq!(data.len() % bucket_bytes, 0, "partial bucket in image");
        let num_buckets = data.len() / bucket_bytes;
        let rng = Xoshiro256::seed_from(cfg.seed);
        FaultyStore {
            data,
            bucket_bytes,
            cfg,
            rng,
            pending: vec![None; num_buckets],
            old: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// The injector configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Injection/detection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The raw byte image (adversary-visible ciphertext).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Direct mutable access for test-driven tampering; bypasses the
    /// injection bookkeeping.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Uniform draw in `[0, 1)` from the injector RNG.
    fn next_f64(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn bucket_range(&self, index: usize) -> std::ops::Range<usize> {
        index * self.bucket_bytes..(index + 1) * self.bucket_bytes
    }

    /// Starts a bucket write: snapshots the previous image (the rollback /
    /// torn-write source) and returns the writable bucket slice. A fault
    /// still pending on this bucket is masked by the overwrite.
    pub fn begin_write(&mut self, index: usize) -> &mut [u8] {
        if self.pending[index].take().is_some() {
            self.stats.masked_by_overwrite += 1;
        }
        let range = self.bucket_range(index);
        self.old.clear();
        self.old.extend_from_slice(&self.data[range.clone()]);
        &mut self.data[range]
    }

    /// Finishes the bucket write begun by [`FaultyStore::begin_write`],
    /// possibly injecting one write fault.
    pub fn commit_write(&mut self, index: usize) {
        if self.cfg.write_rate() <= 0.0 {
            return;
        }
        let r = self.next_f64();
        let c1 = self.cfg.bit_flip_rate;
        let c2 = c1 + self.cfg.torn_write_rate;
        let c3 = c2 + self.cfg.rollback_rate;
        let range = self.bucket_range(index);
        if r < c1 {
            let off = self.rng.next_below(self.bucket_bytes as u64) as usize;
            let mask = (self.rng.next_below(255) + 1) as u8;
            self.data[range.start + off] ^= mask;
            self.pending[index] = Some(FaultClass::BitFlip);
            self.stats.injected_bit_flips += 1;
        } else if r < c2 {
            // Tear: the write reached only the first `split` bytes; the
            // rest keeps the previous image.
            let split = 1 + self.rng.next_below(self.bucket_bytes as u64 - 1) as usize;
            let dst = &mut self.data[range.start + split..range.end];
            let src = &self.old[split..];
            if dst != src {
                dst.copy_from_slice(src);
                self.pending[index] = Some(FaultClass::TornWrite);
                self.stats.injected_torn_writes += 1;
            }
            // If old and new ciphertext agree past the split the tear is a
            // complete write — no fault to account.
        } else if r < c3 {
            let dst = &mut self.data[range];
            if dst != &self.old[..] {
                dst.copy_from_slice(&self.old);
                self.pending[index] = Some(FaultClass::Rollback);
                self.stats.injected_rollbacks += 1;
            }
        }
    }

    /// Gate in front of one authenticated bucket read: draws transient
    /// failures and retries (with exponential backoff, charged to
    /// [`FaultStats::backoff_cycles`]) up to the retry budget.
    ///
    /// # Errors
    ///
    /// Returns the number of attempts performed when the budget is
    /// exhausted; the caller reports [`OramError::Transient`].
    pub fn read_gate(&mut self) -> Result<(), u32> {
        if self.cfg.transient_rate <= 0.0 {
            return Ok(());
        }
        let max_attempts = 1 + self.cfg.retry_budget;
        let mut attempts = 0u32;
        while attempts < max_attempts {
            attempts += 1;
            if self.next_f64() >= self.cfg.transient_rate {
                if attempts > 1 {
                    self.stats.transient_retries += u64::from(attempts - 1);
                    self.stats.recovered += 1;
                }
                return Ok(());
            }
            self.stats.injected_transients += 1;
            // Exponential backoff before the next attempt. Doubling is
            // capped with saturating arithmetic: a large base cost times a
            // deep retry (the shift alone caps at 2^16) must clamp to
            // u64::MAX, not wrap, so latency accounting stays monotone at
            // extreme retry budgets.
            let doubling = 1u64 << (attempts - 1).min(16);
            let backoff = self.cfg.retry_backoff_cycles.saturating_mul(doubling);
            self.stats.backoff_cycles = self.stats.backoff_cycles.saturating_add(backoff);
        }
        self.stats.transient_retries += u64::from(max_attempts - 1);
        Err(max_attempts)
    }

    /// Records that a read of bucket `index` detected `err`, resolving any
    /// pending injected fault there.
    pub fn note_detected(&mut self, index: usize, err: &OramError) {
        match err {
            OramError::Integrity { .. } => self.stats.detected_integrity += 1,
            OramError::Rollback { .. } => self.stats.detected_rollback += 1,
            _ => {}
        }
        self.pending[index] = None;
    }

    /// Records that a full authenticated read of bucket `index` passed. A
    /// pending injected fault surviving such a read is a false negative.
    pub fn note_clean_read(&mut self, index: usize) {
        if self.pending[index].take().is_some() {
            self.stats.undetected += 1;
        }
    }

    /// Consumes the wrapper, returning the raw image.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(cfg: FaultConfig) -> FaultyStore {
        FaultyStore::new(vec![0u8; 4 * 32], 32, cfg)
    }

    #[test]
    fn silent_injector_never_mutates() {
        let mut s = store(FaultConfig::silent(1));
        for _ in 0..100 {
            let out = s.begin_write(2);
            out.fill(0xAB);
            s.commit_write(2);
            assert!(s.read_gate().is_ok());
        }
        assert_eq!(s.stats(), FaultStats::default());
        assert!(s.bytes()[2 * 32..3 * 32].iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn bit_flips_change_exactly_one_byte() {
        let mut s = store(FaultConfig::single(FaultClass::BitFlip, 1.0, 7));
        s.begin_write(1).fill(0x55);
        s.commit_write(1);
        let changed = s.bytes()[32..64].iter().filter(|&&b| b != 0x55).count();
        assert_eq!(changed, 1);
        assert_eq!(s.stats().injected_bit_flips, 1);
    }

    #[test]
    fn rollback_restores_previous_image() {
        let mut s = store(FaultConfig::single(FaultClass::Rollback, 1.0, 7));
        // First write: rolled back to the all-zero initial image.
        s.begin_write(0).fill(0x11);
        s.commit_write(0);
        assert!(s.bytes()[..32].iter().all(|&b| b == 0));
        assert_eq!(s.stats().injected_rollbacks, 1);
    }

    #[test]
    fn torn_write_keeps_a_prefix_of_the_new_image() {
        let mut s = store(FaultConfig::single(FaultClass::TornWrite, 1.0, 3));
        s.begin_write(0).fill(0x22);
        s.commit_write(0);
        s.begin_write(0).fill(0x33);
        s.commit_write(0);
        let bucket = &s.bytes()[..32];
        assert_eq!(bucket[0], 0x33, "write must start applying");
        assert!(
            bucket.iter().any(|&b| b != 0x33),
            "a suffix of the old image must survive"
        );
    }

    #[test]
    fn detection_clears_pending_and_clean_read_counts_misses() {
        let mut s = store(FaultConfig::single(FaultClass::BitFlip, 1.0, 9));
        s.begin_write(0).fill(1);
        s.commit_write(0);
        s.note_detected(
            0,
            &OramError::Integrity {
                bucket: 0,
                slot: Some(0),
            },
        );
        assert_eq!(s.stats().detected_integrity, 1);
        s.note_clean_read(0);
        assert_eq!(s.stats().undetected, 0, "resolved fault is not a miss");

        s.begin_write(1).fill(1);
        s.commit_write(1);
        s.note_clean_read(1);
        assert_eq!(s.stats().undetected, 1);
    }

    #[test]
    fn overwrite_masks_pending_fault() {
        let mut s = store(FaultConfig::single(FaultClass::BitFlip, 1.0, 5));
        s.begin_write(0).fill(1);
        s.commit_write(0);
        s.begin_write(0).fill(2);
        assert_eq!(s.stats().masked_by_overwrite, 1);
    }

    #[test]
    fn transient_gate_respects_budget() {
        let cfg = FaultConfig {
            retry_budget: 2,
            ..FaultConfig::single(FaultClass::Transient, 1.0, 4)
        };
        let mut s = store(cfg);
        assert_eq!(s.read_gate(), Err(3), "1 attempt + 2 retries");
        assert_eq!(s.stats().injected_transients, 3);
        assert_eq!(s.stats().transient_retries, 2);
        assert!(s.stats().backoff_cycles > 0);
    }

    #[test]
    fn transient_recovery_counts() {
        let cfg = FaultConfig {
            retry_budget: 8,
            ..FaultConfig::single(FaultClass::Transient, 0.5, 12)
        };
        let mut s = store(cfg);
        let mut recovered_runs = 0;
        for _ in 0..200 {
            if s.read_gate().is_ok() {
                recovered_runs += 1;
            }
        }
        assert!(
            recovered_runs > 150,
            "rate 0.5 with budget 8 mostly succeeds"
        );
        assert!(s.stats().recovered > 0);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing_at_high_budgets() {
        // A pathological deployment: near-maximal base backoff and a
        // retry budget deep enough to hit the shift cap many times over.
        // Before the saturating fix the doubling wrapped u64 and the
        // accumulated backoff_cycles went *down* across retries.
        let cfg = FaultConfig {
            retry_budget: 200,
            retry_backoff_cycles: u64::MAX / 2,
            ..FaultConfig::single(FaultClass::Transient, 1.0, 21)
        };
        let mut s = store(cfg);
        assert_eq!(s.read_gate(), Err(201));
        assert_eq!(
            s.stats().backoff_cycles,
            u64::MAX,
            "accumulated backoff clamps at u64::MAX"
        );

        // Monotonicity under repeated exhausted reads: saturated stays
        // saturated.
        assert_eq!(s.read_gate(), Err(201));
        assert_eq!(s.stats().backoff_cycles, u64::MAX);
    }

    #[test]
    fn backoff_doubles_exactly_below_the_saturation_range() {
        let cfg = FaultConfig {
            retry_budget: 4,
            retry_backoff_cycles: 64,
            ..FaultConfig::single(FaultClass::Transient, 1.0, 21)
        };
        let mut s = store(cfg);
        assert_eq!(s.read_gate(), Err(5));
        // 64 * (1 + 2 + 4 + 8 + 16) = 64 * 31.
        assert_eq!(s.stats().backoff_cycles, 64 * 31);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = || {
            let mut s = store(FaultConfig::single(FaultClass::BitFlip, 0.5, 99));
            for i in 0..50 {
                s.begin_write(i % 4).fill(i as u8);
                s.commit_write(i % 4);
            }
            (s.bytes().to_vec(), s.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_rate_rejected() {
        FaultConfig::single(FaultClass::BitFlip, 1.5, 0).validate();
    }
}
