//! Typed failures of the untrusted storage path.
//!
//! Every way the encrypted DRAM image can betray the controller is one
//! variant of [`OramError`]: corruption (a MAC mismatch), rollback (an
//! authentic but stale bucket replayed by the adversary — distinguishable
//! from corruption because per-bucket version counters are folded into the
//! MACs), a transient read failure that exhausted its retry budget, and
//! stash overflow past the configured hard capacity after emergency
//! eviction. Errors propagate as values through
//! [`crate::backend_trait::OramBackend`] and the `MemoryBackend` access
//! path; nothing in the storage stack panics on adversarial input.

use std::fmt;

/// A detected failure of the ORAM's untrusted storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OramError {
    /// Authentication failure: the stored image was modified outside the
    /// controller (PMMAC-style verification, after Freecursive ORAM
    /// \[8\]). `slot` is `None` when the bucket header itself (nonce /
    /// version / header tag) failed to authenticate.
    Integrity {
        /// Bucket whose contents failed verification.
        bucket: usize,
        /// Slot within the bucket, if the failure was slot-local.
        slot: Option<usize>,
    },
    /// Rollback: the bucket authenticates, but carries a version counter
    /// older than the trusted on-chip counter — a replay of a previously
    /// valid ciphertext (or a dropped write).
    Rollback {
        /// Bucket that was rolled back.
        bucket: usize,
        /// Version found in the (authentic) stored header.
        stored_version: u64,
        /// Version the trusted on-chip counter expected.
        expected_version: u64,
    },
    /// The stash exceeded its configured hard capacity even after
    /// emergency background eviction — the controller's fail-stop
    /// condition.
    StashOverflow {
        /// Stash occupancy when the overflow was declared.
        occupancy: usize,
        /// The configured hard capacity.
        capacity: usize,
    },
    /// A transient read failure persisted through the whole retry budget.
    Transient {
        /// Bucket whose read kept failing.
        bucket: usize,
        /// Read attempts performed (initial try + retries).
        attempts: u32,
    },
    /// A block the position map maps to a path was found on neither that
    /// path nor in the stash — the Path ORAM placement invariant is
    /// broken. Unlike the storage faults above this is an internal
    /// controller failure, but it is reported as a value so a simulation
    /// harness can degrade instead of unwinding.
    BlockMissing {
        /// Address of the missing block.
        addr: u64,
        /// Leaf label of the path that was searched.
        leaf: u32,
    },
    /// A deterministic crash injection fired mid-access: the process is
    /// simulated as dead at the given kill point, leaving the store's
    /// undo journal (and possibly a torn path) behind. The access
    /// unwinds as a value so the harness can run
    /// [`crate::PathOram::recover`] and retry — the crash-consistency
    /// analogue of a power failure.
    Crashed {
        /// The kill point where the simulated death struck.
        point: crate::crash::KillPoint,
    },
}

impl fmt::Display for OramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OramError::Integrity {
                bucket,
                slot: Some(slot),
            } => write!(f, "integrity violation in bucket {bucket} slot {slot}"),
            OramError::Integrity { bucket, slot: None } => {
                write!(f, "integrity violation in bucket {bucket} header")
            }
            OramError::Rollback {
                bucket,
                stored_version,
                expected_version,
            } => write!(
                f,
                "rollback detected in bucket {bucket}: stored version {stored_version}, expected {expected_version}"
            ),
            OramError::StashOverflow {
                occupancy,
                capacity,
            } => write!(
                f,
                "stash overflow: {occupancy} blocks exceed hard capacity {capacity} after emergency eviction"
            ),
            OramError::Transient {
                bucket, attempts, ..
            } => write!(
                f,
                "transient read failure on bucket {bucket} persisted through {attempts} attempts"
            ),
            OramError::BlockMissing { addr, leaf } => write!(
                f,
                "placement invariant broken: block {addr} is on neither the path to leaf {leaf} nor in the stash"
            ),
            OramError::Crashed { point } => {
                write!(f, "simulated crash at kill point {}", point.name())
            }
        }
    }
}

impl std::error::Error for OramError {}

impl OramError {
    /// The bucket the error concerns, if it is bucket-local.
    pub fn bucket(&self) -> Option<usize> {
        match self {
            OramError::Integrity { bucket, .. }
            | OramError::Rollback { bucket, .. }
            | OramError::Transient { bucket, .. } => Some(*bucket),
            OramError::StashOverflow { .. }
            | OramError::BlockMissing { .. }
            | OramError::Crashed { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrity_display_names_bucket_and_slot() {
        let e = OramError::Integrity {
            bucket: 3,
            slot: Some(1),
        };
        assert_eq!(e.to_string(), "integrity violation in bucket 3 slot 1");
        let h = OramError::Integrity {
            bucket: 3,
            slot: None,
        };
        assert!(h.to_string().contains("integrity violation in bucket 3"));
    }

    #[test]
    fn rollback_display_names_versions() {
        let e = OramError::Rollback {
            bucket: 9,
            stored_version: 4,
            expected_version: 7,
        };
        let s = e.to_string();
        assert!(s.contains("rollback"), "{s}");
        assert!(s.contains('4') && s.contains('7'), "{s}");
    }

    #[test]
    fn bucket_accessor() {
        assert_eq!(
            OramError::Transient {
                bucket: 5,
                attempts: 3
            }
            .bucket(),
            Some(5)
        );
        assert_eq!(
            OramError::StashOverflow {
                occupancy: 10,
                capacity: 8
            }
            .bucket(),
            None
        );
    }

    #[test]
    fn block_missing_names_block_and_leaf() {
        let e = OramError::BlockMissing { addr: 42, leaf: 7 };
        let s = e.to_string();
        assert!(s.contains("block 42"), "{s}");
        assert!(s.contains("leaf 7"), "{s}");
        assert_eq!(e.bucket(), None);
    }
}
