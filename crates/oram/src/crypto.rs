//! Probabilistic encryption for bucket contents.
//!
//! "Data stored in ORAMs should be encrypted using probabilistic
//! encryption to conceal the data content and also hide which memory
//! location, if any, is updated" (paper Section 2.1). The paper treats
//! the cipher abstractly; we implement a small counter-mode stream cipher
//! (SplitMix64-based keystream) so the storage image actually changes on
//! every write with a fresh nonce, which the obliviousness tests verify.
//!
//! This is a *simulation* cipher: it demonstrates the data flow and cost
//! structure of the real thing. It must not be used to protect real data.

use proram_stats::{Rng64, SplitMix64};

/// A counter-mode stream cipher keyed with a 64-bit key.
///
/// Every encryption takes an explicit `nonce`; encrypting the same
/// plaintext under different nonces yields unrelated ciphertexts, which is
/// the probabilistic-encryption property Path ORAM requires.
///
/// # Examples
///
/// ```
/// use proram_oram::StreamCipher;
///
/// let cipher = StreamCipher::new(0xDEADBEEF);
/// let mut buf = *b"secret path oram";
/// cipher.apply(7, &mut buf);
/// assert_ne!(&buf, b"secret path oram");
/// cipher.apply(7, &mut buf); // XOR stream: applying twice decrypts
/// assert_eq!(&buf, b"secret path oram");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCipher {
    key: u64,
}

impl StreamCipher {
    /// Creates a cipher with the given key.
    pub fn new(key: u64) -> Self {
        StreamCipher { key }
    }

    /// The SplitMix seed mixing `key` and `nonce`.
    #[inline]
    fn seed(&self, nonce: u64) -> u64 {
        self.key.rotate_left(17).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ nonce.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
    }

    /// XORs the keystream for `nonce` into `buf` (encrypts or decrypts).
    ///
    /// The keystream is generated eight 64-bit words per round (two
    /// [`SplitMix64::next4`] calls) and applied as four 16-byte XORs, so
    /// a bucket-sized buffer moves 64 bytes per iteration instead of 8.
    /// The keystream byte sequence is *identical* to the
    /// one-word-at-a-time formulation (kept as
    /// [`Self::apply_scalar_reference`]), so ciphertexts and the storage
    /// image are unchanged.
    pub fn apply(&self, nonce: u64, buf: &mut [u8]) {
        let mut ks = SplitMix64::new(self.seed(nonce));
        // 64-byte blocks: two next4() calls feed four u128 XORs. All
        // eight mixes are data-independent, so they schedule in parallel
        // ahead of the wide loads/stores.
        let mut blocks = buf.chunks_exact_mut(64);
        for block in &mut blocks {
            let [k0, k1, k2, k3] = ks.next4();
            let [k4, k5, k6, k7] = ks.next4();
            let m = [
                u128::from(k0) | (u128::from(k1) << 64),
                u128::from(k2) | (u128::from(k3) << 64),
                u128::from(k4) | (u128::from(k5) << 64),
                u128::from(k6) | (u128::from(k7) << 64),
            ];
            for (lane, mi) in block.chunks_exact_mut(16).zip(m) {
                let v = u128::from_le_bytes(lane.as_ref().try_into().expect("16-byte lane"));
                lane.copy_from_slice(&(v ^ mi).to_le_bytes());
            }
        }
        // Whole words XOR 8 bytes at a time; the tail (if any) falls back
        // to byte-wise XOR of the same keystream word, so the keystream
        // byte sequence is independent of the chunking.
        let mut chunks = blocks.into_remainder().chunks_exact_mut(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.as_ref().try_into().expect("8-byte chunk"));
            chunk.copy_from_slice(&(word ^ ks.next_u64()).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = ks.next_u64().to_le_bytes();
            for (b, k) in rem.iter_mut().zip(word.iter()) {
                *b ^= k;
            }
        }
    }

    /// The pre-widening implementation of [`Self::apply`]: one keystream
    /// word per iteration. Retained verbatim as the baseline for the
    /// cipher microbench (`proram-bench hotpath` asserts the widened path
    /// beats it) and as an equality oracle in tests. Output is
    /// byte-identical to [`Self::apply`].
    pub fn apply_scalar_reference(&self, nonce: u64, buf: &mut [u8]) {
        let mut ks = SplitMix64::new(self.seed(nonce));
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.as_ref().try_into().expect("8-byte chunk"));
            chunk.copy_from_slice(&(word ^ ks.next_u64()).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = ks.next_u64().to_le_bytes();
            for (b, k) in rem.iter_mut().zip(word.iter()) {
                *b ^= k;
            }
        }
    }

    /// Encrypts `buf` in place under `nonce` (alias of [`Self::apply`],
    /// named for call-site clarity).
    pub fn encrypt(&self, nonce: u64, buf: &mut [u8]) {
        self.apply(nonce, buf);
    }

    /// Decrypts `buf` in place under `nonce`.
    pub fn decrypt(&self, nonce: u64, buf: &mut [u8]) {
        self.apply(nonce, buf);
    }
}

/// A keyed 64-bit MAC for block authentication (PMMAC-style, after
/// Freecursive ORAM \[8\], the paper's baseline recursion technique).
///
/// Like [`StreamCipher`] this is a *simulation* primitive: it has the
/// interface and data flow of a real MAC (keyed, covers address, version
/// and payload) with a toy mixing function. It must not protect real
/// data.
///
/// # Examples
///
/// ```
/// use proram_oram::crypto::Mac;
///
/// let mac = Mac::new(7);
/// let tag = mac.tag(&[42, 3], b"block payload");
/// assert_eq!(tag, mac.tag(&[42, 3], b"block payload"));
/// assert_ne!(tag, mac.tag(&[42, 4], b"block payload"));
/// assert_ne!(tag, mac.tag(&[42, 3], b"block payloae"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mac {
    key: u64,
}

impl Mac {
    /// Creates a MAC with the given key.
    pub fn new(key: u64) -> Self {
        Mac { key }
    }

    /// Tags the `header` words and `data` bytes.
    pub fn tag(&self, header: &[u64], data: &[u8]) -> u64 {
        self.tag_parts(header, &[data])
    }

    /// Tags the `header` words and several byte slices, absorbing each
    /// part's length so the boundaries are unambiguous:
    /// `tag_parts(h, &[a, b])` and `tag_parts(h, &[ab])` differ even when
    /// the concatenations agree. Used to authenticate non-contiguous
    /// regions (e.g. a slot's header and payload around the tag field)
    /// without copying them together.
    pub fn tag_parts(&self, header: &[u64], parts: &[&[u8]]) -> u64 {
        let mut state = self.key ^ 0xA076_1D64_78BD_642F;
        let mut absorb = |w: u64| {
            state ^= w;
            let mut sm = SplitMix64::new(state);
            state = sm.next_u64();
        };
        for &w in header {
            absorb(w);
        }
        for part in parts {
            for chunk in part.chunks(8) {
                let mut buf = [0u8; 8];
                buf[..chunk.len()].copy_from_slice(chunk);
                absorb(u64::from_le_bytes(buf));
            }
            absorb(part.len() as u64);
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let c = StreamCipher::new(42);
        let plain = b"0123456789abcdef0123".to_vec();
        let mut buf = plain.clone();
        c.encrypt(99, &mut buf);
        assert_ne!(buf, plain);
        c.decrypt(99, &mut buf);
        assert_eq!(buf, plain);
    }

    #[test]
    fn different_nonces_differ() {
        let c = StreamCipher::new(42);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        c.encrypt(1, &mut a);
        c.encrypt(2, &mut b);
        assert_ne!(
            a, b,
            "probabilistic encryption: fresh nonce, fresh ciphertext"
        );
    }

    #[test]
    fn different_keys_differ() {
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        StreamCipher::new(1).encrypt(5, &mut a);
        StreamCipher::new(2).encrypt(5, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn wrong_nonce_fails_to_decrypt() {
        let c = StreamCipher::new(7);
        let plain = b"blockdata".to_vec();
        let mut buf = plain.clone();
        c.encrypt(1, &mut buf);
        c.decrypt(2, &mut buf);
        assert_ne!(buf, plain);
    }

    #[test]
    fn mac_detects_single_bit_flips() {
        let mac = Mac::new(99);
        let data = vec![0xAB; 64];
        let tag = mac.tag(&[1, 2, 3], &data);
        for byte in 0..64 {
            let mut tampered = data.clone();
            tampered[byte] ^= 1;
            assert_ne!(
                tag,
                mac.tag(&[1, 2, 3], &tampered),
                "flip at {byte} undetected"
            );
        }
    }

    #[test]
    fn mac_is_key_dependent() {
        assert_ne!(Mac::new(1).tag(&[5], b"x"), Mac::new(2).tag(&[5], b"x"));
    }

    #[test]
    fn tag_parts_is_boundary_sensitive() {
        let mac = Mac::new(11);
        // Single-part tagging is exactly `tag`.
        assert_eq!(mac.tag(&[1], b"abcdef"), mac.tag_parts(&[1], &[b"abcdef"]));
        // Moving a byte across a part boundary changes the tag even though
        // the concatenation is identical.
        assert_ne!(
            mac.tag_parts(&[1], &[b"abc", b"def"]),
            mac.tag_parts(&[1], &[b"abcd", b"ef"])
        );
        assert_ne!(
            mac.tag_parts(&[1], &[b"abc", b"def"]),
            mac.tag_parts(&[1], &[b"abcdef"])
        );
        // Part contents matter.
        assert_ne!(
            mac.tag_parts(&[1], &[b"abc", b"def"]),
            mac.tag_parts(&[1], &[b"abc", b"deg"])
        );
    }

    #[test]
    fn mac_distinguishes_length_extension() {
        let mac = Mac::new(4);
        assert_ne!(mac.tag(&[], b"ab"), mac.tag(&[], b"ab\0"));
    }

    #[test]
    fn widened_apply_matches_scalar_reference_at_every_length() {
        // The 4-wide keystream must be byte-identical to the retained
        // one-word-per-iteration reference for every chunking regime:
        // empty, sub-word, sub-block, block-aligned, and ragged tails.
        let c = StreamCipher::new(0xFEED_F00D_1234_5678);
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 257] {
            for nonce in [0u64, 1, 99, u64::MAX] {
                let plain: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
                let mut wide = plain.clone();
                let mut scalar = plain.clone();
                c.apply(nonce, &mut wide);
                c.apply_scalar_reference(nonce, &mut scalar);
                assert_eq!(wide, scalar, "len={len} nonce={nonce}");
            }
        }
    }

    #[test]
    fn non_multiple_of_eight_lengths() {
        let c = StreamCipher::new(3);
        for len in [0usize, 1, 7, 9, 15] {
            let plain: Vec<u8> = (0..len as u8).collect();
            let mut buf = plain.clone();
            c.encrypt(4, &mut buf);
            c.decrypt(4, &mut buf);
            assert_eq!(buf, plain, "len={len}");
        }
    }
}
