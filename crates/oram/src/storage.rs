//! The encrypted DRAM image.
//!
//! When [`crate::OramConfig::store_payloads`] is enabled, every bucket the
//! controller writes is serialized — dummies and all, so every bucket's
//! ciphertext has the same size and shape — encrypted under a fresh nonce,
//! and stored in a flat byte array standing in for the untrusted DRAM.
//! Reads decrypt and deserialize. This is the data path a real ORAM
//! controller's crypto unit performs; the tests check round-tripping and
//! that rewriting a bucket always changes its ciphertext (probabilistic
//! encryption).

use crate::addr::Leaf;
use crate::block::{Block, Payload};
use crate::bucket::Bucket;
use crate::crypto::{Mac, StreamCipher};
use crate::posmap::PosEntry;
use proram_mem::BlockAddr;
use std::fmt;

/// Authenticated slot header: `(addr, leaf, hit, kind, payload_len)`.
type SlotHeader = (BlockAddr, Leaf, bool, u8, usize);

/// Serialized size of one position-map entry.
pub const ENTRY_BYTES: usize = 9;

/// Per-slot header: valid flag, address, leaf, hit bit, payload kind,
/// payload length, MAC tag.
const SLOT_HEADER_BYTES: usize = 1 + 8 + 4 + 1 + 1 + 2 + 8;

/// An authentication failure: the stored image was modified outside the
/// controller (PMMAC-style verification, after Freecursive ORAM \[8\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityError {
    /// Bucket whose contents failed verification.
    pub bucket: usize,
    /// Slot within the bucket.
    pub slot: usize,
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "integrity violation in bucket {} slot {}",
            self.bucket, self.slot
        )
    }
}

impl std::error::Error for IntegrityError {}

/// Per-bucket header: the encryption nonce (stored in the clear, as a real
/// system stores its IV/counter).
const BUCKET_HEADER_BYTES: usize = 8;

/// The encrypted bucket store.
#[derive(Debug, Clone)]
pub struct EncryptedStore {
    data: Vec<u8>,
    cipher: StreamCipher,
    mac: Mac,
    next_nonce: u64,
    z: usize,
    payload_bytes: usize,
    num_buckets: usize,
}

impl EncryptedStore {
    /// Creates a zeroed store for `num_buckets` buckets of `z` slots whose
    /// payload area holds `payload_bytes` bytes.
    pub fn new(num_buckets: usize, z: usize, payload_bytes: usize, key: u64) -> Self {
        let bucket_bytes = Self::bucket_bytes_for(z, payload_bytes);
        EncryptedStore {
            data: vec![0; num_buckets * bucket_bytes],
            cipher: StreamCipher::new(key),
            mac: Mac::new(key.rotate_left(32) ^ 0x5A5A_5A5A_5A5A_5A5A),
            next_nonce: 1,
            z,
            payload_bytes,
            num_buckets,
        }
    }

    fn bucket_bytes_for(z: usize, payload_bytes: usize) -> usize {
        BUCKET_HEADER_BYTES + z * (SLOT_HEADER_BYTES + payload_bytes)
    }

    /// Serialized size of one bucket.
    pub fn bucket_bytes(&self) -> usize {
        Self::bucket_bytes_for(self.z, self.payload_bytes)
    }

    /// Number of buckets in the image.
    pub fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    /// Raw ciphertext of bucket `index` (for tests).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn ciphertext(&self, index: usize) -> &[u8] {
        let bb = self.bucket_bytes();
        &self.data[index * bb..(index + 1) * bb]
    }

    /// Serializes, encrypts and stores `bucket` at `index` under a fresh
    /// nonce.
    ///
    /// # Panics
    ///
    /// Panics if the bucket exceeds `z` blocks or a payload exceeds the
    /// payload area.
    pub fn write_bucket(&mut self, index: usize, bucket: &Bucket) {
        assert!(bucket.len() <= self.z, "bucket exceeds Z");
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let bb = self.bucket_bytes();
        let slot_bytes = SLOT_HEADER_BYTES + self.payload_bytes;
        // Serialize and encrypt directly in the image — no staging buffer.
        let (mac, cipher, payload_bytes) = (self.mac, self.cipher, self.payload_bytes);
        let out = &mut self.data[index * bb..(index + 1) * bb];
        out[..BUCKET_HEADER_BYTES].copy_from_slice(&nonce.to_le_bytes());
        let plain = &mut out[BUCKET_HEADER_BYTES..];
        // Zero first so unfilled slots are dummy blocks, indistinguishable
        // after encryption.
        plain.fill(0);
        for (i, block) in bucket.iter().enumerate() {
            let slot = &mut plain[i * slot_bytes..(i + 1) * slot_bytes];
            Self::serialize_block(block, slot, payload_bytes, &mac, index as u64);
        }
        cipher.encrypt(nonce, plain);
    }

    /// Reads, decrypts, authenticates and deserializes bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics on an authentication failure — tampering with the image is
    /// a fatal, detected event for the controller. Use
    /// [`EncryptedStore::try_read_bucket`] to observe failures as values.
    pub fn read_bucket(&self, index: usize) -> Vec<Block> {
        self.try_read_bucket(index)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`EncryptedStore::read_bucket`], reporting tampering as an
    /// [`IntegrityError`] instead of panicking.
    pub fn try_read_bucket(&self, index: usize) -> Result<Vec<Block>, IntegrityError> {
        let mut plain = Vec::new();
        self.decrypt_into(index, &mut plain);
        let slot_bytes = SLOT_HEADER_BYTES + self.payload_bytes;
        let mut blocks = Vec::new();
        for i in 0..self.z {
            let slot = &plain[i * slot_bytes..(i + 1) * slot_bytes];
            match Self::deserialize_block(slot, self.payload_bytes, &self.mac, index as u64) {
                Ok(Some(b)) => blocks.push(b),
                Ok(None) => {}
                Err(()) => {
                    return Err(IntegrityError {
                        bucket: index,
                        slot: i,
                    })
                }
            }
        }
        Ok(blocks)
    }

    /// Decrypts bucket `index` into the caller's reusable `plain` buffer.
    fn decrypt_into(&self, index: usize, plain: &mut Vec<u8>) {
        let bb = self.bucket_bytes();
        let raw = &self.data[index * bb..(index + 1) * bb];
        let nonce = u64::from_le_bytes(raw[..BUCKET_HEADER_BYTES].try_into().expect("nonce"));
        plain.clear();
        plain.extend_from_slice(&raw[BUCKET_HEADER_BYTES..]);
        if nonce != 0 {
            self.cipher.decrypt(nonce, plain);
        }
    }

    /// Authenticates bucket `index` and appends the address of every real
    /// block it holds to `addrs`, without reconstructing payloads.
    ///
    /// `plain` is a caller-owned scratch buffer reused across calls, so
    /// the per-bucket verification the controller performs in
    /// [`verify_image` mode](crate::OramConfig::verify_image) allocates
    /// nothing.
    ///
    /// # Errors
    ///
    /// Returns an [`IntegrityError`] if any slot fails authentication.
    pub fn bucket_addrs_into(
        &self,
        index: usize,
        plain: &mut Vec<u8>,
        addrs: &mut Vec<u64>,
    ) -> Result<(), IntegrityError> {
        self.decrypt_into(index, plain);
        let slot_bytes = SLOT_HEADER_BYTES + self.payload_bytes;
        for i in 0..self.z {
            let slot = &plain[i * slot_bytes..(i + 1) * slot_bytes];
            match Self::check_slot(slot, &self.mac, index as u64) {
                Ok(Some((addr, ..))) => addrs.push(addr.0),
                Ok(None) => {}
                Err(()) => {
                    return Err(IntegrityError {
                        bucket: index,
                        slot: i,
                    })
                }
            }
        }
        Ok(())
    }

    /// Verifies every bucket's authentication tags.
    ///
    /// # Errors
    ///
    /// Returns the first [`IntegrityError`] encountered.
    pub fn verify_all(&self) -> Result<(), IntegrityError> {
        for idx in 0..self.num_buckets {
            self.try_read_bucket(idx)?;
        }
        Ok(())
    }

    /// Fault injection for tests: XORs `mask` into one ciphertext byte of
    /// bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if the offset is outside the bucket or the mask is zero (a
    /// zero mask would not corrupt anything).
    pub fn corrupt_byte(&mut self, index: usize, offset: usize, mask: u8) {
        assert!(mask != 0, "a zero mask does not corrupt");
        let bb = self.bucket_bytes();
        assert!(offset < bb, "offset {offset} outside bucket of {bb} bytes");
        self.data[index * bb + offset] ^= mask;
    }

    fn serialize_block(
        block: &Block,
        slot: &mut [u8],
        payload_bytes: usize,
        mac: &Mac,
        bucket_index: u64,
    ) {
        let (head, body_area) = slot.split_at_mut(SLOT_HEADER_BYTES);
        head[0] = 1; // valid
        head[1..9].copy_from_slice(&block.addr.0.to_le_bytes());
        head[9..13].copy_from_slice(&block.leaf.0.to_le_bytes());
        head[13] = u8::from(block.hit);
        // Serialize the payload straight into the slot's body area — no
        // staging Vec; the MAC is computed over the written bytes.
        let (kind, len): (u8, usize) = match &block.payload {
            Payload::Opaque => (0, 0),
            Payload::Data(bytes) => {
                assert!(
                    bytes.len() <= payload_bytes,
                    "payload {} exceeds slot {payload_bytes}",
                    bytes.len()
                );
                body_area[..bytes.len()].copy_from_slice(bytes);
                (1, bytes.len())
            }
            Payload::PosMap(entries) => {
                let len = entries.len() * ENTRY_BYTES;
                assert!(
                    len <= payload_bytes,
                    "payload {len} exceeds slot {payload_bytes}"
                );
                for (e, out) in entries.iter().zip(body_area.chunks_exact_mut(ENTRY_BYTES)) {
                    out[0..4].copy_from_slice(&e.leaf.0.to_le_bytes());
                    out[4..6].copy_from_slice(&e.merge.to_le_bytes());
                    out[6..8].copy_from_slice(&e.brk.to_le_bytes());
                    out[8] = u8::from(e.prefetch);
                }
                (2, len)
            }
        };
        head[14] = kind;
        head[15..17].copy_from_slice(&(len as u16).to_le_bytes());
        // The tag binds the block's identity AND its physical location, so
        // replaying an authentic bucket at a different tree position fails
        // verification.
        let tag = mac.tag(
            &[
                bucket_index,
                block.addr.0,
                u64::from(block.leaf.0),
                u64::from(block.hit),
                u64::from(kind),
            ],
            &body_area[..len],
        );
        head[17..25].copy_from_slice(&tag.to_le_bytes());
    }

    /// Validates and authenticates one slot without touching the payload
    /// encoding: `Ok(None)` = dummy slot, `Ok(Some((addr, leaf, hit, kind,
    /// len)))` = authenticated header, `Err(())` = tampering.
    fn check_slot(slot: &[u8], mac: &Mac, bucket_index: u64) -> Result<Option<SlotHeader>, ()> {
        if slot[0] != 1 {
            // Dummy slots are all-zero after decryption; any other value
            // in the valid flag is tampering.
            return if slot.iter().all(|&b| b == 0) {
                Ok(None)
            } else {
                Err(())
            };
        }
        let addr = BlockAddr(u64::from_le_bytes(slot[1..9].try_into().expect("addr")));
        let leaf = Leaf(u32::from_le_bytes(slot[9..13].try_into().expect("leaf")));
        let hit = slot[13] != 0;
        let kind = slot[14];
        let len = u16::from_le_bytes(slot[15..17].try_into().expect("len")) as usize;
        if len > slot.len().saturating_sub(SLOT_HEADER_BYTES) {
            return Err(()); // corrupted length field
        }
        let stored_tag = u64::from_le_bytes(slot[17..25].try_into().expect("tag"));
        let body = &slot[SLOT_HEADER_BYTES..SLOT_HEADER_BYTES + len];
        let expected = mac.tag(
            &[
                bucket_index,
                addr.0,
                u64::from(leaf.0),
                u64::from(hit),
                u64::from(kind),
            ],
            body,
        );
        if stored_tag != expected {
            return Err(());
        }
        Ok(Some((addr, leaf, hit, kind, len)))
    }

    /// `Ok(None)` = dummy slot, `Ok(Some)` = authenticated block,
    /// `Err(())` = tag mismatch.
    fn deserialize_block(
        slot: &[u8],
        _payload_bytes: usize,
        mac: &Mac,
        bucket_index: u64,
    ) -> Result<Option<Block>, ()> {
        let Some((addr, leaf, hit, kind, len)) = Self::check_slot(slot, mac, bucket_index)? else {
            return Ok(None);
        };
        let body = &slot[SLOT_HEADER_BYTES..SLOT_HEADER_BYTES + len];
        let payload = match kind {
            0 => Payload::Opaque,
            1 => Payload::Data(body.to_vec().into()),
            2 => {
                let mut entries = Vec::with_capacity(len / ENTRY_BYTES);
                for chunk in body.chunks_exact(ENTRY_BYTES) {
                    entries.push(PosEntry {
                        leaf: Leaf(u32::from_le_bytes(chunk[0..4].try_into().expect("eleaf"))),
                        merge: i16::from_le_bytes(chunk[4..6].try_into().expect("merge")),
                        brk: i16::from_le_bytes(chunk[6..8].try_into().expect("brk")),
                        prefetch: chunk[8] != 0,
                    });
                }
                Payload::PosMap(entries.into())
            }
            _ => return Err(()), // unknown payload kind: tampering
        };
        Ok(Some(Block {
            addr,
            leaf,
            hit,
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> EncryptedStore {
        EncryptedStore::new(8, 3, 128, 0x5EED)
    }

    fn data_block(addr: u64, fill: u8) -> Block {
        Block::with_data(BlockAddr(addr), Leaf(3), vec![fill; 128].into())
    }

    #[test]
    fn round_trip_data_bucket() {
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(1, 0xAA));
        b.push(data_block(2, 0xBB));
        s.write_bucket(4, &b);
        let blocks = s.read_bucket(4);
        assert_eq!(blocks.len(), 2);
        let b1 = blocks.iter().find(|b| b.addr == BlockAddr(1)).unwrap();
        assert_eq!(b1.leaf, Leaf(3));
        match &b1.payload {
            Payload::Data(bytes) => assert!(bytes.iter().all(|&x| x == 0xAA)),
            other => panic!("wrong payload: {other:?}"),
        }
    }

    #[test]
    fn round_trip_posmap_bucket() {
        let mut s = store();
        let entries = vec![
            PosEntry {
                leaf: Leaf(7),
                merge: -2,
                brk: 3,
                prefetch: true,
            },
            PosEntry::new(Leaf(9)),
        ];
        let mut b = Bucket::new(3);
        b.push(Block::posmap(
            BlockAddr(100),
            Leaf(1),
            entries.clone().into(),
        ));
        s.write_bucket(0, &b);
        let blocks = s.read_bucket(0);
        assert_eq!(blocks[0].entries(), entries.as_slice());
    }

    #[test]
    fn hit_bit_survives() {
        let mut s = store();
        let mut blk = data_block(1, 0x11);
        blk.hit = true;
        let mut b = Bucket::new(3);
        b.push(blk);
        s.write_bucket(1, &b);
        assert!(s.read_bucket(1)[0].hit);
    }

    #[test]
    fn empty_bucket_round_trips() {
        let mut s = store();
        s.write_bucket(2, &Bucket::new(3));
        assert!(s.read_bucket(2).is_empty());
    }

    #[test]
    fn unwritten_bucket_reads_empty() {
        let s = store();
        assert!(s.read_bucket(5).is_empty());
    }

    #[test]
    fn rewriting_changes_ciphertext() {
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(1, 0xCC));
        s.write_bucket(3, &b);
        let before = s.ciphertext(3).to_vec();
        s.write_bucket(3, &b); // identical plaintext
        let after = s.ciphertext(3).to_vec();
        assert_ne!(
            before, after,
            "probabilistic encryption must refresh ciphertexts"
        );
        // But the logical content is unchanged.
        assert_eq!(s.read_bucket(3)[0].addr, BlockAddr(1));
    }

    #[test]
    fn dummy_slots_indistinguishable_from_real() {
        // Every bucket ciphertext has the same length regardless of how
        // many real blocks it holds.
        let mut s = store();
        let mut full = Bucket::new(3);
        for i in 0..3 {
            full.push(data_block(i, i as u8));
        }
        s.write_bucket(0, &full);
        s.write_bucket(1, &Bucket::new(3));
        assert_eq!(s.ciphertext(0).len(), s.ciphertext(1).len());
    }

    #[test]
    fn tampering_with_ciphertext_is_detected() {
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(1, 0x5A));
        s.write_bucket(2, &b);
        assert!(s.verify_all().is_ok());
        // Flip one ciphertext byte in the slot area.
        s.corrupt_byte(2, 40, 0x80);
        let err = s
            .try_read_bucket(2)
            .expect_err("tampering must be detected");
        assert_eq!(err.bucket, 2);
        assert!(s.verify_all().is_err());
    }

    #[test]
    fn tampering_with_nonce_is_detected() {
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(1, 0x5A));
        s.write_bucket(0, &b);
        s.corrupt_byte(0, 0, 0x01); // nonce byte
        assert!(s.try_read_bucket(0).is_err());
    }

    #[test]
    #[should_panic(expected = "integrity violation")]
    fn panicking_reader_reports_bucket() {
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(1, 0x11));
        s.write_bucket(1, &b);
        s.corrupt_byte(1, 30, 0x04);
        s.read_bucket(1);
    }

    #[test]
    fn replaying_another_buckets_ciphertext_is_detected() {
        // Copy bucket 0's authentic ciphertext over bucket 1: the nonce
        // decrypts and the slot tags are valid MACs — but they bind the
        // *source* bucket index, so the replay fails verification at the
        // destination.
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(7, 0x22));
        s.write_bucket(0, &b);
        s.write_bucket(1, &Bucket::new(3));
        let src: Vec<u8> = s.ciphertext(0).to_vec();
        for (i, byte) in src.iter().enumerate() {
            let cur = s.ciphertext(1)[i];
            if cur != *byte {
                s.corrupt_byte(1, i, cur ^ *byte);
            }
        }
        assert!(
            s.try_read_bucket(1).is_err(),
            "bucket replay must not authenticate"
        );
        // The source bucket itself still verifies.
        assert!(s.try_read_bucket(0).is_ok());
    }

    #[test]
    fn addr_only_reads_match_full_reads() {
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(5, 0x01));
        b.push(data_block(9, 0x02));
        s.write_bucket(6, &b);
        let mut plain = Vec::new();
        let mut addrs = Vec::new();
        s.bucket_addrs_into(6, &mut plain, &mut addrs).unwrap();
        let mut full: Vec<u64> = s.read_bucket(6).iter().map(|b| b.addr.0).collect();
        addrs.sort_unstable();
        full.sort_unstable();
        assert_eq!(addrs, full);
        // Tampering is detected on the addr-only path too.
        s.corrupt_byte(6, 40, 0x10);
        addrs.clear();
        assert!(s.bucket_addrs_into(6, &mut plain, &mut addrs).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds slot")]
    fn oversized_payload_panics() {
        let mut s = EncryptedStore::new(1, 1, 16, 1);
        let mut b = Bucket::new(1);
        b.push(data_block(0, 1)); // 128-byte payload into 16-byte slot
        s.write_bucket(0, &b);
    }
}
