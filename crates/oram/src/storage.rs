//! The encrypted DRAM image.
//!
//! When [`crate::OramConfig::store_payloads`] is enabled, every bucket the
//! controller writes is serialized — dummies and all, so every bucket's
//! ciphertext has the same size and shape — encrypted under a fresh nonce,
//! and stored in a flat byte array standing in for the untrusted DRAM.
//! Reads decrypt and deserialize. This is the data path a real ORAM
//! controller's crypto unit performs; the tests check round-tripping and
//! that rewriting a bucket always changes its ciphertext (probabilistic
//! encryption).
//!
//! # Authentication and rollback protection
//!
//! Each bucket carries a cleartext header — nonce, a **monotonic version
//! counter**, and a header MAC binding both to the bucket index — and each
//! slot carries a PMMAC-style tag (after Freecursive ORAM \[8\]) over the
//! slot's *entire raw bytes* (header fields and the full payload area,
//! used or not) keyed by `(bucket index, version)`. The controller keeps
//! the authoritative version of every bucket in trusted on-chip state
//! ([`EncryptedStore`] itself models the trusted controller); a stored
//! bucket that authenticates but carries an old version is a **rollback**
//! ([`OramError::Rollback`]) — the replay of a previously valid ciphertext
//! — which plain MACs cannot distinguish from fresh data. Anything that
//! fails a MAC is **corruption** ([`OramError::Integrity`]).
//!
//! The byte backing is either plain memory or a [`FaultyStore`] that
//! injects seeded faults (bit flips, torn writes, rollbacks, transient
//! read failures); see [`crate::fault`]. All read paths report failures as
//! typed [`OramError`] values — nothing here panics on adversarial input.

use crate::addr::Leaf;
use crate::block::{Block, Payload};
use crate::bucket::Bucket;
use crate::crash::{CrashArm, KillPoint};
use crate::crypto::{Mac, StreamCipher};
use crate::error::OramError;
use crate::fault::{FaultConfig, FaultyStore};
use crate::journal::{TxnJournal, UndoEntry, EPOCH_DOMAIN};
use crate::posmap::PosEntry;
use proram_mem::{BlockAddr, FaultStats};
use proram_par::WorkerPool;
use std::sync::Arc;

/// Authenticated slot header: `(addr, leaf, hit, kind, payload_len)`.
type SlotHeader = (BlockAddr, Leaf, bool, u8, usize);

/// Serialized size of one position-map entry.
pub const ENTRY_BYTES: usize = 9;

/// Per-slot header: valid flag, address, leaf, hit bit, payload kind,
/// payload length, MAC tag.
const SLOT_HEADER_BYTES: usize = 1 + 8 + 4 + 1 + 1 + 2 + 8;

/// Offset of the slot tag within the slot; the tag covers every other
/// slot byte (`[0, TAG)` and `[SLOT_HEADER_BYTES, end)`).
const SLOT_TAG_OFFSET: usize = 17;

/// Per-bucket header, stored in the clear as a real system stores its
/// IV/counter: encryption nonce, monotonic version counter, and a MAC over
/// both (bound to the bucket index).
const BUCKET_HEADER_BYTES: usize = 8 + 8 + 8;

/// The byte backing of the image: plain memory, or the fault injector.
#[derive(Debug, Clone)]
enum Backing {
    Plain(Vec<u8>),
    Faulty(Box<FaultyStore>),
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            Backing::Plain(d) => d,
            Backing::Faulty(f) => f.bytes(),
        }
    }

    fn bytes_mut(&mut self) -> &mut [u8] {
        match self {
            Backing::Plain(d) => d,
            Backing::Faulty(f) => f.bytes_mut(),
        }
    }

    fn begin_write(&mut self, index: usize, bucket_bytes: usize) -> &mut [u8] {
        match self {
            Backing::Plain(d) => &mut d[index * bucket_bytes..(index + 1) * bucket_bytes],
            Backing::Faulty(f) => f.begin_write(index),
        }
    }

    fn commit_write(&mut self, index: usize) {
        if let Backing::Faulty(f) = self {
            f.commit_write(index);
        }
    }
}

/// The encrypted bucket store.
#[derive(Debug, Clone)]
pub struct EncryptedStore {
    backing: Backing,
    cipher: StreamCipher,
    mac: Mac,
    next_nonce: u64,
    /// Trusted on-chip version counters, one per bucket. The stored image
    /// must match exactly; an authentic-but-older version is a rollback.
    versions: Vec<u64>,
    z: usize,
    payload_bytes: usize,
    num_buckets: usize,
    /// Optional crypto worker pool. When attached (and the backing is
    /// plain), path-batch writes and reads fan per-bucket seal/encrypt
    /// and decrypt/verify work across its threads with an ordered merge,
    /// keeping the image byte-identical to the serial path.
    pool: Option<Arc<WorkerPool>>,
    /// Recycled bucket-body buffers for the parallel batch paths.
    body_scratch: Vec<Vec<u8>>,
    /// Recycled per-bucket address vectors for the parallel read path.
    addr_scratch: Vec<Vec<u64>>,
    /// Trusted epoch counter; the commit flip advances it after all home
    /// writes of a transaction landed.
    epoch: u64,
    /// The durable epoch header's MAC, binding [`Self::epoch`].
    epoch_tag: u64,
    /// Undo journal of the open transaction, when crash consistency is
    /// armed (`None` = journaling off; writes go straight home).
    journal: Option<TxnJournal>,
    /// Countdown arm for the store-level kill points (`MidJournal`,
    /// `MidFlip`, `PooledEncrypt`).
    crash: Option<CrashArm>,
    /// Once a kill point fired the store is "dead": every subsequent
    /// write is dropped until [`Self::recover_txn`] clears the state,
    /// exactly as if the process had exited mid-access.
    fired: Option<KillPoint>,
    /// Test hook: make job `N` of the next pooled write batch panic
    /// without arming the crash machinery (exercises the graceful serial
    /// fallback rather than the crash protocol).
    pool_panic_job: Option<usize>,
}

/// What [`EncryptedStore::recover_txn`] did with the open journal; the
/// controller finishes recovery from this (checkpoint adoption, tree
/// rebuild, re-verification).
#[derive(Debug)]
pub(crate) struct StoreRecovery {
    /// `true` = the epoch had already flipped: home images are
    /// authoritative and checkpoint B is adopted. `false` = rollback:
    /// journaled images were restored and checkpoint A is adopted.
    pub replay: bool,
    /// The sealed checkpoint to adopt (A on rollback, B on replay).
    pub checkpoint: Vec<u8>,
    /// Bucket indices touched by the transaction's journal, in first-write
    /// order — the set whose tree mirror must be rebuilt and re-verified.
    pub touched: Vec<usize>,
    /// Undo entries the journal held.
    pub entries: usize,
    /// Bucket images physically restored (0 on replay).
    pub restored: usize,
}

/// One bucket's worth of parallel write work: the caller has already
/// assigned `nonce`/`version` (in path order, on its own thread) and
/// serialized the slot fields into `body`; a worker seals the slot MACs
/// and encrypts.
struct SealJob {
    index: usize,
    nonce: u64,
    version: u64,
    body: Vec<u8>,
    /// When set the job panics instead of sealing — either the
    /// `PooledEncrypt` kill point (simulated process death inside the
    /// crypto worker) or the pool-panic test hook.
    boom: bool,
}

/// One bucket's worth of parallel read work: the caller authenticated
/// the header and copied the ciphertext body out; a worker decrypts and
/// address-verifies every slot. `bad_slot` reports the first slot that
/// failed authentication.
struct VerifyJob {
    index: usize,
    nonce: u64,
    version: u64,
    body: Vec<u8>,
    addrs: Vec<u64>,
    bad_slot: Option<usize>,
}

impl EncryptedStore {
    /// Creates a zeroed store for `num_buckets` buckets of `z` slots whose
    /// payload area holds `payload_bytes` bytes. Every bucket starts at
    /// version 0 with an authentic all-dummy image.
    pub fn new(num_buckets: usize, z: usize, payload_bytes: usize, key: u64) -> Self {
        let bucket_bytes = Self::bucket_bytes_for(z, payload_bytes);
        let mac = Mac::new(key.rotate_left(32) ^ 0x5A5A_5A5A_5A5A_5A5A);
        let mut data = vec![0; num_buckets * bucket_bytes];
        // Authentic initial headers: nonce 0 (body not yet encrypted),
        // version 0. Without them an unwritten bucket would read as a
        // header forgery.
        for idx in 0..num_buckets {
            let header = &mut data[idx * bucket_bytes..idx * bucket_bytes + BUCKET_HEADER_BYTES];
            Self::write_header(header, &mac, idx as u64, 0, 0);
        }
        EncryptedStore {
            backing: Backing::Plain(data),
            cipher: StreamCipher::new(key),
            mac,
            next_nonce: 1,
            versions: vec![0; num_buckets],
            z,
            payload_bytes,
            num_buckets,
            pool: None,
            body_scratch: Vec::new(),
            addr_scratch: Vec::new(),
            epoch: 0,
            epoch_tag: mac.tag(&[EPOCH_DOMAIN, 0], &[]),
            journal: None,
            crash: None,
            fired: None,
            pool_panic_job: None,
        }
    }

    /// Attaches a crypto worker pool; subsequent
    /// [`EncryptedStore::write_buckets`] and
    /// [`EncryptedStore::bucket_addrs_batch`] calls fan their per-bucket
    /// crypto across it. The image stays byte-identical to the serial
    /// path (see DESIGN.md section 14 for the determinism contract).
    pub fn attach_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// Whether batch calls actually execute in parallel: a pool with at
    /// least one worker is attached and fault injection is off (the
    /// injector's RNG draws and bookkeeping depend on strict per-bucket
    /// read/write order, so a faulty backing always runs serially).
    pub fn parallel_active(&self) -> bool {
        self.pool.as_ref().is_some_and(|p| p.workers() > 0) && !self.faults_enabled()
    }

    /// The attached pool's cumulative dispatch counters, if any.
    pub fn pool_stats(&self) -> Option<proram_par::PoolStats> {
        self.pool.as_ref().map(|p| p.stats())
    }

    /// Worker threads the attached pool owns (0 without a pool; the
    /// calling thread participates in batches on top of these).
    pub fn pool_workers(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.workers())
    }

    /// Swaps the plain byte backing for a seeded fault injector.
    ///
    /// The injector draws from its own RNG, so a zero-rate configuration
    /// leaves every observable behavior identical.
    ///
    /// # Panics
    ///
    /// Panics if fault injection is already enabled or the configuration
    /// is invalid.
    pub fn enable_faults(&mut self, cfg: FaultConfig) {
        let bucket_bytes = self.bucket_bytes();
        match std::mem::replace(&mut self.backing, Backing::Plain(Vec::new())) {
            Backing::Plain(data) => {
                self.backing = Backing::Faulty(Box::new(FaultyStore::new(data, bucket_bytes, cfg)));
            }
            Backing::Faulty(_) => panic!("fault injection already enabled"),
        }
    }

    /// Fault injection / detection counters (all-zero without injection).
    pub fn fault_stats(&self) -> FaultStats {
        match &self.backing {
            Backing::Plain(_) => FaultStats::default(),
            Backing::Faulty(f) => f.stats(),
        }
    }

    /// Whether a fault injector backs this store.
    pub fn faults_enabled(&self) -> bool {
        matches!(self.backing, Backing::Faulty(_))
    }

    fn bucket_bytes_for(z: usize, payload_bytes: usize) -> usize {
        BUCKET_HEADER_BYTES + z * (SLOT_HEADER_BYTES + payload_bytes)
    }

    /// Serialized size of one bucket.
    pub fn bucket_bytes(&self) -> usize {
        Self::bucket_bytes_for(self.z, self.payload_bytes)
    }

    /// Number of buckets in the image.
    pub fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    /// Raw ciphertext of bucket `index` (for tests).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn ciphertext(&self, index: usize) -> &[u8] {
        let bb = self.bucket_bytes();
        &self.backing.bytes()[index * bb..(index + 1) * bb]
    }

    fn write_header(header: &mut [u8], mac: &Mac, bucket_index: u64, nonce: u64, version: u64) {
        header[0..8].copy_from_slice(&nonce.to_le_bytes());
        header[8..16].copy_from_slice(&version.to_le_bytes());
        let tag = mac.tag(&[bucket_index, nonce, version], &[]);
        header[16..24].copy_from_slice(&tag.to_le_bytes());
    }

    // ----- crash-consistent commit protocol (DESIGN.md section 15) -----

    /// Arms (or disarms) the store-level kill points. The controller owns
    /// the pipeline-stage points; the store fires `MidJournal`, `MidFlip`
    /// and `PooledEncrypt` itself because only it sees those crossings.
    pub(crate) fn arm_crash(&mut self, arm: Option<CrashArm>) {
        self.crash = arm;
    }

    /// The kill point that killed this store, if one fired. The store
    /// stays dead (writes dropped) until `recover_txn`.
    pub fn crash_fired(&self) -> Option<KillPoint> {
        self.fired
    }

    /// Trusted epoch counter (advanced by each commit flip).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Verifies the durable epoch header's MAC against the trusted epoch.
    pub fn epoch_header_ok(&self) -> bool {
        self.epoch_tag == self.mac.tag(&[EPOCH_DOMAIN, self.epoch], &[])
    }

    /// The store's MAC (checkpoints are sealed under the same key domain
    /// machinery as slots and the epoch header).
    pub(crate) fn mac(&self) -> &Mac {
        &self.mac
    }

    /// Test hook: makes job `job` of the next pooled write batch panic on
    /// its worker, exercising the pool's panic surface and the serial
    /// fallback without arming crash injection.
    pub fn inject_pool_panic(&mut self, job: usize) {
        self.pool_panic_job = Some(job);
    }

    /// Opens a transaction: subsequent bucket writes journal a first-touch
    /// undo entry (old image + old version) before touching home.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already open — the controller must
    /// commit or recover first.
    pub(crate) fn begin_txn(&mut self, checkpoint_a: Vec<u8>) {
        assert!(self.journal.is_none(), "transaction already open");
        self.journal = Some(TxnJournal {
            begin_epoch: self.epoch,
            entries: Vec::new(),
            checkpoint_a,
            checkpoint_b: None,
        });
    }

    /// Commits the open transaction: stores checkpoint B, flips the
    /// MAC-bound epoch header, and discards the journal. After the flip
    /// the transaction is durable — a crash between flip and discard is
    /// replayed forward by recovery, not rolled back.
    ///
    /// Returns the journal's entry count (for observability).
    ///
    /// # Errors
    ///
    /// [`OramError::Crashed`] if the `MidFlip` kill point fires between
    /// the flip and the journal discard.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub(crate) fn commit_txn(&mut self, checkpoint_b: Vec<u8>) -> Result<u64, OramError> {
        let journal = self.journal.as_mut().expect("commit without begin_txn");
        journal.checkpoint_b = Some(checkpoint_b);
        let entries = journal.entries.len() as u64;
        self.epoch += 1;
        self.epoch_tag = self.mac.tag(&[EPOCH_DOMAIN, self.epoch], &[]);
        if self.cross(KillPoint::MidFlip) {
            return Err(OramError::Crashed {
                point: KillPoint::MidFlip,
            });
        }
        self.journal = None;
        Ok(entries)
    }

    /// Store-level recovery: compares the epoch header against the open
    /// journal's begin epoch. Not yet flipped → roll every journaled
    /// image and version counter back; flipped → home is authoritative,
    /// discard the undo images. Either way the journal closes, the crash
    /// state clears, and the sealed checkpoint to adopt (A on rollback, B
    /// on replay) is handed to the controller.
    ///
    /// Returns `None` when no transaction was open (a crash before the
    /// first journaled write needs only checkpoint-free cleanup).
    ///
    /// # Panics
    ///
    /// Panics if the durable epoch header fails its MAC — recovery must
    /// never trust a forged epoch.
    pub(crate) fn recover_txn(&mut self) -> Option<StoreRecovery> {
        assert!(self.epoch_header_ok(), "epoch header failed authentication");
        self.fired = None;
        let journal = self.journal.take()?;
        let entries = journal.entries.len();
        let touched: Vec<usize> = journal.entries.iter().map(|e| e.index).collect();
        if self.epoch == journal.begin_epoch {
            // Rollback: restore the pre-transaction image and trusted
            // version of every touched bucket, newest-first so a bucket
            // journaled once is restored exactly once either way.
            let bb = self.bucket_bytes();
            for e in journal.entries.iter().rev() {
                self.backing.bytes_mut()[e.index * bb..(e.index + 1) * bb]
                    .copy_from_slice(&e.image);
                self.versions[e.index] = e.version;
            }
            Some(StoreRecovery {
                replay: false,
                checkpoint: journal.checkpoint_a,
                touched,
                entries,
                restored: entries,
            })
        } else {
            let checkpoint = journal
                .checkpoint_b
                .expect("a flipped transaction always carries checkpoint B");
            Some(StoreRecovery {
                replay: true,
                checkpoint,
                touched,
                entries,
                restored: 0,
            })
        }
    }

    /// Records a first-touch undo entry for `index` if a transaction is
    /// open. Returns `false` when the `MidJournal` kill point fired on
    /// this crossing — the caller must drop the write (the undo entry
    /// itself is durable; the home write never happens).
    fn journal_record(&mut self, index: usize) -> bool {
        let Some(journal) = self.journal.as_mut() else {
            return true;
        };
        if journal.touched(index) {
            return true;
        }
        let bb = self.bucket_bytes();
        let image = self.backing.bytes()[index * bb..(index + 1) * bb].to_vec();
        let version = self.versions[index];
        self.journal
            .as_mut()
            .expect("journal open")
            .entries
            .push(UndoEntry {
                index,
                image,
                version,
            });
        !self.cross(KillPoint::MidJournal)
    }

    /// Crosses a store-level kill point; `true` means it fired and the
    /// store is now dead.
    fn cross(&mut self, point: KillPoint) -> bool {
        if let Some(arm) = self.crash.as_mut() {
            if arm.cross(point) {
                self.fired = Some(point);
                return true;
            }
        }
        false
    }

    /// Serializes, encrypts and stores `bucket` at `index` under a fresh
    /// nonce, advancing the bucket's trusted version counter.
    ///
    /// # Panics
    ///
    /// Panics if the bucket exceeds `z` blocks or a payload exceeds the
    /// payload area.
    pub fn write_bucket(&mut self, index: usize, bucket: &Bucket) {
        if self.fired.is_some() || !self.journal_record(index) {
            return; // the "process" died; this write never reaches DRAM
        }
        assert!(bucket.len() <= self.z, "bucket exceeds Z");
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let version = self.versions[index] + 1;
        self.versions[index] = version;
        self.write_bucket_at(index, bucket, nonce, version);
    }

    /// The encrypt-and-store body of [`EncryptedStore::write_bucket`],
    /// with the nonce/version already assigned (also the serial-fallback
    /// path when a pooled batch loses its workers to a panic).
    fn write_bucket_at(&mut self, index: usize, bucket: &Bucket, nonce: u64, version: u64) {
        let bb = self.bucket_bytes();
        let slot_bytes = SLOT_HEADER_BYTES + self.payload_bytes;
        // Serialize and encrypt directly in the image — no staging buffer.
        let (mac, cipher, payload_bytes) = (self.mac, self.cipher, self.payload_bytes);
        let out = self.backing.begin_write(index, bb);
        Self::write_header(
            &mut out[..BUCKET_HEADER_BYTES],
            &mac,
            index as u64,
            nonce,
            version,
        );
        let plain = &mut out[BUCKET_HEADER_BYTES..];
        // Zero first so unfilled slots are dummy blocks, indistinguishable
        // after encryption.
        plain.fill(0);
        for (i, block) in bucket.iter().enumerate() {
            let slot = &mut plain[i * slot_bytes..(i + 1) * slot_bytes];
            Self::serialize_fields(block, slot, payload_bytes);
            Self::seal_slot(slot, &mac, index as u64, version);
        }
        cipher.encrypt(nonce, plain);
        self.backing.commit_write(index);
    }

    /// Serializes, encrypts and stores a whole path's buckets, exactly as
    /// if [`EncryptedStore::write_bucket`] were called once per pair in
    /// slice order — same nonce sequence, same version counters, same
    /// bytes. With a pool attached ([`EncryptedStore::attach_pool`]) and
    /// no fault injection, the expensive per-bucket work (slot MACs +
    /// encryption) runs on the pool while this thread serializes fields
    /// and commits results in bucket order, so the image is byte-identical
    /// to the serial path at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if any bucket exceeds `z` blocks or a payload exceeds the
    /// payload area.
    pub fn write_buckets(&mut self, buckets: &[(usize, &Bucket)]) {
        if self.fired.is_some() {
            return; // the "process" died; nothing reaches DRAM
        }
        if !self.parallel_active() || buckets.len() < 2 {
            for &(index, bucket) in buckets {
                self.write_bucket(index, bucket);
            }
            return;
        }
        let slot_bytes = SLOT_HEADER_BYTES + self.payload_bytes;
        let body_bytes = self.z * slot_bytes;
        let payload_bytes = self.payload_bytes;
        // Fork: journal first touches, assign nonces/versions and
        // serialize slot fields in path order on this thread — the
        // sequenced, cheap part — so workers receive pure, owned
        // seal/encrypt jobs. Journaling and assignment both precede the
        // dispatch so a crash anywhere in the batch (`MidJournal` here,
        // `PooledEncrypt` in a worker) leaves every bucket of the batch
        // covered by an undo entry, version bumps included.
        let mut jobs: Vec<SealJob> = Vec::with_capacity(buckets.len());
        let panic_job = self.pool_panic_job.take();
        for (k, &(index, bucket)) in buckets.iter().enumerate() {
            if !self.journal_record(index) {
                // MidJournal fired mid-batch: abandon the whole batch.
                for job in jobs {
                    self.body_scratch.push(job.body);
                }
                return;
            }
            assert!(bucket.len() <= self.z, "bucket exceeds Z");
            let nonce = self.next_nonce;
            self.next_nonce += 1;
            let version = self.versions[index] + 1;
            self.versions[index] = version;
            let boom = (self.journal.is_some() && self.cross(KillPoint::PooledEncrypt))
                || panic_job == Some(k);
            let mut body = self.body_scratch.pop().unwrap_or_default();
            body.clear();
            body.resize(body_bytes, 0);
            for (i, block) in bucket.iter().enumerate() {
                let slot = &mut body[i * slot_bytes..(i + 1) * slot_bytes];
                Self::serialize_fields(block, slot, payload_bytes);
            }
            jobs.push(SealJob {
                index,
                nonce,
                version,
                body,
                boom,
            });
        }
        // Record the assignments before the pool consumes the jobs: on a
        // non-crash worker panic the serial fallback recomputes each
        // bucket under its original (nonce, version), keeping the image
        // byte-identical to an all-clean run.
        let assigned: Vec<(u64, u64)> = jobs.iter().map(|j| (j.nonce, j.version)).collect();
        let (mac, cipher) = (self.mac, self.cipher);
        let pool = Arc::clone(self.pool.as_ref().expect("parallel_active implies pool"));
        let sealed = match pool.try_run(jobs, move |mut job: SealJob| {
            if job.boom {
                panic!("injected panic in pooled seal job");
            }
            for i in 0..job.body.len() / slot_bytes {
                let slot = &mut job.body[i * slot_bytes..(i + 1) * slot_bytes];
                if slot[0] == 1 {
                    Self::seal_slot(slot, &mac, job.index as u64, job.version);
                }
            }
            cipher.encrypt(job.nonce, &mut job.body);
            job
        }) {
            Ok(sealed) => sealed,
            Err(_) if self.fired.is_some() => {
                // The PooledEncrypt kill point: the worker "process" died
                // before any commit (pooled commits happen after the
                // join), so the batch simply never lands.
                return;
            }
            Err(_) => {
                // Graceful degradation: a real (uninjected-crash) worker
                // panic consumed the jobs; recompute serially under the
                // recorded assignments.
                for (&(index, bucket), &(nonce, version)) in buckets.iter().zip(&assigned) {
                    self.write_bucket_at(index, bucket, nonce, version);
                }
                return;
            }
        };
        // Join: commit results in bucket order, recycling the buffers.
        let bb = self.bucket_bytes();
        for job in sealed {
            let out = self.backing.begin_write(job.index, bb);
            Self::write_header(
                &mut out[..BUCKET_HEADER_BYTES],
                &self.mac,
                job.index as u64,
                job.nonce,
                job.version,
            );
            out[BUCKET_HEADER_BYTES..].copy_from_slice(&job.body);
            self.backing.commit_write(job.index);
            self.body_scratch.push(job.body);
        }
    }

    /// Reads, decrypts, authenticates and deserializes bucket `index`.
    ///
    /// # Errors
    ///
    /// Reports tampering as [`OramError::Integrity`], an authentic stale
    /// image as [`OramError::Rollback`], and a transient read failure that
    /// exhausted its retry budget as [`OramError::Transient`].
    pub fn try_read_bucket(&mut self, index: usize) -> Result<Vec<Block>, OramError> {
        let mut plain = Vec::new();
        let version = self.authenticated_plain(index, &mut plain)?;
        let slot_bytes = SLOT_HEADER_BYTES + self.payload_bytes;
        let mut blocks = Vec::new();
        for i in 0..self.z {
            let slot = &plain[i * slot_bytes..(i + 1) * slot_bytes];
            match Self::deserialize_block(slot, &self.mac, index as u64, version) {
                Ok(Some(b)) => blocks.push(b),
                Ok(None) => {}
                Err(()) => {
                    let err = OramError::Integrity {
                        bucket: index,
                        slot: Some(i),
                    };
                    self.note_detected(index, &err);
                    return Err(err);
                }
            }
        }
        self.note_clean_read(index);
        Ok(blocks)
    }

    /// Authenticates bucket `index`'s cleartext header against the trusted
    /// version counter; returns the stored `(nonce, version)` on success.
    /// Pure with respect to the store (no fault bookkeeping) so the
    /// parallel read path can pre-authenticate a whole path.
    fn check_header(&self, index: usize) -> Result<(u64, u64), OramError> {
        let bb = self.bucket_bytes();
        let raw = &self.backing.bytes()[index * bb..(index + 1) * bb];
        let nonce = u64::from_le_bytes(raw[0..8].try_into().expect("nonce"));
        let version = u64::from_le_bytes(raw[8..16].try_into().expect("version"));
        let stored_tag = u64::from_le_bytes(raw[16..24].try_into().expect("header tag"));
        if stored_tag != self.mac.tag(&[index as u64, nonce, version], &[]) {
            return Err(OramError::Integrity {
                bucket: index,
                slot: None,
            });
        }
        let expected = self.versions[index];
        if version != expected {
            // The header authenticates, so (nonce, version) was once valid
            // for this bucket: an old version is a replayed stale image.
            // (A version ahead of the trusted counter cannot be produced
            // by replay; classify it as corruption defensively.)
            return Err(if version < expected {
                OramError::Rollback {
                    bucket: index,
                    stored_version: version,
                    expected_version: expected,
                }
            } else {
                OramError::Integrity {
                    bucket: index,
                    slot: None,
                }
            });
        }
        Ok((nonce, version))
    }

    /// Runs the transient-read gate, authenticates bucket `index`'s header
    /// against the trusted version counter, and decrypts the body into the
    /// caller's reusable buffer. Returns the authenticated version.
    fn authenticated_plain(&mut self, index: usize, plain: &mut Vec<u8>) -> Result<u64, OramError> {
        if let Backing::Faulty(f) = &mut self.backing {
            if let Err(attempts) = f.read_gate() {
                return Err(OramError::Transient {
                    bucket: index,
                    attempts,
                });
            }
        }
        let (nonce, version) = match self.check_header(index) {
            Ok(hv) => hv,
            Err(err) => {
                self.note_detected(index, &err);
                return Err(err);
            }
        };
        let bb = self.bucket_bytes();
        let raw = &self.backing.bytes()[index * bb..(index + 1) * bb];
        plain.clear();
        plain.extend_from_slice(&raw[BUCKET_HEADER_BYTES..]);
        if nonce != 0 {
            self.cipher.decrypt(nonce, plain);
        }
        Ok(version)
    }

    fn note_detected(&mut self, index: usize, err: &OramError) {
        if let Backing::Faulty(f) = &mut self.backing {
            f.note_detected(index, err);
        }
    }

    fn note_clean_read(&mut self, index: usize) {
        if let Backing::Faulty(f) = &mut self.backing {
            f.note_clean_read(index);
        }
    }

    /// Authenticates bucket `index` and appends the address of every real
    /// block it holds to `addrs`, without reconstructing payloads.
    ///
    /// `plain` is a caller-owned scratch buffer reused across calls, so
    /// the per-bucket verification the controller performs in
    /// [`verify_image` mode](crate::OramConfig::verify_image) allocates
    /// nothing.
    ///
    /// # Errors
    ///
    /// Same classification as [`EncryptedStore::try_read_bucket`].
    pub fn bucket_addrs_into(
        &mut self,
        index: usize,
        plain: &mut Vec<u8>,
        addrs: &mut Vec<u64>,
    ) -> Result<(), OramError> {
        let version = self.authenticated_plain(index, plain)?;
        let slot_bytes = SLOT_HEADER_BYTES + self.payload_bytes;
        for i in 0..self.z {
            let slot = &plain[i * slot_bytes..(i + 1) * slot_bytes];
            match Self::check_slot(slot, &self.mac, index as u64, version) {
                Ok(Some((addr, ..))) => addrs.push(addr.0),
                Ok(None) => {}
                Err(()) => {
                    let err = OramError::Integrity {
                        bucket: index,
                        slot: Some(i),
                    };
                    self.note_detected(index, &err);
                    return Err(err);
                }
            }
        }
        self.note_clean_read(index);
        Ok(())
    }

    /// Batch analogue of [`EncryptedStore::bucket_addrs_into`] over a
    /// whole path: fills `out` with one address vector per entry of
    /// `indices` (same order). With a pool attached and fault injection
    /// off, header authentication stays on this thread while per-bucket
    /// decryption and slot verification fan across the workers; results
    /// merge in path order, so the first error reported is the same one
    /// the serial loop would hit. Vectors already in `out` are recycled.
    ///
    /// # Errors
    ///
    /// Same classification as [`EncryptedStore::try_read_bucket`]; on
    /// error `out` holds the address vectors of the buckets preceding the
    /// failing one.
    pub fn bucket_addrs_batch(
        &mut self,
        indices: &[usize],
        out: &mut Vec<Vec<u64>>,
    ) -> Result<(), OramError> {
        for mut v in out.drain(..) {
            v.clear();
            self.addr_scratch.push(v);
        }
        if !self.parallel_active() || indices.len() < 2 {
            return self.bucket_addrs_batch_serial(indices, out);
        }
        // Fork: authenticate every header in path order first. A header
        // failure here bails to the serial loop so the error reported is
        // the first one *in path order* (a later bucket's slots might
        // also be corrupt; the serial loop arbitrates).
        let bb = self.bucket_bytes();
        let mut jobs: Vec<VerifyJob> = Vec::with_capacity(indices.len());
        for &index in indices {
            let (nonce, version) = match self.check_header(index) {
                Ok(hv) => hv,
                Err(_) => {
                    for job in jobs {
                        self.body_scratch.push(job.body);
                        self.addr_scratch.push(job.addrs);
                    }
                    return self.bucket_addrs_batch_serial(indices, out);
                }
            };
            let raw = &self.backing.bytes()[index * bb..(index + 1) * bb];
            let mut body = self.body_scratch.pop().unwrap_or_default();
            body.clear();
            body.extend_from_slice(&raw[BUCKET_HEADER_BYTES..]);
            let mut addrs = self.addr_scratch.pop().unwrap_or_default();
            addrs.clear();
            jobs.push(VerifyJob {
                index,
                nonce,
                version,
                body,
                addrs,
                bad_slot: None,
            });
        }
        let (mac, cipher) = (self.mac, self.cipher);
        let slot_bytes = SLOT_HEADER_BYTES + self.payload_bytes;
        let z = self.z;
        let pool = Arc::clone(self.pool.as_ref().expect("parallel_active implies pool"));
        let done = match pool.try_run(jobs, move |mut job: VerifyJob| {
            if job.nonce != 0 {
                cipher.decrypt(job.nonce, &mut job.body);
            }
            for i in 0..z {
                let slot = &job.body[i * slot_bytes..(i + 1) * slot_bytes];
                match Self::check_slot(slot, &mac, job.index as u64, job.version) {
                    Ok(Some((addr, ..))) => job.addrs.push(addr.0),
                    Ok(None) => {}
                    Err(()) => {
                        job.bad_slot = Some(i);
                        break;
                    }
                }
            }
            job
        }) {
            Ok(done) => done,
            // Graceful degradation: a worker panic consumed the jobs (and
            // their scratch buffers); the read is side-effect-free, so
            // just redo it serially.
            Err(_) => return self.bucket_addrs_batch_serial(indices, out),
        };
        // Join: merge in path order; the first bad slot wins.
        let mut first_err = None;
        for job in done {
            if first_err.is_none() {
                if let Some(slot) = job.bad_slot {
                    first_err = Some(OramError::Integrity {
                        bucket: job.index,
                        slot: Some(slot),
                    });
                    self.addr_scratch.push(job.addrs);
                } else {
                    out.push(job.addrs);
                }
            } else {
                self.addr_scratch.push(job.addrs);
            }
            self.body_scratch.push(job.body);
        }
        match first_err {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// The serial body of [`EncryptedStore::bucket_addrs_batch`]: one
    /// [`EncryptedStore::bucket_addrs_into`] call per bucket, in order.
    fn bucket_addrs_batch_serial(
        &mut self,
        indices: &[usize],
        out: &mut Vec<Vec<u64>>,
    ) -> Result<(), OramError> {
        let mut plain = self.body_scratch.pop().unwrap_or_default();
        for &index in indices {
            let mut addrs = self.addr_scratch.pop().unwrap_or_default();
            addrs.clear();
            match self.bucket_addrs_into(index, &mut plain, &mut addrs) {
                Ok(()) => out.push(addrs),
                Err(err) => {
                    self.addr_scratch.push(addrs);
                    self.body_scratch.push(plain);
                    return Err(err);
                }
            }
        }
        self.body_scratch.push(plain);
        Ok(())
    }

    /// Verifies one bucket's header and slot authentication tags.
    ///
    /// # Errors
    ///
    /// Same classification as [`EncryptedStore::try_read_bucket`].
    pub fn verify_bucket(&mut self, index: usize) -> Result<(), OramError> {
        self.try_read_bucket(index).map(|_| ())
    }

    /// Verifies every bucket's authentication tags (the scrub pass).
    ///
    /// # Errors
    ///
    /// Returns the first [`OramError`] encountered.
    pub fn verify_all(&mut self) -> Result<(), OramError> {
        for idx in 0..self.num_buckets {
            self.verify_bucket(idx)?;
        }
        Ok(())
    }

    /// Fault injection for tests: XORs `mask` into one ciphertext byte of
    /// bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if the offset is outside the bucket or the mask is zero (a
    /// zero mask would not corrupt anything).
    pub fn corrupt_byte(&mut self, index: usize, offset: usize, mask: u8) {
        assert!(mask != 0, "a zero mask does not corrupt");
        let bb = self.bucket_bytes();
        assert!(offset < bb, "offset {offset} outside bucket of {bb} bytes");
        self.backing.bytes_mut()[index * bb + offset] ^= mask;
    }

    /// Writes a block's slot fields — valid flag, address, leaf, hit,
    /// payload kind/length and the payload bytes — leaving the tag field
    /// zero. [`Self::seal_slot`] computes the tag afterwards; the split
    /// lets the cheap field writes stay on the dispatching thread while
    /// workers do the MAC work.
    fn serialize_fields(block: &Block, slot: &mut [u8], payload_bytes: usize) {
        let (head, body_area) = slot.split_at_mut(SLOT_HEADER_BYTES);
        head[0] = 1; // valid
        head[1..9].copy_from_slice(&block.addr.0.to_le_bytes());
        head[9..13].copy_from_slice(&block.leaf.0.to_le_bytes());
        head[13] = u8::from(block.hit);
        // Serialize the payload straight into the slot's body area — no
        // staging Vec; the MAC is computed over the written bytes.
        let (kind, len): (u8, usize) = match &block.payload {
            Payload::Opaque => (0, 0),
            Payload::Data(bytes) => {
                assert!(
                    bytes.len() <= payload_bytes,
                    "payload {} exceeds slot {payload_bytes}",
                    bytes.len()
                );
                body_area[..bytes.len()].copy_from_slice(bytes);
                (1, bytes.len())
            }
            Payload::PosMap(entries) => {
                let len = entries.len() * ENTRY_BYTES;
                assert!(
                    len <= payload_bytes,
                    "payload {len} exceeds slot {payload_bytes}"
                );
                for (e, out) in entries.iter().zip(body_area.chunks_exact_mut(ENTRY_BYTES)) {
                    out[0..4].copy_from_slice(&e.leaf.0.to_le_bytes());
                    out[4..6].copy_from_slice(&e.merge.to_le_bytes());
                    out[6..8].copy_from_slice(&e.brk.to_le_bytes());
                    out[8] = u8::from(e.prefetch);
                }
                (2, len)
            }
        };
        head[14] = kind;
        head[15..17].copy_from_slice(&(len as u16).to_le_bytes());
    }

    /// Computes and stores a serialized slot's authentication tag. The
    /// tag binds the slot's raw bytes — header fields and the whole
    /// payload area, used or not (zeroed padding included, so a flip
    /// past `len` is still caught) — plus the bucket index and version,
    /// so replaying an authentic slot at a different tree position or
    /// from an older epoch fails verification. The tag field itself is
    /// zero at this point and excluded from coverage.
    fn seal_slot(slot: &mut [u8], mac: &Mac, bucket_index: u64, version: u64) {
        let (head, body_area) = slot.split_at_mut(SLOT_HEADER_BYTES);
        let tag = mac.tag_parts(
            &[bucket_index, version],
            &[&head[..SLOT_TAG_OFFSET], body_area],
        );
        head[SLOT_TAG_OFFSET..SLOT_HEADER_BYTES].copy_from_slice(&tag.to_le_bytes());
    }

    /// Validates and authenticates one slot without touching the payload
    /// encoding: `Ok(None)` = dummy slot, `Ok(Some((addr, leaf, hit, kind,
    /// len)))` = authenticated header, `Err(())` = tampering.
    fn check_slot(
        slot: &[u8],
        mac: &Mac,
        bucket_index: u64,
        version: u64,
    ) -> Result<Option<SlotHeader>, ()> {
        if slot[0] != 1 {
            // Dummy slots are all-zero after decryption; any other value
            // in the valid flag is tampering.
            return if slot.iter().all(|&b| b == 0) {
                Ok(None)
            } else {
                Err(())
            };
        }
        let addr = BlockAddr(u64::from_le_bytes(slot[1..9].try_into().expect("addr")));
        let leaf = Leaf(u32::from_le_bytes(slot[9..13].try_into().expect("leaf")));
        let hit = slot[13] != 0;
        let kind = slot[14];
        let len = u16::from_le_bytes(slot[15..17].try_into().expect("len")) as usize;
        if len > slot.len().saturating_sub(SLOT_HEADER_BYTES) {
            return Err(()); // corrupted length field
        }
        let stored_tag = u64::from_le_bytes(
            slot[SLOT_TAG_OFFSET..SLOT_HEADER_BYTES]
                .try_into()
                .expect("tag"),
        );
        let expected = mac.tag_parts(
            &[bucket_index, version],
            &[&slot[..SLOT_TAG_OFFSET], &slot[SLOT_HEADER_BYTES..]],
        );
        if stored_tag != expected {
            return Err(());
        }
        Ok(Some((addr, leaf, hit, kind, len)))
    }

    /// `Ok(None)` = dummy slot, `Ok(Some)` = authenticated block,
    /// `Err(())` = tag mismatch.
    fn deserialize_block(
        slot: &[u8],
        mac: &Mac,
        bucket_index: u64,
        version: u64,
    ) -> Result<Option<Block>, ()> {
        let Some((addr, leaf, hit, kind, len)) =
            Self::check_slot(slot, mac, bucket_index, version)?
        else {
            return Ok(None);
        };
        let body = &slot[SLOT_HEADER_BYTES..SLOT_HEADER_BYTES + len];
        let payload = match kind {
            0 => Payload::Opaque,
            1 => Payload::Data(body.to_vec().into()),
            2 => {
                let mut entries = Vec::with_capacity(len / ENTRY_BYTES);
                for chunk in body.chunks_exact(ENTRY_BYTES) {
                    entries.push(PosEntry {
                        leaf: Leaf(u32::from_le_bytes(chunk[0..4].try_into().expect("eleaf"))),
                        merge: i16::from_le_bytes(chunk[4..6].try_into().expect("merge")),
                        brk: i16::from_le_bytes(chunk[6..8].try_into().expect("brk")),
                        prefetch: chunk[8] != 0,
                    });
                }
                Payload::PosMap(entries.into())
            }
            _ => return Err(()), // unknown payload kind: tampering
        };
        Ok(Some(Block {
            addr,
            leaf,
            hit,
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultClass;

    fn store() -> EncryptedStore {
        EncryptedStore::new(8, 3, 128, 0x5EED)
    }

    fn data_block(addr: u64, fill: u8) -> Block {
        Block::with_data(BlockAddr(addr), Leaf(3), vec![fill; 128].into())
    }

    #[test]
    fn round_trip_data_bucket() {
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(1, 0xAA));
        b.push(data_block(2, 0xBB));
        s.write_bucket(4, &b);
        let blocks = s.try_read_bucket(4).expect("authentic bucket");
        assert_eq!(blocks.len(), 2);
        let b1 = blocks.iter().find(|b| b.addr == BlockAddr(1)).unwrap();
        assert_eq!(b1.leaf, Leaf(3));
        match &b1.payload {
            Payload::Data(bytes) => assert!(bytes.iter().all(|&x| x == 0xAA)),
            other => panic!("wrong payload: {other:?}"),
        }
    }

    #[test]
    fn round_trip_posmap_bucket() {
        let mut s = store();
        let entries = vec![
            PosEntry {
                leaf: Leaf(7),
                merge: -2,
                brk: 3,
                prefetch: true,
            },
            PosEntry::new(Leaf(9)),
        ];
        let mut b = Bucket::new(3);
        b.push(Block::posmap(
            BlockAddr(100),
            Leaf(1),
            entries.clone().into(),
        ));
        s.write_bucket(0, &b);
        let blocks = s.try_read_bucket(0).expect("authentic bucket");
        assert_eq!(blocks[0].entries(), entries.as_slice());
    }

    #[test]
    fn hit_bit_survives() {
        let mut s = store();
        let mut blk = data_block(1, 0x11);
        blk.hit = true;
        let mut b = Bucket::new(3);
        b.push(blk);
        s.write_bucket(1, &b);
        assert!(s.try_read_bucket(1).expect("authentic bucket")[0].hit);
    }

    #[test]
    fn empty_bucket_round_trips() {
        let mut s = store();
        s.write_bucket(2, &Bucket::new(3));
        assert!(s.try_read_bucket(2).expect("authentic bucket").is_empty());
    }

    #[test]
    fn unwritten_bucket_reads_empty() {
        let mut s = store();
        assert!(s.try_read_bucket(5).expect("initial image").is_empty());
    }

    #[test]
    fn rewriting_changes_ciphertext() {
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(1, 0xCC));
        s.write_bucket(3, &b);
        let before = s.ciphertext(3).to_vec();
        s.write_bucket(3, &b); // identical plaintext
        let after = s.ciphertext(3).to_vec();
        assert_ne!(
            before, after,
            "probabilistic encryption must refresh ciphertexts"
        );
        // But the logical content is unchanged.
        assert_eq!(
            s.try_read_bucket(3).expect("authentic bucket")[0].addr,
            BlockAddr(1)
        );
    }

    #[test]
    fn dummy_slots_indistinguishable_from_real() {
        // Every bucket ciphertext has the same length regardless of how
        // many real blocks it holds.
        let mut s = store();
        let mut full = Bucket::new(3);
        for i in 0..3 {
            full.push(data_block(i, i as u8));
        }
        s.write_bucket(0, &full);
        s.write_bucket(1, &Bucket::new(3));
        assert_eq!(s.ciphertext(0).len(), s.ciphertext(1).len());
    }

    #[test]
    fn tampering_with_ciphertext_is_detected() {
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(1, 0x5A));
        s.write_bucket(2, &b);
        assert!(s.verify_all().is_ok());
        // Flip one ciphertext byte in the slot area.
        s.corrupt_byte(2, 40, 0x80);
        let err = s
            .try_read_bucket(2)
            .expect_err("tampering must be detected");
        assert_eq!(err.bucket(), Some(2));
        assert!(matches!(err, OramError::Integrity { .. }));
        assert!(s.verify_all().is_err());
    }

    #[test]
    fn tampering_with_nonce_is_detected() {
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(1, 0x5A));
        s.write_bucket(0, &b);
        s.corrupt_byte(0, 0, 0x01); // nonce byte
        assert!(matches!(
            s.try_read_bucket(0),
            Err(OramError::Integrity {
                bucket: 0,
                slot: None
            })
        ));
    }

    #[test]
    fn every_header_field_flip_reports_exact_bucket_and_slot() {
        // Flip one byte in each authenticated field — bucket header
        // (nonce, version, header tag) and slot 0's header (valid, addr,
        // leaf, hit, kind, len, tag) — and check the error names the exact
        // bucket, and the exact slot for slot-local corruption.
        let bucket_fields: [(&str, usize); 3] = [("nonce", 0), ("version", 8), ("header-tag", 16)];
        for (name, offset) in bucket_fields {
            let mut s = store();
            let mut b = Bucket::new(3);
            b.push(data_block(1, 0x5A));
            s.write_bucket(2, &b);
            s.corrupt_byte(2, offset, 0x01);
            assert_eq!(
                s.try_read_bucket(2),
                Err(OramError::Integrity {
                    bucket: 2,
                    slot: None
                }),
                "{name} flip misclassified"
            );
        }
        // Slot 0 begins after the bucket header; its field offsets follow
        // the serialized layout.
        let slot0 = BUCKET_HEADER_BYTES;
        let slot_fields: [(&str, usize); 7] = [
            ("valid", slot0),
            ("addr", slot0 + 1),
            ("leaf", slot0 + 9),
            ("hit", slot0 + 13),
            ("kind", slot0 + 14),
            ("len", slot0 + 15),
            ("tag", slot0 + SLOT_TAG_OFFSET),
        ];
        for (name, offset) in slot_fields {
            let mut s = store();
            let mut b = Bucket::new(3);
            b.push(data_block(1, 0x5A));
            s.write_bucket(2, &b);
            s.corrupt_byte(2, offset, 0x01);
            assert_eq!(
                s.try_read_bucket(2),
                Err(OramError::Integrity {
                    bucket: 2,
                    slot: Some(0)
                }),
                "{name} flip misclassified"
            );
        }
    }

    #[test]
    fn payload_bytes_past_len_are_authenticated() {
        // A posmap payload uses only part of the payload area; the MAC
        // must cover the zeroed remainder too.
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(Block::posmap(
            BlockAddr(9),
            Leaf(2),
            vec![PosEntry::new(Leaf(1)); 4].into(),
        ));
        s.write_bucket(1, &b);
        // 4 entries * 9 bytes = 36 used of 128; flip a byte well past len.
        let offset = BUCKET_HEADER_BYTES + SLOT_HEADER_BYTES + 100;
        s.corrupt_byte(1, offset, 0x40);
        assert_eq!(
            s.try_read_bucket(1),
            Err(OramError::Integrity {
                bucket: 1,
                slot: Some(0)
            })
        );
    }

    #[test]
    fn hit_byte_is_authenticated_raw() {
        // Flipping the hit byte from 1 to another nonzero value must fail:
        // the MAC covers the raw byte, not the derived bool.
        let mut s = store();
        let mut blk = data_block(1, 0x11);
        blk.hit = true;
        let mut b = Bucket::new(3);
        b.push(blk);
        s.write_bucket(0, &b);
        s.corrupt_byte(0, BUCKET_HEADER_BYTES + 13, 0x02); // 1 -> 3
        assert!(s.try_read_bucket(0).is_err());
    }

    #[test]
    fn rollback_replay_is_detected_as_rollback() {
        // Capture an authentic version-1 image, let the store advance to
        // version 2, then replay the stale image. Every MAC in the stale
        // image verifies — without version counters this replay would be
        // accepted (the error would have to be `Integrity`, and there is
        // none). The trusted version counter is what catches it.
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(1, 0x77));
        s.write_bucket(4, &b);
        let stale = s.ciphertext(4).to_vec();
        let mut b2 = Bucket::new(3);
        b2.push(data_block(2, 0x88));
        s.write_bucket(4, &b2);

        // Adversary restores the old bytes wholesale.
        for (i, byte) in stale.iter().enumerate() {
            let cur = s.ciphertext(4)[i];
            if cur != *byte {
                s.corrupt_byte(4, i, cur ^ *byte);
            }
        }
        assert_eq!(
            s.try_read_bucket(4),
            Err(OramError::Rollback {
                bucket: 4,
                stored_version: 1,
                expected_version: 2
            }),
            "authentic stale image must be classified as rollback, not corruption"
        );

        // Control: the same stale image under a store whose trusted
        // counter still expects version 1 authenticates perfectly — i.e.
        // the MACs alone cannot reject it; only the version counter does.
        let mut fresh = store();
        let mut b = Bucket::new(3);
        b.push(data_block(1, 0x77));
        fresh.write_bucket(4, &b);
        assert!(fresh.try_read_bucket(4).is_ok());
    }

    #[test]
    fn replaying_another_buckets_ciphertext_is_detected() {
        // Copy bucket 0's authentic ciphertext over bucket 1: the nonce
        // decrypts and the tags are valid MACs — but they bind the
        // *source* bucket index, so the replay fails verification at the
        // destination.
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(7, 0x22));
        s.write_bucket(0, &b);
        s.write_bucket(1, &Bucket::new(3));
        let src: Vec<u8> = s.ciphertext(0).to_vec();
        for (i, byte) in src.iter().enumerate() {
            let cur = s.ciphertext(1)[i];
            if cur != *byte {
                s.corrupt_byte(1, i, cur ^ *byte);
            }
        }
        assert!(
            s.try_read_bucket(1).is_err(),
            "bucket replay must not authenticate"
        );
        // The source bucket itself still verifies.
        assert!(s.try_read_bucket(0).is_ok());
    }

    #[test]
    fn addr_only_reads_match_full_reads() {
        let mut s = store();
        let mut b = Bucket::new(3);
        b.push(data_block(5, 0x01));
        b.push(data_block(9, 0x02));
        s.write_bucket(6, &b);
        let mut plain = Vec::new();
        let mut addrs = Vec::new();
        s.bucket_addrs_into(6, &mut plain, &mut addrs).unwrap();
        let mut full: Vec<u64> = s
            .try_read_bucket(6)
            .expect("authentic bucket")
            .iter()
            .map(|b| b.addr.0)
            .collect();
        addrs.sort_unstable();
        full.sort_unstable();
        assert_eq!(addrs, full);
        // Tampering is detected on the addr-only path too.
        s.corrupt_byte(6, 40, 0x10);
        addrs.clear();
        assert!(s.bucket_addrs_into(6, &mut plain, &mut addrs).is_err());
    }

    #[test]
    fn transient_failures_exhaust_into_typed_error() {
        let mut s = store();
        s.enable_faults(FaultConfig {
            retry_budget: 2,
            ..FaultConfig::single(FaultClass::Transient, 1.0, 5)
        });
        let mut b = Bucket::new(3);
        b.push(data_block(1, 0x11));
        s.write_bucket(0, &b);
        assert_eq!(
            s.try_read_bucket(0),
            Err(OramError::Transient {
                bucket: 0,
                attempts: 3
            })
        );
        assert_eq!(s.fault_stats().injected_transients, 3);
    }

    #[test]
    fn injected_write_faults_are_always_detected() {
        // Drive every write-fault class at a high rate and read each
        // bucket back after every write: zero false negatives.
        for class in [
            FaultClass::BitFlip,
            FaultClass::TornWrite,
            FaultClass::Rollback,
        ] {
            let mut s = store();
            s.enable_faults(FaultConfig::single(class, 0.5, 42));
            let mut injected_before = 0;
            for round in 0..50u64 {
                let idx = (round % 8) as usize;
                let mut b = Bucket::new(3);
                b.push(data_block(round, round as u8));
                s.write_bucket(idx, &b);
                let stats = s.fault_stats();
                let injected = stats.total_injected();
                let read = s.try_read_bucket(idx);
                if injected > injected_before {
                    assert!(read.is_err(), "{} fault escaped detection", class.name());
                    // Repair so the next round starts authentic.
                    s.write_bucket(idx, &b);
                } else {
                    assert!(read.is_ok());
                }
                injected_before = s.fault_stats().total_injected();
            }
            let stats = s.fault_stats();
            assert_eq!(stats.undetected, 0, "{}", class.name());
            assert!(stats.total_injected() > 0, "{}", class.name());
        }
    }

    #[test]
    fn silent_injector_is_observationally_identical() {
        let run = |faulty: bool| {
            let mut s = store();
            if faulty {
                s.enable_faults(FaultConfig::silent(123));
            }
            let mut images = Vec::new();
            for round in 0..20u64 {
                let idx = (round % 8) as usize;
                let mut b = Bucket::new(3);
                b.push(data_block(round, round as u8));
                s.write_bucket(idx, &b);
                assert!(s.try_read_bucket(idx).is_ok());
                images.push(s.ciphertext(idx).to_vec());
            }
            images
        };
        assert_eq!(run(false), run(true));
    }

    /// The same batch written through the serial loop and through a
    /// pooled `write_buckets` must yield byte-identical images: same
    /// nonce sequence, same versions, same ciphertext.
    #[test]
    fn write_buckets_is_byte_identical_to_serial_loop() {
        for threads in [2usize, 4, 7] {
            let mut serial = store();
            let mut pooled = store();
            pooled.attach_pool(Arc::new(WorkerPool::new(threads)));
            assert!(pooled.parallel_active());
            for round in 0..6u64 {
                let batch: Vec<(usize, Bucket)> = (0..4)
                    .map(|i| {
                        let mut b = Bucket::new(3);
                        for j in 0..=(i % 3) {
                            b.push(data_block(round * 16 + i as u64 * 4 + j as u64, i as u8));
                        }
                        ((i + round as usize) % 8, b)
                    })
                    .collect();
                let refs: Vec<(usize, &Bucket)> = batch.iter().map(|(idx, b)| (*idx, b)).collect();
                for &(idx, b) in &refs {
                    serial.write_bucket(idx, b);
                }
                pooled.write_buckets(&refs);
            }
            for idx in 0..8 {
                assert_eq!(
                    serial.ciphertext(idx),
                    pooled.ciphertext(idx),
                    "threads={threads} bucket={idx}"
                );
            }
        }
    }

    #[test]
    fn bucket_addrs_batch_matches_per_bucket_reads() {
        let mut s = store();
        s.attach_pool(Arc::new(WorkerPool::new(4)));
        let batch: Vec<(usize, Bucket)> = (0..8)
            .map(|i| {
                let mut b = Bucket::new(3);
                b.push(data_block(i as u64 * 2, i as u8));
                b.push(data_block(i as u64 * 2 + 1, i as u8));
                (i, b)
            })
            .collect();
        let refs: Vec<(usize, &Bucket)> = batch.iter().map(|(idx, b)| (*idx, b)).collect();
        s.write_buckets(&refs);
        let indices: Vec<usize> = (0..8).collect();
        let mut out = Vec::new();
        s.bucket_addrs_batch(&indices, &mut out).expect("authentic");
        assert_eq!(out.len(), 8);
        let mut plain = Vec::new();
        for (i, addrs) in out.iter().enumerate() {
            let mut expect = Vec::new();
            s.bucket_addrs_into(i, &mut plain, &mut expect).unwrap();
            assert_eq!(addrs, &expect, "bucket {i}");
        }
        // A second round recycles the previous vectors.
        s.bucket_addrs_batch(&indices, &mut out).expect("authentic");
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn bucket_addrs_batch_reports_first_error_in_path_order() {
        let corrupt_and_read = |pool: bool, corrupt: &[usize]| {
            let mut s = store();
            if pool {
                s.attach_pool(Arc::new(WorkerPool::new(4)));
            }
            for i in 0..8 {
                let mut b = Bucket::new(3);
                b.push(data_block(i as u64, 1));
                s.write_bucket(i, &b);
            }
            for &idx in corrupt {
                s.corrupt_byte(idx, BUCKET_HEADER_BYTES + 5, 0x20); // slot area
            }
            let mut out = Vec::new();
            s.bucket_addrs_batch(&(0..8).collect::<Vec<_>>(), &mut out)
        };
        // Two corrupted buckets: the earlier one must be reported, with
        // or without a pool.
        let serial = corrupt_and_read(false, &[2, 5]);
        let pooled = corrupt_and_read(true, &[2, 5]);
        assert_eq!(serial, pooled);
        assert!(matches!(
            serial,
            Err(OramError::Integrity { bucket: 2, .. })
        ));
        // Header corruption falls back to the serial arbitration.
        let serial = corrupt_and_read(false, &[6]);
        let pooled = corrupt_and_read(true, &[6]);
        assert_eq!(serial, pooled);
    }

    #[test]
    fn faulty_backing_disables_parallel_batches() {
        let mut s = store();
        s.attach_pool(Arc::new(WorkerPool::new(4)));
        assert!(s.parallel_active());
        s.enable_faults(FaultConfig::silent(7));
        assert!(
            !s.parallel_active(),
            "fault injection must force the serial path"
        );
        // Batches still work, via the serial fallback.
        let mut b = Bucket::new(3);
        b.push(data_block(1, 0x33));
        let b2 = b.clone();
        s.write_buckets(&[(0, &b), (1, &b2)]);
        let mut out = Vec::new();
        s.bucket_addrs_batch(&[0, 1], &mut out).expect("authentic");
        assert_eq!(out[0], vec![1]);
    }

    #[test]
    #[should_panic(expected = "exceeds slot")]
    fn oversized_payload_panics() {
        let mut s = EncryptedStore::new(1, 1, 16, 1);
        let mut b = Bucket::new(1);
        b.push(data_block(0, 1)); // 128-byte payload into 16-byte slot
        s.write_bucket(0, &b);
    }

    use crate::crash::CrashConfig;

    fn one_block_bucket(addr: u64, fill: u8) -> Bucket {
        let mut b = Bucket::new(3);
        b.push(data_block(addr, fill));
        b
    }

    #[test]
    fn txn_rollback_restores_images_and_versions() {
        let mut s = store();
        s.write_bucket(2, &one_block_bucket(10, 0xAA));
        s.write_bucket(3, &one_block_bucket(11, 0xBB));
        let before: Vec<Vec<u8>> = (0..8).map(|i| s.ciphertext(i).to_vec()).collect();
        s.begin_txn(vec![0xCA; 4]);
        s.write_bucket(2, &one_block_bucket(12, 0xCC));
        s.write_bucket(2, &one_block_bucket(13, 0xDD)); // second touch: one undo entry
        s.write_bucket(5, &one_block_bucket(14, 0xEE));
        assert_ne!(s.ciphertext(2), &before[2][..]);
        let rec = s.recover_txn().expect("open transaction");
        assert!(!rec.replay);
        assert_eq!(rec.checkpoint, vec![0xCA; 4]);
        assert_eq!(rec.entries, 2, "first-touch journaling");
        assert_eq!(rec.restored, 2);
        assert_eq!(rec.touched, vec![2, 5]);
        for (i, img) in before.iter().enumerate() {
            assert_eq!(s.ciphertext(i), &img[..], "bucket {i} rolled back");
        }
        // Versions rolled back too: the whole image re-authenticates and
        // the pre-transaction content is served.
        s.verify_all().expect("rolled-back image authenticates");
        assert_eq!(s.try_read_bucket(2).unwrap()[0].addr, BlockAddr(10));
        // The store works normally after recovery.
        s.write_bucket(2, &one_block_bucket(20, 0x11));
        assert_eq!(s.try_read_bucket(2).unwrap()[0].addr, BlockAddr(20));
    }

    #[test]
    fn txn_commit_discards_journal_and_flips_epoch() {
        let mut s = store();
        assert_eq!(s.epoch(), 0);
        s.begin_txn(vec![1]);
        s.write_bucket(1, &one_block_bucket(5, 0x55));
        let entries = s.commit_txn(vec![2]).expect("no crash armed");
        assert_eq!(entries, 1);
        assert_eq!(s.epoch(), 1);
        assert!(s.epoch_header_ok());
        assert!(s.recover_txn().is_none(), "journal discarded at commit");
        assert_eq!(s.try_read_bucket(1).unwrap()[0].addr, BlockAddr(5));
    }

    #[test]
    fn mid_flip_crash_replays_forward() {
        let mut s = store();
        s.write_bucket(4, &one_block_bucket(30, 0x30));
        s.begin_txn(vec![0xA]);
        s.write_bucket(4, &one_block_bucket(31, 0x31));
        s.arm_crash(Some(CrashArm::new(CrashConfig::first(KillPoint::MidFlip))));
        let err = s.commit_txn(vec![0xB]).expect_err("MidFlip fires");
        assert!(matches!(
            err,
            OramError::Crashed {
                point: KillPoint::MidFlip
            }
        ));
        assert_eq!(s.crash_fired(), Some(KillPoint::MidFlip));
        assert_eq!(s.epoch(), 1, "the flip itself landed");
        let rec = s.recover_txn().expect("journal still open");
        assert!(rec.replay, "flipped epoch means roll forward");
        assert_eq!(rec.checkpoint, vec![0xB], "checkpoint B is adopted");
        assert_eq!(rec.restored, 0);
        assert!(s.crash_fired().is_none());
        s.verify_all().expect("committed image authenticates");
        assert_eq!(s.try_read_bucket(4).unwrap()[0].addr, BlockAddr(31));
    }

    #[test]
    fn mid_journal_crash_drops_the_home_write() {
        let mut s = store();
        s.write_bucket(6, &one_block_bucket(40, 0x40));
        let before = s.ciphertext(6).to_vec();
        s.begin_txn(vec![0xA]);
        s.arm_crash(Some(CrashArm::new(CrashConfig::first(
            KillPoint::MidJournal,
        ))));
        s.write_bucket(6, &one_block_bucket(41, 0x41));
        assert_eq!(s.crash_fired(), Some(KillPoint::MidJournal));
        assert_eq!(s.ciphertext(6), &before[..], "home write dropped");
        // The dead store drops every later write of the doomed run.
        s.write_bucket(7, &one_block_bucket(42, 0x42));
        assert!(s.try_read_bucket(7).unwrap().is_empty());
        let rec = s.recover_txn().expect("open transaction");
        assert!(!rec.replay);
        assert_eq!(rec.entries, 1, "the undo entry itself is durable");
        s.verify_all().expect("rolled-back image authenticates");
        assert_eq!(s.try_read_bucket(6).unwrap()[0].addr, BlockAddr(40));
    }

    /// A genuine (non-injected-crash) worker panic must degrade to the
    /// serial path and still produce the byte-identical image.
    #[test]
    fn pooled_panic_falls_back_to_byte_identical_serial_writes() {
        for boom_job in [0usize, 2, 3] {
            let mut serial = store();
            let mut pooled = store();
            pooled.attach_pool(Arc::new(WorkerPool::new(3)));
            for round in 0..3u64 {
                let batch: Vec<(usize, Bucket)> = (0..4)
                    .map(|i| {
                        (
                            (i + round as usize) % 8,
                            one_block_bucket(round * 8 + i as u64, i as u8),
                        )
                    })
                    .collect();
                let refs: Vec<(usize, &Bucket)> = batch.iter().map(|(idx, b)| (*idx, b)).collect();
                for &(idx, b) in &refs {
                    serial.write_bucket(idx, b);
                }
                if round == 1 {
                    pooled.inject_pool_panic(boom_job);
                }
                pooled.write_buckets(&refs);
            }
            for idx in 0..8 {
                assert_eq!(
                    serial.ciphertext(idx),
                    pooled.ciphertext(idx),
                    "boom_job={boom_job} bucket={idx}"
                );
            }
        }
    }

    #[test]
    fn pooled_encrypt_crash_abandons_the_batch_and_rolls_back() {
        let mut s = store();
        s.attach_pool(Arc::new(WorkerPool::new(2)));
        s.write_bucket(0, &one_block_bucket(50, 0x50));
        let before: Vec<Vec<u8>> = (0..8).map(|i| s.ciphertext(i).to_vec()).collect();
        s.begin_txn(vec![0xA]);
        s.arm_crash(Some(CrashArm::new(CrashConfig::at(
            KillPoint::PooledEncrypt,
            2,
        ))));
        let b0 = one_block_bucket(51, 0x51);
        let b1 = one_block_bucket(52, 0x52);
        let b2 = one_block_bucket(53, 0x53);
        s.write_buckets(&[(0, &b0), (1, &b1), (2, &b2)]);
        assert_eq!(s.crash_fired(), Some(KillPoint::PooledEncrypt));
        for (i, img) in before.iter().enumerate() {
            assert_eq!(s.ciphertext(i), &img[..], "no commit before join");
        }
        let rec = s.recover_txn().expect("open transaction");
        assert!(!rec.replay);
        assert_eq!(rec.entries, 3, "whole batch journaled before dispatch");
        s.verify_all().expect("version counters rolled back");
        assert_eq!(s.try_read_bucket(0).unwrap()[0].addr, BlockAddr(50));
    }
}
