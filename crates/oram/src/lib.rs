//! Path ORAM for the PrORAM reproduction.
//!
//! Implements the paper's baseline memory system (Sections 2.2-2.4):
//!
//! * the **binary-tree storage** with `Z`-slot buckets ([`tree`]),
//! * the **stash** and greedy path write-back ([`stash`], [`eviction`]),
//! * the **recursive/unified position map**: position-map blocks live in
//!   the same tree as data blocks and are cached on-chip in a position-map
//!   lookaside buffer ([`posmap`], [`plb`]), following Unified/Freecursive
//!   ORAM which the paper uses as its baseline,
//! * **background eviction** for small `Z` (Section 2.4),
//! * a **probabilistic encryption** layer and byte-level DRAM image
//!   ([`crypto`], [`storage`]), with rollback-detecting authentication,
//! * a seeded **fault injector** and typed error taxonomy for exercising
//!   the detection/recovery machinery ([`fault`], [`error`]),
//! * the **adversary-observable physical trace** ([`trace`]) used by the
//!   obliviousness test-suite,
//! * a first-principles **timing model** (path bytes / pin bandwidth,
//!   [`timing`]),
//! * the **staged access pipeline** ([`pipeline`]): a typed
//!   request/completion state machine over the five access steps, with
//!   per-stage cycle attribution and an optional bank-aware fetch cost
//!   ([`config::OramConfig::pipeline`]).
//!
//! The high-level entry point is [`PathOram`]; it also implements
//! [`proram_mem::MemoryBackend`] so it can serve as the `oram` baseline in
//! the system simulator. The super-block machinery of the paper itself
//! lives in the `proram-core` crate, built on the primitives exposed here.
//!
//! # Examples
//!
//! ```
//! use proram_oram::prelude::*;
//!
//! let cfg = OramConfig::small_for_tests(1 << 10);
//! let mut oram = PathOram::new(cfg, 7);
//! let report = oram
//!     .try_access_block(proram_mem::BlockAddr(42), proram_mem::AccessKind::Read)
//!     .expect("no faults injected");
//! assert!(report.tree_accesses >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod backend_trait;
pub mod block;
pub mod bucket;
pub mod config;
pub mod controller;
pub mod crash;
pub mod crypto;
pub mod error;
pub mod eviction;
pub mod fault;
mod journal;
pub mod layout;
pub mod pipeline;
pub mod plb;
pub mod posmap;
pub mod shi;
pub mod stash;
pub mod storage;
pub mod timing;
pub mod trace;
pub mod tree;

pub use addr::{AddressSpace, Leaf};
pub use backend_trait::OramBackend;
pub use block::{Block, Payload};
pub use bucket::Bucket;
pub use config::{ConfigError, OramConfig, OramConfigBuilder};
pub use controller::{AccessReport, OramStats, PathKind, PathOram};
pub use crash::{CrashConfig, CrashStats, KillPoint, RecoveryMode, RecoveryReport};
pub use crypto::{Mac, StreamCipher};
pub use error::OramError;
pub use eviction::PathScratch;
pub use fault::{FaultClass, FaultConfig, FaultyStore};
pub use layout::{StoreLayout, TreeLayout};
pub use pipeline::{AccessCompletion, AccessMachine, AccessRequest, AccessStage, StageCycles};
pub use plb::Plb;
pub use posmap::PosEntry;
pub use shi::{ShiOram, ShiOramConfig};
pub use stash::Stash;
pub use storage::EncryptedStore;
pub use timing::OramTiming;
pub use trace::{PhysEvent, TraceRecorder};
pub use tree::OramTree;

/// The canonical public surface in one import.
///
/// Downstream crates should `use proram_oram::prelude::*` instead of
/// deep-importing module paths: it re-exports the controller, its
/// configuration (builder and typed error included), the Result-based
/// access API's types and the observability handle/sink traits.
pub mod prelude {
    pub use crate::backend_trait::OramBackend;
    pub use crate::config::{ConfigError, OramConfig, OramConfigBuilder};
    pub use crate::controller::{AccessReport, PathOram};
    pub use crate::crash::{CrashConfig, CrashStats, KillPoint, RecoveryMode, RecoveryReport};
    pub use crate::error::OramError;
    pub use proram_obs::{NoopSink, Obs, ObsEvent, ObsSink, RingSink};
}
