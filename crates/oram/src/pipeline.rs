//! The staged ORAM access pipeline.
//!
//! One logical access moves through five stages — position-map resolve,
//! path fetch, decrypt/verify, stash update, write-back — followed by
//! background eviction, exactly the five steps of paper Section 2.2.
//! [`AccessMachine`] is the typed state machine that carries an
//! [`AccessRequest`] through those stages against a
//! [`crate::PathOram`]; [`PathOram::try_access_block`] is a thin driver
//! that steps it to completion and returns the
//! [`AccessCompletion`]'s report.
//!
//! The machine exists so stage boundaries are explicit values rather than
//! one deep call chain: simulators can step it, attribute cycles per
//! stage ([`StageCycles`]) and — with [`crate::OramConfig::pipeline`]
//! set — charge the fetch stage at the bank-overlapped cost computed by
//! [`proram_mem::BankScheduler`] instead of the serialized lump sum.
//! Stepping draws the same randomness in the same order as the historical
//! monolithic access, so pipeline-off runs are behavior-identical to the
//! pre-split controller.
//!
//! [`PathOram::try_access_block`]: crate::PathOram::try_access_block

use crate::addr::Leaf;
use crate::controller::{AccessReport, PathKind, PathOram};
use crate::crash::KillPoint;
use crate::error::OramError;
use proram_mem::{AccessKind, BlockAddr};
use proram_obs::{ObsEvent, StageKind};

/// One logical block request entering the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRequest {
    /// The data block to access.
    pub addr: BlockAddr,
    /// Read or write (identical on the wire; kept for attribution).
    pub kind: AccessKind,
}

/// The stage an in-flight access is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessStage {
    /// Step 1: walk the position map, remap to a fresh leaf.
    ResolvePosmap,
    /// Step 2: issue the path's bucket-read batch.
    PathFetch,
    /// Step 3: decrypt and authenticate the fetched buckets.
    DecryptVerify,
    /// Step 3b: move the path's blocks into the stash, claim the target.
    StashUpdate,
    /// Step 5: write the path back from the stash.
    WriteBack,
    /// Post-access: bounded background eviction and periodic scrub.
    Evict,
    /// The access has completed; the machine must not be stepped again.
    Done,
}

/// Per-stage cycle attribution of one access; the stage totals sum to the
/// reported latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCycles {
    /// Cycles spent fetching position-map paths.
    pub posmap: u64,
    /// Cycles spent fetching the data path itself.
    pub fetch: u64,
    /// Cycles spent on background-eviction (dummy) paths.
    pub evict: u64,
    /// Transient-retry backoff charged by fault injection.
    pub backoff: u64,
}

impl StageCycles {
    /// Total cycles across all stages — equals the access latency.
    pub fn total(&self) -> u64 {
        self.posmap + self.fetch + self.evict + self.backoff
    }
}

/// A finished access: the request that entered the pipeline plus its
/// report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessCompletion {
    /// The request this completion answers.
    pub request: AccessRequest,
    /// Latency, tree accesses and per-stage attribution.
    pub report: AccessReport,
}

/// The in-flight state of one access moving through the pipeline.
///
/// Step it with [`AccessMachine::step`] until it yields a completion:
///
/// ```
/// use proram_oram::{AccessMachine, AccessRequest, OramConfig, PathOram};
/// use proram_mem::{AccessKind, BlockAddr};
///
/// let mut oram = PathOram::new(OramConfig::small_for_tests(64), 1);
/// let mut machine = AccessMachine::new(AccessRequest {
///     addr: BlockAddr(5),
///     kind: AccessKind::Read,
/// });
/// let completion = loop {
///     if let Some(done) = machine.step(&mut oram).unwrap() {
///         break done;
///     }
/// };
/// assert!(completion.report.tree_accesses >= 1);
/// assert_eq!(completion.report.latency, completion.report.stages.total());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AccessMachine {
    request: AccessRequest,
    stage: AccessStage,
    backoff_before: u64,
    posmap_accesses: u64,
    /// Leaf the block was mapped to when the access began (path to fetch).
    old_leaf: Leaf,
    /// Fresh leaf the block was remapped to.
    new_leaf: Leaf,
    /// Off-chip buckets in the fetch batch (recorded by `PathFetch`).
    batch_len: u32,
}

impl AccessMachine {
    /// A machine ready to run `request` from its first stage.
    pub fn new(request: AccessRequest) -> Self {
        AccessMachine {
            request,
            stage: AccessStage::ResolvePosmap,
            backoff_before: 0,
            posmap_accesses: 0,
            old_leaf: Leaf(0),
            new_leaf: Leaf(0),
            batch_len: 0,
        }
    }

    /// The stage the machine will execute next.
    pub fn stage(&self) -> AccessStage {
        self.stage
    }

    /// Runs the current stage against `oram` and advances. Returns
    /// `Ok(Some(..))` when the final stage retires the access.
    ///
    /// # Errors
    ///
    /// Propagates the stage's [`OramError`]; the machine is then stuck in
    /// the failing stage and must be discarded.
    ///
    /// # Panics
    ///
    /// Panics if stepped again after returning a completion.
    pub fn step(&mut self, oram: &mut PathOram) -> Result<Option<AccessCompletion>, OramError> {
        match self.stage {
            AccessStage::ResolvePosmap => {
                let addr = self.request.addr.0;
                oram.obs().emit(|| ObsEvent::AccessIssued {
                    addr,
                    write: self.request.kind == AccessKind::Write,
                });
                oram.obs().emit(|| ObsEvent::StageEnter {
                    addr,
                    stage: StageKind::ResolvePosmap,
                });
                oram.crash_gate(KillPoint::ResolvePosmap)?;
                oram.note_logical_access();
                self.backoff_before = oram.backoff_cycles();
                self.posmap_accesses = oram.try_resolve_posmap(self.request.addr)?;
                let (old_leaf, new_leaf) = oram.remap_block(self.request.addr);
                self.old_leaf = old_leaf;
                self.new_leaf = new_leaf;
                self.stage = AccessStage::PathFetch;
                Ok(None)
            }
            AccessStage::PathFetch => {
                self.emit_stage(oram, StageKind::PathFetch);
                oram.crash_gate(KillPoint::PathFetch)?;
                // The fetch is one batch of bucket reads, one per off-chip
                // level; recording its size here keeps the hot path
                // allocation-free (an explicit batch is available via
                // `PathOram::bucket_read_batch`).
                self.batch_len = oram.config().off_chip_levels();
                self.stage = AccessStage::DecryptVerify;
                Ok(None)
            }
            AccessStage::DecryptVerify => {
                self.emit_stage(oram, StageKind::DecryptVerify);
                oram.crash_gate(KillPoint::DecryptVerify)?;
                oram.verify_gate(self.old_leaf)?;
                self.stage = AccessStage::StashUpdate;
                Ok(None)
            }
            AccessStage::StashUpdate => {
                self.emit_stage(oram, StageKind::StashUpdate);
                oram.crash_gate(KillPoint::StashUpdate)?;
                oram.fill_path_into_stash(self.old_leaf, PathKind::Data);
                oram.claim_block(self.request.addr, self.old_leaf, self.new_leaf)?;
                self.stage = AccessStage::WriteBack;
                Ok(None)
            }
            AccessStage::WriteBack => {
                self.emit_stage(oram, StageKind::WriteBack);
                oram.crash_gate(KillPoint::WriteBack)?;
                oram.write_path_from_stash(self.old_leaf)?;
                self.stage = AccessStage::Evict;
                Ok(None)
            }
            AccessStage::Evict => {
                self.emit_stage(oram, StageKind::Evict);
                oram.crash_gate(KillPoint::Evict)?;
                let background_evictions = oram.drain_and_periodic_scrub()?;
                let backoff = oram.backoff_cycles() - self.backoff_before;
                let fetch_cycles = oram.fetch_cycles();
                let stages = StageCycles {
                    posmap: self.posmap_accesses * fetch_cycles,
                    fetch: fetch_cycles,
                    evict: background_evictions * fetch_cycles,
                    backoff,
                };
                let tree_accesses = 1 + self.posmap_accesses + background_evictions;
                let obs = oram.obs();
                if obs.is_enabled() {
                    obs.profile(StageKind::ResolvePosmap, stages.posmap);
                    obs.profile(StageKind::PathFetch, stages.fetch);
                    obs.profile(StageKind::Evict, stages.evict);
                    obs.profile(StageKind::Backoff, stages.backoff);
                    let addr = self.request.addr.0;
                    obs.emit(|| ObsEvent::AccessRetired {
                        addr,
                        latency: stages.total(),
                        posmap: stages.posmap,
                        fetch: stages.fetch,
                        evict: stages.evict,
                        backoff: stages.backoff,
                    });
                }
                self.stage = AccessStage::Done;
                Ok(Some(AccessCompletion {
                    request: self.request,
                    report: AccessReport {
                        latency: stages.total(),
                        tree_accesses,
                        posmap_accesses: self.posmap_accesses,
                        background_evictions,
                        stages,
                    },
                }))
            }
            AccessStage::Done => panic!("AccessMachine stepped after completion"),
        }
    }

    /// Off-chip buckets the fetch stage batched (0 before `PathFetch`).
    pub fn batch_len(&self) -> u32 {
        self.batch_len
    }

    #[inline]
    fn emit_stage(&self, oram: &PathOram, stage: StageKind) {
        let addr = self.request.addr.0;
        oram.obs().emit(|| ObsEvent::StageEnter { addr, stage });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OramConfig;

    #[test]
    fn machine_walks_all_stages_in_order() {
        let mut oram = PathOram::new(OramConfig::small_for_tests(64), 9);
        let mut machine = AccessMachine::new(AccessRequest {
            addr: BlockAddr(3),
            kind: AccessKind::Read,
        });
        let expected = [
            AccessStage::ResolvePosmap,
            AccessStage::PathFetch,
            AccessStage::DecryptVerify,
            AccessStage::StashUpdate,
            AccessStage::WriteBack,
            AccessStage::Evict,
        ];
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(machine.stage(), *want, "stage {i}");
            let done = machine.step(&mut oram).unwrap();
            assert_eq!(done.is_some(), i == expected.len() - 1);
        }
        assert_eq!(machine.stage(), AccessStage::Done);
        assert_eq!(machine.batch_len(), oram.config().off_chip_levels());
    }

    #[test]
    fn stepped_machine_matches_driver() {
        // Stepping the machine by hand and calling the driver must be the
        // same computation.
        let mut a = PathOram::new(OramConfig::small_for_tests(128), 4);
        let mut b = PathOram::new(OramConfig::small_for_tests(128), 4);
        for addr in [5u64, 77, 5, 100] {
            let via_driver = a
                .try_access_block(BlockAddr(addr), AccessKind::Read)
                .unwrap();
            let mut machine = AccessMachine::new(AccessRequest {
                addr: BlockAddr(addr),
                kind: AccessKind::Read,
            });
            let stepped = loop {
                if let Some(done) = machine.step(&mut b).unwrap() {
                    break done.report;
                }
            };
            assert_eq!(via_driver, stepped);
        }
        assert_eq!(a.oram_stats(), b.oram_stats());
    }

    #[test]
    #[should_panic(expected = "stepped after completion")]
    fn stepping_done_machine_panics() {
        let mut oram = PathOram::new(OramConfig::small_for_tests(64), 2);
        let mut machine = AccessMachine::new(AccessRequest {
            addr: BlockAddr(0),
            kind: AccessKind::Read,
        });
        while machine.step(&mut oram).unwrap().is_none() {}
        let _ = machine.step(&mut oram);
    }

    #[test]
    fn attached_sink_sees_the_access_lifecycle() {
        use proram_obs::Obs;

        let mut oram = PathOram::new(OramConfig::small_for_tests(64), 9);
        oram.attach_obs_handle(Obs::ring(1024));
        let report = oram
            .try_access_block(BlockAddr(3), AccessKind::Read)
            .unwrap();
        let events = oram.obs().events();
        assert!(matches!(
            events.first(),
            Some(ObsEvent::AccessIssued {
                addr: 3,
                write: false
            })
        ));
        // One StageEnter per pipeline stage, in order.
        let stages: Vec<StageKind> = events
            .iter()
            .filter_map(|e| match e {
                ObsEvent::StageEnter { stage, .. } => Some(*stage),
                _ => None,
            })
            .collect();
        assert_eq!(
            stages,
            vec![
                StageKind::ResolvePosmap,
                StageKind::PathFetch,
                StageKind::DecryptVerify,
                StageKind::StashUpdate,
                StageKind::WriteBack,
                StageKind::Evict,
            ]
        );
        let retired = events
            .iter()
            .find_map(|e| match *e {
                ObsEvent::AccessRetired { latency, .. } => Some(latency),
                _ => None,
            })
            .expect("access retired");
        assert_eq!(retired, report.latency);
        // The per-stage profile mirrors the report's attribution.
        let profile = oram.obs().profile_snapshot();
        assert_eq!(profile.cycles(StageKind::PathFetch), report.stages.fetch);
        assert_eq!(
            profile.cycles(StageKind::ResolvePosmap),
            report.stages.posmap
        );
    }

    #[test]
    fn detached_oram_emits_nothing() {
        let mut oram = PathOram::new(OramConfig::small_for_tests(64), 9);
        oram.try_access_block(BlockAddr(3), AccessKind::Read)
            .unwrap();
        assert!(!oram.obs().is_enabled());
        assert_eq!(oram.obs().event_count(), 0);
    }

    #[test]
    fn stage_cycles_total_sums_fields() {
        let s = StageCycles {
            posmap: 10,
            fetch: 20,
            evict: 30,
            backoff: 5,
        };
        assert_eq!(s.total(), 65);
    }
}
