//! A Shi-et-al.-style binary-tree ORAM \[27\] with background eviction.
//!
//! The scheme the paper cites in Section 6.1 when claiming super blocks
//! generalize: "other ORAM schemes (e.g., \[27\]) have similar binary tree
//! structure to Path ORAM. After adding background eviction, these ORAM
//! schemes can also benefit from using super blocks."
//!
//! Differences from Path ORAM as modeled here:
//!
//! * the position map is flat and on-chip (the original scheme recurses
//!   too, but its signature mechanism is the eviction process, which is
//!   what matters for super-block generality);
//! * each access additionally runs an *incremental eviction step*: at
//!   every non-leaf level, `nu` randomly chosen buckets each push one
//!   block down one level toward its leaf, writing both children so the
//!   direction is hidden (the \[27\] eviction with dummy writes);
//! * the timing model charges the path transfer plus that eviction
//!   traffic, so a `ShiOram` access moves more bytes than a `PathOram`
//!   access of the same height — matching the schemes' relative costs.
//!
//! [`ShiOram`] implements [`crate::OramBackend`], so the super-block
//! controller in `proram-core` runs on it unchanged — reproducing the
//! Section 6.1 claim end to end.

use crate::addr::{AddressSpace, Leaf};
use crate::backend_trait::OramBackend;
use crate::block::Block;
use crate::controller::{OramStats, PathKind};
use crate::error::OramError;
use crate::eviction::{read_path, write_path};
use crate::posmap::PosEntry;
use crate::stash::Stash;
use crate::timing::OramTiming;
use crate::trace::{PhysEvent, TraceRecorder};
use crate::tree::OramTree;
use proram_mem::BlockAddr;
use proram_stats::{Rng64, Xoshiro256};

/// Bound on background evictions per request (see `PathOram`).
const MAX_BACKGROUND_EVICTIONS_PER_ACCESS: u64 = 64;

/// Configuration of the Shi-style tree ORAM.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiOramConfig {
    /// Number of data blocks.
    pub num_data_blocks: u64,
    /// Blocks per bucket.
    pub z: usize,
    /// Stash capacity (physical, including one in-flight path).
    pub stash_limit: usize,
    /// Buckets evicted per level per access (the scheme's `nu`; \[27\]
    /// uses 2).
    pub eviction_rate: u32,
    /// Override for tree levels; `None` sizes like Path ORAM.
    pub levels_override: Option<u32>,
    /// Timing parameters.
    pub timing: OramTiming,
    /// Adversary-trace capacity (0 = disabled).
    pub trace_capacity: usize,
    /// Initial contiguous grouping (static super blocks).
    pub init_group_size: u64,
}

impl Default for ShiOramConfig {
    fn default() -> Self {
        ShiOramConfig {
            num_data_blocks: 1 << 14,
            z: 4,
            stash_limit: 100,
            eviction_rate: 2,
            levels_override: None,
            timing: OramTiming::default(),
            trace_capacity: 0,
            init_group_size: 1,
        }
    }
}

impl ShiOramConfig {
    /// Tree levels: override, or the same sizing rule as Path ORAM.
    pub fn tree_levels(&self) -> u32 {
        if let Some(l) = self.levels_override {
            return l;
        }
        let half = (self.num_data_blocks / 2).max(2);
        let leaves = 1u64 << (63 - half.leading_zeros());
        leaves.trailing_zeros() + 1
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the geometry cannot hold the blocks.
    pub fn validate(&self) {
        assert!(self.num_data_blocks > 0, "need data blocks");
        assert!(self.z > 0, "Z must be positive");
        assert!(self.eviction_rate > 0, "eviction rate must be positive");
        assert!(
            self.init_group_size.is_power_of_two(),
            "init group size must be a power of two"
        );
        let levels = self.tree_levels();
        let slots = ((1u64 << levels) - 1) * self.z as u64;
        assert!(self.num_data_blocks <= slots, "tree too small");
    }
}

/// The Shi-style tree ORAM.
///
/// # Examples
///
/// ```
/// use proram_oram::{OramBackend, ShiOram, ShiOramConfig};
/// use proram_mem::{AccessKind, BlockAddr};
///
/// let mut oram = ShiOram::new(ShiOramConfig { num_data_blocks: 256, ..Default::default() }, 7);
/// let report = oram.access_block(BlockAddr(10), AccessKind::Read);
/// assert!(report.tree_accesses >= 1);
/// oram.check_invariants();
/// ```
#[derive(Debug, Clone)]
pub struct ShiOram {
    config: ShiOramConfig,
    space: AddressSpace,
    tree: OramTree,
    stash: Stash,
    /// Flat on-chip position map.
    top: Vec<PosEntry>,
    rng: Xoshiro256,
    trace: TraceRecorder,
    stats: OramStats,
    path_cycles: u64,
    path_bytes: u64,
}

impl ShiOram {
    /// Builds and initializes the ORAM.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn new(config: ShiOramConfig, seed: u64) -> Self {
        config.validate();
        // Flat posmap: every entry on-chip (`on_tree_hierarchies = 0`).
        let space = AddressSpace::new(config.num_data_blocks, 32, 0);
        let levels = config.tree_levels();
        let mut rng = Xoshiro256::seed_from(seed);
        let mut tree = OramTree::new(levels, config.z);
        let leaves_count = u64::from(tree.num_leaves());
        let group = config.init_group_size;
        let mut top: Vec<PosEntry> = Vec::with_capacity(config.num_data_blocks as usize);
        for addr in 0..config.num_data_blocks {
            let leaf = if group > 1 && addr % group != 0 {
                top[(addr / group * group) as usize].leaf
            } else {
                Leaf(rng.next_below(leaves_count) as u32)
            };
            top.push(PosEntry::new(leaf));
        }
        let path_blocks = levels as usize * config.z;
        let resting = config.stash_limit.saturating_sub(path_blocks).max(8);
        let mut stash = Stash::new(resting);
        for addr in 0..config.num_data_blocks {
            let block = Block::opaque(BlockAddr(addr), top[addr as usize].leaf);
            let path: Vec<usize> = tree.path_indices(block.leaf).collect();
            let mut placed = false;
            for &idx in path.iter().rev() {
                if !tree.bucket(idx).is_full() {
                    tree.bucket_mut(idx).push(block.clone());
                    placed = true;
                    break;
                }
            }
            if !placed {
                stash.insert(block);
            }
        }
        // Per-access bytes: read+write the path, plus the eviction step
        // touching nu buckets per non-leaf level, each read once and both
        // children written (3 bucket transfers).
        let evict_buckets = 3 * config.eviction_rate as u64 * u64::from(levels - 1);
        let block_wire = u64::from(config.timing.block_bytes + config.timing.meta_bytes);
        let path_bytes = config.timing.path_bytes(levels, config.z)
            + evict_buckets * config.z as u64 * block_wire;
        let transfer = (path_bytes as f64 * config.timing.bandwidth_derate
            / f64::from(config.timing.bytes_per_cycle))
        .ceil() as u64;
        let path_cycles = transfer + u64::from(config.timing.fixed_overhead_cycles);
        let trace = if config.trace_capacity > 0 {
            TraceRecorder::enabled(config.trace_capacity)
        } else {
            TraceRecorder::disabled()
        };
        ShiOram {
            config,
            space,
            tree,
            stash,
            top,
            rng,
            trace,
            stats: OramStats::default(),
            path_cycles,
            path_bytes,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ShiOramConfig {
        &self.config
    }

    /// The adversary-trace recorder.
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Clears the recorded trace.
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// The scheme's incremental eviction: at each non-leaf level, `nu`
    /// random buckets each push one block one level down toward its leaf
    /// (if the child has room). Not adversary-distinguishable from any
    /// other access component — bucket choices are public randomness.
    fn eviction_step(&mut self) {
        let levels = self.tree.levels();
        for level in 0..levels - 1 {
            for _ in 0..self.config.eviction_rate {
                let width = 1u64 << level;
                let bucket_idx = (width - 1 + self.rng.next_below(width)) as usize;
                // Take the first block whose child bucket has room.
                let candidate = self
                    .tree
                    .bucket(bucket_idx)
                    .iter()
                    .map(|b| (b.addr, b.leaf))
                    .next();
                let Some((addr, leaf)) = candidate else {
                    continue;
                };
                // Child on the block's path at `level + 1`.
                let child_idx = self.tree.bucket_index(leaf, level + 1);
                // Only children of this bucket are reachable; the leaf's
                // level-(l+1) ancestor is a child of its level-l ancestor
                // exactly when the level-l ancestor is this bucket.
                if self.tree.bucket_index(leaf, level) != bucket_idx {
                    continue;
                }
                if !self.tree.bucket(child_idx).is_full() {
                    let block = self
                        .tree
                        .bucket_mut(bucket_idx)
                        .take(addr)
                        .expect("candidate present");
                    self.tree.bucket_mut(child_idx).push(block);
                }
            }
        }
    }

    /// Performs one plain (no super blocks) logical access.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn access_block(
        &mut self,
        addr: BlockAddr,
        _kind: proram_mem::AccessKind,
    ) -> crate::controller::AccessReport {
        self.stats.logical_accesses += 1;
        let old_leaf = self.entry(addr).leaf;
        let new_leaf = self.random_leaf();
        self.entry_mut(addr).leaf = new_leaf;
        self.read_path_into_stash(old_leaf, PathKind::Data)
            .expect("shi backend has no encrypted image to fault");
        let block = self
            .stash
            .get_mut(addr)
            .unwrap_or_else(|| panic!("invariant broken: {addr} missing from {old_leaf}"));
        block.leaf = new_leaf;
        self.write_path_from_stash(old_leaf)
            .expect("shi backend write-back is infallible");
        let background_evictions = self
            .drain_background()
            .expect("shi backend has no encrypted image to fault");
        let tree_accesses = 1 + background_evictions;
        let stages = crate::pipeline::StageCycles {
            posmap: 0,
            fetch: self.path_cycles,
            evict: background_evictions * self.path_cycles,
            backoff: 0,
        };
        crate::controller::AccessReport {
            latency: stages.total(),
            tree_accesses,
            posmap_accesses: 0,
            background_evictions,
            stages,
        }
    }

    /// Verifies that every block sits on its mapped path or in the stash.
    ///
    /// # Panics
    ///
    /// Panics on the first violation.
    pub fn check_invariants(&self) {
        for addr in 0..self.config.num_data_blocks {
            let leaf = self.top[addr as usize].leaf;
            let addr = BlockAddr(addr);
            let found = self.stash.contains(addr)
                || self
                    .tree
                    .path_indices(leaf)
                    .any(|idx| self.tree.bucket(idx).iter().any(|b| b.addr == addr));
            assert!(found, "block {addr} mapped to {leaf} is unreachable");
        }
    }
}

impl OramBackend for ShiOram {
    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn resolve_posmap(&mut self, _child: BlockAddr) -> Result<u64, OramError> {
        Ok(0) // the entire position map is on-chip
    }

    fn entry(&self, child: BlockAddr) -> &PosEntry {
        &self.top[child.0 as usize]
    }

    fn entry_mut(&mut self, child: BlockAddr) -> &mut PosEntry {
        &mut self.top[child.0 as usize]
    }

    fn read_path_into_stash(&mut self, leaf: Leaf, kind: PathKind) -> Result<(), OramError> {
        read_path(&mut self.tree, &mut self.stash, leaf);
        match kind {
            PathKind::Data => {
                self.stats.data_path_accesses += 1;
                self.trace.record(PhysEvent::PathAccess(leaf));
            }
            PathKind::PosMap => {
                self.stats.posmap_path_accesses += 1;
                self.trace.record(PhysEvent::PathAccess(leaf));
            }
            PathKind::Dummy => {
                self.stats.background_evictions += 1;
                self.trace.record(PhysEvent::DummyAccess(leaf));
            }
        }
        self.stats.bytes_moved += self.path_bytes;
        self.stash.sample_occupancy();
        Ok(())
    }

    fn write_path_from_stash(&mut self, leaf: Leaf) -> Result<(), OramError> {
        write_path(&mut self.tree, &mut self.stash, leaf);
        self.eviction_step();
        Ok(())
    }

    fn stash_contains(&self, addr: BlockAddr) -> bool {
        self.stash.contains(addr)
    }

    fn stash_block_mut(&mut self, addr: BlockAddr) -> Option<&mut Block> {
        self.stash.get_mut(addr)
    }

    fn random_leaf(&mut self) -> Leaf {
        Leaf(self.rng.next_below(u64::from(self.tree.num_leaves())) as u32)
    }

    fn background_evict(&mut self) -> Result<(), OramError> {
        let leaf = self.random_leaf();
        self.read_path_into_stash(leaf, PathKind::Dummy)?;
        self.write_path_from_stash(leaf)
    }

    fn drain_background(&mut self) -> Result<u64, OramError> {
        let mut n = 0;
        while self.stash.over_limit() && n < MAX_BACKGROUND_EVICTIONS_PER_ACCESS {
            self.background_evict()?;
            n += 1;
        }
        Ok(n)
    }

    fn path_cycles(&self) -> u64 {
        self.path_cycles
    }

    fn oram_stats(&self) -> OramStats {
        self.stats
    }

    fn backend_name(&self) -> &'static str {
        "shi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proram_mem::AccessKind;

    fn small() -> ShiOram {
        ShiOram::new(
            ShiOramConfig {
                num_data_blocks: 256,
                trace_capacity: 1 << 14,
                ..Default::default()
            },
            11,
        )
    }

    #[test]
    fn construction_satisfies_invariants() {
        small().check_invariants();
    }

    #[test]
    fn every_block_accessible_repeatedly() {
        let mut oram = small();
        for a in 0..256u64 {
            oram.access_block(BlockAddr(a), AccessKind::Read);
        }
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..300 {
            oram.access_block(BlockAddr(rng.next_below(256)), AccessKind::Read);
        }
        oram.check_invariants();
        assert_eq!(oram.oram_stats().logical_accesses, 556);
    }

    #[test]
    fn eviction_step_moves_blocks_downward() {
        let mut oram = small();
        // Occupancy of the upper levels should not grow monotonically:
        // the eviction step keeps pushing content toward the leaves.
        let top_levels_occupancy =
            |o: &ShiOram| -> usize { (0..7usize).map(|idx| o.tree.bucket(idx).len()).sum() };
        let before = top_levels_occupancy(&oram);
        let mut rng = Xoshiro256::seed_from(5);
        for _ in 0..400 {
            oram.access_block(BlockAddr(rng.next_below(256)), AccessKind::Read);
        }
        let after = top_levels_occupancy(&oram);
        // Accessed blocks keep landing high (remap) but eviction drains
        // them; the top of the tree must not be saturated.
        let capacity = 7 * oram.config.z;
        assert!(
            after < capacity,
            "top levels saturated: {before} -> {after}"
        );
        oram.check_invariants();
    }

    #[test]
    fn shi_access_costs_more_than_a_bare_path() {
        let oram = small();
        let bare = oram
            .config
            .timing
            .path_cycles(oram.config.tree_levels(), oram.config.z);
        assert!(
            oram.path_cycles() > bare,
            "eviction traffic must be charged: {} vs {}",
            oram.path_cycles(),
            bare
        );
    }

    #[test]
    fn observed_leaves_uniform_under_repeated_access() {
        let mut oram = small();
        oram.clear_trace();
        for _ in 0..4000 {
            oram.access_block(BlockAddr(7), AccessKind::Read);
        }
        let leaves = u64::from(oram.tree.num_leaves());
        let r = proram_stats::chi2_uniform(&oram.trace().observed_leaves(), leaves);
        assert!(
            r.is_plausibly_uniform(6.0),
            "chi2={} dof={}",
            r.statistic,
            r.dof
        );
    }

    #[test]
    fn static_init_grouping_colocates() {
        let cfg = ShiOramConfig {
            num_data_blocks: 64,
            init_group_size: 4,
            ..Default::default()
        };
        let oram = ShiOram::new(cfg, 9);
        for base in (0..64u64).step_by(4) {
            let leaf = oram.entry(BlockAddr(base)).leaf;
            for off in 1..4 {
                assert_eq!(oram.entry(BlockAddr(base + off)).leaf, leaf);
            }
        }
        oram.check_invariants();
    }

    #[test]
    #[should_panic(expected = "tree too small")]
    fn undersized_tree_rejected() {
        ShiOramConfig {
            num_data_blocks: 1 << 14,
            levels_override: Some(4),
            ..Default::default()
        }
        .validate();
    }
}
