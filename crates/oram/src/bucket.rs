//! Tree buckets.

use crate::block::Block;
use proram_mem::BlockAddr;

/// One node of the ORAM tree: up to `Z` real blocks.
///
/// Slots not holding a real block are *dummy blocks* on the wire; the
/// functional model simply leaves them empty (the encryption layer in
/// [`crate::storage`] serializes dummies explicitly so ciphertext sizes
/// are position-independent).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bucket {
    slots: Vec<Block>,
    capacity: usize,
}

impl Bucket {
    /// Creates an empty bucket with `z` slots.
    ///
    /// # Panics
    ///
    /// Panics if `z` is zero.
    pub fn new(z: usize) -> Self {
        assert!(z > 0, "bucket capacity must be positive");
        Bucket {
            slots: Vec::with_capacity(z),
            capacity: z,
        }
    }

    /// Slot capacity `Z`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of real blocks held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the bucket holds no real blocks.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// `true` if no slot is free.
    pub fn is_full(&self) -> bool {
        self.slots.len() == self.capacity
    }

    /// Inserts a block.
    ///
    /// # Panics
    ///
    /// Panics if the bucket is full.
    pub fn push(&mut self, block: Block) {
        assert!(!self.is_full(), "bucket overflow (Z={})", self.capacity);
        self.slots.push(block);
    }

    /// Removes and yields all blocks (the path-read operation).
    ///
    /// Keeps the slot allocation so the next write-back into this bucket
    /// does not reallocate — buckets on hot paths are drained and refilled
    /// millions of times.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Block> {
        self.slots.drain(..)
    }

    /// Removes the block with the given address, if present.
    pub fn take(&mut self, addr: BlockAddr) -> Option<Block> {
        let pos = self.slots.iter().position(|b| b.addr == addr)?;
        Some(self.slots.swap_remove(pos))
    }

    /// Iterates over resident blocks.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.slots.iter()
    }

    /// Mutably borrows the resident block with the given address.
    pub fn block_mut(&mut self, addr: BlockAddr) -> Option<&mut Block> {
        self.slots.iter_mut().find(|b| b.addr == addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Leaf;

    fn blk(a: u64) -> Block {
        Block::opaque(BlockAddr(a), Leaf(0))
    }

    #[test]
    fn push_and_drain() {
        let mut b = Bucket::new(3);
        b.push(blk(1));
        b.push(blk(2));
        assert_eq!(b.len(), 2);
        assert!(!b.is_full());
        let blocks: Vec<Block> = b.drain().collect();
        assert_eq!(blocks.len(), 2);
        assert!(b.is_empty());
        // Draining keeps the slot allocation for the refill.
        assert!(b.slots.capacity() >= 2);
    }

    #[test]
    #[should_panic(expected = "bucket overflow")]
    fn overflow_panics() {
        let mut b = Bucket::new(1);
        b.push(blk(1));
        b.push(blk(2));
    }

    #[test]
    fn take_by_address() {
        let mut b = Bucket::new(4);
        b.push(blk(1));
        b.push(blk(2));
        assert_eq!(b.take(BlockAddr(1)).unwrap().addr, BlockAddr(1));
        assert!(b.take(BlockAddr(1)).is_none());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn capacity_reported() {
        let b = Bucket::new(4);
        assert_eq!(b.capacity(), 4);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Bucket::new(0);
    }
}
