//! ORAM blocks and their payloads.

use crate::addr::Leaf;
use crate::posmap::PosEntry;
use proram_mem::BlockAddr;

/// What a block carries.
///
/// The timing experiments run with [`Payload::Opaque`] (no data bytes are
/// simulated — only metadata moves); the functional/crypto tests and the
/// key-value-store example use [`Payload::Data`]; position-map blocks carry
/// their entry table in [`Payload::PosMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// A data block whose contents are not simulated.
    Opaque,
    /// A data block carrying real bytes.
    Data(Box<[u8]>),
    /// A position-map block: leaf labels plus the per-entry bits used by
    /// the super-block schemes.
    PosMap(Box<[PosEntry]>),
}

impl Payload {
    /// `true` for position-map payloads.
    pub fn is_posmap(&self) -> bool {
        matches!(self, Payload::PosMap(_))
    }
}

/// One ORAM block as tracked by the controller.
///
/// Every block is mapped to a [`Leaf`]; the Path ORAM invariant is that the
/// block resides on the path to that leaf, in the stash, or on-chip (PLB).
/// The `hit` bit is the paper's per-data-block prefetch-hit bit (Section
/// 4.5.1): "The hit bit is stored with each data block in the ORAM and the
/// LLC."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Program (block) address.
    pub addr: BlockAddr,
    /// Path the block is currently mapped to.
    pub leaf: Leaf,
    /// Set when the block, having been prefetched into the LLC, was
    /// actually used (paper Algorithm 2).
    pub hit: bool,
    /// Contents.
    pub payload: Payload,
}

impl Block {
    /// Creates an opaque block mapped to `leaf`.
    pub fn opaque(addr: BlockAddr, leaf: Leaf) -> Self {
        Block {
            addr,
            leaf,
            hit: false,
            payload: Payload::Opaque,
        }
    }

    /// Creates a data block carrying `bytes`.
    pub fn with_data(addr: BlockAddr, leaf: Leaf, bytes: Box<[u8]>) -> Self {
        Block {
            addr,
            leaf,
            hit: false,
            payload: Payload::Data(bytes),
        }
    }

    /// Creates a position-map block with the given entries.
    pub fn posmap(addr: BlockAddr, leaf: Leaf, entries: Box<[PosEntry]>) -> Self {
        Block {
            addr,
            leaf,
            hit: false,
            payload: Payload::PosMap(entries),
        }
    }

    /// Entry table of a posmap block.
    ///
    /// # Panics
    ///
    /// Panics if the block is not a posmap block.
    pub fn entries(&self) -> &[PosEntry] {
        match &self.payload {
            Payload::PosMap(e) => e,
            other => panic!("block {} is not a posmap block: {other:?}", self.addr),
        }
    }

    /// Mutable entry table of a posmap block.
    ///
    /// # Panics
    ///
    /// Panics if the block is not a posmap block.
    pub fn entries_mut(&mut self) -> &mut [PosEntry] {
        match &mut self.payload {
            Payload::PosMap(e) => e,
            other => panic!("not a posmap block: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let b = Block::opaque(BlockAddr(1), Leaf(2));
        assert_eq!(b.addr, BlockAddr(1));
        assert_eq!(b.leaf, Leaf(2));
        assert!(!b.hit);
        assert_eq!(b.payload, Payload::Opaque);

        let d = Block::with_data(BlockAddr(3), Leaf(0), vec![1, 2, 3].into());
        assert!(matches!(d.payload, Payload::Data(_)));

        let p = Block::posmap(BlockAddr(4), Leaf(0), vec![PosEntry::new(Leaf(9))].into());
        assert!(p.payload.is_posmap());
        assert_eq!(p.entries()[0].leaf, Leaf(9));
    }

    #[test]
    fn entries_mut_updates() {
        let mut p = Block::posmap(BlockAddr(4), Leaf(0), vec![PosEntry::new(Leaf(1))].into());
        p.entries_mut()[0].leaf = Leaf(7);
        assert_eq!(p.entries()[0].leaf, Leaf(7));
    }

    #[test]
    #[should_panic(expected = "not a posmap block")]
    fn entries_on_data_block_panics() {
        Block::opaque(BlockAddr(0), Leaf(0)).entries();
    }
}
