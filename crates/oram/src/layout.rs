//! Physical address layout of the off-chip bucket store.
//!
//! With a functional treetop cache the top `treetop_levels` tree levels
//! live in trusted on-chip memory and never round-trip through the
//! encrypted store, so the store only holds the `2^levels - 2^t`
//! off-chip buckets. [`StoreLayout`] is the bijection between the
//! tree's heap indices (root = 0, breadth-first) and the store's
//! physical bucket indices; [`TreeLayout`] selects how the off-chip
//! buckets are arranged:
//!
//! * [`TreeLayout::Flat`] keeps heap (breadth-first) order, shifted
//!   down past the treetop. With `treetop_levels = 0` this is the
//!   identity map, which is what keeps the flat default byte-identical
//!   to the pre-layout goldens.
//! * [`TreeLayout::SubtreePacked`] packs each subtree of `height`
//!   levels contiguously ("Optimizing Path ORAM for Cloud Storage
//!   Applications", Wolfe et al.), so the buckets a path touches within
//!   one packed subtree are adjacent in the backing store — fewer
//!   simulated DRAM rows (and fewer host cache lines) per path.
//!
//! The map is pure address arithmetic: both layouts store the same
//! bucket images and the controller always addresses the store through
//! [`StoreLayout::phys_of`], so the choice is invisible to every
//! logical observable.

/// How the off-chip buckets are arranged in the encrypted store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TreeLayout {
    /// Heap (breadth-first) order, shifted past the treetop. The
    /// golden-identical default.
    #[default]
    Flat,
    /// Subtrees of `height` levels are packed contiguously; `height`
    /// must divide the off-chip depth
    /// ([`OramConfig::off_chip_levels`](crate::OramConfig::off_chip_levels)).
    SubtreePacked {
        /// Levels per packed subtree (>= 1).
        height: u32,
    },
}

impl std::fmt::Display for TreeLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeLayout::Flat => write!(f, "flat"),
            TreeLayout::SubtreePacked { height } => write!(f, "subtree_packed({height})"),
        }
    }
}

/// The heap-index ↔ physical-index bijection for one tree geometry.
///
/// Heap indices `0..treetop_buckets()` are on-chip and have no physical
/// image; every other heap index maps to exactly one physical index in
/// `0..num_off_chip()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreLayout {
    levels: u32,
    treetop_levels: u32,
    kind: TreeLayout,
    /// Physical offset of each packed band (levels `t .. t+h`,
    /// `t+h .. t+2h`, ...); empty for the flat layout.
    band_starts: Vec<usize>,
}

impl StoreLayout {
    /// Builds the layout for a `levels`-deep tree with the top
    /// `treetop_levels` levels held on chip.
    ///
    /// # Panics
    ///
    /// Panics if `treetop_levels >= levels`, or (for
    /// [`TreeLayout::SubtreePacked`]) if `height` is zero or does not
    /// divide the off-chip depth. [`OramConfig::check`] rejects these
    /// geometries first with a proper error.
    ///
    /// [`OramConfig::check`]: crate::OramConfig::check
    pub fn new(levels: u32, treetop_levels: u32, kind: TreeLayout) -> StoreLayout {
        assert!(
            treetop_levels < levels,
            "treetop ({treetop_levels}) must leave at least one off-chip level of {levels}"
        );
        let band_starts = match kind {
            TreeLayout::Flat => Vec::new(),
            TreeLayout::SubtreePacked { height } => {
                let depth = levels - treetop_levels;
                assert!(height >= 1, "subtree height must be at least 1");
                assert!(
                    depth.is_multiple_of(height),
                    "subtree height ({height}) must divide the off-chip depth ({depth})"
                );
                // Band b starts where the previous bands end: all
                // off-chip buckets above level t + b*h.
                (0..depth / height)
                    .map(|b| (1usize << (treetop_levels + b * height)) - (1usize << treetop_levels))
                    .collect()
            }
        };
        StoreLayout {
            levels,
            treetop_levels,
            kind,
            band_starts,
        }
    }

    /// Tree levels of the geometry this layout maps.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// On-chip (treetop) levels.
    pub fn treetop_levels(&self) -> u32 {
        self.treetop_levels
    }

    /// The layout variant in effect.
    pub fn kind(&self) -> TreeLayout {
        self.kind
    }

    /// Buckets held on chip: `2^treetop_levels - 1`.
    pub fn treetop_buckets(&self) -> usize {
        (1usize << self.treetop_levels) - 1
    }

    /// Buckets the off-chip store holds: `2^levels - 2^treetop_levels`.
    pub fn num_off_chip(&self) -> usize {
        ((1usize << self.levels) - 1) - self.treetop_buckets()
    }

    /// Physical store index of off-chip heap index `heap`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `heap` is an on-chip (treetop) bucket — those
    /// have no physical image.
    pub fn phys_of(&self, heap: usize) -> usize {
        debug_assert!(
            heap >= self.treetop_buckets(),
            "heap index {heap} is on chip (treetop holds {})",
            self.treetop_buckets()
        );
        match self.kind {
            TreeLayout::Flat => heap - self.treetop_buckets(),
            TreeLayout::SubtreePacked { height } => {
                let level = (heap + 1).ilog2();
                // Position of the node within its level.
                let pos = heap + 1 - (1usize << level);
                let rel = level - self.treetop_levels;
                let band = (rel / height) as usize;
                // Depth of the node inside its packed subtree.
                let depth = rel % height;
                let subtree = pos >> depth;
                let local = ((1usize << depth) - 1) + (pos & ((1usize << depth) - 1));
                self.band_starts[band] + subtree * ((1usize << height) - 1) + local
            }
        }
    }

    /// Heap index of physical store index `phys` (inverse of
    /// [`StoreLayout::phys_of`]).
    pub fn heap_of(&self, phys: usize) -> usize {
        debug_assert!(phys < self.num_off_chip(), "physical index out of range");
        match self.kind {
            TreeLayout::Flat => phys + self.treetop_buckets(),
            TreeLayout::SubtreePacked { height } => {
                let band = self.band_starts.partition_point(|&s| s <= phys) - 1;
                let rel = phys - self.band_starts[band];
                let subtree_size = (1usize << height) - 1;
                let subtree = rel / subtree_size;
                let local = rel % subtree_size;
                let depth = (local + 1).ilog2();
                let pos = (subtree << depth) + (local + 1 - (1usize << depth));
                let level = self.treetop_levels + band as u32 * height + depth;
                (1usize << level) - 1 + pos
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometries() -> Vec<(u32, u32, TreeLayout)> {
        vec![
            (8, 0, TreeLayout::Flat),
            (8, 2, TreeLayout::Flat),
            (8, 7, TreeLayout::Flat),
            (8, 0, TreeLayout::SubtreePacked { height: 4 }),
            (8, 0, TreeLayout::SubtreePacked { height: 2 }),
            (8, 2, TreeLayout::SubtreePacked { height: 3 }),
            (8, 2, TreeLayout::SubtreePacked { height: 6 }),
            (12, 4, TreeLayout::SubtreePacked { height: 2 }),
            (12, 0, TreeLayout::SubtreePacked { height: 1 }),
            (5, 1, TreeLayout::SubtreePacked { height: 4 }),
        ]
    }

    #[test]
    fn flat_with_no_treetop_is_the_identity() {
        let l = StoreLayout::new(8, 0, TreeLayout::Flat);
        assert_eq!(l.treetop_buckets(), 0);
        assert_eq!(l.num_off_chip(), 255);
        for heap in 0..255 {
            assert_eq!(l.phys_of(heap), heap);
            assert_eq!(l.heap_of(heap), heap);
        }
    }

    #[test]
    fn every_geometry_is_a_bijection() {
        for (levels, treetop, kind) in geometries() {
            let l = StoreLayout::new(levels, treetop, kind);
            let num_buckets = (1usize << levels) - 1;
            assert_eq!(l.num_off_chip() + l.treetop_buckets(), num_buckets);
            let mut seen = vec![false; l.num_off_chip()];
            for heap in l.treetop_buckets()..num_buckets {
                let phys = l.phys_of(heap);
                assert!(phys < l.num_off_chip(), "{kind} t={treetop}: phys {phys}");
                assert!(!seen[phys], "{kind} t={treetop}: phys {phys} hit twice");
                seen[phys] = true;
                assert_eq!(
                    l.heap_of(phys),
                    heap,
                    "{kind} t={treetop}: heap {heap} does not round-trip"
                );
            }
            assert!(
                seen.iter().all(|&b| b),
                "{kind} t={treetop}: store has holes"
            );
        }
    }

    #[test]
    fn packed_subtrees_are_contiguous() {
        // One packed subtree: its root and both children are adjacent.
        let l = StoreLayout::new(4, 0, TreeLayout::SubtreePacked { height: 2 });
        // Heap 0 (root), 1, 2 form the first packed subtree.
        assert_eq!(l.phys_of(0), 0);
        assert_eq!(l.phys_of(1), 1);
        assert_eq!(l.phys_of(2), 2);
        // The second band packs each leaf-side subtree of 3 buckets.
        // Heap 3 roots the subtree holding heaps 7 and 8.
        assert_eq!(l.phys_of(3), 3);
        assert_eq!(l.phys_of(7), 4);
        assert_eq!(l.phys_of(8), 5);
    }

    #[test]
    fn treetop_shifts_the_flat_map() {
        let l = StoreLayout::new(4, 2, TreeLayout::Flat);
        assert_eq!(l.treetop_buckets(), 3);
        assert_eq!(l.num_off_chip(), 12);
        assert_eq!(l.phys_of(3), 0);
        assert_eq!(l.heap_of(0), 3);
        assert_eq!(l.phys_of(14), 11);
    }

    #[test]
    #[should_panic(expected = "at least one off-chip level")]
    fn treetop_covering_the_tree_panics() {
        StoreLayout::new(4, 4, TreeLayout::Flat);
    }

    #[test]
    #[should_panic(expected = "must divide the off-chip depth")]
    fn indivisible_subtree_height_panics() {
        StoreLayout::new(8, 1, TreeLayout::SubtreePacked { height: 3 });
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(TreeLayout::Flat.to_string(), "flat");
        assert_eq!(
            TreeLayout::SubtreePacked { height: 3 }.to_string(),
            "subtree_packed(3)"
        );
    }
}
