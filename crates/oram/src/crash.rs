//! Deterministic crash-point injection.
//!
//! The fault layer ([`crate::fault`]) models an adversarial or unreliable
//! *medium*: bytes flip, writes tear, stale images replay. This module
//! models a dying *controller process*: the access is killed at an exact,
//! enumerable point and everything volatile is presumed lost. Each
//! [`KillPoint`] names one such point; arming a [`CrashConfig`] makes the
//! Nth crossing of that point unwind the access as
//! [`crate::OramError::Crashed`], after which the harness runs
//! [`crate::PathOram::recover`] to roll back or replay the store's undo
//! journal and restore the sealed checkpoint.
//!
//! Injection is countdown-based, not rate-based, so a sweep over
//! `KillPoint::ALL` × crossing indices enumerates every distinct crash
//! schedule deterministically — the property the crash-recovery test
//! suite and the `crash` bench subcommand rely on.

use std::fmt;

/// One enumerable point where a simulated process death can strike.
///
/// The first six variants are the entries of the staged access pipeline
/// ([`crate::pipeline::AccessStage`]); the last three live inside the
/// storage commit protocol, where a real crash is most damaging: while
/// undo entries are being journaled, during the MAC-bound epoch flip,
/// and inside a pooled encrypt job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KillPoint {
    /// Entering the position-map walk.
    ResolvePosmap,
    /// Entering the data-path fetch.
    PathFetch,
    /// Entering decrypt/authenticate.
    DecryptVerify,
    /// Entering the stash update.
    StashUpdate,
    /// Entering the path write-back.
    WriteBack,
    /// Entering background eviction.
    Evict,
    /// While appending an undo entry to the commit journal: the entry is
    /// durable, the home bucket write it guards never happens.
    MidJournal,
    /// During the epoch flip: the epoch header has advanced but the
    /// journal has not yet been discarded, so recovery must *replay*
    /// (keep the committed image) instead of rolling back.
    MidFlip,
    /// Inside a pooled encrypt (seal) job: the job panics mid-batch and
    /// the whole write batch is abandoned before any bucket commits.
    PooledEncrypt,
}

impl KillPoint {
    /// Every kill point, in pipeline-then-commit order.
    pub const ALL: [KillPoint; 9] = [
        KillPoint::ResolvePosmap,
        KillPoint::PathFetch,
        KillPoint::DecryptVerify,
        KillPoint::StashUpdate,
        KillPoint::WriteBack,
        KillPoint::Evict,
        KillPoint::MidJournal,
        KillPoint::MidFlip,
        KillPoint::PooledEncrypt,
    ];

    /// Stable snake_case name used in reports and JSONL traces.
    pub fn name(self) -> &'static str {
        match self {
            KillPoint::ResolvePosmap => "resolve_posmap",
            KillPoint::PathFetch => "path_fetch",
            KillPoint::DecryptVerify => "decrypt_verify",
            KillPoint::StashUpdate => "stash_update",
            KillPoint::WriteBack => "write_back",
            KillPoint::Evict => "evict",
            KillPoint::MidJournal => "mid_journal",
            KillPoint::MidFlip => "mid_flip",
            KillPoint::PooledEncrypt => "pooled_encrypt",
        }
    }

    /// The obs-crate mirror of this point.
    pub(crate) fn obs(self) -> proram_obs::CrashPoint {
        match self {
            KillPoint::ResolvePosmap => proram_obs::CrashPoint::ResolvePosmap,
            KillPoint::PathFetch => proram_obs::CrashPoint::PathFetch,
            KillPoint::DecryptVerify => proram_obs::CrashPoint::DecryptVerify,
            KillPoint::StashUpdate => proram_obs::CrashPoint::StashUpdate,
            KillPoint::WriteBack => proram_obs::CrashPoint::WriteBack,
            KillPoint::Evict => proram_obs::CrashPoint::Evict,
            KillPoint::MidJournal => proram_obs::CrashPoint::MidJournal,
            KillPoint::MidFlip => proram_obs::CrashPoint::MidFlip,
            KillPoint::PooledEncrypt => proram_obs::CrashPoint::PooledEncrypt,
        }
    }

    /// `true` for the points that fire inside the storage commit
    /// protocol rather than at a pipeline-stage entry.
    pub fn is_store_point(self) -> bool {
        matches!(
            self,
            KillPoint::MidJournal | KillPoint::MidFlip | KillPoint::PooledEncrypt
        )
    }
}

impl fmt::Display for KillPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Arms deterministic crash injection on a controller
/// ([`crate::config::OramConfig::crash`]).
///
/// The injector fires exactly once, on the `crossing`-th crossing
/// (1-based) of `point`, then disarms — so the post-recovery retry of
/// the killed access runs to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashConfig {
    /// The kill point to arm.
    pub point: KillPoint,
    /// Which crossing of the point fires (1-based).
    pub crossing: u64,
}

impl CrashConfig {
    /// Arms the first crossing of `point`.
    pub fn first(point: KillPoint) -> CrashConfig {
        CrashConfig { point, crossing: 1 }
    }

    /// Arms the `crossing`-th crossing (1-based) of `point`.
    pub fn at(point: KillPoint, crossing: u64) -> CrashConfig {
        CrashConfig { point, crossing }
    }

    /// Validates the configuration (crossing indices are 1-based).
    pub fn validate(&self) -> Result<(), String> {
        if self.crossing == 0 {
            return Err("crash crossing is 1-based and must be positive".into());
        }
        Ok(())
    }
}

/// The live countdown for an armed [`CrashConfig`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct CrashArm {
    pub(crate) point: KillPoint,
    /// Crossings left before the kill fires.
    pub(crate) remaining: u64,
    /// Set once the kill fired; the arm never fires again.
    pub(crate) fired: bool,
}

impl CrashArm {
    pub(crate) fn new(cfg: CrashConfig) -> CrashArm {
        CrashArm {
            point: cfg.point,
            remaining: cfg.crossing,
            fired: false,
        }
    }

    /// Records one crossing of `point`; returns `true` if the kill
    /// fires now.
    pub(crate) fn cross(&mut self, point: KillPoint) -> bool {
        if self.fired || point != self.point {
            return false;
        }
        self.remaining -= 1;
        if self.remaining == 0 {
            self.fired = true;
            true
        } else {
            false
        }
    }
}

/// How [`crate::PathOram::recover`] resolved the interrupted access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// No journal was pending; the store was already consistent.
    Clean,
    /// The crash struck before the epoch flip: every journaled bucket
    /// was restored to its pre-transaction image and the pre-access
    /// checkpoint was adopted.
    RolledBack,
    /// The crash struck after the epoch flip: the committed image was
    /// kept and the post-access checkpoint was adopted.
    Replayed,
}

impl RecoveryMode {
    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryMode::Clean => "clean",
            RecoveryMode::RolledBack => "rolled_back",
            RecoveryMode::Replayed => "replayed",
        }
    }
}

impl fmt::Display for RecoveryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What one [`crate::PathOram::recover`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Rollback, replay, or nothing to do.
    pub mode: RecoveryMode,
    /// Undo entries the journal held.
    pub journal_entries: usize,
    /// Store buckets restored from undo entries (rollback only).
    pub buckets_restored: usize,
    /// Tree buckets re-read and re-authenticated from the store image.
    pub buckets_reverified: usize,
    /// Modeled recovery latency in cycles (journal restore plus the
    /// re-verification reads, charged at the path-fetch byte rate).
    pub cycles: u64,
}

/// Cumulative crash/recovery counters for a controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashStats {
    /// Injected kills that fired.
    pub crashes_injected: u64,
    /// Recoveries that rolled the journal back.
    pub rollbacks: u64,
    /// Recoveries that replayed (kept) the committed image.
    pub replays: u64,
    /// Recoveries that found a consistent store (nothing pending).
    pub clean_recoveries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_points_have_unique_names() {
        let mut names: Vec<&str> = KillPoint::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KillPoint::ALL.len());
    }

    #[test]
    fn arm_fires_on_the_nth_crossing_exactly_once() {
        let mut arm = CrashArm::new(CrashConfig::at(KillPoint::WriteBack, 3));
        assert!(!arm.cross(KillPoint::WriteBack));
        assert!(!arm.cross(KillPoint::PathFetch));
        assert!(!arm.cross(KillPoint::WriteBack));
        assert!(arm.cross(KillPoint::WriteBack));
        // Disarmed after firing.
        assert!(!arm.cross(KillPoint::WriteBack));
    }

    #[test]
    fn zero_crossing_rejected() {
        assert!(CrashConfig::at(KillPoint::MidFlip, 0).validate().is_err());
        assert!(CrashConfig::first(KillPoint::MidFlip).validate().is_ok());
    }

    #[test]
    fn store_points_are_classified() {
        assert!(KillPoint::MidJournal.is_store_point());
        assert!(KillPoint::MidFlip.is_store_point());
        assert!(KillPoint::PooledEncrypt.is_store_point());
        assert!(!KillPoint::WriteBack.is_store_point());
    }
}
