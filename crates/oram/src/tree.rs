//! The ORAM binary tree.
//!
//! A complete binary tree of [`Bucket`]s in heap layout: level 0 is the
//! root, level `L` the leaves (paper Figure 1). The path to leaf `s` is the
//! set of buckets whose level-`l` ancestor index matches `s`'s.

use crate::addr::Leaf;
use crate::bucket::Bucket;

/// The binary-tree bucket store.
///
/// # Examples
///
/// ```
/// use proram_oram::{OramTree, Leaf};
///
/// let tree = OramTree::new(4, 3); // 4 levels => 8 leaves, Z = 3
/// assert_eq!(tree.num_leaves(), 8);
/// assert_eq!(tree.path_indices(Leaf(5)).count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct OramTree {
    levels: u32,
    z: usize,
    buckets: Vec<Bucket>,
}

impl OramTree {
    /// Creates an empty tree with `levels` levels (root through leaves)
    /// and `z` slots per bucket.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero or large enough to overflow leaf labels
    /// (more than 31), or `z` is zero.
    pub fn new(levels: u32, z: usize) -> Self {
        assert!((1..=31).contains(&levels), "levels must be in 1..=31");
        assert!(z > 0, "Z must be positive");
        let num_buckets = (1usize << levels) - 1;
        let buckets = vec![Bucket::new(z); num_buckets];
        OramTree { levels, z, buckets }
    }

    /// Number of levels (root through leaves). The paper's `L` is
    /// `levels - 1`.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Bucket slot count `Z`.
    pub fn z(&self) -> usize {
        self.z
    }

    /// Number of leaves, `2^(levels-1)`.
    pub fn num_leaves(&self) -> u32 {
        1 << (self.levels - 1)
    }

    /// Number of buckets, `2^levels - 1`.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total real-block capacity, `Z * num_buckets`.
    pub fn capacity(&self) -> usize {
        self.z * self.num_buckets()
    }

    /// Heap index of the bucket at `level` on the path to `leaf`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels` or `leaf` is out of range.
    pub fn bucket_index(&self, leaf: Leaf, level: u32) -> usize {
        assert!(level < self.levels, "level {level} out of range");
        assert!(leaf.0 < self.num_leaves(), "{leaf} out of range");
        let prefix = leaf.0 >> (self.levels - 1 - level);
        ((1u32 << level) - 1 + prefix) as usize
    }

    /// Heap indices of the buckets on the path to `leaf`, root first.
    ///
    /// The iterator owns the tree geometry rather than borrowing the tree,
    /// so callers may mutate buckets while walking the path — the hot path
    /// in [`crate::eviction`] consumes it directly instead of collecting
    /// indices into a temporary `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn path_indices(&self, leaf: Leaf) -> PathIndices {
        assert!(leaf.0 < self.num_leaves(), "{leaf} out of range");
        PathIndices {
            leaf: leaf.0,
            leaf_level: self.levels - 1,
            front: 0,
            back: self.levels,
        }
    }

    /// Borrows the bucket at a heap index.
    pub fn bucket(&self, index: usize) -> &Bucket {
        &self.buckets[index]
    }

    /// Mutably borrows the bucket at a heap index.
    pub fn bucket_mut(&mut self, index: usize) -> &mut Bucket {
        &mut self.buckets[index]
    }

    /// Deepest level (0-based) shared by the paths to `a` and `b`.
    ///
    /// A block mapped to leaf `a` may be stored in any bucket on the path
    /// to `b` at levels `0..=common_level(a, b)` — the quantity the greedy
    /// write-back in [`crate::eviction`] maximizes.
    pub fn common_level(&self, a: Leaf, b: Leaf) -> u32 {
        let diff = a.0 ^ b.0;
        let leaf_bits = self.levels - 1;
        if diff == 0 {
            leaf_bits
        } else {
            leaf_bits - (32 - diff.leading_zeros())
        }
    }

    /// Number of real blocks currently stored in the tree.
    pub fn occupancy(&self) -> usize {
        self.buckets.iter().map(Bucket::len).sum()
    }
}

/// Owned iterator over the bucket heap indices of one path, root first.
///
/// Returned by [`OramTree::path_indices`]; holds no borrow of the tree.
#[derive(Debug, Clone)]
pub struct PathIndices {
    leaf: u32,
    /// Level of the leaf bucket (`levels - 1`).
    leaf_level: u32,
    /// Next level to yield from the front.
    front: u32,
    /// One past the last level to yield from the back.
    back: u32,
}

impl PathIndices {
    #[inline]
    fn index_at(&self, level: u32) -> usize {
        let prefix = self.leaf >> (self.leaf_level - level);
        ((1u32 << level) - 1 + prefix) as usize
    }
}

impl Iterator for PathIndices {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.front >= self.back {
            return None;
        }
        let idx = self.index_at(self.front);
        self.front += 1;
        Some(idx)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.back - self.front) as usize;
        (n, Some(n))
    }
}

impl DoubleEndedIterator for PathIndices {
    #[inline]
    fn next_back(&mut self) -> Option<usize> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        Some(self.index_at(self.back))
    }
}

impl ExactSizeIterator for PathIndices {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use proram_mem::BlockAddr;

    #[test]
    fn geometry() {
        let t = OramTree::new(4, 3);
        assert_eq!(t.num_leaves(), 8);
        assert_eq!(t.num_buckets(), 15);
        assert_eq!(t.capacity(), 45);
        assert_eq!(t.levels(), 4);
        assert_eq!(t.z(), 3);
    }

    #[test]
    fn path_indices_match_figure_1() {
        // 4-level tree, path to leaf 5: root(0), then right(2), then
        // left-of-right(5), then leaf index 5 => heap 7 + 5 = 12.
        let t = OramTree::new(4, 3);
        let path: Vec<usize> = t.path_indices(Leaf(5)).collect();
        assert_eq!(path, vec![0, 2, 5, 12]);
    }

    #[test]
    fn path_indices_iterate_both_ways() {
        let t = OramTree::new(4, 3);
        let fwd: Vec<usize> = t.path_indices(Leaf(5)).collect();
        let mut rev: Vec<usize> = t.path_indices(Leaf(5)).rev().collect();
        rev.reverse();
        assert_eq!(fwd, rev);
        assert_eq!(t.path_indices(Leaf(5)).len(), 4);
    }

    #[test]
    fn path_indices_do_not_borrow_the_tree() {
        // The owned iterator permits bucket mutation mid-walk — the shape
        // the eviction hot path relies on.
        let mut t = OramTree::new(4, 2);
        for idx in t.path_indices(Leaf(3)) {
            t.bucket_mut(idx)
                .push(Block::opaque(BlockAddr(idx as u64), Leaf(3)));
        }
        assert_eq!(t.occupancy(), 4);
    }

    #[test]
    fn paths_share_the_root() {
        let t = OramTree::new(5, 3);
        for leaf in 0..t.num_leaves() {
            assert_eq!(t.path_indices(Leaf(leaf)).next(), Some(0));
        }
    }

    #[test]
    fn sibling_leaves_share_all_but_last() {
        let t = OramTree::new(4, 3);
        let a: Vec<usize> = t.path_indices(Leaf(6)).collect();
        let b: Vec<usize> = t.path_indices(Leaf(7)).collect();
        assert_eq!(a[..3], b[..3]);
        assert_ne!(a[3], b[3]);
    }

    #[test]
    fn common_level_examples() {
        let t = OramTree::new(4, 3); // leaf bits = 3
        assert_eq!(t.common_level(Leaf(5), Leaf(5)), 3);
        assert_eq!(t.common_level(Leaf(6), Leaf(7)), 2);
        assert_eq!(t.common_level(Leaf(0), Leaf(7)), 0);
        assert_eq!(t.common_level(Leaf(4), Leaf(6)), 1);
    }

    #[test]
    fn common_level_is_symmetric() {
        let t = OramTree::new(6, 3);
        for a in 0..t.num_leaves() {
            for b in 0..t.num_leaves() {
                assert_eq!(
                    t.common_level(Leaf(a), Leaf(b)),
                    t.common_level(Leaf(b), Leaf(a))
                );
            }
        }
    }

    #[test]
    fn buckets_store_blocks() {
        let mut t = OramTree::new(3, 2);
        let idx = t.bucket_index(Leaf(2), 2);
        t.bucket_mut(idx).push(Block::opaque(BlockAddr(1), Leaf(2)));
        assert_eq!(t.occupancy(), 1);
        assert_eq!(t.bucket(idx).len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_level_panics() {
        OramTree::new(3, 2).bucket_index(Leaf(0), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_leaf_panics() {
        OramTree::new(3, 2).bucket_index(Leaf(4), 0);
    }

    #[test]
    fn single_level_tree() {
        let t = OramTree::new(1, 2);
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.num_buckets(), 1);
        assert_eq!(t.common_level(Leaf(0), Leaf(0)), 0);
    }
}
