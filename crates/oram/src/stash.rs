//! The on-chip stash.
//!
//! "The stash is a piece of memory that stores up to a small number of
//! data blocks at a time" (paper Section 2.2). Blocks overflow into the
//! stash when path write-back cannot place them; when occupancy crosses
//! the configured limit the controller issues background evictions
//! (Section 2.4) until it drains.

use crate::block::Block;
use proram_mem::BlockAddr;
use proram_stats::{FxHashMap, Histogram};

/// The stash: an address-indexed set of blocks with occupancy tracking.
///
/// # Examples
///
/// ```
/// use proram_oram::{Block, Leaf, Stash};
/// use proram_mem::BlockAddr;
///
/// let mut stash = Stash::new(100);
/// stash.insert(Block::opaque(BlockAddr(1), Leaf(3)));
/// assert!(stash.contains(BlockAddr(1)));
/// assert_eq!(stash.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Stash {
    /// Address-indexed block set. Keyed with the deterministic
    /// [`FxHashMap`] — stash lookups sit on the per-access hot path, and
    /// no consumer depends on iteration order (every order-sensitive
    /// caller imposes a total order itself).
    blocks: FxHashMap<u64, Block>,
    limit: usize,
    occupancy_hist: Histogram,
    peak: usize,
}

impl Stash {
    /// Creates an empty stash with a background-eviction threshold of
    /// `limit` blocks (the paper's "Stash Size", default 100).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn new(limit: usize) -> Self {
        assert!(limit > 0, "stash limit must be positive");
        Stash {
            blocks: FxHashMap::default(),
            limit,
            occupancy_hist: Histogram::new(),
            peak: 0,
        }
    }

    /// The background-eviction threshold.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Number of blocks currently stashed.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if the stash holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// `true` once occupancy is at or above the limit — the condition that
    /// triggers background eviction.
    pub fn over_limit(&self) -> bool {
        self.blocks.len() >= self.limit
    }

    /// Inserts a block.
    ///
    /// # Panics
    ///
    /// Panics if a block with the same address is already stashed (the
    /// controller must never duplicate blocks).
    pub fn insert(&mut self, block: Block) {
        let prev = self.blocks.insert(block.addr.0, block);
        assert!(prev.is_none(), "duplicate block in stash");
        self.peak = self.peak.max(self.blocks.len());
    }

    /// `true` if a block with this address is stashed.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.blocks.contains_key(&addr.0)
    }

    /// Borrows the stashed block with this address.
    pub fn get(&self, addr: BlockAddr) -> Option<&Block> {
        self.blocks.get(&addr.0)
    }

    /// Mutably borrows the stashed block with this address.
    pub fn get_mut(&mut self, addr: BlockAddr) -> Option<&mut Block> {
        self.blocks.get_mut(&addr.0)
    }

    /// Removes and returns the block with this address.
    pub fn take(&mut self, addr: BlockAddr) -> Option<Block> {
        self.blocks.remove(&addr.0)
    }

    /// Iterates over stashed blocks (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.values()
    }

    /// Addresses of all stashed blocks (unspecified order), borrowed —
    /// callers that need them sorted collect explicitly.
    pub fn addrs(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.blocks.keys().map(|&a| BlockAddr(a))
    }

    /// Records the current occupancy into the histogram; the controller
    /// calls this once per ORAM access.
    pub fn sample_occupancy(&mut self) {
        self.occupancy_hist.record(self.blocks.len() as u64);
    }

    /// Occupancy histogram accumulated via [`Stash::sample_occupancy`].
    pub fn occupancy_histogram(&self) -> &Histogram {
        &self.occupancy_hist
    }

    /// Highest occupancy ever reached.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Leaf;

    fn blk(a: u64) -> Block {
        Block::opaque(BlockAddr(a), Leaf(0))
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut s = Stash::new(10);
        s.insert(blk(5));
        assert!(s.contains(BlockAddr(5)));
        let b = s.take(BlockAddr(5)).unwrap();
        assert_eq!(b.addr, BlockAddr(5));
        assert!(!s.contains(BlockAddr(5)));
        assert!(s.take(BlockAddr(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate block")]
    fn duplicate_insert_panics() {
        let mut s = Stash::new(10);
        s.insert(blk(1));
        s.insert(blk(1));
    }

    #[test]
    fn over_limit_threshold() {
        let mut s = Stash::new(2);
        assert!(!s.over_limit());
        s.insert(blk(1));
        assert!(!s.over_limit());
        s.insert(blk(2));
        assert!(s.over_limit());
    }

    #[test]
    fn get_mut_mutates() {
        let mut s = Stash::new(4);
        s.insert(blk(1));
        s.get_mut(BlockAddr(1)).unwrap().leaf = Leaf(9);
        assert_eq!(s.get(BlockAddr(1)).unwrap().leaf, Leaf(9));
    }

    #[test]
    fn occupancy_tracking() {
        let mut s = Stash::new(10);
        s.sample_occupancy();
        s.insert(blk(1));
        s.insert(blk(2));
        s.sample_occupancy();
        s.take(BlockAddr(1));
        s.sample_occupancy();
        let h = s.occupancy_histogram();
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(s.peak(), 2);
    }

    #[test]
    #[should_panic(expected = "limit must be positive")]
    fn zero_limit_panics() {
        Stash::new(0);
    }

    #[test]
    fn addrs_lists_blocks() {
        let mut s = Stash::new(10);
        s.insert(blk(3));
        s.insert(blk(7));
        let mut a: Vec<u64> = s.addrs().map(|b| b.0).collect();
        a.sort_unstable();
        assert_eq!(a, vec![3, 7]);
    }
}
