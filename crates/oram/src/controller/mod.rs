//! The Path ORAM controller, split into pipeline stage modules.
//!
//! Implements the five-step access of paper Section 2.2 on top of the
//! unified recursive position map of Section 2.3 and background eviction
//! of Section 2.4. Each stage of an access lives in its own child module
//! and the stages communicate through the typed
//! [`crate::pipeline::AccessMachine`] state machine instead of one deep
//! call chain:
//!
//! * `posmap` — position-map resolve and remap (PLB, top table),
//! * `fetch` — path fetch: bucket-read batches, stash fill, block claim,
//! * `verify` — decrypt/authenticate/repair of the encrypted image,
//! * `writeback` — path write-back, background and emergency eviction.
//!
//! [`PathOram::try_access_block`] is a thin driver that steps the machine
//! to completion; the super-block schemes in `proram-core` compose the
//! same stage primitives ([`PathOram::try_resolve_posmap`],
//! [`PathOram::try_read_path_into_stash`],
//! [`PathOram::write_path_from_stash`], entry accessors) into grouped
//! accesses.
//!
//! # Fault handling
//!
//! Every fallible primitive returns [`Result<_, OramError>`] — the
//! `try_` forms ([`PathOram::try_access_block`],
//! [`PathOram::try_read_block`], [`PathOram::try_write_block`]) are the
//! only access API; the old panicking wrappers are gone. With
//! [`OramConfig::fault`] set, the controller recovers in place: corrupted
//! or rolled-back buckets flagged by per-path verification (or the
//! periodic scrub) are re-encrypted from the trusted logical tree,
//! transient read failures retry with exponential backoff charged to
//! access latency, and a stash past its hard capacity enters emergency
//! eviction before fail-stop. Counters live in [`proram_mem::FaultStats`],
//! surfaced via [`PathOram::fault_stats`].

pub(crate) mod fetch;
pub(crate) mod posmap;
pub(crate) mod verify;
pub(crate) mod writeback;

use crate::addr::{AddressSpace, Leaf};
use crate::block::{Block, Payload};
use crate::config::OramConfig;
use crate::crash::{CrashArm, CrashStats, KillPoint, RecoveryMode, RecoveryReport};
use crate::error::OramError;
use crate::eviction::PathScratch;
use crate::journal::Checkpoint;
use crate::layout::StoreLayout;
use crate::pipeline::{AccessMachine, AccessRequest, StageCycles};
use crate::plb::Plb;
use crate::posmap::PosEntry;
use crate::stash::Stash;
use crate::storage::EncryptedStore;
use crate::trace::TraceRecorder;
use crate::tree::OramTree;
use proram_mem::{
    AccessKind, AccessOutcome, BackendStats, BankScheduler, BlockAddr, CacheProbe, Cycle,
    FaultStats, Fill, MemRequest, MemoryBackend,
};
use proram_obs::Obs;
use proram_stats::{Rng64, Xoshiro256};

/// Bound on background evictions after one access. A dense tree with a
/// tiny stash target can enter a persistent eviction storm (the regime of
/// the paper's Figure 12 at stash size 25); the controller then keeps
/// serving requests while evicting at this rate instead of livelocking.
pub(crate) const MAX_BACKGROUND_EVICTIONS_PER_ACCESS: u64 = 64;

/// Bound on *emergency* evictions when the stash exceeds its hard
/// capacity: the degraded mode may run this much longer than a normal
/// drain before the controller gives up and fail-stops with
/// [`OramError::StashOverflow`].
pub(crate) const MAX_EMERGENCY_EVICTIONS: u64 = 4 * MAX_BACKGROUND_EVICTIONS_PER_ACCESS;

/// A minimal FNV-1a accumulator for [`PathOram::state_digest`] —
/// deterministic across platforms, unlike the std hasher.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Statistics kept by the controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OramStats {
    /// Logical block requests served.
    pub logical_accesses: u64,
    /// Path accesses for data blocks.
    pub data_path_accesses: u64,
    /// Path accesses for position-map blocks.
    pub posmap_path_accesses: u64,
    /// Background-eviction (dummy) path accesses.
    pub background_evictions: u64,
    /// Bytes moved on the memory bus (all path accesses).
    pub bytes_moved: u64,
    /// Buckets served from the on-chip treetop cache (one per cached
    /// level per path access; zero with `treetop_levels == 0`).
    pub treetop_hits: u64,
    /// DRAM bytes the treetop cache saved: what the cached levels would
    /// have moved had they round-tripped through the store.
    pub treetop_bytes_saved: u64,
}

impl OramStats {
    /// All physical path accesses.
    pub fn total_path_accesses(&self) -> u64 {
        self.data_path_accesses + self.posmap_path_accesses + self.background_evictions
    }
}

/// Ground-truth classification of a path access (for statistics; on the
/// wire every kind is identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// A data-block (or super-block) access.
    Data,
    /// A position-map block fetch.
    PosMap,
    /// A dummy access: background eviction or periodic filler.
    Dummy,
}

/// Result of one logical access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessReport {
    /// Cycles the access occupied the ORAM (path transfers + overheads).
    /// Always equals [`StageCycles::total`] of `stages`.
    pub latency: u64,
    /// Total tree path accesses performed (data + posmap + background).
    pub tree_accesses: u64,
    /// Position-map path accesses among them.
    pub posmap_accesses: u64,
    /// Background evictions among them.
    pub background_evictions: u64,
    /// Per-stage cycle attribution summing to `latency`.
    pub stages: StageCycles,
}

/// The Path ORAM controller plus its in-DRAM tree.
///
/// # Examples
///
/// ```
/// use proram_oram::{OramConfig, PathOram};
/// use proram_mem::{AccessKind, BlockAddr};
///
/// let mut oram = PathOram::new(OramConfig::small_for_tests(512), 1);
/// let r1 = oram
///     .try_access_block(BlockAddr(7), AccessKind::Read)
///     .expect("no faults injected");
/// assert!(r1.tree_accesses >= 1);
/// oram.check_invariants();
/// ```
#[derive(Debug, Clone)]
pub struct PathOram {
    pub(crate) config: OramConfig,
    pub(crate) space: AddressSpace,
    pub(crate) tree: OramTree,
    pub(crate) stash: Stash,
    pub(crate) plb: Plb,
    /// On-chip entries for blocks of the highest on-tree hierarchy (or for
    /// the data blocks themselves when `on_tree_hierarchies == 0`).
    pub(crate) top: Vec<PosEntry>,
    pub(crate) rng: Xoshiro256,
    pub(crate) store: Option<EncryptedStore>,
    pub(crate) trace: TraceRecorder,
    pub(crate) stats: OramStats,
    pub(crate) path_cycles: u64,
    /// Per-path fetch cost actually charged: equals `path_cycles` with the
    /// lump-sum timing model, smaller with the bank-aware pipeline
    /// ([`OramConfig::pipeline`]).
    pub(crate) fetch_cycles: u64,
    pub(crate) path_bytes: u64,
    /// DRAM bytes one path access would additionally move without the
    /// treetop cache (full-path bytes minus off-chip `path_bytes`).
    pub(crate) treetop_saved_bytes: u64,
    /// Heap-index ↔ physical-index map of the off-chip store: the top
    /// [`StoreLayout::treetop_buckets`] heap buckets live on chip and
    /// have no store image.
    pub(crate) layout: StoreLayout,
    pub(crate) busy_until: Cycle,
    pub(crate) label: String,
    /// Reusable write-back scratch (see [`PathScratch`]).
    pub(crate) scratch: PathScratch,
    /// Reusable buffers for image verification (`verify_image` mode):
    /// decrypted-bucket plaintext and the two address lists compared per
    /// bucket.
    pub(crate) verify_plain: Vec<u8>,
    pub(crate) verify_store_addrs: Vec<u64>,
    pub(crate) verify_tree_addrs: Vec<u64>,
    /// Reusable buffers for the pooled verification path: the path's
    /// bucket indices and one address vector per bucket
    /// ([`EncryptedStore::bucket_addrs_batch`]).
    pub(crate) verify_batch_indices: Vec<usize>,
    pub(crate) verify_batch_addrs: Vec<Vec<u64>>,
    /// Recovery counters owned by the controller (repairs, emergency
    /// evictions, scrub passes); the injector's own counters live in the
    /// store and the two are summed by [`PathOram::fault_stats`].
    pub(crate) ctrl_faults: FaultStats,
    /// Data-path reads since the last scrub pass.
    pub(crate) reads_since_scrub: u64,
    /// Observability handle (events + per-stage profile); disabled by
    /// default so the hot path stays allocation- and branch-free.
    pub(crate) obs: Obs,
    /// Countdown arm for the six pipeline-stage kill points; the three
    /// store-level points are armed on the store instead
    /// ([`KillPoint::is_store_point`]).
    pub(crate) crash: Option<CrashArm>,
    /// Whether a commit transaction is open (between [`PathOram::txn_begin`]
    /// and the matching commit or recovery).
    pub(crate) txn_open: bool,
    /// Heap indices of tree buckets this transaction fetched or wrote;
    /// recovery re-reads exactly this set (unioned with the journal's)
    /// from the store image.
    pub(crate) txn_touched: std::collections::BTreeSet<usize>,
    /// `true` once the crash of the open transaction was counted and
    /// emitted (store-level crashes surface through several callers).
    pub(crate) crash_surfaced: bool,
    /// Cumulative crash-injection and recovery counters.
    pub(crate) crash_stats: CrashStats,
}

impl PathOram {
    /// Builds and initializes an ORAM: every data and position-map block
    /// is mapped to a random leaf and placed into the tree.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`OramConfig::validate`].
    pub fn new(config: OramConfig, seed: u64) -> Self {
        config.validate();
        let space = config.address_space();
        let levels = config.tree_levels();
        let mut rng = Xoshiro256::seed_from(seed);
        let mut tree = OramTree::new(levels, config.z);
        let num_leaves = tree.num_leaves();

        // Random initial leaf for every on-tree block. Data blocks may be
        // grouped (static super block scheme, Section 3.3): every aligned
        // group of `init_group_size` shares one leaf.
        let total = space.total_tree_blocks();
        let group = config.init_group_size;
        let mut leaves: Vec<Leaf> = Vec::with_capacity(total as usize);
        for addr in 0..total {
            if addr < space.num_data_blocks() && group > 1 && addr % group != 0 {
                let base = (addr / group * group) as usize;
                leaves.push(leaves[base]);
            } else {
                leaves.push(Leaf(rng.next_below(u64::from(num_leaves)) as u32));
            }
        }

        // On-chip table: entries for the highest on-tree hierarchy (or for
        // the data blocks directly when there is no on-tree posmap).
        let top_child = space.on_tree_hierarchies();
        let top_base = space.region_base(top_child);
        let top: Vec<PosEntry> = (0..space.region_len(top_child))
            .map(|i| PosEntry::new(leaves[(top_base + i) as usize]))
            .collect();

        // The configured stash size is the *physical* capacity, which
        // must also buffer one in-flight path of `levels * Z` blocks
        // (at the paper's full scale a Z=4 path is 104 blocks against the
        // 100-block stash — the regime that makes super-block schemes
        // eviction-bound). Background eviction therefore triggers when
        // resting occupancy exceeds what leaves room for one path.
        let path_blocks = levels as usize * config.z;
        let resting_limit = config.stash_limit.saturating_sub(path_blocks).max(8);
        let mut stash = Stash::new(resting_limit);
        // The store only holds the off-chip buckets: the treetop lives in
        // trusted on-chip memory and never gets a ciphertext image. With
        // `treetop_levels == 0` and the flat layout the map is the
        // identity, so the image (and its nonce sequence) is byte-
        // identical to the pre-layout goldens.
        let layout = StoreLayout::new(levels, config.treetop_levels, config.layout);
        let mut store = if config.store_payloads {
            let mut store = EncryptedStore::new(
                layout.num_off_chip(),
                config.z,
                config.timing.block_bytes as usize,
                rng.next_u64(),
            );
            // Install the injector before the initial bucket writes so
            // even initialization traffic is subject to faults.
            if let Some(fault_cfg) = config.fault.clone() {
                store.enable_faults(fault_cfg);
            }
            Some(store)
        } else {
            None
        };

        // Materialize blocks and place each as deep as possible on its
        // own path.
        for addr in 0..total {
            let block = Self::make_block(
                &config,
                &space,
                BlockAddr(addr),
                leaves[addr as usize],
                &leaves,
            );
            let mut placed = false;
            for idx in tree.path_indices(block.leaf).rev() {
                if !tree.bucket(idx).is_full() {
                    tree.bucket_mut(idx).push(block.clone());
                    placed = true;
                    break;
                }
            }
            if !placed {
                stash.insert(block);
            }
        }
        if let Some(store) = store.as_mut() {
            for idx in layout.treetop_buckets()..tree.num_buckets() {
                store.write_bucket(layout.phys_of(idx), tree.bucket(idx));
            }
            // Crypto worker pool for the hot paths. `< 2` means serial:
            // a "pool" of one thread is the caller itself. The store's
            // batch entry points keep the image byte-identical either way.
            // Auto mode picks the count from the host and the off-chip
            // payload; pooled and serial crypto are byte-identical, so
            // the machine-dependent choice never changes behavior.
            let crypto_threads = if config.crypto_threads_auto {
                Self::auto_crypto_threads(store.bucket_bytes(), config.off_chip_levels())
            } else {
                config.crypto_threads
            };
            if crypto_threads >= 2 {
                store.attach_pool(std::sync::Arc::new(proram_par::WorkerPool::new(
                    crypto_threads,
                )));
            }
        }
        // Crash injection arms after initialization: init traffic is not a
        // transaction and must never trip a kill point. Store-level points
        // live on the store (only it sees those crossings); pipeline-stage
        // points live on the controller.
        let mut crash = None;
        if let Some(cfg) = config.crash {
            let arm = CrashArm::new(cfg);
            if cfg.point.is_store_point() {
                store
                    .as_mut()
                    .expect("config validation requires store_payloads")
                    .arm_crash(Some(arm));
            } else {
                crash = Some(arm);
            }
        }

        let trace = if config.trace_capacity > 0 {
            TraceRecorder::enabled(config.trace_capacity)
        } else {
            TraceRecorder::disabled()
        };
        // Treetop-cached levels live in on-chip SRAM: they cost neither
        // bus cycles nor bytes. The functional tree is unchanged — the
        // cached buckets simply reside on-chip.
        let off_chip = config.off_chip_levels();
        let path_cycles = config.timing.path_cycles(off_chip, config.z);
        let path_bytes = config.timing.path_bytes(off_chip, config.z);
        let treetop_saved_bytes = config.timing.path_bytes(levels, config.z) - path_bytes;
        // With the bank-aware pipeline, the per-path fetch cost comes from
        // scheduling one path's bucket-read batch on an idle bank
        // scheduler; the lump-sum model keeps fetch == path cost.
        let fetch_cycles = match config.pipeline {
            None => path_cycles,
            Some(bank) => {
                let bucket_bytes = config.timing.bucket_wire_bytes(config.z);
                BankScheduler::path_fetch_cycles(bank, bucket_bytes, u64::from(off_chip))
                    + u64::from(config.timing.fixed_overhead_cycles)
            }
        };
        PathOram {
            plb: Plb::new(config.plb_blocks),
            config,
            space,
            tree,
            stash,
            top,
            rng,
            store,
            trace,
            stats: OramStats::default(),
            path_cycles,
            fetch_cycles,
            path_bytes,
            treetop_saved_bytes,
            layout,
            busy_until: 0,
            label: "oram".to_owned(),
            scratch: PathScratch::new(),
            verify_plain: Vec::new(),
            verify_store_addrs: Vec::new(),
            verify_tree_addrs: Vec::new(),
            verify_batch_indices: Vec::new(),
            verify_batch_addrs: Vec::new(),
            ctrl_faults: FaultStats::default(),
            reads_since_scrub: 0,
            obs: Obs::disabled(),
            crash,
            txn_open: false,
            txn_touched: std::collections::BTreeSet::new(),
            crash_surfaced: false,
            crash_stats: CrashStats::default(),
        }
    }

    fn make_block(
        config: &OramConfig,
        space: &AddressSpace,
        addr: BlockAddr,
        leaf: Leaf,
        leaves: &[Leaf],
    ) -> Block {
        match space.hierarchy_of(addr) {
            0 => {
                if config.store_payloads {
                    Block::with_data(
                        addr,
                        leaf,
                        vec![0; config.timing.block_bytes as usize].into(),
                    )
                } else {
                    Block::opaque(addr, leaf)
                }
            }
            _ => {
                let first = space.first_child(addr);
                let count = space.child_count(addr);
                let entries: Vec<PosEntry> = (0..count as u64)
                    .map(|i| PosEntry::new(leaves[(first.0 + i) as usize]))
                    .collect();
                Block::posmap(addr, leaf, entries.into())
            }
        }
    }

    /// Thread count for [`OramConfig::crypto_threads_auto`]: serial
    /// unless the host has more than one core **and** one off-chip path's
    /// ciphertext is large enough to amortize pool dispatch. The 16 KiB
    /// floor comes from BENCH_parallel.json, where pooled dispatch at
    /// ~6 KiB per path ran 0.39x on a single-core box.
    fn auto_crypto_threads(bucket_bytes: usize, off_chip_levels: u32) -> usize {
        /// Smallest per-path ciphertext worth dispatching to workers.
        const AUTO_POOL_MIN_PATH_BYTES: u64 = 16 * 1024;
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        let per_path = bucket_bytes as u64 * u64::from(off_chip_levels);
        if cores <= 1 || per_path < AUTO_POOL_MIN_PATH_BYTES {
            0
        } else {
            cores.min(8)
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The heap-index ↔ physical-index layout of the off-chip store.
    pub fn store_layout(&self) -> &StoreLayout {
        &self.layout
    }

    /// The configuration this ORAM was built with.
    pub fn config(&self) -> &OramConfig {
        &self.config
    }

    /// The unified address-space layout.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Cycles one path access costs under the lump-sum timing model.
    pub fn path_cycles(&self) -> u64 {
        self.path_cycles
    }

    /// Cycles one path fetch actually costs: equal to
    /// [`PathOram::path_cycles`] without the pipeline, smaller when the
    /// bank-aware scheduler overlaps bucket reads ([`OramConfig::pipeline`]).
    pub fn fetch_cycles(&self) -> u64 {
        self.fetch_cycles
    }

    /// Statistics so far.
    pub fn oram_stats(&self) -> OramStats {
        self.stats
    }

    /// PLB `(hits, misses)`.
    pub fn plb_stats(&self) -> (u64, u64) {
        self.plb.stats()
    }

    /// Heap allocations avoided so far by reusing the write-back scratch
    /// (one per path write-back; see [`PathScratch`]).
    pub fn allocs_avoided(&self) -> u64 {
        self.scratch.allocs_avoided()
    }

    /// Fault injection, detection and recovery counters: the injector's
    /// (store-side) counters plus the controller's recovery counters.
    /// All-zero when fault injection is disabled.
    pub fn fault_stats(&self) -> FaultStats {
        let injector = self
            .store
            .as_ref()
            .map_or_else(FaultStats::default, EncryptedStore::fault_stats);
        injector + self.ctrl_faults
    }

    /// Whether detected faults are repaired in place rather than
    /// propagated (on whenever an injector is configured).
    pub(crate) fn recovery_enabled(&self) -> bool {
        self.config.fault.is_some()
    }

    /// The stash (for occupancy statistics).
    pub fn stash(&self) -> &Stash {
        &self.stash
    }

    /// The adversary-trace recorder.
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// The encrypted DRAM image, when payload storage is enabled.
    pub fn storage(&self) -> Option<&EncryptedStore> {
        self.store.as_ref()
    }

    /// Mutable access to the encrypted image — fault-injection tests use
    /// this to tamper with ciphertexts and check detection.
    pub fn storage_mut(&mut self) -> Option<&mut EncryptedStore> {
        self.store.as_mut()
    }

    /// Clears the recorded adversary trace.
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// Draws a fresh uniformly random leaf.
    pub fn random_leaf(&mut self) -> Leaf {
        Leaf(self.rng.next_below(u64::from(self.tree.num_leaves())) as u32)
    }

    /// Whether `addr` is currently in the stash.
    pub fn stash_contains(&self, addr: BlockAddr) -> bool {
        self.stash.contains(addr)
    }

    /// Mutably borrows a stashed block.
    pub fn stash_block_mut(&mut self, addr: BlockAddr) -> Option<&mut Block> {
        self.stash.get_mut(addr)
    }

    // ------------------------------------------------------------------
    // High-level access (the `oram` baseline)
    // ------------------------------------------------------------------

    /// Performs one logical access to data block `addr` following the
    /// five steps of paper Section 2.2, plus recursion and background
    /// eviction.
    ///
    /// This is a thin driver: it builds an
    /// [`AccessMachine`] for the request and steps it through the pipeline
    /// stages (posmap resolve → path fetch → decrypt/verify → stash
    /// update → write-back → evict) until it yields a completion. The
    /// reported latency charges every tree access at the fetch cost plus
    /// any transient-retry backoff the injected faults incurred.
    ///
    /// # Errors
    ///
    /// Returns the typed [`OramError`] when a fault is detected and
    /// recovery is disabled, or when recovery itself fails
    /// ([`OramError::StashOverflow`]).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a data block.
    pub fn try_access_block(
        &mut self,
        addr: BlockAddr,
        kind: AccessKind,
    ) -> Result<AccessReport, OramError> {
        assert_eq!(
            self.space.hierarchy_of(addr),
            0,
            "access_block takes data blocks"
        );
        self.txn_begin();
        let mut machine = AccessMachine::new(AccessRequest { addr, kind });
        loop {
            if let Some(completion) = machine.step(self)? {
                self.txn_commit()?;
                return Ok(completion.report);
            }
        }
    }

    /// Records the start of one logical access (pipeline stage hook).
    pub(crate) fn note_logical_access(&mut self) {
        self.stats.logical_accesses += 1;
    }

    /// Cumulative transient-retry backoff cycles charged by the injector.
    pub(crate) fn backoff_cycles(&self) -> u64 {
        self.store
            .as_ref()
            .map_or(0, |s| s.fault_stats().backoff_cycles)
    }

    /// Reads the data payload of `addr` (a full ORAM access).
    ///
    /// Returns `Ok(None)` if payload storage is disabled.
    ///
    /// # Errors
    ///
    /// Propagates any unrecovered [`OramError`] from the access.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a data block.
    pub fn try_read_block(&mut self, addr: BlockAddr) -> Result<Option<Vec<u8>>, OramError> {
        self.try_access_block(addr, AccessKind::Read)?;
        Ok(self.with_data_block(addr, |bytes| bytes.to_vec()))
    }

    /// Writes the data payload of `addr` (a full ORAM access).
    ///
    /// # Errors
    ///
    /// Propagates any unrecovered [`OramError`] from the access.
    ///
    /// # Panics
    ///
    /// Panics if payload storage is disabled, `bytes` is not exactly one
    /// block, or `addr` is not a data block.
    pub fn try_write_block(&mut self, addr: BlockAddr, bytes: &[u8]) -> Result<(), OramError> {
        assert_eq!(
            bytes.len(),
            self.config.timing.block_bytes as usize,
            "payload must be exactly one block"
        );
        self.try_access_block(addr, AccessKind::Write)?;
        let found = self.update_data_block(addr, bytes);
        assert!(found, "payload storage disabled; enable store_payloads");
        Ok(())
    }

    /// The crypto worker pool's cumulative dispatch counters, when
    /// [`OramConfig::crypto_threads`] attached one (`None` otherwise).
    pub fn pool_stats(&self) -> Option<proram_par::PoolStats> {
        self.store.as_ref().and_then(EncryptedStore::pool_stats)
    }

    /// Emits the observability record of one pooled crypto batch: an
    /// entries-only lane tick plus a deterministic
    /// [`proram_obs::ObsEvent::PoolDispatch`], and — when the batch
    /// actually moved work — wall-clock-dependent steal/idle deltas.
    /// Associated function (no `&self`) so call sites holding a mutable
    /// borrow of the store can still pass their own `obs` handle.
    pub(crate) fn emit_pool_batch(
        obs: &Obs,
        stage: proram_obs::StageKind,
        jobs: usize,
        workers: usize,
        before: proram_par::PoolStats,
        after: proram_par::PoolStats,
    ) {
        obs.profile(stage, 0);
        obs.emit(|| proram_obs::ObsEvent::PoolDispatch {
            jobs: jobs as u32,
            workers: workers as u32,
        });
        let stolen = after.jobs_caller_executed - before.jobs_caller_executed;
        if stolen > 0 {
            obs.emit(|| proram_obs::ObsEvent::PoolSteal {
                jobs: stolen as u32,
            });
        }
        let parks = after.worker_parks - before.worker_parks;
        if parks > 0 {
            obs.emit(|| proram_obs::ObsEvent::PoolIdle { parks });
        }
    }

    /// The observability handle currently attached (disabled by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Attaches an observability handle: subsequent accesses emit typed
    /// [`proram_obs::ObsEvent`]s and per-stage cycle profiles into it.
    pub fn attach_obs_handle(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Applies `f` to the payload bytes of a data block wherever it
    /// currently lives (stash or tree).
    fn with_data_block<T>(&mut self, addr: BlockAddr, f: impl FnOnce(&[u8]) -> T) -> Option<T> {
        let block = self.find_block(addr)?;
        match &block.payload {
            Payload::Data(bytes) => Some(f(bytes)),
            _ => None,
        }
    }

    fn update_data_block(&mut self, addr: BlockAddr, bytes: &[u8]) -> bool {
        // The block is in the stash or somewhere on its mapped path
        // (write-back just ran).
        if let Some(block) = self.stash.get_mut(addr) {
            return match &mut block.payload {
                Payload::Data(old) => {
                    *old = bytes.to_vec().into();
                    true
                }
                _ => false,
            };
        }
        let Some(leaf) = self.known_leaf(addr) else {
            return false;
        };
        for idx in self.tree.path_indices(leaf) {
            let updated = match self.tree.bucket_mut(idx).block_mut(addr) {
                Some(block) => match &mut block.payload {
                    Payload::Data(old) => {
                        *old = bytes.to_vec().into();
                        true
                    }
                    _ => return false,
                },
                None => false,
            };
            if updated {
                // Keep the encrypted image coherent. Treetop buckets have
                // no image — the on-chip plaintext is authoritative.
                if idx >= self.layout.treetop_buckets() {
                    let bucket = self.tree.bucket(idx).clone();
                    let phys = self.layout.phys_of(idx);
                    if let Some(store) = self.store.as_mut() {
                        store.write_bucket(phys, &bucket);
                    }
                }
                return true;
            }
        }
        false
    }

    fn find_block(&self, addr: BlockAddr) -> Option<&Block> {
        if let Some(b) = self.stash.get(addr) {
            return Some(b);
        }
        let leaf = self.known_leaf(addr)?;
        self.tree
            .path_indices(leaf)
            .find_map(|idx| self.tree.bucket(idx).iter().find(|b| b.addr == addr))
    }

    // ------------------------------------------------------------------
    // Crash-consistent commit protocol (DESIGN.md section 15)
    // ------------------------------------------------------------------

    /// Cumulative crash-injection and recovery counters.
    pub fn crash_stats(&self) -> CrashStats {
        self.crash_stats
    }

    /// Opens the commit transaction of one logical access: seals
    /// checkpoint A (the pre-access volatile state) into the store journal
    /// and starts first-touch undo journaling. No-op without
    /// [`OramConfig::crash`] — the protocol costs nothing when disarmed.
    pub(crate) fn txn_begin(&mut self) {
        if self.config.crash.is_none() {
            return;
        }
        if self.txn_open {
            // The previous access unwound mid-transaction with a
            // non-crash error (e.g. a stash-overflow fail-stop) and was
            // never recovered: roll it back so the new transaction opens
            // on consistent state instead of tripping the store's
            // open-journal assertion.
            self.recover();
        }
        let checkpoint_a = self.seal_checkpoint();
        self.store
            .as_mut()
            .expect("crash injection requires store_payloads")
            .begin_txn(checkpoint_a);
        self.txn_open = true;
        self.txn_touched.clear();
        self.crash_surfaced = false;
    }

    /// Commits the open transaction: seals checkpoint B and asks the
    /// store to flip the epoch and discard the journal.
    ///
    /// # Errors
    ///
    /// [`OramError::Crashed`] when the `MidFlip` kill point fires inside
    /// the flip; the transaction is then durable and recovery replays it.
    pub(crate) fn txn_commit(&mut self) -> Result<(), OramError> {
        if !self.txn_open {
            return Ok(());
        }
        let checkpoint_b = self.seal_checkpoint();
        let store = self
            .store
            .as_mut()
            .expect("crash injection requires store_payloads");
        match store.commit_txn(checkpoint_b) {
            Ok(entries) => {
                let epoch = store.epoch();
                self.txn_open = false;
                self.txn_touched.clear();
                self.obs
                    .emit(|| proram_obs::ObsEvent::JournalCommit { entries, epoch });
                Ok(())
            }
            Err(_) => Err(self.note_store_crash()),
        }
    }

    /// Seals the controller's volatile state (RNG, top table, stash, PLB,
    /// treetop buckets) into one MAC-bound checkpoint record.
    ///
    /// The treetop is volatile on-chip SRAM with no ciphertext image, so
    /// its buckets ride in the checkpoint: recovery adopts checkpoint A's
    /// pre-access treetop after a rollback and checkpoint B's post-access
    /// treetop after a replay — exactly like the stash.
    fn seal_checkpoint(&self) -> Vec<u8> {
        let store = self
            .store
            .as_ref()
            .expect("crash injection requires store_payloads");
        let mut stash: Vec<Block> = self.stash.iter().cloned().collect();
        // The stash map iterates in hash order; the checkpoint is a
        // canonical record, so impose address order.
        stash.sort_unstable_by_key(|b| b.addr.0);
        Checkpoint {
            epoch: store.epoch(),
            rng: self.rng.state(),
            top: self.top.clone(),
            stash,
            plb: self.plb.iter().cloned().collect(),
            treetop: (0..self.layout.treetop_buckets())
                .map(|idx| self.tree.bucket(idx).iter().cloned().collect())
                .collect(),
        }
        .seal(store.mac())
    }

    /// Crosses a pipeline-stage kill point. Fires only inside an open
    /// transaction — steppers driving the [`AccessMachine`] without the
    /// commit protocol (no [`OramConfig::crash`]) never unwind here.
    ///
    /// # Errors
    ///
    /// [`OramError::Crashed`] when the armed crossing is reached.
    pub(crate) fn crash_gate(&mut self, point: KillPoint) -> Result<(), OramError> {
        if !self.txn_open {
            return Ok(());
        }
        let fired = self.crash.as_mut().is_some_and(|arm| arm.cross(point));
        if !fired {
            return Ok(());
        }
        self.crash_stats.crashes_injected += 1;
        self.crash_surfaced = true;
        let crossing = self.config.crash.map_or(0, |c| c.crossing);
        self.obs.emit(|| proram_obs::ObsEvent::CrashInject {
            point: point.obs(),
            crossing,
        });
        Err(OramError::Crashed { point })
    }

    /// Surfaces a store-level kill that fired during a write the store
    /// silently dropped (the "dead store" contract): `Ok` when the store
    /// is alive, the typed crash otherwise.
    ///
    /// # Errors
    ///
    /// [`OramError::Crashed`] naming the store kill point that fired.
    pub(crate) fn store_crash_check(&mut self) -> Result<(), OramError> {
        let fired = self.store.as_ref().and_then(EncryptedStore::crash_fired);
        match fired {
            None => Ok(()),
            Some(_) => Err(self.note_store_crash()),
        }
    }

    /// Counts and emits a store-level crash exactly once, returning the
    /// typed error for the caller to propagate.
    fn note_store_crash(&mut self) -> OramError {
        let point = self
            .store
            .as_ref()
            .and_then(EncryptedStore::crash_fired)
            .expect("store crash to surface");
        if !self.crash_surfaced {
            self.crash_surfaced = true;
            self.crash_stats.crashes_injected += 1;
            let crossing = self.config.crash.map_or(0, |c| c.crossing);
            self.obs.emit(|| proram_obs::ObsEvent::CrashInject {
                point: point.obs(),
                crossing,
            });
        }
        OramError::Crashed { point }
    }

    /// Recovers from a crashed access: closes the store journal (rollback
    /// or replay), adopts the matching sealed checkpoint, rebuilds the
    /// touched tree buckets by re-reading and re-authenticating the store
    /// image, and clears the transaction state.
    ///
    /// Safe to call when nothing crashed — it reports
    /// [`RecoveryMode::Clean`] and changes nothing.
    ///
    /// # Panics
    ///
    /// Panics if the epoch header or the adopted checkpoint fails its MAC,
    /// or if a touched bucket fails re-authentication — recovery must
    /// never adopt forged state.
    pub fn recover(&mut self) -> RecoveryReport {
        let Some(store) = self.store.as_mut() else {
            self.crash_stats.clean_recoveries += 1;
            return self.clean_recovery();
        };
        let Some(rec) = store.recover_txn() else {
            // Crash before the first journaled write (or no crash at
            // all): volatile state is still the pre-access state, the
            // image never changed. Only the transaction bookkeeping and
            // any pipeline-stage arm state need clearing.
            self.crash_stats.clean_recoveries += 1;
            return self.clean_recovery();
        };
        let checkpoint =
            Checkpoint::unseal(&rec.checkpoint, store.mac()).expect("checkpoint failed its seal");
        // Checkpoint A is sealed at the begin epoch; checkpoint B is
        // sealed during commit just *before* the flip. Either way the
        // record must be from this transaction's begin epoch.
        let begin_epoch = if rec.replay {
            store.epoch() - 1
        } else {
            store.epoch()
        };
        assert_eq!(
            checkpoint.epoch, begin_epoch,
            "adopted checkpoint is from another epoch"
        );
        // Adopt the checkpointed volatile state: RNG (so a rolled-back
        // access retries with identical randomness), top table, stash and
        // PLB (re-inserted oldest-first so the MRU order is restored).
        self.rng = Xoshiro256::from_state(checkpoint.rng);
        self.top = checkpoint.top;
        let mut stash = Stash::new(self.stash.limit());
        for block in checkpoint.stash {
            stash.insert(block);
        }
        self.stash = stash;
        let mut plb = Plb::new(self.plb.capacity());
        for block in checkpoint.plb.into_iter().rev() {
            plb.insert(block);
        }
        self.plb = plb;
        // The treetop is volatile SRAM with no store image: adopt the
        // checkpointed buckets wholesale (A's pre-access contents after a
        // rollback, B's post-access contents after a replay).
        let treetop = self.layout.treetop_buckets();
        assert_eq!(
            checkpoint.treetop.len(),
            treetop,
            "adopted checkpoint has the wrong treetop geometry"
        );
        for (idx, blocks) in checkpoint.treetop.into_iter().enumerate() {
            let bucket = self.tree.bucket_mut(idx);
            bucket.drain();
            for block in blocks {
                bucket.push(block);
            }
        }
        // Rebuild the tree mirror of every off-chip bucket the transaction
        // touched from the (rolled-back or replayed) store image. The
        // store is the durable medium; decrypt-and-authenticate is what
        // makes the rebuilt plaintext trustworthy. The journal's indices
        // are already physical; the controller's touched set is heap-side
        // and drops its treetop prefix (those buckets came back with the
        // checkpoint above).
        let taken = std::mem::take(&mut self.txn_touched);
        let mut touched: std::collections::BTreeSet<usize> = rec.touched.iter().copied().collect();
        touched.extend(
            taken
                .into_iter()
                .filter(|&heap| heap >= treetop)
                .map(|heap| self.layout.phys_of(heap)),
        );
        let mut reverified = 0usize;
        for &phys in &touched {
            let heap = self.layout.heap_of(phys);
            let store = self.store.as_mut().expect("store present above");
            let blocks = store
                .try_read_bucket(phys)
                .expect("recovered bucket failed authentication");
            let bucket = self.tree.bucket_mut(heap);
            bucket.drain();
            for block in blocks {
                bucket.push(block);
            }
            reverified += 1;
        }
        let mode = if rec.replay {
            self.crash_stats.replays += 1;
            RecoveryMode::Replayed
        } else {
            self.crash_stats.rollbacks += 1;
            RecoveryMode::RolledBack
        };
        self.txn_open = false;
        self.crash_surfaced = false;
        let replay = rec.replay;
        let restored = rec.restored as u64;
        self.obs.emit(|| proram_obs::ObsEvent::RecoverReplay {
            replay,
            restored,
            reverified: reverified as u64,
        });
        // Modeled recovery latency: every restored image write and every
        // re-verification read costs one off-chip bucket's share of a
        // path fetch (restored/reverified buckets are all off-chip).
        let levels = u64::from(self.config.off_chip_levels()).max(1);
        let per_bucket = (self.path_cycles / levels).max(1);
        let cycles = (restored + reverified as u64) * per_bucket;
        RecoveryReport {
            mode,
            journal_entries: rec.entries,
            buckets_restored: rec.restored,
            buckets_reverified: reverified,
            cycles,
        }
    }

    /// The nothing-pending recovery result: clears transaction state and
    /// reports [`RecoveryMode::Clean`].
    fn clean_recovery(&mut self) -> RecoveryReport {
        self.txn_open = false;
        self.txn_touched.clear();
        self.crash_surfaced = false;
        RecoveryReport {
            mode: RecoveryMode::Clean,
            journal_entries: 0,
            buckets_restored: 0,
            buckets_reverified: 0,
            cycles: 0,
        }
    }

    /// Full-state auditor: asserts block conservation — every logical
    /// block of the address space lives in exactly one place (stash, PLB,
    /// or one tree bucket) — and then the per-block placement invariant
    /// ([`PathOram::check_invariants`]). The crash-recovery suite runs
    /// this after every recovery.
    ///
    /// # Panics
    ///
    /// Panics on the first duplicated, missing, or misplaced block.
    pub fn audit_full(&self) {
        let total = self.space.total_tree_blocks();
        let mut count = vec![0u32; total as usize];
        let mut tally = |addr: BlockAddr, where_: &str| {
            assert!(addr.0 < total, "{where_} holds out-of-space block {addr}");
            count[addr.0 as usize] += 1;
        };
        for b in self.stash.iter() {
            tally(b.addr, "stash");
        }
        for b in self.plb.iter() {
            tally(b.addr, "PLB");
        }
        for idx in 0..self.tree.num_buckets() {
            for b in self.tree.bucket(idx).iter() {
                tally(b.addr, "tree");
            }
        }
        for (addr, &n) in count.iter().enumerate() {
            assert_eq!(n, 1, "block {addr} appears {n} times across stash/PLB/tree");
        }
        self.check_invariants();
    }

    /// A deterministic digest of the complete controller state (RNG, top
    /// table, stash, PLB, tree) — two controllers with equal digests are
    /// observationally identical. The crash-recovery suite compares
    /// post-recovery digests against crash-free runs.
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        for w in self.rng.state() {
            h.write_u64(w);
        }
        for e in &self.top {
            h.write_u64(u64::from(e.leaf.0));
            h.write_u64(e.merge as u64);
            h.write_u64(e.brk as u64);
            h.write_u64(u64::from(e.prefetch));
        }
        let mut stash: Vec<&Block> = self.stash.iter().collect();
        stash.sort_unstable_by_key(|b| b.addr.0);
        for b in stash {
            Self::digest_block(&mut h, b);
        }
        for b in self.plb.iter() {
            Self::digest_block(&mut h, b);
        }
        for idx in 0..self.tree.num_buckets() {
            h.write_u64(idx as u64);
            for b in self.tree.bucket(idx).iter() {
                Self::digest_block(&mut h, b);
            }
        }
        h.finish()
    }

    fn digest_block(h: &mut Fnv1a, b: &Block) {
        h.write_u64(b.addr.0);
        h.write_u64(u64::from(b.leaf.0));
        h.write_u64(u64::from(b.hit));
        match &b.payload {
            Payload::Opaque => h.write_u64(0),
            Payload::Data(bytes) => {
                h.write_u64(1);
                h.write_bytes(bytes);
            }
            Payload::PosMap(entries) => {
                h.write_u64(2);
                for e in entries.iter() {
                    h.write_u64(u64::from(e.leaf.0));
                    h.write_u64(e.merge as u64);
                    h.write_u64(e.brk as u64);
                    h.write_u64(u64::from(e.prefetch));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests)
    // ------------------------------------------------------------------

    /// Verifies the Path ORAM invariant for every reachable block: a block
    /// mapped to leaf `s` is in the stash, in the PLB/top (posmap blocks),
    /// or on the path to `s`.
    ///
    /// # Panics
    ///
    /// Panics on the first violation. Intended for tests; cost is
    /// `O(total blocks * levels)`.
    pub fn check_invariants(&self) {
        // Walk the posmap chain top-down, gathering the authoritative leaf
        // of every block, then check placement.
        let total = self.space.total_tree_blocks();
        for addr in 0..total {
            let addr = BlockAddr(addr);
            if let Some(leaf) = self.authoritative_leaf(addr) {
                assert!(
                    self.block_is_findable(addr, leaf),
                    "invariant violation: block {addr} mapped to {leaf} is not on its path/stash/PLB"
                );
            }
        }
    }

    fn authoritative_leaf(&self, addr: BlockAddr) -> Option<Leaf> {
        let h = self.parent_hierarchy(addr);
        if h == self.space.top_hierarchy() {
            let base = self.space.region_base(h - 1);
            return Some(self.top[(addr.0 - base) as usize].leaf);
        }
        let pm_addr = self.space.posmap_block_for(addr, h);
        if let Some(block) = self.plb.peek(pm_addr) {
            return Some(block.entries()[self.space.entry_index(addr)].leaf);
        }
        // The parent itself must be findable; read its entry wherever it
        // is (stash or tree).
        let parent_leaf = self.authoritative_leaf(pm_addr)?;
        let parent = self.locate(pm_addr, parent_leaf)?;
        Some(parent.entries()[self.space.entry_index(addr)].leaf)
    }

    fn locate(&self, addr: BlockAddr, leaf: Leaf) -> Option<&Block> {
        if let Some(b) = self.stash.get(addr) {
            return Some(b);
        }
        if let Some(b) = self.plb.peek(addr) {
            return Some(b);
        }
        for idx in self.tree.path_indices(leaf) {
            if let Some(b) = self.tree.bucket(idx).iter().find(|b| b.addr == addr) {
                return Some(b);
            }
        }
        None
    }

    fn block_is_findable(&self, addr: BlockAddr, leaf: Leaf) -> bool {
        self.locate(addr, leaf).is_some()
    }

    /// Schedules `cycles` of work on the serialized ORAM resource starting
    /// no earlier than `now`; returns the completion cycle.
    fn schedule_cycles(&mut self, now: Cycle, cycles: u64) -> Cycle {
        let start = now.max(self.busy_until);
        let complete = start + cycles;
        self.busy_until = complete;
        complete
    }
}

impl crate::backend_trait::OramBackend for PathOram {
    fn space(&self) -> &AddressSpace {
        PathOram::space(self)
    }

    fn resolve_posmap(&mut self, child: BlockAddr) -> Result<u64, OramError> {
        PathOram::try_resolve_posmap(self, child)
    }

    fn entry(&self, child: BlockAddr) -> &PosEntry {
        PathOram::entry(self, child)
    }

    fn entry_mut(&mut self, child: BlockAddr) -> &mut PosEntry {
        PathOram::entry_mut(self, child)
    }

    fn read_path_into_stash(&mut self, leaf: Leaf, kind: PathKind) -> Result<(), OramError> {
        PathOram::try_read_path_into_stash(self, leaf, kind)
    }

    fn write_path_from_stash(&mut self, leaf: Leaf) -> Result<(), OramError> {
        PathOram::write_path_from_stash(self, leaf)
    }

    fn txn_begin(&mut self) {
        PathOram::txn_begin(self);
    }

    fn txn_commit(&mut self) -> Result<(), OramError> {
        PathOram::txn_commit(self)
    }

    fn recover_crash(&mut self) -> Option<RecoveryReport> {
        Some(self.recover())
    }

    fn stash_contains(&self, addr: BlockAddr) -> bool {
        PathOram::stash_contains(self, addr)
    }

    fn stash_block_mut(&mut self, addr: BlockAddr) -> Option<&mut Block> {
        PathOram::stash_block_mut(self, addr)
    }

    fn random_leaf(&mut self) -> Leaf {
        PathOram::random_leaf(self)
    }

    fn background_evict(&mut self) -> Result<(), OramError> {
        PathOram::try_background_evict(self)
    }

    fn drain_background(&mut self) -> Result<u64, OramError> {
        PathOram::try_drain_background(self)
    }

    fn path_cycles(&self) -> u64 {
        PathOram::path_cycles(self)
    }

    fn fetch_cycles(&self) -> u64 {
        PathOram::fetch_cycles(self)
    }

    fn oram_stats(&self) -> OramStats {
        PathOram::oram_stats(self)
    }

    fn fault_stats(&self) -> FaultStats {
        PathOram::fault_stats(self)
    }

    fn backend_name(&self) -> &'static str {
        "path"
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.attach_obs_handle(obs);
    }
}

impl MemoryBackend for PathOram {
    fn access(&mut self, now: Cycle, req: MemRequest, _llc: &dyn CacheProbe) -> AccessOutcome {
        let latency = match self.try_access_block(req.block, req.kind) {
            Ok(report) => report.latency,
            Err(OramError::Crashed { .. }) => {
                // Simulated process death: run crash recovery, then retry
                // the access once. A rolled-back transaction re-executes
                // (the checkpointed RNG replays identical randomness); a
                // replayed one already committed, so retrying would
                // double-apply the remap.
                let rec = self.recover();
                let retry = if rec.mode == RecoveryMode::Replayed {
                    0
                } else {
                    match self.try_access_block(req.block, req.kind) {
                        Ok(report) => report.latency,
                        Err(_) => {
                            self.ctrl_faults.unrecovered += 1;
                            self.fetch_cycles
                        }
                    }
                };
                rec.cycles + retry
            }
            Err(_) => {
                // Unrecoverable fault: count it and serve the request
                // degraded (one path's worth of latency, data from the
                // trusted logical tree) instead of aborting the run.
                self.ctrl_faults.unrecovered += 1;
                self.fetch_cycles
            }
        };
        let complete_at = self.schedule_cycles(now, latency);
        let fills = match req.kind {
            AccessKind::Read => vec![Fill {
                block: req.block,
                prefetched: req.prefetch,
            }],
            AccessKind::Write => Vec::new(),
        };
        AccessOutcome { complete_at, fills }
    }

    fn dummy_access(&mut self, now: Cycle) -> Cycle {
        if self.try_background_evict().is_err() {
            self.ctrl_faults.unrecovered += 1;
        }
        self.schedule_cycles(now, self.fetch_cycles)
    }

    fn free_at(&self) -> Cycle {
        self.busy_until
    }

    fn stats(&self) -> BackendStats {
        let s = self.stats;
        BackendStats {
            demand_accesses: s.logical_accesses,
            prefetch_requests: 0,
            physical_accesses: s.total_path_accesses(),
            dummy_accesses: s.background_evictions,
            posmap_accesses: s.posmap_path_accesses,
            bytes_moved: s.bytes_moved,
            prefetch_hits: 0,
            prefetch_misses: 0,
            busy_cycles: s.total_path_accesses() * self.fetch_cycles,
            data_path_cycles: s.data_path_accesses * self.fetch_cycles,
            posmap_path_cycles: s.posmap_path_accesses * self.fetch_cycles,
            dummy_path_cycles: s.background_evictions * self.fetch_cycles,
            treetop_hits: s.treetop_hits,
            treetop_bytes_saved: s.treetop_bytes_saved,
            faults: self.fault_stats(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.attach_obs_handle(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PathOram {
        PathOram::new(OramConfig::small_for_tests(256), 42)
    }

    #[test]
    fn construction_satisfies_invariants() {
        let oram = small();
        oram.check_invariants();
    }

    #[test]
    fn every_data_block_is_accessible() {
        let mut oram = PathOram::new(OramConfig::small_for_tests(64), 7);
        for a in 0..64 {
            let r = oram
                .try_access_block(BlockAddr(a), AccessKind::Read)
                .unwrap();
            assert!(r.tree_accesses >= 1);
        }
        oram.check_invariants();
    }

    #[test]
    fn access_remaps_to_fresh_leaf() {
        let mut oram = small();
        let addr = BlockAddr(10);
        oram.try_resolve_posmap(addr).unwrap();
        let before = oram.entry(addr).leaf;
        // Access many times; the leaf must change (collision chance over
        // 20 draws from >=128 leaves is negligible at this seed).
        let mut changed = false;
        for _ in 0..20 {
            oram.try_access_block(addr, AccessKind::Read).unwrap();
            oram.try_resolve_posmap(addr).unwrap();
            if oram.entry(addr).leaf != before {
                changed = true;
            }
        }
        assert!(changed, "leaf never remapped");
    }

    #[test]
    fn repeated_access_is_stable_under_invariants() {
        let mut oram = small();
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..300 {
            let a = BlockAddr(rng.next_below(256));
            oram.try_access_block(a, AccessKind::Read).unwrap();
        }
        oram.check_invariants();
        let s = oram.oram_stats();
        assert_eq!(s.logical_accesses, 300);
        assert_eq!(s.data_path_accesses, 300);
    }

    #[test]
    fn posmap_recursion_costs_extra_accesses() {
        let mut oram = small();
        // First touch of a cold region must miss the PLB.
        let r = oram
            .try_access_block(BlockAddr(100), AccessKind::Read)
            .unwrap();
        assert!(r.posmap_accesses >= 1, "cold access should walk the posmap");
        // Immediately repeated access hits the PLB.
        let r2 = oram
            .try_access_block(BlockAddr(100), AccessKind::Read)
            .unwrap();
        assert_eq!(r2.posmap_accesses, 0);
    }

    #[test]
    fn plb_locality_for_neighbors() {
        let mut oram = small();
        oram.try_access_block(BlockAddr(8), AccessKind::Read)
            .unwrap();
        // Same posmap group (entries_per_block = 8): no extra posmap walk.
        let r = oram
            .try_access_block(BlockAddr(9), AccessKind::Read)
            .unwrap();
        assert_eq!(r.posmap_accesses, 0);
    }

    #[test]
    fn trace_records_accesses() {
        let mut oram = small();
        oram.clear_trace();
        oram.try_access_block(BlockAddr(0), AccessKind::Read)
            .unwrap();
        assert!(!oram.trace().events().is_empty());
    }

    #[test]
    fn payload_round_trip_via_try_api() {
        let mut oram = PathOram::new(OramConfig::small_for_tests(64), 5);
        let data = vec![0xAB; 128];
        oram.try_write_block(BlockAddr(3), &data).expect("write");
        let read = oram
            .try_read_block(BlockAddr(3))
            .expect("read")
            .expect("payloads enabled");
        assert_eq!(read, data);
        oram.try_access_block(BlockAddr(3), AccessKind::Read)
            .expect("access");
        oram.check_invariants();
    }

    #[test]
    fn payloads_survive_many_interleaved_accesses() {
        let mut oram = PathOram::new(OramConfig::small_for_tests(64), 6);
        for a in 0..16u64 {
            oram.try_write_block(BlockAddr(a), &[a as u8; 128]).unwrap();
        }
        let mut rng = Xoshiro256::seed_from(9);
        for _ in 0..100 {
            oram.try_access_block(BlockAddr(rng.next_below(64)), AccessKind::Read)
                .unwrap();
        }
        for a in 0..16u64 {
            assert_eq!(
                oram.try_read_block(BlockAddr(a)).unwrap().unwrap(),
                vec![a as u8; 128],
                "payload of block {a} corrupted"
            );
        }
    }

    #[test]
    #[should_panic(expected = "payload must be exactly one block")]
    fn wrong_payload_size_panics() {
        let mut oram = small();
        oram.try_write_block(BlockAddr(0), &[1, 2, 3]).unwrap();
    }

    #[test]
    #[should_panic(expected = "access_block takes data blocks")]
    fn posmap_address_rejected() {
        let mut oram = small();
        // First posmap block lives right after the data region.
        oram.try_access_block(BlockAddr(256), AccessKind::Read)
            .unwrap();
    }

    #[test]
    fn background_eviction_triggers_under_pressure() {
        // A small stash target and a Z=2 tree at ~90% occupancy force
        // background evictions (Z=4 at low occupancy essentially never
        // overflows, which is why the paper pairs small Z with background
        // eviction).
        let cfg = OramConfig {
            stash_limit: 4,
            z: 2,
            ..OramConfig::small_for_tests(400)
        };
        let mut oram = PathOram::new(cfg, 11);
        let mut rng = Xoshiro256::seed_from(1);
        for _ in 0..200 {
            oram.try_access_block(BlockAddr(rng.next_below(400)), AccessKind::Read)
                .unwrap();
        }
        assert!(oram.oram_stats().background_evictions > 0);
        assert!(
            oram.stash().len() <= 8,
            "stash drained to the resting limit after access"
        );
        oram.check_invariants();
    }

    #[test]
    fn memory_backend_serializes_accesses() {
        use proram_mem::NoProbe;
        let mut oram = small();
        let a = oram.access(0, MemRequest::read(BlockAddr(1)), &NoProbe);
        let b = oram.access(0, MemRequest::read(BlockAddr(2)), &NoProbe);
        assert!(b.complete_at >= a.complete_at + oram.path_cycles());
    }

    #[test]
    fn memory_backend_write_returns_no_fills() {
        use proram_mem::NoProbe;
        let mut oram = small();
        let o = oram.access(0, MemRequest::write(BlockAddr(1)), &NoProbe);
        assert!(o.fills.is_empty());
        let o2 = oram.access(0, MemRequest::read(BlockAddr(1)), &NoProbe);
        assert_eq!(o2.fills, vec![Fill::demand(BlockAddr(1))]);
    }

    #[test]
    fn backend_stats_are_consistent() {
        use proram_mem::NoProbe;
        let mut oram = small();
        for i in 0..20 {
            oram.access(0, MemRequest::read(BlockAddr(i)), &NoProbe);
        }
        let s = MemoryBackend::stats(&oram);
        assert_eq!(s.demand_accesses, 20);
        assert!(s.physical_accesses >= 20);
        assert!(s.bytes_moved > 0);
        assert!(s.stage_cycles_consistent(), "stage attribution incomplete");
    }

    #[test]
    fn dummy_access_is_background_eviction() {
        let mut oram = small();
        let before = oram.oram_stats().background_evictions;
        let done = oram.dummy_access(100);
        assert!(done >= 100 + oram.path_cycles());
        assert_eq!(oram.oram_stats().background_evictions, before + 1);
    }

    #[test]
    fn observed_leaves_cover_the_tree() {
        let mut oram = PathOram::new(OramConfig::small_for_tests(512), 13);
        oram.clear_trace();
        let mut rng = Xoshiro256::seed_from(2);
        for _ in 0..400 {
            oram.try_access_block(BlockAddr(rng.next_below(512)), AccessKind::Read)
                .unwrap();
        }
        let leaves = oram.trace().observed_leaves();
        assert!(leaves.len() >= 400);
        // Many distinct leaves must appear (uniform remapping).
        let mut distinct: Vec<u64> = leaves.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() > 20,
            "only {} distinct leaves",
            distinct.len()
        );
    }

    #[test]
    fn stats_accumulate_bytes() {
        let mut oram = small();
        oram.try_access_block(BlockAddr(0), AccessKind::Read)
            .unwrap();
        let s = oram.oram_stats();
        assert_eq!(s.bytes_moved, s.total_path_accesses() * oram.path_bytes);
    }

    #[test]
    fn report_latency_equals_stage_total() {
        let mut oram = small();
        let mut rng = Xoshiro256::seed_from(5);
        for _ in 0..50 {
            let r = oram
                .try_access_block(BlockAddr(rng.next_below(256)), AccessKind::Read)
                .unwrap();
            assert_eq!(r.latency, r.stages.total(), "stage attribution broken");
            assert_eq!(r.stages.fetch, oram.fetch_cycles());
            assert_eq!(r.stages.posmap, r.posmap_accesses * oram.fetch_cycles());
            assert_eq!(r.stages.evict, r.background_evictions * oram.fetch_cycles());
        }
    }

    #[test]
    fn pipeline_off_keeps_lump_sum_fetch_cost() {
        let oram = small();
        assert_eq!(oram.fetch_cycles(), oram.path_cycles());
    }

    #[test]
    fn pipeline_on_is_behavior_identical_and_overlaps_banks() {
        use proram_mem::BankConfig;
        // The pipeline is purely a timing-model change: stats, trace and
        // stash must match the lump-sum run step for step.
        let run = |pipeline: Option<BankConfig>| {
            let cfg = OramConfig {
                pipeline,
                ..OramConfig::small_for_tests(256)
            };
            let mut oram = PathOram::new(cfg, 42);
            let mut rng = Xoshiro256::seed_from(3);
            for _ in 0..200 {
                oram.try_access_block(BlockAddr(rng.next_below(256)), AccessKind::Read)
                    .unwrap();
            }
            (
                oram.oram_stats(),
                oram.trace().observed_leaves(),
                oram.stash().peak(),
                oram.fetch_cycles(),
            )
        };
        let banks = |n| {
            Some(BankConfig {
                banks: n,
                ..BankConfig::default()
            })
        };
        let (base_stats, base_leaves, base_peak, base_fetch) = run(None);
        let (serial_stats, serial_leaves, serial_peak, serial_fetch) = run(banks(1));
        let (pipe_stats, pipe_leaves, pipe_peak, pipe_fetch) = run(banks(8));
        assert_eq!(base_stats, serial_stats);
        assert_eq!(base_stats, pipe_stats);
        assert_eq!(base_leaves, serial_leaves);
        assert_eq!(base_leaves, pipe_leaves);
        assert_eq!(base_peak, serial_peak);
        assert_eq!(base_peak, pipe_peak);
        // One bank serializes every bucket's DRAM latency; multiple banks
        // overlap them, leaving only the bus transfers plus one latency.
        assert!(
            pipe_fetch < serial_fetch,
            "bank overlap must cut the fetch cost: {pipe_fetch} vs {serial_fetch}"
        );
        // Versus the lump-sum model the banked fetch keeps the full bus
        // transfer and adds the (previously unmodelled) leading DRAM
        // latency — it is costlier than the pure pin-bandwidth bound but
        // far cheaper than the fully serialized single-bank schedule.
        assert!(pipe_fetch >= base_fetch);
        assert!(serial_fetch > base_fetch);
    }

    #[test]
    fn bucket_read_batch_covers_off_chip_path() {
        let oram = small();
        let batch = oram.bucket_read_batch(Leaf(0));
        assert_eq!(
            batch.len() as u32,
            oram.config().off_chip_levels(),
            "one read per off-chip bucket"
        );
        let per_bucket = oram.config().timing.bucket_wire_bytes(oram.config().z);
        let total: u64 = batch.iter().map(|r| r.bytes).sum();
        assert_eq!(total, per_bucket * batch.len() as u64);
    }

    #[test]
    fn verification_gating_does_not_change_behavior() {
        // verify_image draws no randomness and mutates nothing, so runs
        // with and without it must be step-for-step identical.
        let run = |verify: bool| {
            let cfg = OramConfig {
                verify_image: verify,
                ..OramConfig::small_for_tests(256)
            };
            let mut oram = PathOram::new(cfg, 42);
            let mut rng = Xoshiro256::seed_from(3);
            for _ in 0..200 {
                oram.try_access_block(BlockAddr(rng.next_below(256)), AccessKind::Read)
                    .unwrap();
            }
            (
                oram.oram_stats(),
                oram.trace().observed_leaves(),
                oram.stash().peak(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn write_backs_reuse_the_scratch() {
        let mut oram = small();
        oram.try_access_block(BlockAddr(1), AccessKind::Read)
            .unwrap();
        let after_one = oram.allocs_avoided();
        assert!(after_one > 0, "each write-back counts a scratch reuse");
        oram.try_access_block(BlockAddr(2), AccessKind::Read)
            .unwrap();
        assert!(oram.allocs_avoided() > after_one);
    }

    #[test]
    fn small_flat_posmap_config_works() {
        // on_tree_hierarchies = 0: the whole position map is on-chip.
        let cfg = OramConfig {
            on_tree_hierarchies: 0,
            ..OramConfig::small_for_tests(128)
        };
        let mut oram = PathOram::new(cfg, 3);
        for a in 0..128 {
            let r = oram
                .try_access_block(BlockAddr(a), AccessKind::Read)
                .unwrap();
            assert_eq!(r.posmap_accesses, 0);
        }
        oram.check_invariants();
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultClass, FaultConfig};

    fn faulty_cfg(fault: FaultConfig) -> OramConfig {
        OramConfig {
            fault: Some(fault),
            ..OramConfig::small_for_tests(256)
        }
    }

    #[test]
    fn silent_injector_matches_fault_free_run() {
        // A configured injector with all rates zero must be
        // observationally silent: same stats, same trace, same stash.
        let run = |fault: Option<FaultConfig>| {
            let cfg = OramConfig {
                fault,
                ..OramConfig::small_for_tests(256)
            };
            let mut oram = PathOram::new(cfg, 42);
            let mut rng = Xoshiro256::seed_from(3);
            for _ in 0..200 {
                oram.try_access_block(BlockAddr(rng.next_below(256)), AccessKind::Read)
                    .unwrap();
            }
            (
                oram.oram_stats(),
                oram.trace().observed_leaves(),
                oram.stash().peak(),
            )
        };
        assert_eq!(run(None), run(Some(FaultConfig::silent(99))));
    }

    #[test]
    fn every_fault_class_is_recovered_without_panic() {
        for class in FaultClass::ALL {
            let rate = match class {
                FaultClass::Transient => 0.05,
                _ => 0.02,
            };
            let mut oram = PathOram::new(faulty_cfg(FaultConfig::single(class, rate, 17)), 21);
            let mut rng = Xoshiro256::seed_from(8);
            for _ in 0..150 {
                let addr = BlockAddr(rng.next_below(256));
                oram.try_access_block(addr, AccessKind::Read)
                    .unwrap_or_else(|e| panic!("{} not recovered: {e}", class.name()));
            }
            let stats = oram.fault_stats();
            assert!(
                stats.total_injected() > 0,
                "{}: nothing injected at rate {rate}",
                class.name()
            );
            assert_eq!(stats.undetected, 0, "{}: false negatives", class.name());
            oram.check_invariants();
        }
    }

    #[test]
    fn payloads_survive_fault_recovery() {
        let fault = FaultConfig {
            bit_flip_rate: 0.02,
            rollback_rate: 0.02,
            ..FaultConfig::silent(33)
        };
        let mut oram = PathOram::new(faulty_cfg(fault), 5);
        for a in 0..16u64 {
            oram.try_write_block(BlockAddr(a), &[a as u8; 128]).unwrap();
        }
        let mut rng = Xoshiro256::seed_from(9);
        for _ in 0..100 {
            oram.try_access_block(BlockAddr(rng.next_below(256)), AccessKind::Read)
                .unwrap();
        }
        for a in 0..16u64 {
            assert_eq!(
                oram.try_read_block(BlockAddr(a)).unwrap().unwrap(),
                vec![a as u8; 128],
                "payload of block {a} lost through recovery"
            );
        }
        assert!(oram.fault_stats().recovered > 0);
    }

    #[test]
    fn transient_backoff_charges_latency() {
        let fault = FaultConfig {
            retry_backoff_cycles: 100,
            ..FaultConfig::single(FaultClass::Transient, 0.2, 7)
        };
        let mut oram = PathOram::new(faulty_cfg(fault), 4);
        let mut total_latency = 0;
        let mut tree_accesses = 0;
        let mut rng = Xoshiro256::seed_from(2);
        for _ in 0..50 {
            let r = oram
                .try_access_block(BlockAddr(rng.next_below(256)), AccessKind::Read)
                .expect("transients under budget recover");
            total_latency += r.latency;
            tree_accesses += r.tree_accesses;
        }
        let stats = oram.fault_stats();
        assert!(stats.backoff_cycles > 0, "no backoff charged");
        assert_eq!(
            total_latency,
            tree_accesses * oram.path_cycles() + stats.backoff_cycles,
            "latency must include retry backoff"
        );
    }

    #[test]
    fn scrub_repairs_out_of_path_corruption() {
        let cfg = OramConfig {
            scrub_interval: 10,
            ..faulty_cfg(FaultConfig::silent(1))
        };
        let mut oram = PathOram::new(cfg, 13);
        // Corrupt a bucket directly (not via the injector) — the scrub
        // pass must find and repair it even if no access walks past it.
        let nb = oram.storage().expect("payloads on").num_buckets();
        oram.storage_mut()
            .expect("payloads on")
            .corrupt_byte(nb - 1, 30, 0x08);
        let mut rng = Xoshiro256::seed_from(6);
        for _ in 0..10 {
            oram.try_access_block(BlockAddr(rng.next_below(256)), AccessKind::Read)
                .unwrap();
        }
        let stats = oram.fault_stats();
        assert!(stats.scrub_runs >= 1, "scrub never ran");
        assert!(stats.recovered >= 1, "scrub did not repair");
        // After the scrub the whole image verifies again.
        assert!(oram
            .storage_mut()
            .expect("payloads on")
            .verify_all()
            .is_ok());
    }

    #[test]
    fn stash_never_exceeds_hard_capacity() {
        // Seeded-loop property: under eviction pressure with a hard
        // capacity configured, resting occupancy stays bounded (or the
        // controller fail-stops with a typed overflow, never silently
        // exceeding it).
        let cfg = OramConfig {
            stash_limit: 4,
            z: 2,
            stash_hard_capacity: Some(12),
            ..OramConfig::small_for_tests(400)
        };
        let cap = cfg.stash_hard_capacity.unwrap();
        let mut oram = PathOram::new(cfg, 11);
        let mut rng = Xoshiro256::seed_from(1);
        for i in 0..300 {
            match oram.try_access_block(BlockAddr(rng.next_below(400)), AccessKind::Read) {
                Ok(_) => assert!(
                    oram.stash().len() <= cap,
                    "iteration {i}: stash {} over hard capacity {cap}",
                    oram.stash().len()
                ),
                Err(OramError::StashOverflow { occupancy, .. }) => {
                    // Fail-stop is the documented last resort; it must
                    // name the offending occupancy.
                    assert!(occupancy > cap);
                    return;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        oram.check_invariants();
    }

    #[test]
    fn emergency_eviction_drains_past_the_bounded_limit() {
        // Flood the stash past what the bounded per-access drain can
        // place so the emergency mode must engage, at a load the tree
        // can still absorb. Placement efficiency depends on leaf draws,
        // so probe increasing floods (deterministic per seed) until one
        // engages the emergency path and still drains successfully.
        let mut engaged = false;
        for flood in [182u64, 186, 190, 194, 198] {
            let cfg = OramConfig {
                stash_limit: 4,
                stash_hard_capacity: Some(16),
                ..OramConfig::small_for_tests(64)
            };
            let cap = cfg.stash_hard_capacity.unwrap();
            let mut oram = PathOram::new(cfg, 19);
            for i in 0..flood {
                let leaf = oram.random_leaf();
                oram.stash
                    .insert(Block::opaque(BlockAddr(1_000_000 + i), leaf));
            }
            let Ok(evictions) = oram.try_drain_background() else {
                break; // tree saturated; heavier floods only fail harder
            };
            assert!(oram.stash().len() <= cap, "drain left stash over capacity");
            if oram.fault_stats().emergency_evictions > 0 {
                assert!(
                    evictions > MAX_BACKGROUND_EVICTIONS_PER_ACCESS,
                    "emergency counted but drain stayed within the bound"
                );
                engaged = true;
                break;
            }
        }
        assert!(
            engaged,
            "no flood level engaged emergency eviction successfully"
        );
    }

    #[test]
    fn saturated_tree_fail_stops_with_typed_overflow() {
        // More foreign blocks than the whole tree can absorb: even
        // MAX_EMERGENCY_EVICTIONS paths cannot place them, so the drain
        // must fail-stop with the typed overflow naming the occupancy.
        let cfg = OramConfig {
            stash_limit: 4,
            stash_hard_capacity: Some(16),
            ..OramConfig::small_for_tests(64)
        };
        let cap = cfg.stash_hard_capacity.unwrap();
        let mut oram = PathOram::new(cfg, 23);
        let slots = oram.tree.num_buckets() * oram.config.z;
        for i in 0..(slots as u64 + 200) {
            let leaf = oram.random_leaf();
            oram.stash
                .insert(Block::opaque(BlockAddr(1_000_000 + i), leaf));
        }
        match oram.try_drain_background() {
            Err(OramError::StashOverflow {
                occupancy,
                capacity,
            }) => {
                assert_eq!(capacity, cap);
                assert!(occupancy > cap, "fail-stop below the boundary");
            }
            other => panic!("expected StashOverflow, got {other:?}"),
        }
        assert!(oram.fault_stats().emergency_evictions > 0);
    }

    #[test]
    fn unrecovered_faults_degrade_instead_of_panicking() {
        use proram_mem::NoProbe;
        // Without recovery (no injector), MemoryBackend::access absorbs a
        // detected corruption into the unrecovered counter and still
        // serves the fill.
        let mut oram = PathOram::new(OramConfig::small_for_tests(256), 2);
        oram.storage_mut()
            .expect("payloads on")
            .corrupt_byte(0, 30, 0x01);
        let o = oram.access(0, MemRequest::read(BlockAddr(1)), &NoProbe);
        assert_eq!(o.fills.len(), 1);
        assert_eq!(MemoryBackend::stats(&oram).faults.unrecovered, 1);
    }
}

#[cfg(test)]
mod init_group_tests {
    use super::*;

    #[test]
    fn grouped_init_maps_groups_to_common_leaves() {
        let cfg = OramConfig {
            init_group_size: 4,
            ..OramConfig::small_for_tests(64)
        };
        let mut oram = PathOram::new(cfg, 17);
        for base in (0..64u64).step_by(4) {
            oram.try_resolve_posmap(BlockAddr(base)).unwrap();
            let leaf = oram.entry(BlockAddr(base)).leaf;
            for off in 1..4 {
                assert_eq!(
                    oram.entry(BlockAddr(base + off)).leaf,
                    leaf,
                    "group at {base} not co-located"
                );
            }
        }
        oram.check_invariants();
    }

    #[test]
    fn grouped_init_still_serves_accesses() {
        let cfg = OramConfig {
            init_group_size: 2,
            ..OramConfig::small_for_tests(64)
        };
        let mut oram = PathOram::new(cfg, 18);
        for a in 0..64 {
            oram.try_access_block(BlockAddr(a), AccessKind::Read)
                .unwrap();
        }
        oram.check_invariants();
    }
}
