//! Stage 3: decrypt, authenticate, repair.
//!
//! Cross-checks the encrypted DRAM image against the trusted logical tree
//! — per-path during an access (the `DecryptVerify` stage) and image-wide
//! in the periodic scrub. With fault injection configured the stage
//! *recovers*: flagged buckets are re-encrypted from the logical tree;
//! without it, detected faults propagate as typed [`OramError`]s.

use super::PathOram;
use crate::addr::Leaf;
use crate::error::OramError;
use proram_obs::{FaultKind, ObsEvent};

/// The event-taxonomy class of a detected fault (for observability; the
/// typed error itself keeps the full payload).
fn fault_kind(err: &OramError) -> FaultKind {
    match err {
        OramError::Integrity { .. } => FaultKind::Integrity,
        OramError::Rollback { .. } => FaultKind::Rollback,
        OramError::Transient { .. } => FaultKind::Transient,
        OramError::StashOverflow { .. } => FaultKind::StashPressure,
        OramError::BlockMissing { .. } => FaultKind::BlockMissing,
        // Crash unwinds are propagated (never repaired here) and crash
        // injection excludes fault injection by config validation, so this
        // classification is only a defensive nearest-neighbor.
        OramError::Crashed { .. } => FaultKind::Transient,
    }
}

impl PathOram {
    /// Decrypts, authenticates and cross-checks every *off-chip* bucket
    /// on the path to `leaf` against the logical tree, repairing detected
    /// faults in place when recovery is enabled. Treetop-cached levels
    /// are trusted plaintext and skipped. Addr-only reads through
    /// reusable buffers — no payload reconstruction, no allocation on the
    /// clean path.
    pub(crate) fn verify_path(&mut self, leaf: Leaf) -> Result<(), OramError> {
        let recover = self.recovery_enabled();
        let Some(store) = self.store.as_mut() else {
            return Ok(());
        };
        let skip = (self.config.tree_levels() - self.config.off_chip_levels()) as usize;
        if !recover && store.parallel_active() {
            // Pooled path: per-bucket decrypt + slot verification fan
            // across the crypto workers; the merge preserves path order,
            // so the error surfaced (if any) matches the serial loop.
            // Recovery stays serial — repairs mutate the image mid-walk.
            // Treetop buckets are plaintext on-chip state: nothing to
            // decrypt, so they never enter the batch.
            self.verify_batch_indices.clear();
            self.verify_batch_indices.extend(
                self.tree
                    .path_indices(leaf)
                    .skip(skip)
                    .map(|idx| self.layout.phys_of(idx)),
            );
            let before = if self.obs.is_enabled() {
                store.pool_stats()
            } else {
                None
            };
            store.bucket_addrs_batch(&self.verify_batch_indices, &mut self.verify_batch_addrs)?;
            if let Some(before) = before {
                Self::emit_pool_batch(
                    &self.obs,
                    proram_obs::StageKind::PoolDecrypt,
                    self.verify_batch_indices.len(),
                    store.pool_workers(),
                    before,
                    store.pool_stats().unwrap_or_default(),
                );
            }
            for (&phys, store_addrs) in self
                .verify_batch_indices
                .iter()
                .zip(self.verify_batch_addrs.iter_mut())
            {
                let heap = self.layout.heap_of(phys);
                self.verify_tree_addrs.clear();
                self.verify_tree_addrs
                    .extend(self.tree.bucket(heap).iter().map(|b| b.addr.0));
                store_addrs.sort_unstable();
                self.verify_tree_addrs.sort_unstable();
                assert_eq!(
                    *store_addrs, self.verify_tree_addrs,
                    "encrypted image diverged at bucket {heap}"
                );
            }
            return Ok(());
        }
        for idx in self.tree.path_indices(leaf).skip(skip) {
            let phys = self.layout.phys_of(idx);
            self.verify_store_addrs.clear();
            match store.bucket_addrs_into(
                phys,
                &mut self.verify_plain,
                &mut self.verify_store_addrs,
            ) {
                Ok(()) => {
                    self.verify_tree_addrs.clear();
                    self.verify_tree_addrs
                        .extend(self.tree.bucket(idx).iter().map(|b| b.addr.0));
                    self.verify_store_addrs.sort_unstable();
                    self.verify_tree_addrs.sort_unstable();
                    assert_eq!(
                        self.verify_store_addrs, self.verify_tree_addrs,
                        "encrypted image diverged at bucket {idx}"
                    );
                }
                Err(err) if recover => {
                    let kind = fault_kind(&err);
                    self.obs.emit(|| ObsEvent::FaultDetected {
                        kind,
                        bucket: idx as u64,
                    });
                    match err {
                        OramError::Integrity { .. } | OramError::Rollback { .. } => {
                            // The logical tree is trusted on-chip state:
                            // restore the bucket by re-encrypting it under a
                            // fresh nonce and version.
                            store.write_bucket(phys, self.tree.bucket(idx));
                            self.ctrl_faults.recovered += 1;
                            self.obs.emit(|| ObsEvent::FaultRecovered {
                                kind,
                                bucket: idx as u64,
                            });
                        }
                        OramError::Transient { .. } => {
                            // Retries exhausted; the logical copy still serves
                            // the access, but the bucket went unread.
                            self.ctrl_faults.unrecovered += 1;
                        }
                        OramError::StashOverflow { .. }
                        | OramError::BlockMissing { .. }
                        | OramError::Crashed { .. } => return Err(err),
                    }
                }
                Err(err) => return Err(err),
            }
        }
        Ok(())
    }

    /// Verifies the whole encrypted image ([`crate::EncryptedStore::verify_all`])
    /// and, when recovery is enabled, repairs every bucket it flags from
    /// the trusted logical tree. This is the periodic scrub pass driven by
    /// [`crate::OramConfig::scrub_interval`]; it can also be called
    /// directly.
    ///
    /// # Errors
    ///
    /// Returns the first detected [`OramError`] when recovery is disabled.
    pub fn scrub(&mut self) -> Result<(), OramError> {
        let recover = self.recovery_enabled();
        let Some(store) = self.store.as_mut() else {
            return Ok(());
        };
        self.ctrl_faults.scrub_runs += 1;
        self.ctrl_faults.scrub_buckets += store.num_buckets() as u64;
        // Fast path: one clean sweep of the whole image.
        match store.verify_all() {
            Ok(()) => return Ok(()),
            Err(err) if !recover => return Err(err),
            Err(_) => {}
        }
        // Something is wrong: re-verify bucket by bucket and repair.
        for idx in 0..store.num_buckets() {
            match store.verify_bucket(idx) {
                Ok(()) => {}
                Err(err @ (OramError::Integrity { .. } | OramError::Rollback { .. })) => {
                    let kind = fault_kind(&err);
                    self.obs.emit(|| ObsEvent::FaultDetected {
                        kind,
                        bucket: idx as u64,
                    });
                    store.write_bucket(idx, self.tree.bucket(self.layout.heap_of(idx)));
                    self.ctrl_faults.recovered += 1;
                    self.obs.emit(|| ObsEvent::FaultRecovered {
                        kind,
                        bucket: idx as u64,
                    });
                }
                Err(err @ OramError::Transient { .. }) => {
                    let kind = fault_kind(&err);
                    self.obs.emit(|| ObsEvent::FaultDetected {
                        kind,
                        bucket: idx as u64,
                    });
                    self.ctrl_faults.unrecovered += 1;
                }
                Err(
                    err @ (OramError::StashOverflow { .. }
                    | OramError::BlockMissing { .. }
                    | OramError::Crashed { .. }),
                ) => return Err(err),
            }
        }
        Ok(())
    }
}
