//! Stage 1: position-map resolve and remap.
//!
//! Walks the unified recursive position map (paper Section 2.3) through
//! the PLB and the on-chip top table, fetching missing posmap blocks with
//! real path accesses, and remaps blocks to fresh random leaves. These
//! are the primitives behind the `ResolvePosmap` stage of
//! [`crate::pipeline::AccessMachine`] and the grouped accesses in
//! `proram-core`.

use super::{PathKind, PathOram};
use crate::addr::{Hierarchy, Leaf};
use crate::error::OramError;
use crate::posmap::PosEntry;
use proram_mem::BlockAddr;

impl PathOram {
    /// Hierarchy of the posmap container holding `child`'s entry.
    pub(crate) fn parent_hierarchy(&self, child: BlockAddr) -> Hierarchy {
        self.space.hierarchy_of(child) + 1
    }

    /// Ensures the position-map block holding `child`'s entry is on-chip
    /// (PLB or the top table), fetching ancestors as needed. Returns the
    /// number of tree accesses performed.
    ///
    /// After this call [`PathOram::entry`] / [`PathOram::entry_mut`] for
    /// `child` (and for every sibling covered by the same posmap block)
    /// are guaranteed to succeed without further accesses.
    ///
    /// # Errors
    ///
    /// Propagates unrecovered faults from the path reads (see
    /// [`PathOram::try_read_path_into_stash`]), or
    /// [`OramError::BlockMissing`] if a fetched posmap block is on neither
    /// its mapped path nor in the stash.
    pub fn try_resolve_posmap(&mut self, child: BlockAddr) -> Result<u64, OramError> {
        let h = self.parent_hierarchy(child);
        if h == self.space.top_hierarchy() {
            return Ok(0); // entry lives in the on-chip table
        }
        let pm_addr = self.space.posmap_block_for(child, h);
        if self.plb.get_mut(pm_addr).is_some() {
            return Ok(0);
        }
        // Miss: resolve the posmap block's own mapping one level up, then
        // fetch it with a real path access.
        let mut accesses = self.try_resolve_posmap(pm_addr)?;
        let (old_leaf, new_leaf) = self.remap_block(pm_addr);

        self.try_read_path_into_stash(old_leaf, PathKind::PosMap)?;
        accesses += 1;
        let mut block = self.stash.take(pm_addr).ok_or(OramError::BlockMissing {
            addr: pm_addr.0,
            leaf: old_leaf.0,
        })?;
        block.leaf = new_leaf;
        if let Some(victim) = self.plb.insert(block) {
            self.stash.insert(victim);
        }
        self.write_path_from_stash(old_leaf)?;
        Ok(accesses)
    }

    /// Remaps `addr` to a fresh uniform leaf, returning `(old, new)` —
    /// steps 1 & 4 of the access. Requires the covering posmap entry to
    /// be on-chip (a prior resolve).
    pub(crate) fn remap_block(&mut self, addr: BlockAddr) -> (Leaf, Leaf) {
        let old_leaf = self.entry(addr).leaf;
        let new_leaf = self.random_leaf();
        self.entry_mut(addr).leaf = new_leaf;
        (old_leaf, new_leaf)
    }

    /// The currently mapped leaf of `addr`, if its covering posmap entry
    /// is on-chip (no accesses are performed).
    pub(crate) fn known_leaf(&self, addr: BlockAddr) -> Option<Leaf> {
        let h = self.parent_hierarchy(addr);
        if h == self.space.top_hierarchy() {
            let base = self.space.region_base(h - 1);
            return Some(self.top[(addr.0 - base) as usize].leaf);
        }
        let pm_addr = self.space.posmap_block_for(addr, h);
        let block = self.plb.peek(pm_addr)?;
        Some(block.entries()[self.space.entry_index(addr)].leaf)
    }

    /// Borrows `child`'s position-map entry.
    ///
    /// # Panics
    ///
    /// Panics if the covering posmap block is not on-chip — call
    /// [`PathOram::try_resolve_posmap`] first.
    pub fn entry(&self, child: BlockAddr) -> &PosEntry {
        let h = self.parent_hierarchy(child);
        let idx = self.space.entry_index(child);
        if h == self.space.top_hierarchy() {
            let base = self.space.region_base(h - 1);
            let off = (child.0 - base) as usize;
            return &self.top[off];
        }
        let pm_addr = self.space.posmap_block_for(child, h);
        let block = self
            .plb
            .peek(pm_addr)
            .unwrap_or_else(|| panic!("posmap block {pm_addr} not resolved"));
        &block.entries()[idx]
    }

    /// Mutably borrows `child`'s position-map entry.
    ///
    /// # Panics
    ///
    /// Panics if the covering posmap block is not on-chip.
    pub fn entry_mut(&mut self, child: BlockAddr) -> &mut PosEntry {
        let h = self.parent_hierarchy(child);
        let idx = self.space.entry_index(child);
        if h == self.space.top_hierarchy() {
            let base = self.space.region_base(h - 1);
            let off = (child.0 - base) as usize;
            return &mut self.top[off];
        }
        let pm_addr = self.space.posmap_block_for(child, h);
        let block = self
            .plb
            .peek_mut(pm_addr)
            .unwrap_or_else(|| panic!("posmap block {pm_addr} not resolved"));
        &mut block.entries_mut()[idx]
    }
}
