//! Stage 2: path fetch.
//!
//! Brings every bucket on a path into the stash, records the
//! adversary-visible event and byte movement, and claims the requested
//! block for remapping. A path fetch is a *batch* of bucket reads —
//! [`PathOram::bucket_read_batch`] renders one explicitly for the
//! bank-aware scheduler in `proram-mem`; the per-access timing model
//! charges the same batch analytically via
//! [`proram_mem::BankScheduler::path_fetch_cycles`] so the hot path stays
//! allocation-free.

use super::{PathKind, PathOram};
use crate::addr::Leaf;
use crate::error::OramError;
use crate::eviction::read_path;
use crate::trace::PhysEvent;
use proram_mem::BucketRead;
use proram_obs::ObsEvent;

impl PathOram {
    /// Reads every bucket on the path to `leaf` into the stash, recording
    /// the adversary-visible event, statistics and byte movement. Callers
    /// must pair this with [`PathOram::write_path_from_stash`] on the same
    /// leaf.
    ///
    /// When the encrypted image is kept and verification is on (explicit
    /// `verify_image`, or implied by fault injection), every bucket on the
    /// path is decrypted and authenticated first. With fault injection the
    /// controller *recovers*: corrupted or rolled-back buckets are
    /// re-encrypted from the trusted logical tree; exhausted transient
    /// reads are counted and skipped. Without it, faults propagate.
    ///
    /// # Errors
    ///
    /// Returns the detected [`OramError`] when recovery is disabled.
    pub fn try_read_path_into_stash(
        &mut self,
        leaf: Leaf,
        kind: PathKind,
    ) -> Result<(), OramError> {
        self.verify_gate(leaf)?;
        self.fill_path_into_stash(leaf, kind);
        Ok(())
    }

    /// The decrypt/verify stage gate: authenticates the path when image
    /// verification is configured (explicitly or via fault injection),
    /// repairing in place when recovery is on.
    pub(crate) fn verify_gate(&mut self, leaf: Leaf) -> Result<(), OramError> {
        if self.config.verify_image || self.recovery_enabled() {
            self.verify_path(leaf)?;
        }
        Ok(())
    }

    /// The stash-update half of a path fetch: moves the (verified) path's
    /// blocks into the stash and records stats, trace and occupancy.
    pub(crate) fn fill_path_into_stash(&mut self, leaf: Leaf, kind: PathKind) {
        if self.txn_open {
            // A fetched path's buckets lose blocks to the stash; recovery
            // must re-verify them even if the crash lands before the
            // write-back journals them.
            self.txn_touched.extend(self.tree.path_indices(leaf));
        }
        let peak_before = self.stash.peak();
        read_path(&mut self.tree, &mut self.stash, leaf);
        match kind {
            PathKind::Data => {
                self.stats.data_path_accesses += 1;
                self.trace.record(PhysEvent::PathAccess(leaf));
            }
            PathKind::PosMap => {
                self.stats.posmap_path_accesses += 1;
                self.trace.record(PhysEvent::PathAccess(leaf));
            }
            PathKind::Dummy => {
                self.stats.background_evictions += 1;
                self.trace.record(PhysEvent::DummyAccess(leaf));
            }
        }
        self.stats.bytes_moved += self.path_bytes;
        if self.config.treetop_levels > 0 {
            self.stats.treetop_hits += u64::from(self.config.treetop_levels);
            self.stats.treetop_bytes_saved += self.treetop_saved_bytes;
        }
        self.stash.sample_occupancy();
        // Watermark events fire only when the all-time peak moves, so an
        // attached sink sees the (rare) growth edges, not every access.
        let peak = self.stash.peak();
        if peak > peak_before {
            let occupancy = self.stash.len() as u64;
            self.obs.emit(|| ObsEvent::StashWatermark {
                occupancy,
                peak: peak as u64,
            });
        }
    }

    /// Claims a just-fetched block for the access: finds `addr` in the
    /// stash and points it at its fresh leaf.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::BlockMissing`] if the block is on neither the
    /// fetched path nor in the stash — the placement invariant is broken.
    pub(crate) fn claim_block(
        &mut self,
        addr: proram_mem::BlockAddr,
        old_leaf: Leaf,
        new_leaf: Leaf,
    ) -> Result<(), OramError> {
        let block = self.stash.get_mut(addr).ok_or(OramError::BlockMissing {
            addr: addr.0,
            leaf: old_leaf.0,
        })?;
        block.leaf = new_leaf;
        Ok(())
    }

    /// Renders the path to `leaf` as an explicit bucket-read batch for the
    /// bank-aware scheduler: one [`BucketRead`] per off-chip bucket,
    /// addressed by its *physical* store index under the configured
    /// [`crate::TreeLayout`], each
    /// moving the derate-adjusted wire bytes of one bucket
    /// ([`crate::OramTiming::bucket_wire_bytes`]). Treetop-cached levels
    /// are on-chip and never appear in the batch. A super-block merged
    /// fetch is simply one larger batch (several paths concatenated).
    ///
    /// Allocates the returned vector; the per-access hot path instead
    /// charges the identical batch analytically, so this is for explicit
    /// scheduler callers (experiments, `proram-bench pipeline`).
    pub fn bucket_read_batch(&self, leaf: Leaf) -> Vec<BucketRead> {
        let bucket_bytes = self.config.timing.bucket_wire_bytes(self.config.z);
        let skip = (self.config.tree_levels() - self.config.off_chip_levels()) as usize;
        self.tree
            .path_indices(leaf)
            .skip(skip)
            .map(|idx| BucketRead::new(self.layout.phys_of(idx) as u64, bucket_bytes))
            .collect()
    }
}
