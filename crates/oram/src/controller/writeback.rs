//! Stages 4 & 5: path write-back and background eviction.
//!
//! Greedily writes stash blocks back onto the just-read path, keeps the
//! encrypted image coherent, and drains the stash with background
//! (dummy) evictions — paper Section 2.4 — bounded per access so an
//! eviction storm degrades throughput instead of livelocking.

use super::{PathOram, MAX_BACKGROUND_EVICTIONS_PER_ACCESS, MAX_EMERGENCY_EVICTIONS};
use crate::addr::Leaf;
use crate::error::OramError;
use crate::eviction::write_path_with;
use proram_obs::{FaultKind, ObsEvent};

impl PathOram {
    /// Greedily writes stash blocks back to the path to `leaf` and
    /// re-encrypts the touched buckets into the storage image.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::Crashed`] when a store-level crash kill point
    /// fired during the write-back; the encrypted image keeps its
    /// pre-crash bytes and [`PathOram::recover`] must run before the next
    /// access.
    pub fn write_path_from_stash(&mut self, leaf: Leaf) -> Result<(), OramError> {
        if self.txn_open {
            self.txn_touched.extend(self.tree.path_indices(leaf));
        }
        write_path_with(&mut self.tree, &mut self.stash, leaf, &mut self.scratch);
        if let Some(store) = self.store.as_mut() {
            if store.parallel_active() {
                // Pooled path: serialize + seal + encrypt fan across the
                // crypto workers; commits happen in path order on this
                // thread, so the image is byte-identical to the serial
                // loop below (nonces are assigned in path order before
                // dispatch — DESIGN.md section 14).
                let before = if self.obs.is_enabled() {
                    store.pool_stats()
                } else {
                    None
                };
                let skip = (self.config.tree_levels() - self.config.off_chip_levels()) as usize;
                let buckets: Vec<(usize, &crate::bucket::Bucket)> = self
                    .tree
                    .path_indices(leaf)
                    .skip(skip)
                    .map(|idx| (self.layout.phys_of(idx), self.tree.bucket(idx)))
                    .collect();
                store.write_buckets(&buckets);
                if let Some(before) = before {
                    Self::emit_pool_batch(
                        &self.obs,
                        proram_obs::StageKind::PoolEncrypt,
                        buckets.len(),
                        store.pool_workers(),
                        before,
                        store.pool_stats().unwrap_or_default(),
                    );
                }
            } else {
                // Serial path stays allocation-free.
                let skip = (self.config.tree_levels() - self.config.off_chip_levels()) as usize;
                for idx in self.tree.path_indices(leaf).skip(skip) {
                    store.write_bucket(self.layout.phys_of(idx), self.tree.bucket(idx));
                }
            }
        }
        self.store_crash_check()
    }

    /// Performs one background eviction (paper Section 2.4): read and
    /// write a random path, remapping nothing.
    ///
    /// # Errors
    ///
    /// Propagates unrecovered faults from the path read.
    pub fn try_background_evict(&mut self) -> Result<(), OramError> {
        let leaf = self.random_leaf();
        self.try_read_path_into_stash(leaf, super::PathKind::Dummy)?;
        self.write_path_from_stash(leaf)
    }

    /// Issues background evictions until the stash is under its limit,
    /// bounded per call so a persistent eviction storm degrades
    /// throughput instead of livelocking the simulator; returns how many
    /// evictions ran.
    ///
    /// With [`crate::OramConfig::stash_hard_capacity`] set, a stash still
    /// above the hard capacity after the bounded drain enters **emergency
    /// eviction**: a degraded mode (counted in
    /// [`proram_mem::FaultStats::emergency_evictions`]) that keeps
    /// evicting up to `MAX_EMERGENCY_EVICTIONS` more paths. Only if the
    /// stash *still* exceeds capacity does the controller fail-stop.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::StashOverflow`] when emergency eviction cannot
    /// bring occupancy under the hard capacity, or propagates unrecovered
    /// path-read faults.
    pub fn try_drain_background(&mut self) -> Result<u64, OramError> {
        let mut n = 0;
        while self.stash.over_limit() && n < MAX_BACKGROUND_EVICTIONS_PER_ACCESS {
            self.try_background_evict()?;
            n += 1;
        }
        if let Some(cap) = self.config.stash_hard_capacity {
            let mut emergencies = 0;
            if self.stash.len() > cap {
                let occupancy = self.stash.len() as u64;
                self.obs.emit(|| ObsEvent::FaultDetected {
                    kind: FaultKind::StashPressure,
                    bucket: occupancy,
                });
            }
            while self.stash.len() > cap && emergencies < MAX_EMERGENCY_EVICTIONS {
                self.try_background_evict()?;
                self.ctrl_faults.emergency_evictions += 1;
                emergencies += 1;
                n += 1;
            }
            if self.stash.len() > cap {
                return Err(OramError::StashOverflow {
                    occupancy: self.stash.len(),
                    capacity: cap,
                });
            }
            if emergencies > 0 {
                let occupancy = self.stash.len() as u64;
                self.obs.emit(|| ObsEvent::FaultRecovered {
                    kind: FaultKind::StashPressure,
                    bucket: occupancy,
                });
            }
        }
        Ok(n)
    }

    /// The eviction stage of one access: bounded background drain plus
    /// the periodic image scrub driven by
    /// [`crate::OramConfig::scrub_interval`]. Returns the background
    /// evictions run.
    ///
    /// # Errors
    ///
    /// Propagates drain and scrub failures.
    pub(crate) fn drain_and_periodic_scrub(&mut self) -> Result<u64, OramError> {
        let background_evictions = self.try_drain_background()?;
        if self.config.scrub_interval > 0 {
            self.reads_since_scrub += 1;
            if self.reads_since_scrub >= self.config.scrub_interval {
                self.reads_since_scrub = 0;
                self.scrub()?;
            }
        }
        Ok(background_evictions)
    }
}
