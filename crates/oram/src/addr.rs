//! Leaf labels and the unified ORAM address space.
//!
//! The unified baseline (paper Section 2.3) stores data blocks *and*
//! position-map blocks in one binary tree. [`AddressSpace`] lays out that
//! combined block-address space: data blocks first, then one region per
//! position-map hierarchy, each region 1/`entries_per_block` the size of
//! the one below it. The top hierarchy's leaf labels are small enough to
//! live on-chip.

use proram_mem::BlockAddr;
use std::fmt;

/// A leaf label: which root-to-leaf path a block is mapped to.
///
/// Leaves are numbered `0..num_leaves` left to right, as in the paper's
/// Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Leaf(pub u32);

impl fmt::Display for Leaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "leaf{}", self.0)
    }
}

/// Which hierarchy a block belongs to: 0 = data, `1..` = position map.
pub type Hierarchy = u8;

/// Layout of the unified block address space.
///
/// # Examples
///
/// ```
/// use proram_oram::AddressSpace;
/// use proram_mem::BlockAddr;
///
/// // 1024 data blocks, 32 posmap entries per block, 2 on-tree posmap
/// // hierarchies (the third level, with exactly one block, is on-chip).
/// let space = AddressSpace::new(1024, 32, 2);
/// assert_eq!(space.region_len(0), 1024);
/// assert_eq!(space.region_len(1), 32);
/// assert_eq!(space.region_len(2), 1);
/// // The posmap block holding data block 40's entry:
/// let pm = space.posmap_block_for(BlockAddr(40), 1);
/// assert_eq!(space.hierarchy_of(pm), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressSpace {
    num_data_blocks: u64,
    entries_per_block: u64,
    /// Number of posmap hierarchies whose blocks are stored in the tree.
    /// Hierarchy `on_tree_hierarchies + 1`'s labels live on-chip.
    on_tree_hierarchies: u8,
    /// `region_base[h]` = first block address of hierarchy `h`'s region.
    region_base: Vec<u64>,
    /// `region_len[h]` = number of blocks in hierarchy `h`.
    region_len: Vec<u64>,
}

impl AddressSpace {
    /// Lays out an address space.
    ///
    /// `on_tree_hierarchies` is the number of position-map levels stored in
    /// the tree (the paper's "number of ORAM hierarchies" minus one: with 4
    /// hierarchies, data + 3 posmap levels exist and the top level is the
    /// on-chip final position map).
    ///
    /// # Panics
    ///
    /// Panics if `num_data_blocks` is zero or `entries_per_block < 2`.
    pub fn new(num_data_blocks: u64, entries_per_block: u64, on_tree_hierarchies: u8) -> Self {
        assert!(num_data_blocks > 0, "address space needs data blocks");
        assert!(
            entries_per_block >= 2,
            "posmap blocks must hold at least 2 entries"
        );
        let levels = usize::from(on_tree_hierarchies) + 2;
        let mut region_base = Vec::with_capacity(levels);
        let mut region_len = Vec::with_capacity(levels);
        let mut base = 0u64;
        let mut len = num_data_blocks;
        for _ in 0..levels {
            region_base.push(base);
            region_len.push(len);
            base += len;
            len = len.div_ceil(entries_per_block);
        }
        AddressSpace {
            num_data_blocks,
            entries_per_block,
            on_tree_hierarchies,
            region_base,
            region_len,
        }
    }

    /// Number of data blocks (hierarchy 0 region size).
    pub fn num_data_blocks(&self) -> u64 {
        self.num_data_blocks
    }

    /// Position-map entries per posmap block.
    pub fn entries_per_block(&self) -> u64 {
        self.entries_per_block
    }

    /// Number of posmap hierarchies stored in the tree.
    pub fn on_tree_hierarchies(&self) -> u8 {
        self.on_tree_hierarchies
    }

    /// Hierarchy whose leaf labels are kept on-chip.
    pub fn top_hierarchy(&self) -> Hierarchy {
        self.on_tree_hierarchies + 1
    }

    /// Total number of blocks stored in the tree (data + on-tree posmap).
    pub fn total_tree_blocks(&self) -> u64 {
        (0..=self.on_tree_hierarchies)
            .map(|h| self.region_len[h as usize])
            .sum()
    }

    /// Number of blocks in hierarchy `h`'s region.
    ///
    /// # Panics
    ///
    /// Panics if `h` exceeds the top hierarchy.
    pub fn region_len(&self, h: Hierarchy) -> u64 {
        self.region_len[usize::from(h)]
    }

    /// First block address of hierarchy `h`'s region.
    pub fn region_base(&self, h: Hierarchy) -> u64 {
        self.region_base[usize::from(h)]
    }

    /// The hierarchy a block address belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `block` is outside every region.
    pub fn hierarchy_of(&self, block: BlockAddr) -> Hierarchy {
        for h in 0..self.region_base.len() {
            if block.0 < self.region_base[h] + self.region_len[h] {
                return h as Hierarchy;
            }
        }
        panic!("block {block} outside the unified address space");
    }

    /// The hierarchy-`h` posmap block whose entries cover `block` (a block
    /// of hierarchy `h - 1`).
    ///
    /// # Panics
    ///
    /// Panics if `h` is zero, above the top hierarchy, or `block` is not in
    /// hierarchy `h - 1`.
    pub fn posmap_block_for(&self, block: BlockAddr, h: Hierarchy) -> BlockAddr {
        assert!(h >= 1 && h <= self.top_hierarchy(), "invalid hierarchy {h}");
        let child = usize::from(h) - 1;
        let off = block
            .0
            .checked_sub(self.region_base[child])
            .expect("block below its region base");
        assert!(
            off < self.region_len[child],
            "block {block} not in hierarchy {child}"
        );
        BlockAddr(self.region_base[usize::from(h)] + off / self.entries_per_block)
    }

    /// Index of `block`'s entry within its covering posmap block.
    pub fn entry_index(&self, block: BlockAddr) -> usize {
        let h = self.hierarchy_of(block);
        let off = block.0 - self.region_base[usize::from(h)];
        (off % self.entries_per_block) as usize
    }

    /// The first child block address covered by posmap block `pm`.
    ///
    /// # Panics
    ///
    /// Panics if `pm` is a data block (hierarchy 0).
    pub fn first_child(&self, pm: BlockAddr) -> BlockAddr {
        let h = self.hierarchy_of(pm);
        assert!(h >= 1, "data blocks have no children");
        let off = pm.0 - self.region_base[usize::from(h)];
        BlockAddr(self.region_base[usize::from(h) - 1] + off * self.entries_per_block)
    }

    /// Number of valid entries in posmap block `pm` (the last block of a
    /// region can be partially used).
    pub fn child_count(&self, pm: BlockAddr) -> usize {
        let h = self.hierarchy_of(pm);
        assert!(h >= 1, "data blocks have no children");
        let child_len = self.region_len[usize::from(h) - 1];
        let first = self.first_child(pm).0 - self.region_base[usize::from(h) - 1];
        (child_len - first).min(self.entries_per_block) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(1000, 32, 2)
    }

    #[test]
    fn region_sizes_shrink_by_fanout() {
        let s = space();
        assert_eq!(s.region_len(0), 1000);
        assert_eq!(s.region_len(1), 32); // ceil(1000/32)
        assert_eq!(s.region_len(2), 1);
        assert_eq!(s.region_len(3), 1); // on-chip top
        assert_eq!(s.total_tree_blocks(), 1033);
    }

    #[test]
    fn region_bases_are_contiguous() {
        let s = space();
        assert_eq!(s.region_base(0), 0);
        assert_eq!(s.region_base(1), 1000);
        assert_eq!(s.region_base(2), 1032);
    }

    #[test]
    fn hierarchy_of_classifies() {
        let s = space();
        assert_eq!(s.hierarchy_of(BlockAddr(0)), 0);
        assert_eq!(s.hierarchy_of(BlockAddr(999)), 0);
        assert_eq!(s.hierarchy_of(BlockAddr(1000)), 1);
        assert_eq!(s.hierarchy_of(BlockAddr(1032)), 2);
    }

    #[test]
    #[should_panic(expected = "outside the unified address space")]
    fn hierarchy_of_out_of_range_panics() {
        space().hierarchy_of(BlockAddr(10_000));
    }

    #[test]
    fn posmap_chain_for_data_block() {
        let s = space();
        let b = BlockAddr(40);
        let pm1 = s.posmap_block_for(b, 1);
        assert_eq!(pm1, BlockAddr(1000 + 1)); // 40/32 = group 1
        let pm2 = s.posmap_block_for(pm1, 2);
        assert_eq!(pm2, BlockAddr(1032));
        assert_eq!(s.entry_index(b), 8); // 40 % 32
        assert_eq!(s.entry_index(pm1), 1);
    }

    #[test]
    fn children_round_trip() {
        let s = space();
        let pm = BlockAddr(1003); // h1 group 3 => children 96..128
        assert_eq!(s.first_child(pm), BlockAddr(96));
        assert_eq!(s.child_count(pm), 32);
        for c in 96..128u64 {
            assert_eq!(s.posmap_block_for(BlockAddr(c), 1), pm);
        }
    }

    #[test]
    fn last_posmap_block_partially_used() {
        let s = space();
        // h1 region: 32 blocks covering 1000 children; last group holds
        // 1000 - 31*32 = 8 entries.
        let last = BlockAddr(1000 + 31);
        assert_eq!(s.child_count(last), 8);
    }

    #[test]
    fn zero_on_tree_hierarchies_means_flat_onchip_map() {
        let s = AddressSpace::new(64, 32, 0);
        assert_eq!(s.top_hierarchy(), 1);
        assert_eq!(s.total_tree_blocks(), 64);
        // Every data block's posmap entry is in the on-chip hierarchy.
        assert_eq!(s.hierarchy_of(BlockAddr(63)), 0);
        assert_eq!(s.posmap_block_for(BlockAddr(63), 1), BlockAddr(64 + 1));
    }

    #[test]
    #[should_panic(expected = "invalid hierarchy")]
    fn posmap_block_for_hierarchy_zero_panics() {
        space().posmap_block_for(BlockAddr(0), 0);
    }

    #[test]
    fn leaf_display() {
        assert_eq!(Leaf(5).to_string(), "leaf5");
    }
}
