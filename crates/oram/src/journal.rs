//! The commit journal and sealed checkpoint records.
//!
//! The crash-consistency protocol (DESIGN.md section 15) makes every
//! ORAM access all-or-nothing with three durable artifacts, all held in
//! the untrusted store's journal area:
//!
//! * **Undo entries** ([`UndoEntry`]): before a bucket's home location
//!   is overwritten for the first time in a transaction, its old raw
//!   image and trusted version counter are journaled. Rolling the
//!   journal back restores the exact pre-transaction byte image.
//! * **Sealed checkpoints** ([`Checkpoint`]): the controller's volatile
//!   state — stash, PLB, on-chip position-map top table, treetop-cached
//!   buckets and RNG state — serialized and MAC-sealed. Checkpoint A is
//!   taken at transaction
//!   begin, checkpoint B at commit; recovery adopts A after a rollback
//!   and B after a replay.
//! * **The epoch header**: a trusted monotonic counter bound by a MAC.
//!   The commit "flips" it after all home writes land; recovery compares
//!   it against the journal's begin epoch to decide rollback (not yet
//!   flipped) versus replay (flipped, journal not yet discarded).
//!
//! Everything here is plain serialization plus one MAC; the protocol
//! logic lives in [`crate::storage`] (journaling, flip) and
//! [`crate::controller`] (`PathOram::recover`).

use crate::addr::Leaf;
use crate::block::{Block, Payload};
use crate::crypto::Mac;
use crate::posmap::PosEntry;
use proram_mem::BlockAddr;

/// Domain-separation constant folded into checkpoint MACs so a sealed
/// checkpoint can never be confused with a sealed slot or epoch header.
const CHECKPOINT_DOMAIN: u64 = 0x4350_4B54_5052_4F52; // "CPKTPROR"

/// Domain-separation constant for the epoch header MAC.
pub(crate) const EPOCH_DOMAIN: u64 = 0x4550_4F43_5052_4F52; // "EPOCPROR"

/// One first-touch undo record: the raw store image and trusted version
/// a bucket had before the current transaction first overwrote it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct UndoEntry {
    /// Physical off-chip store index of the bucket. Treetop buckets are
    /// on-chip and never journaled — they ride in the sealed
    /// checkpoints instead.
    pub index: usize,
    /// The full pre-transaction ciphertext image (header + body).
    pub image: Vec<u8>,
    /// The trusted version counter before the transaction.
    pub version: u64,
}

/// The live journal of one open transaction.
#[derive(Debug, Clone, Default)]
pub(crate) struct TxnJournal {
    /// Epoch at transaction begin; recovery compares the store's epoch
    /// against this to pick rollback vs replay.
    pub begin_epoch: u64,
    /// First-touch undo entries, in write order.
    pub entries: Vec<UndoEntry>,
    /// Sealed checkpoint A (pre-access state), written at begin.
    pub checkpoint_a: Vec<u8>,
    /// Sealed checkpoint B (post-access state), written during commit
    /// just before the flip.
    pub checkpoint_b: Option<Vec<u8>>,
}

impl TxnJournal {
    /// `true` if `index` already has an undo entry this transaction.
    pub fn touched(&self, index: usize) -> bool {
        self.entries.iter().any(|e| e.index == index)
    }
}

/// A decoded controller checkpoint: everything volatile the recovery
/// path must restore. The *off-chip* tree buckets are deliberately
/// absent — they are rebuilt by decrypting and re-authenticating the
/// (rolled-back or replayed) store image, which is what makes recovery
/// honest about what survives a crash. The on-chip treetop buckets have
/// no encrypted image at all, so their plaintext contents ride inside
/// the sealed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Checkpoint {
    /// Store epoch when the checkpoint was taken.
    pub epoch: u64,
    /// Controller RNG state (leaf remaps and eviction choices replay
    /// identically after a rollback).
    pub rng: [u64; 4],
    /// The on-chip position-map top table.
    pub top: Vec<PosEntry>,
    /// Stash contents.
    pub stash: Vec<Block>,
    /// PLB contents, MRU first.
    pub plb: Vec<Block>,
    /// On-chip treetop bucket contents, heap order `0..treetop_buckets`.
    /// Checkpoint A carries the pre-access treetop (adopted on
    /// rollback); checkpoint B the post-access treetop (adopted on
    /// replay).
    pub treetop: Vec<Vec<Block>>,
}

impl Checkpoint {
    /// Serializes and MAC-seals the checkpoint into one record.
    pub fn seal(&self, mac: &Mac) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.stash.len() * 32);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        for w in self.rng {
            out.extend_from_slice(&w.to_le_bytes());
        }
        push_len(&mut out, self.top.len());
        for e in &self.top {
            encode_entry(&mut out, e);
        }
        push_len(&mut out, self.stash.len());
        for b in &self.stash {
            encode_block(&mut out, b);
        }
        push_len(&mut out, self.plb.len());
        for b in &self.plb {
            encode_block(&mut out, b);
        }
        push_len(&mut out, self.treetop.len());
        for bucket in &self.treetop {
            push_len(&mut out, bucket.len());
            for b in bucket {
                encode_block(&mut out, b);
            }
        }
        let tag = mac.tag_parts(&[CHECKPOINT_DOMAIN, self.epoch], &[&out]);
        out.extend_from_slice(&tag.to_le_bytes());
        out
    }

    /// Verifies the seal and decodes a checkpoint record.
    ///
    /// Returns `None` on a truncated record or MAC mismatch — a torn or
    /// tampered checkpoint must never be adopted.
    pub fn unseal(bytes: &[u8], mac: &Mac) -> Option<Checkpoint> {
        if bytes.len() < 8 + 32 + 8 {
            return None;
        }
        let (body, tag_bytes) = bytes.split_at(bytes.len() - 8);
        let mut r = Reader { buf: body, pos: 0 };
        let epoch = r.u64()?;
        let mut rng = [0u64; 4];
        for w in &mut rng {
            *w = r.u64()?;
        }
        let tag = u64::from_le_bytes(tag_bytes.try_into().ok()?);
        if mac.tag_parts(&[CHECKPOINT_DOMAIN, epoch], &[body]) != tag {
            return None;
        }
        let top_len = r.len()?;
        let mut top = Vec::with_capacity(top_len);
        for _ in 0..top_len {
            top.push(decode_entry(&mut r)?);
        }
        let stash_len = r.len()?;
        let mut stash = Vec::with_capacity(stash_len);
        for _ in 0..stash_len {
            stash.push(decode_block(&mut r)?);
        }
        let plb_len = r.len()?;
        let mut plb = Vec::with_capacity(plb_len);
        for _ in 0..plb_len {
            plb.push(decode_block(&mut r)?);
        }
        let treetop_len = r.len()?;
        let mut treetop = Vec::with_capacity(treetop_len);
        for _ in 0..treetop_len {
            let bucket_len = r.len()?;
            let mut bucket = Vec::with_capacity(bucket_len);
            for _ in 0..bucket_len {
                bucket.push(decode_block(&mut r)?);
            }
            treetop.push(bucket);
        }
        if r.pos != body.len() {
            return None; // trailing garbage
        }
        Some(Checkpoint {
            epoch,
            rng,
            top,
            stash,
            plb,
            treetop,
        })
    }
}

fn push_len(out: &mut Vec<u8>, len: usize) {
    out.extend_from_slice(
        &u32::try_from(len)
            .expect("checkpoint section length")
            .to_le_bytes(),
    );
}

fn encode_entry(out: &mut Vec<u8>, e: &PosEntry) {
    out.extend_from_slice(&e.leaf.0.to_le_bytes());
    out.extend_from_slice(&e.merge.to_le_bytes());
    out.extend_from_slice(&e.brk.to_le_bytes());
    out.push(u8::from(e.prefetch));
}

fn decode_entry(r: &mut Reader<'_>) -> Option<PosEntry> {
    Some(PosEntry {
        leaf: Leaf(r.u32()?),
        merge: r.i16()?,
        brk: r.i16()?,
        prefetch: r.u8()? != 0,
    })
}

fn encode_block(out: &mut Vec<u8>, b: &Block) {
    out.extend_from_slice(&b.addr.0.to_le_bytes());
    out.extend_from_slice(&b.leaf.0.to_le_bytes());
    out.push(u8::from(b.hit));
    match &b.payload {
        Payload::Opaque => out.push(0),
        Payload::Data(data) => {
            out.push(1);
            push_len(out, data.len());
            out.extend_from_slice(data);
        }
        Payload::PosMap(entries) => {
            out.push(2);
            push_len(out, entries.len());
            for e in entries.iter() {
                encode_entry(out, e);
            }
        }
    }
}

fn decode_block(r: &mut Reader<'_>) -> Option<Block> {
    let addr = BlockAddr(r.u64()?);
    let leaf = Leaf(r.u32()?);
    let hit = r.u8()? != 0;
    let payload = match r.u8()? {
        0 => Payload::Opaque,
        1 => {
            let len = r.len()?;
            Payload::Data(r.bytes(len)?.to_vec().into_boxed_slice())
        }
        2 => {
            let len = r.len()?;
            let mut entries = Vec::with_capacity(len);
            for _ in 0..len {
                entries.push(decode_entry(r)?);
            }
            Payload::PosMap(entries.into_boxed_slice())
        }
        _ => return None,
    };
    Some(Block {
        addr,
        leaf,
        hit,
        payload,
    })
}

/// A bounds-checked little-endian cursor.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.bytes(1)?[0])
    }

    fn i16(&mut self) -> Option<i16> {
        Some(i16::from_le_bytes(self.bytes(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }

    fn len(&mut self) -> Option<usize> {
        Some(self.u32()? as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            epoch: 5,
            rng: [1, 2, 3, 4],
            top: vec![
                PosEntry {
                    leaf: Leaf(9),
                    merge: -3,
                    brk: 4,
                    prefetch: true,
                },
                PosEntry::new(Leaf(2)),
            ],
            stash: vec![
                Block::opaque(BlockAddr(7), Leaf(1)),
                Block::with_data(BlockAddr(8), Leaf(2), vec![0xAB; 16].into()),
            ],
            plb: vec![Block::posmap(
                BlockAddr(100),
                Leaf(3),
                vec![PosEntry::new(Leaf(5)), PosEntry::new(Leaf(6))].into(),
            )],
            treetop: vec![vec![Block::opaque(BlockAddr(11), Leaf(4))], vec![]],
        }
    }

    #[test]
    fn checkpoint_round_trips_through_seal() {
        let mac = Mac::new(0xDEAD_BEEF);
        let cp = sample_checkpoint();
        let sealed = cp.seal(&mac);
        let back = Checkpoint::unseal(&sealed, &mac).expect("seal verifies");
        assert_eq!(back, cp);
    }

    #[test]
    fn tampered_checkpoint_is_rejected() {
        let mac = Mac::new(0xDEAD_BEEF);
        let sealed = sample_checkpoint().seal(&mac);
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert!(
                Checkpoint::unseal(&bad, &mac).is_none(),
                "flip at byte {i} must fail the seal"
            );
        }
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let mac = Mac::new(1);
        let sealed = sample_checkpoint().seal(&mac);
        for cut in 0..sealed.len() {
            assert!(Checkpoint::unseal(&sealed[..cut], &mac).is_none());
        }
    }

    #[test]
    fn wrong_key_is_rejected() {
        let sealed = sample_checkpoint().seal(&Mac::new(1));
        assert!(Checkpoint::unseal(&sealed, &Mac::new(2)).is_none());
    }

    #[test]
    fn journal_tracks_first_touch() {
        let mut j = TxnJournal::default();
        assert!(!j.touched(3));
        j.entries.push(UndoEntry {
            index: 3,
            image: vec![0; 8],
            version: 1,
        });
        assert!(j.touched(3));
        assert!(!j.touched(4));
    }
}
