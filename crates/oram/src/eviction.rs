//! Path read and greedy write-back.
//!
//! Steps 2 and 5 of the Path ORAM access (paper Section 2.2): reading a
//! path moves every real block on it into the stash; writing the path back
//! greedily evicts as many stash blocks as possible, placing each block as
//! deep as its leaf mapping allows. Background eviction (Section 2.4)
//! reuses the same two operations on a random path without remapping
//! anything.

use crate::addr::Leaf;
use crate::stash::Stash;
use crate::tree::OramTree;

/// Moves every real block on the path to `leaf` into the stash.
pub fn read_path(tree: &mut OramTree, stash: &mut Stash, leaf: Leaf) {
    let indices: Vec<usize> = tree.path_indices(leaf).collect();
    for idx in indices {
        for block in tree.bucket_mut(idx).drain() {
            stash.insert(block);
        }
    }
}

/// Greedily writes stash blocks back onto the path to `leaf`.
///
/// Each stash block may be placed in any bucket on the path no deeper than
/// the deepest level its own leaf shares with `leaf`; the greedy pass
/// fills from the leaf level upward, deepest-eligible blocks first —
/// the standard Path ORAM eviction. Returns the number of blocks placed.
pub fn write_path(tree: &mut OramTree, stash: &mut Stash, leaf: Leaf) -> usize {
    // Candidates sorted by how deep they can go, deepest first.
    let mut candidates: Vec<(u32, u64)> = stash
        .iter()
        .map(|b| (tree.common_level(b.leaf, leaf), b.addr.0))
        .collect();
    candidates.sort_unstable_by(|a, b| b.cmp(a));

    let mut placed = 0;
    let mut cursor = 0;
    for level in (0..tree.levels()).rev() {
        let idx = tree.bucket_index(leaf, level);
        while !tree.bucket(idx).is_full() && cursor < candidates.len() {
            let (common, addr) = candidates[cursor];
            if common < level {
                break; // everything left is shallower-only
            }
            cursor += 1;
            let block = stash
                .take(proram_mem::BlockAddr(addr))
                .expect("candidate vanished from stash");
            debug_assert!(tree.common_level(block.leaf, leaf) >= level);
            tree.bucket_mut(idx).push(block);
            placed += 1;
        }
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use proram_mem::BlockAddr;

    fn setup(levels: u32, z: usize) -> (OramTree, Stash) {
        (OramTree::new(levels, z), Stash::new(1000))
    }

    #[test]
    fn read_path_empties_buckets() {
        let (mut tree, mut stash) = setup(4, 2);
        let idx = tree.bucket_index(Leaf(3), 3);
        tree.bucket_mut(idx)
            .push(Block::opaque(BlockAddr(1), Leaf(3)));
        let root = tree.bucket_index(Leaf(3), 0);
        tree.bucket_mut(root)
            .push(Block::opaque(BlockAddr(2), Leaf(0)));
        read_path(&mut tree, &mut stash, Leaf(3));
        assert_eq!(stash.len(), 2);
        assert_eq!(tree.occupancy(), 0);
    }

    #[test]
    fn read_path_leaves_other_paths_alone() {
        let (mut tree, mut stash) = setup(4, 2);
        let idx = tree.bucket_index(Leaf(0), 3); // leaf bucket of path 0
        tree.bucket_mut(idx)
            .push(Block::opaque(BlockAddr(1), Leaf(0)));
        read_path(&mut tree, &mut stash, Leaf(7));
        assert_eq!(stash.len(), 0);
        assert_eq!(tree.occupancy(), 1);
    }

    #[test]
    fn write_path_places_block_at_its_leaf() {
        let (mut tree, mut stash) = setup(4, 2);
        stash.insert(Block::opaque(BlockAddr(1), Leaf(5)));
        let placed = write_path(&mut tree, &mut stash, Leaf(5));
        assert_eq!(placed, 1);
        assert!(stash.is_empty());
        // Greedy puts it in the deepest bucket: the leaf bucket.
        let leaf_idx = tree.bucket_index(Leaf(5), 3);
        assert_eq!(tree.bucket(leaf_idx).len(), 1);
    }

    #[test]
    fn mismatched_block_goes_to_common_ancestor() {
        let (mut tree, mut stash) = setup(4, 2);
        // Leaf 6 vs path 7: common level 2.
        stash.insert(Block::opaque(BlockAddr(1), Leaf(6)));
        write_path(&mut tree, &mut stash, Leaf(7));
        let idx = tree.bucket_index(Leaf(7), 2);
        assert_eq!(tree.bucket(idx).len(), 1);
        let leaf_idx = tree.bucket_index(Leaf(7), 3);
        assert!(tree.bucket(leaf_idx).is_empty());
    }

    #[test]
    fn totally_disjoint_block_goes_to_root_only() {
        let (mut tree, mut stash) = setup(4, 2);
        stash.insert(Block::opaque(BlockAddr(1), Leaf(0)));
        write_path(&mut tree, &mut stash, Leaf(7));
        assert_eq!(tree.bucket(0).len(), 1);
    }

    #[test]
    fn overflow_stays_in_stash() {
        let (mut tree, mut stash) = setup(3, 1); // Z = 1, 3 buckets per path
        for i in 0..5 {
            stash.insert(Block::opaque(BlockAddr(i), Leaf(3)));
        }
        let placed = write_path(&mut tree, &mut stash, Leaf(3));
        assert_eq!(placed, 3, "one block per bucket on the path");
        assert_eq!(stash.len(), 2);
    }

    #[test]
    fn deepest_eligible_blocks_win_slots() {
        let (mut tree, mut stash) = setup(4, 1);
        // Block A can go to the leaf bucket (same leaf); block B only to
        // the root (disjoint). Both must be placed.
        stash.insert(Block::opaque(BlockAddr(1), Leaf(7)));
        stash.insert(Block::opaque(BlockAddr(2), Leaf(0)));
        let placed = write_path(&mut tree, &mut stash, Leaf(7));
        assert_eq!(placed, 2);
        assert_eq!(tree.bucket(tree.bucket_index(Leaf(7), 3)).len(), 1);
        assert_eq!(tree.bucket(0).len(), 1);
    }

    #[test]
    fn read_then_write_is_stable() {
        // A full read/write cycle never loses blocks and never grows the
        // stash (everything read in can at least go back where it was).
        let (mut tree, mut stash) = setup(5, 2);
        let path = Leaf(9);
        let l4 = tree.bucket_index(path, 4);
        let l2 = tree.bucket_index(path, 2);
        tree.bucket_mut(l4)
            .push(Block::opaque(BlockAddr(1), Leaf(9)));
        tree.bucket_mut(l2)
            .push(Block::opaque(BlockAddr(2), Leaf(11)));
        read_path(&mut tree, &mut stash, path);
        assert_eq!(stash.len(), 2);
        write_path(&mut tree, &mut stash, path);
        assert_eq!(stash.len(), 0, "background-eviction guarantee");
        assert_eq!(tree.occupancy(), 2);
    }
}
