//! Path read and greedy write-back.
//!
//! Steps 2 and 5 of the Path ORAM access (paper Section 2.2): reading a
//! path moves every real block on it into the stash; writing the path back
//! greedily evicts as many stash blocks as possible, placing each block as
//! deep as its leaf mapping allows. Background eviction (Section 2.4)
//! reuses the same two operations on a random path without remapping
//! anything.
//!
//! Both operations are allocation-free on the hot path: the path-index
//! iterator owns its geometry (no collected `Vec`), bucket drains keep
//! their slot storage, and write-back bins candidates into a reusable
//! [`PathScratch`] instead of sorting a freshly allocated candidate list.

use crate::addr::Leaf;
use crate::stash::Stash;
use crate::tree::OramTree;

/// Reusable write-back scratch: one bin of candidate addresses per tree
/// level, keyed by the deepest level the candidate may occupy.
///
/// Owned by the controller (one per ORAM) so the per-level bins are
/// allocated once and reused for every path access. The counting-bin pass
/// replaces the seed implementation's per-write-back
/// `sort_unstable` over all `(common_level, addr)` pairs: binning is O(n),
/// and only each (typically tiny) bin is sorted to preserve the exact
/// deepest-first, address-descending placement order of the original.
#[derive(Debug, Clone, Default)]
pub struct PathScratch {
    /// `bins[level]` holds addresses of stash blocks whose deepest
    /// eligible level is `level`.
    bins: Vec<Vec<u64>>,
    /// Allocations avoided by reusing this scratch (one per write-back
    /// that would have built a fresh candidate `Vec`).
    reuses: u64,
}

impl PathScratch {
    /// Creates an empty scratch; bins grow on first use.
    pub fn new() -> Self {
        PathScratch::default()
    }

    /// Number of heap allocations avoided by buffer reuse so far.
    pub fn allocs_avoided(&self) -> u64 {
        self.reuses
    }
}

/// Moves every real block on the path to `leaf` into the stash.
pub fn read_path(tree: &mut OramTree, stash: &mut Stash, leaf: Leaf) {
    // The owned index iterator lets us mutate buckets mid-walk: no
    // temporary `Vec<usize>` of path indices.
    for idx in tree.path_indices(leaf) {
        for block in tree.bucket_mut(idx).drain() {
            stash.insert(block);
        }
    }
}

/// Greedily writes stash blocks back onto the path to `leaf`.
///
/// Each stash block may be placed in any bucket on the path no deeper than
/// the deepest level its own leaf shares with `leaf`; the greedy pass
/// fills from the leaf level upward, deepest-eligible blocks first —
/// the standard Path ORAM eviction. Returns the number of blocks placed.
///
/// Behavior (which blocks land in which buckets, and in what slot order)
/// is identical to sorting all candidates by `(common_level, addr)`
/// descending; see [`PathScratch`].
pub fn write_path_with(
    tree: &mut OramTree,
    stash: &mut Stash,
    leaf: Leaf,
    scratch: &mut PathScratch,
) -> usize {
    let levels = tree.levels() as usize;
    if scratch.bins.len() < levels {
        scratch.bins.resize_with(levels, Vec::new);
    }
    scratch.reuses += 1;
    for bin in &mut scratch.bins {
        bin.clear();
    }
    // Counting-bin pass: group candidates by the deepest level they can
    // occupy on this path.
    for b in stash.iter() {
        scratch.bins[tree.common_level(b.leaf, leaf) as usize].push(b.addr.0);
    }
    // Within a bin, match the seed implementation's address-descending
    // tiebreak so placement is bit-identical.
    for bin in &mut scratch.bins[..levels] {
        bin.sort_unstable_by(|a, b| b.cmp(a));
    }

    let mut placed = 0;
    // Cursor over the bins from deepest to shallowest: the concatenation
    // (bins[levels-1], ..., bins[0]) is exactly the old sorted candidate
    // order.
    let mut bin = levels; // bins[bin - 1] is the current bin
    let mut off = 0;
    for level in (0..levels).rev() {
        let idx = tree.bucket_index(leaf, level as u32);
        while !tree.bucket(idx).is_full() {
            // Advance to the next non-exhausted bin.
            while bin > 0 && off >= scratch.bins[bin - 1].len() {
                bin -= 1;
                off = 0;
            }
            if bin == 0 {
                return placed; // all candidates consumed
            }
            let common = bin - 1;
            if common < level {
                break; // everything left is shallower-only
            }
            let addr = scratch.bins[common][off];
            off += 1;
            let block = stash
                .take(proram_mem::BlockAddr(addr))
                .expect("candidate vanished from stash");
            debug_assert!(tree.common_level(block.leaf, leaf) as usize >= level);
            tree.bucket_mut(idx).push(block);
            placed += 1;
        }
    }
    placed
}

/// [`write_path_with`] with a throwaway scratch, for tests and callers
/// outside the hot path.
pub fn write_path(tree: &mut OramTree, stash: &mut Stash, leaf: Leaf) -> usize {
    write_path_with(tree, stash, leaf, &mut PathScratch::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use proram_mem::BlockAddr;

    fn setup(levels: u32, z: usize) -> (OramTree, Stash) {
        (OramTree::new(levels, z), Stash::new(1000))
    }

    #[test]
    fn read_path_empties_buckets() {
        let (mut tree, mut stash) = setup(4, 2);
        let idx = tree.bucket_index(Leaf(3), 3);
        tree.bucket_mut(idx)
            .push(Block::opaque(BlockAddr(1), Leaf(3)));
        let root = tree.bucket_index(Leaf(3), 0);
        tree.bucket_mut(root)
            .push(Block::opaque(BlockAddr(2), Leaf(0)));
        read_path(&mut tree, &mut stash, Leaf(3));
        assert_eq!(stash.len(), 2);
        assert_eq!(tree.occupancy(), 0);
    }

    #[test]
    fn read_path_leaves_other_paths_alone() {
        let (mut tree, mut stash) = setup(4, 2);
        let idx = tree.bucket_index(Leaf(0), 3); // leaf bucket of path 0
        tree.bucket_mut(idx)
            .push(Block::opaque(BlockAddr(1), Leaf(0)));
        read_path(&mut tree, &mut stash, Leaf(7));
        assert_eq!(stash.len(), 0);
        assert_eq!(tree.occupancy(), 1);
    }

    #[test]
    fn write_path_places_block_at_its_leaf() {
        let (mut tree, mut stash) = setup(4, 2);
        stash.insert(Block::opaque(BlockAddr(1), Leaf(5)));
        let placed = write_path(&mut tree, &mut stash, Leaf(5));
        assert_eq!(placed, 1);
        assert!(stash.is_empty());
        // Greedy puts it in the deepest bucket: the leaf bucket.
        let leaf_idx = tree.bucket_index(Leaf(5), 3);
        assert_eq!(tree.bucket(leaf_idx).len(), 1);
    }

    #[test]
    fn mismatched_block_goes_to_common_ancestor() {
        let (mut tree, mut stash) = setup(4, 2);
        // Leaf 6 vs path 7: common level 2.
        stash.insert(Block::opaque(BlockAddr(1), Leaf(6)));
        write_path(&mut tree, &mut stash, Leaf(7));
        let idx = tree.bucket_index(Leaf(7), 2);
        assert_eq!(tree.bucket(idx).len(), 1);
        let leaf_idx = tree.bucket_index(Leaf(7), 3);
        assert!(tree.bucket(leaf_idx).is_empty());
    }

    #[test]
    fn totally_disjoint_block_goes_to_root_only() {
        let (mut tree, mut stash) = setup(4, 2);
        stash.insert(Block::opaque(BlockAddr(1), Leaf(0)));
        write_path(&mut tree, &mut stash, Leaf(7));
        assert_eq!(tree.bucket(0).len(), 1);
    }

    #[test]
    fn overflow_stays_in_stash() {
        let (mut tree, mut stash) = setup(3, 1); // Z = 1, 3 buckets per path
        for i in 0..5 {
            stash.insert(Block::opaque(BlockAddr(i), Leaf(3)));
        }
        let placed = write_path(&mut tree, &mut stash, Leaf(3));
        assert_eq!(placed, 3, "one block per bucket on the path");
        assert_eq!(stash.len(), 2);
    }

    #[test]
    fn deepest_eligible_blocks_win_slots() {
        let (mut tree, mut stash) = setup(4, 1);
        // Block A can go to the leaf bucket (same leaf); block B only to
        // the root (disjoint). Both must be placed.
        stash.insert(Block::opaque(BlockAddr(1), Leaf(7)));
        stash.insert(Block::opaque(BlockAddr(2), Leaf(0)));
        let placed = write_path(&mut tree, &mut stash, Leaf(7));
        assert_eq!(placed, 2);
        assert_eq!(tree.bucket(tree.bucket_index(Leaf(7), 3)).len(), 1);
        assert_eq!(tree.bucket(0).len(), 1);
    }

    #[test]
    fn read_then_write_is_stable() {
        // A full read/write cycle never loses blocks and never grows the
        // stash (everything read in can at least go back where it was).
        let (mut tree, mut stash) = setup(5, 2);
        let path = Leaf(9);
        let l4 = tree.bucket_index(path, 4);
        let l2 = tree.bucket_index(path, 2);
        tree.bucket_mut(l4)
            .push(Block::opaque(BlockAddr(1), Leaf(9)));
        tree.bucket_mut(l2)
            .push(Block::opaque(BlockAddr(2), Leaf(11)));
        read_path(&mut tree, &mut stash, path);
        assert_eq!(stash.len(), 2);
        write_path(&mut tree, &mut stash, path);
        assert_eq!(stash.len(), 0, "background-eviction guarantee");
        assert_eq!(tree.occupancy(), 2);
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        // A long random read/write sequence through one shared scratch
        // must produce the same tree state as per-call scratches.
        use proram_stats::{Rng64, Xoshiro256};
        let run = |shared: bool| {
            let (mut tree, mut stash) = setup(6, 2);
            let mut rng = Xoshiro256::seed_from(77);
            for a in 0..40u64 {
                stash.insert(Block::opaque(BlockAddr(a), Leaf(rng.next_below(32) as u32)));
            }
            let mut scratch = PathScratch::new();
            for _ in 0..100 {
                let leaf = Leaf(rng.next_below(32) as u32);
                read_path(&mut tree, &mut stash, leaf);
                if shared {
                    write_path_with(&mut tree, &mut stash, leaf, &mut scratch);
                } else {
                    write_path(&mut tree, &mut stash, leaf);
                }
            }
            let contents: Vec<Vec<u64>> = (0..tree.num_buckets())
                .map(|i| tree.bucket(i).iter().map(|b| b.addr.0).collect())
                .collect();
            contents
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn scratch_counts_reuses() {
        let (mut tree, mut stash) = setup(4, 2);
        let mut scratch = PathScratch::new();
        stash.insert(Block::opaque(BlockAddr(1), Leaf(5)));
        write_path_with(&mut tree, &mut stash, Leaf(5), &mut scratch);
        read_path(&mut tree, &mut stash, Leaf(5));
        write_path_with(&mut tree, &mut stash, Leaf(5), &mut scratch);
        assert_eq!(scratch.allocs_avoided(), 2);
    }
}
