//! ORAM configuration: the [`OramConfig`] struct, its validating
//! [`OramConfigBuilder`] and the typed [`ConfigError`].

use crate::addr::AddressSpace;
use crate::fault::FaultConfig;
use crate::timing::OramTiming;
use std::fmt;

/// A rejected [`OramConfig`]: which field is inconsistent and why.
///
/// Returned by [`OramConfig::check`] and [`OramConfigBuilder::build`];
/// the [`fmt::Display`] text is the same message the panicking
/// [`OramConfig::validate`] uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: &'static str,
    message: String,
}

impl ConfigError {
    fn new(field: &'static str, message: impl Into<String>) -> Self {
        ConfigError {
            field,
            message: message.into(),
        }
    }

    /// Name of the [`OramConfig`] field the error concerns.
    pub fn field(&self) -> &'static str {
        self.field
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of a [`crate::PathOram`] instance.
///
/// Defaults follow the paper's Table 1, scaled down from the 8 GB /
/// 2^26-block tree to a 2^20-block tree so experiments run at laptop
/// scale. The timing formula is unchanged; see `DESIGN.md` §7.
///
/// # Examples
///
/// ```
/// use proram_oram::OramConfig;
///
/// let cfg = OramConfig::default();
/// assert_eq!(cfg.z, 3);
/// assert_eq!(cfg.stash_limit, 100);
/// assert!(cfg.tree_levels() >= 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OramConfig {
    /// Number of data blocks stored (paper: 2^26; scaled default 2^20).
    pub num_data_blocks: u64,
    /// Blocks per bucket (paper default 3).
    pub z: usize,
    /// Position-map entries per posmap block (paper: 32 entries of 25+2
    /// bits in a 128-byte block).
    pub entries_per_posmap_block: u64,
    /// Number of posmap hierarchies stored in the tree. The paper's
    /// "Number of ORAM hierarchies = 4" is data + 3 posmap levels with
    /// the smallest level's labels held on-chip; here that corresponds to
    /// `on_tree_hierarchies = 3` minus however many fit on-chip — the
    /// constructor clamps so the on-chip table stays small.
    pub on_tree_hierarchies: u8,
    /// Stash occupancy at which background eviction kicks in (paper
    /// default 100).
    pub stash_limit: usize,
    /// PLB capacity in posmap blocks.
    pub plb_blocks: usize,
    /// Override for the number of tree levels; `None` sizes the tree so
    /// total blocks occupy about a third of the slots (Z=3).
    pub levels_override: Option<u32>,
    /// Use a tree one level shorter than the default sizing, doubling
    /// occupancy (~2/3 of slots at Z=3). Denser trees shorten paths but
    /// raise background-eviction pressure — the trade-off explored in
    /// \[25\]. Ignored when `levels_override` is set.
    pub dense_tree: bool,
    /// Number of levels at the top of the tree held in on-chip SRAM
    /// (*treetop caching*, part of the design space of the paper's
    /// baseline \[25\]). Cached levels cost no DRAM traffic on a path
    /// access; level `k` needs `(2^k - 1) * Z` on-chip block slots, so
    /// only a handful of levels are realistic.
    pub treetop_levels: u32,
    /// Physical arrangement of the off-chip buckets in the encrypted
    /// store. [`crate::TreeLayout::Flat`] (the default) keeps heap order
    /// and is byte-identical to the pre-layout goldens;
    /// [`crate::TreeLayout::SubtreePacked`] packs subtrees contiguously for
    /// DRAM-row / host-cache locality. Purely a physical-address choice:
    /// every logical observable is identical across layouts.
    pub layout: crate::layout::TreeLayout,
    /// Timing model.
    pub timing: OramTiming,
    /// Keep and verify real payload bytes and an encrypted DRAM image.
    /// Functional/crypto tests and examples only — costs memory and time.
    pub store_payloads: bool,
    /// With `store_payloads`, re-read and authenticate the encrypted image
    /// on every path read and cross-check it against the logical tree.
    /// Purely an internal consistency check — it draws no randomness and
    /// changes no state, so results are identical either way. On by
    /// default in [`OramConfig::small_for_tests`], off elsewhere: the
    /// per-access decrypt-and-MAC of a full path roughly doubles hot-path
    /// cost. Ignored without `store_payloads`.
    pub verify_image: bool,
    /// Capacity of the adversary-trace recorder (0 = disabled).
    pub trace_capacity: usize,
    /// Initial super-block grouping: every aligned group of this many data
    /// blocks starts mapped to one common leaf. `1` disables grouping;
    /// the *static super block* scheme of paper Section 3.3 sets this to
    /// its super-block size ("In the initialization stage of Path ORAM,
    /// blocks are merged into super blocks").
    pub init_group_size: u64,
    /// Seeded fault injection on the encrypted image (requires
    /// `store_payloads`). `None` disables the injector entirely; `Some`
    /// with all rates zero installs it silently — the injector draws from
    /// its own RNG, so observable behavior is unchanged. Enabling faults
    /// also enables per-path image verification (detection needs reads to
    /// be authenticated) and typed-error recovery instead of panics.
    pub fault: Option<FaultConfig>,
    /// Hard stash capacity: if set, exceeding it after the bounded
    /// background-eviction drain triggers *emergency eviction* (a degraded
    /// mode counted in [`proram_mem::FaultStats`]) and, only if that also
    /// fails, fail-stop via [`crate::OramError::StashOverflow`]. `None`
    /// keeps the legacy behavior (soft `stash_limit` only).
    pub stash_hard_capacity: Option<usize>,
    /// Scrub period in path accesses: every `scrub_interval` data-path
    /// reads, re-authenticate the whole encrypted image
    /// ([`crate::EncryptedStore::verify_all`]) and repair what it flags.
    /// `0` disables scrubbing. Requires `store_payloads`.
    pub scrub_interval: u64,
    /// Bank-aware fetch pipeline: when set, the per-path fetch cost is
    /// computed by scheduling the path's bucket reads on a
    /// [`proram_mem::BankScheduler`] with this configuration (overlapping
    /// row-access latencies across banks) instead of the lump-sum
    /// [`OramTiming::path_cycles`] charge. `None` keeps the lump-sum
    /// model — behavior and timing are then bit-identical to the
    /// pre-pipeline controller. Purely a timing-model choice: the access
    /// trace, stash behavior and statistics are unaffected.
    pub pipeline: Option<proram_mem::BankConfig>,
    /// Threads applied to per-bucket crypto (slot MACs + encryption) on
    /// the encrypted image's path reads and write-backs: `0` (and `1`)
    /// run serially; `n >= 2` attaches a persistent worker pool of
    /// `n - 1` threads that the controller thread joins. The image,
    /// statistics and adversary trace are **byte-identical at every
    /// setting** — results merge in bucket order and workers are pure
    /// (DESIGN.md section 14). Requires `store_payloads` to matter;
    /// without an image there is no crypto to parallelize.
    pub crypto_threads: usize,
    /// Pick the crypto thread count automatically at construction:
    /// pooled dispatch is only attached when the host reports more than
    /// one core **and** the off-chip per-path ciphertext is large enough
    /// to amortize dispatch overhead (BENCH_parallel.json measured 0.39x
    /// at 2 threads on a 1-core box). Requires `crypto_threads == 0`
    /// (the explicit setting always wins and stays deterministic).
    /// Because pooled and serial crypto are byte-identical by contract,
    /// auto mode never changes observable behavior — only wall-clock.
    pub crypto_threads_auto: bool,
    /// Deterministic crash injection (requires `store_payloads`): every
    /// access runs under the crash-consistent commit protocol of
    /// DESIGN.md section 15, and the configured kill point fires on its
    /// Nth crossing, unwinding the access as
    /// [`crate::OramError::Crashed`]. Recovery
    /// ([`crate::PathOram::recover`]) then rolls the journal back or
    /// replays it forward. `None` disables both injection and journaling
    /// — the hot path is byte-identical to a crash-free build. Mutually
    /// exclusive with [`OramConfig::fault`]: the injectors' accounting
    /// assumes they own the failure surface alone.
    pub crash: Option<crate::crash::CrashConfig>,
}

impl OramConfig {
    /// Scaled paper configuration with the given data-block count.
    ///
    /// # Panics
    ///
    /// Panics if `num_data_blocks` is zero.
    pub fn scaled(num_data_blocks: u64) -> Self {
        assert!(num_data_blocks > 0, "ORAM needs at least one data block");
        OramConfig {
            num_data_blocks,
            ..OramConfig::default()
        }
    }

    /// A tiny functional configuration for unit tests: payload storage and
    /// trace recording on, small posmap fanout so recursion is exercised.
    pub fn small_for_tests(num_data_blocks: u64) -> Self {
        OramConfig {
            num_data_blocks,
            z: 4,
            entries_per_posmap_block: 8,
            on_tree_hierarchies: 2,
            stash_limit: 50,
            plb_blocks: 8,
            levels_override: None,
            timing: OramTiming::default(),
            store_payloads: true,
            verify_image: true,
            trace_capacity: 1 << 16,
            init_group_size: 1,
            dense_tree: false,
            treetop_levels: 0,
            layout: crate::layout::TreeLayout::Flat,
            fault: None,
            stash_hard_capacity: None,
            scrub_interval: 0,
            pipeline: None,
            crypto_threads: 0,
            crypto_threads_auto: false,
            crash: None,
        }
    }

    /// The unified address-space layout implied by this configuration.
    pub fn address_space(&self) -> AddressSpace {
        AddressSpace::new(
            self.num_data_blocks,
            self.entries_per_posmap_block,
            self.on_tree_hierarchies,
        )
    }

    /// Number of tree levels: the override, or a tree whose slot count is
    /// roughly `3x` the block count (leaves = next power of two of half
    /// the blocks), matching the occupancy regime of the paper's baseline
    /// \[25\].
    pub fn tree_levels(&self) -> u32 {
        if let Some(l) = self.levels_override {
            return l;
        }
        let total = self.address_space().total_tree_blocks();
        let half = (total / 2).max(2);
        // Round *down* to a power of two: with Z = 3 this puts occupancy a
        // bit above 1/3 of the slots, the regime of the paper's baseline.
        let leaves = 1u64 << (63 - half.leading_zeros());
        let levels = leaves.trailing_zeros() + 1;
        if self.dense_tree {
            (levels - 1).max(2)
        } else {
            levels
        }
    }

    /// Number of tree levels that actually move on the DRAM bus per path
    /// access (total levels minus the treetop-cached ones, at least 1).
    pub fn off_chip_levels(&self) -> u32 {
        self.tree_levels()
            .saturating_sub(self.treetop_levels)
            .max(1)
    }

    /// Cycles for one path access under this configuration (treetop-cached
    /// levels are on-chip and free).
    pub fn path_cycles(&self) -> u64 {
        self.timing.path_cycles(self.off_chip_levels(), self.z)
    }

    /// Checks internal consistency, reporting the first inconsistency as
    /// a typed [`ConfigError`].
    ///
    /// This is the canonical validation path; the panicking
    /// [`OramConfig::validate`] and [`OramConfigBuilder::build`] both
    /// delegate here.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when a field is out of range on its own
    /// (zero blocks, zero `z`, non-power-of-two pipeline banks, ...) or
    /// the fields are jointly inconsistent (tree too small for the
    /// blocks, treetop cache covering the whole tree, fault injection
    /// without a stored image, ...).
    ///
    /// # Panics
    ///
    /// Panics if an attached [`FaultConfig`] is itself invalid (its rates
    /// are probabilities validated by [`FaultConfig::validate`]).
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.num_data_blocks == 0 {
            return Err(ConfigError::new(
                "num_data_blocks",
                "ORAM needs at least one data block",
            ));
        }
        if self.z == 0 {
            return Err(ConfigError::new("z", "Z must be positive"));
        }
        if self.entries_per_posmap_block < 2 {
            return Err(ConfigError::new(
                "entries_per_posmap_block",
                "posmap fanout must be >= 2",
            ));
        }
        if self.stash_limit == 0 {
            return Err(ConfigError::new(
                "stash_limit",
                "stash limit must be positive",
            ));
        }
        if self.plb_blocks == 0 {
            return Err(ConfigError::new(
                "plb_blocks",
                "PLB must hold at least one block",
            ));
        }
        if !self.init_group_size.is_power_of_two()
            || self.init_group_size > self.entries_per_posmap_block
        {
            return Err(ConfigError::new(
                "init_group_size",
                "init_group_size must be a power of two no larger than the posmap fanout",
            ));
        }
        let space = self.address_space();
        let levels = self.tree_levels();
        let slots = (1u64 << levels).saturating_sub(1) * self.z as u64;
        if space.total_tree_blocks() > slots {
            return Err(ConfigError::new(
                "num_data_blocks",
                format!(
                    "tree too small: {} blocks, {} slots",
                    space.total_tree_blocks(),
                    slots
                ),
            ));
        }
        let leaves = 1u64 << (levels - 1);
        if leaves > u64::from(u32::MAX) {
            return Err(ConfigError::new(
                "levels_override",
                "leaf labels overflow u32",
            ));
        }
        if self.treetop_levels >= levels {
            return Err(ConfigError::new(
                "treetop_levels",
                format!(
                    "treetop cache ({}) must leave at least one off-chip level: \
                     off_chip_levels() would clamp to 1 of {levels} tree levels",
                    self.treetop_levels
                ),
            ));
        }
        if self.treetop_levels > 16 {
            return Err(ConfigError::new(
                "treetop_levels",
                format!(
                    "treetop cache of {} levels needs 2^{} on-chip buckets",
                    self.treetop_levels, self.treetop_levels
                ),
            ));
        }
        if let crate::layout::TreeLayout::SubtreePacked { height } = self.layout {
            if height == 0 {
                return Err(ConfigError::new(
                    "layout",
                    "subtree-packed layout needs a height of at least 1",
                ));
            }
            let depth = self.off_chip_levels();
            if !depth.is_multiple_of(height) {
                return Err(ConfigError::new(
                    "layout",
                    format!(
                        "subtree height ({height}) must divide the off-chip depth \
                         (off_chip_levels() = {depth})"
                    ),
                ));
            }
        }
        if self.store_payloads {
            let entry_bytes = crate::storage::ENTRY_BYTES as u64;
            if self.entries_per_posmap_block * entry_bytes > u64::from(self.timing.block_bytes) {
                return Err(ConfigError::new(
                    "entries_per_posmap_block",
                    "posmap entries do not fit a serialized block; reduce entries_per_posmap_block",
                ));
            }
        }
        if let Some(fault) = &self.fault {
            if !self.store_payloads {
                return Err(ConfigError::new(
                    "fault",
                    "fault injection requires store_payloads (there is no image to corrupt otherwise)",
                ));
            }
            fault.validate();
        }
        if let Some(cap) = self.stash_hard_capacity {
            if cap < self.stash_limit {
                return Err(ConfigError::new(
                    "stash_hard_capacity",
                    format!(
                        "stash_hard_capacity ({cap}) below stash_limit ({})",
                        self.stash_limit
                    ),
                ));
            }
        }
        if self.scrub_interval != 0 && !self.store_payloads {
            return Err(ConfigError::new(
                "scrub_interval",
                "scrubbing requires store_payloads (there is no image to verify otherwise)",
            ));
        }
        if let Some(crash) = &self.crash {
            if !self.store_payloads {
                return Err(ConfigError::new(
                    "crash",
                    "crash injection requires store_payloads (the commit protocol journals the image)",
                ));
            }
            if self.fault.is_some() {
                return Err(ConfigError::new(
                    "crash",
                    "crash injection and fault injection are mutually exclusive",
                ));
            }
            if crash.point == crate::crash::KillPoint::PooledEncrypt && self.crypto_threads_auto {
                return Err(ConfigError::new(
                    "crash",
                    format!(
                        "the {} kill point needs a deterministic pool; \
                         crypto_threads_auto is machine-dependent",
                        crash.point
                    ),
                ));
            }
            if crash.point == crate::crash::KillPoint::PooledEncrypt && self.crypto_threads < 2 {
                return Err(ConfigError::new(
                    "crash",
                    format!(
                        "the {} kill point needs crypto_threads >= 2 (got {})",
                        crash.point, self.crypto_threads
                    ),
                ));
            }
            if let Err(msg) = crash.validate() {
                return Err(ConfigError::new("crash", msg));
            }
        }
        if self.crypto_threads > 256 {
            return Err(ConfigError::new(
                "crypto_threads",
                format!(
                    "crypto_threads ({}) exceeds the 256-thread cap",
                    self.crypto_threads
                ),
            ));
        }
        if self.crypto_threads_auto && self.crypto_threads != 0 {
            return Err(ConfigError::new(
                "crypto_threads_auto",
                format!(
                    "crypto_threads_auto replaces an explicit thread count; \
                     set crypto_threads to 0 (got {})",
                    self.crypto_threads
                ),
            ));
        }
        if let Some(bank) = &self.pipeline {
            if bank.banks == 0 {
                return Err(ConfigError::new(
                    "pipeline",
                    "pipeline needs at least one bank",
                ));
            }
            if !bank.banks.is_power_of_two() {
                return Err(ConfigError::new(
                    "pipeline",
                    format!(
                        "pipeline bank count must be a power of two (got {})",
                        bank.banks
                    ),
                ));
            }
            if bank.bytes_per_cycle == 0 {
                return Err(ConfigError::new(
                    "pipeline",
                    "pipeline bus bandwidth must be positive",
                ));
            }
        }
        Ok(())
    }

    /// Checks internal consistency, panicking on the first inconsistency.
    ///
    /// Thin wrapper over [`OramConfig::check`] for construction paths
    /// that treat a bad configuration as a programming error (the
    /// constructors call this).
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`]'s message when the tree cannot
    /// hold the blocks, payload storage is requested with a posmap fanout
    /// too large to serialize into one block, or any other field is
    /// inconsistent.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// A validating builder seeded with [`OramConfig::default`].
    pub fn builder() -> OramConfigBuilder {
        OramConfigBuilder::default()
    }

    /// A builder seeded with this configuration, for deriving variants.
    pub fn to_builder(&self) -> OramConfigBuilder {
        OramConfigBuilder { cfg: self.clone() }
    }
}

/// Builder for [`OramConfig`] whose [`OramConfigBuilder::build`]
/// validates the whole configuration before handing it out.
///
/// Struct-literal construction stays possible (all fields are public and
/// `Default` works), but the builder is the canonical public surface: it
/// cannot hand back a configuration that a constructor would reject.
///
/// # Examples
///
/// ```
/// use proram_oram::OramConfig;
///
/// let cfg = OramConfig::builder()
///     .num_data_blocks(1 << 14)
///     .stash_limit(80)
///     .treetop_levels(2)
///     .build()
///     .expect("consistent configuration");
/// assert_eq!(cfg.num_data_blocks, 1 << 14);
///
/// let err = OramConfig::builder().num_data_blocks(0).build().unwrap_err();
/// assert_eq!(err.field(), "num_data_blocks");
/// ```
#[derive(Debug, Clone, Default)]
pub struct OramConfigBuilder {
    cfg: OramConfig,
}

impl OramConfigBuilder {
    /// Sets the number of data blocks stored.
    pub fn num_data_blocks(mut self, n: u64) -> Self {
        self.cfg.num_data_blocks = n;
        self
    }

    /// Sets the blocks-per-bucket parameter `Z`.
    pub fn z(mut self, z: usize) -> Self {
        self.cfg.z = z;
        self
    }

    /// Sets the position-map fanout (entries per posmap block).
    pub fn entries_per_posmap_block(mut self, entries: u64) -> Self {
        self.cfg.entries_per_posmap_block = entries;
        self
    }

    /// Sets the number of posmap hierarchies stored in the tree.
    pub fn on_tree_hierarchies(mut self, h: u8) -> Self {
        self.cfg.on_tree_hierarchies = h;
        self
    }

    /// Sets the soft stash limit that triggers background eviction.
    pub fn stash_limit(mut self, limit: usize) -> Self {
        self.cfg.stash_limit = limit;
        self
    }

    /// Sets the PLB capacity in posmap blocks.
    pub fn plb_blocks(mut self, blocks: usize) -> Self {
        self.cfg.plb_blocks = blocks;
        self
    }

    /// Overrides the number of tree levels.
    pub fn levels_override(mut self, levels: u32) -> Self {
        self.cfg.levels_override = Some(levels);
        self
    }

    /// Uses a tree one level shorter than the default sizing.
    pub fn dense_tree(mut self, dense: bool) -> Self {
        self.cfg.dense_tree = dense;
        self
    }

    /// Caches the top `levels` tree levels on-chip.
    pub fn treetop_levels(mut self, levels: u32) -> Self {
        self.cfg.treetop_levels = levels;
        self
    }

    /// Sets the physical arrangement of the off-chip bucket store.
    pub fn tree_layout(mut self, layout: crate::layout::TreeLayout) -> Self {
        self.cfg.layout = layout;
        self
    }

    /// Sets the timing model.
    pub fn timing(mut self, timing: OramTiming) -> Self {
        self.cfg.timing = timing;
        self
    }

    /// Keeps and verifies real payload bytes and an encrypted image.
    pub fn store_payloads(mut self, on: bool) -> Self {
        self.cfg.store_payloads = on;
        self
    }

    /// Re-authenticates the encrypted image on every path read.
    pub fn verify_image(mut self, on: bool) -> Self {
        self.cfg.verify_image = on;
        self
    }

    /// Sets the adversary-trace recorder capacity (0 disables it).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.cfg.trace_capacity = capacity;
        self
    }

    /// Sets the initial super-block grouping size.
    pub fn init_group_size(mut self, size: u64) -> Self {
        self.cfg.init_group_size = size;
        self
    }

    /// Installs seeded fault injection on the encrypted image.
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.cfg.fault = Some(fault);
        self
    }

    /// Sets the hard stash capacity (emergency eviction, then fail-stop).
    pub fn stash_hard_capacity(mut self, capacity: usize) -> Self {
        self.cfg.stash_hard_capacity = Some(capacity);
        self
    }

    /// Sets the scrub period in path accesses (0 disables scrubbing).
    pub fn scrub_interval(mut self, interval: u64) -> Self {
        self.cfg.scrub_interval = interval;
        self
    }

    /// Enables the bank-aware fetch pipeline with this bank layout.
    pub fn pipeline(mut self, bank: proram_mem::BankConfig) -> Self {
        self.cfg.pipeline = Some(bank);
        self
    }

    /// Applies `n` threads to per-bucket crypto on the encrypted image
    /// (`0` = serial; results are byte-identical at every setting).
    pub fn crypto_threads(mut self, n: usize) -> Self {
        self.cfg.crypto_threads = n;
        self
    }

    /// Picks the crypto thread count automatically at construction
    /// (serial on small per-path payloads or single-core hosts; see
    /// [`OramConfig::crypto_threads_auto`]).
    pub fn crypto_threads_auto(mut self, on: bool) -> Self {
        self.cfg.crypto_threads_auto = on;
        self
    }

    /// Arms deterministic crash injection: the kill point fires on its
    /// configured crossing and every access runs under the commit
    /// protocol (DESIGN.md section 15).
    pub fn crash(mut self, crash: crate::crash::CrashConfig) -> Self {
        self.cfg.crash = Some(crash);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by [`OramConfig::check`]
    /// — zero-block trees, bank counts that are not powers of two,
    /// treetop caches covering the whole tree, fault injection or
    /// scrubbing without a stored image, and the other field
    /// inconsistencies documented there.
    pub fn build(self) -> Result<OramConfig, ConfigError> {
        self.cfg.check()?;
        Ok(self.cfg)
    }
}

impl Default for OramConfig {
    fn default() -> Self {
        OramConfig {
            num_data_blocks: 1 << 20,
            z: 3,
            entries_per_posmap_block: 32,
            on_tree_hierarchies: 2,
            stash_limit: 100,
            plb_blocks: 64,
            levels_override: None,
            timing: OramTiming::paper_calibrated(),
            store_payloads: false,
            verify_image: false,
            trace_capacity: 0,
            init_group_size: 1,
            dense_tree: false,
            treetop_levels: 0,
            layout: crate::layout::TreeLayout::Flat,
            fault: None,
            stash_hard_capacity: None,
            scrub_interval: 0,
            pipeline: None,
            crypto_threads: 0,
            crypto_threads_auto: false,
            crash: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tree_geometry() {
        let cfg = OramConfig::default();
        // 2^20 data + 2^15 + 2^10 posmap blocks => leaves = 2^19, 20 levels.
        assert_eq!(cfg.tree_levels(), 20);
        cfg.validate();
    }

    #[test]
    fn small_config_validates() {
        OramConfig::small_for_tests(256).validate();
    }

    #[test]
    fn dense_tree_drops_one_level() {
        let sparse = OramConfig::default();
        let dense = OramConfig {
            dense_tree: true,
            ..OramConfig::default()
        };
        assert_eq!(dense.tree_levels(), sparse.tree_levels() - 1);
        dense.validate();
    }

    #[test]
    fn levels_override_respected() {
        let cfg = OramConfig {
            levels_override: Some(22),
            ..OramConfig::default()
        };
        assert_eq!(cfg.tree_levels(), 22);
    }

    #[test]
    #[should_panic(expected = "tree too small")]
    fn undersized_tree_rejected() {
        let cfg = OramConfig {
            levels_override: Some(5),
            ..OramConfig::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "posmap entries do not fit")]
    fn oversized_posmap_rejected_with_payloads() {
        let cfg = OramConfig {
            entries_per_posmap_block: 64,
            store_payloads: true,
            ..OramConfig::small_for_tests(1 << 10)
        };
        cfg.validate();
    }

    #[test]
    fn path_cycles_positive() {
        assert!(OramConfig::default().path_cycles() > 1000);
    }

    #[test]
    fn treetop_caching_shortens_the_paid_path() {
        let plain = OramConfig::default();
        let cached = OramConfig {
            treetop_levels: 4,
            ..OramConfig::default()
        };
        assert_eq!(cached.off_chip_levels(), plain.tree_levels() - 4);
        assert!(cached.path_cycles() < plain.path_cycles());
        cached.validate();
    }

    #[test]
    #[should_panic(expected = "at least one off-chip level")]
    fn treetop_covering_whole_tree_rejected() {
        let cfg = OramConfig {
            treetop_levels: 64,
            ..OramConfig::small_for_tests(64)
        };
        cfg.validate();
    }

    #[test]
    fn subtree_layout_height_must_divide_off_chip_depth() {
        use crate::layout::TreeLayout;
        // small_for_tests(256) builds an 8-level tree; with treetop 2 the
        // off-chip depth is 6.
        let base = OramConfig {
            treetop_levels: 2,
            ..OramConfig::small_for_tests(256)
        };
        for height in [1, 2, 3, 6] {
            OramConfig {
                layout: TreeLayout::SubtreePacked { height },
                ..base.clone()
            }
            .validate();
        }
        let err = OramConfig {
            layout: TreeLayout::SubtreePacked { height: 4 },
            ..base.clone()
        }
        .check()
        .unwrap_err();
        assert_eq!(err.field(), "layout");
        assert!(err.to_string().contains("off_chip_levels() = 6"), "{err}");
        let err = OramConfig {
            layout: TreeLayout::SubtreePacked { height: 0 },
            ..base
        }
        .check()
        .unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
    }

    #[test]
    fn treetop_bound_error_references_off_chip_levels() {
        let err = OramConfig {
            treetop_levels: 64,
            ..OramConfig::small_for_tests(64)
        }
        .check()
        .unwrap_err();
        assert!(err.to_string().contains("off_chip_levels()"), "{err}");
    }

    #[test]
    fn crypto_threads_auto_excludes_explicit_counts() {
        let base = OramConfig::small_for_tests(256);
        base.to_builder()
            .crypto_threads_auto(true)
            .build()
            .expect("auto with crypto_threads 0 is fine");
        let err = base
            .to_builder()
            .crypto_threads(2)
            .crypto_threads_auto(true)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "crypto_threads_auto");
        assert!(err.to_string().contains("set crypto_threads to 0"), "{err}");
    }

    #[test]
    fn crypto_threads_auto_rejects_pooled_encrypt_kills() {
        use crate::crash::{CrashConfig, KillPoint};
        let err = OramConfig {
            crash: Some(CrashConfig::first(KillPoint::PooledEncrypt)),
            crypto_threads_auto: true,
            ..OramConfig::small_for_tests(256)
        }
        .check()
        .unwrap_err();
        assert!(err.to_string().contains("machine-dependent"), "{err}");
    }

    #[test]
    fn fault_injection_validates_with_payloads() {
        let cfg = OramConfig {
            fault: Some(FaultConfig::silent(1)),
            stash_hard_capacity: Some(64),
            scrub_interval: 100,
            ..OramConfig::small_for_tests(256)
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "fault injection requires store_payloads")]
    fn fault_injection_without_payloads_rejected() {
        let cfg = OramConfig {
            fault: Some(FaultConfig::silent(1)),
            ..OramConfig::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "below stash_limit")]
    fn hard_capacity_below_soft_limit_rejected() {
        let cfg = OramConfig {
            stash_hard_capacity: Some(10),
            ..OramConfig::small_for_tests(256)
        };
        cfg.validate();
    }

    #[test]
    fn crash_injection_validation_gates() {
        use crate::crash::{CrashConfig, KillPoint};
        // Without a stored image there is nothing to journal.
        let err = OramConfig::builder()
            .crash(CrashConfig::first(KillPoint::WriteBack))
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "crash");
        assert!(err.to_string().contains("requires store_payloads"), "{err}");
        // Crash and fault injection own the failure surface exclusively.
        let err = OramConfig {
            crash: Some(CrashConfig::first(KillPoint::WriteBack)),
            fault: Some(FaultConfig::silent(1)),
            ..OramConfig::small_for_tests(256)
        }
        .check()
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
        // PooledEncrypt can only fire inside an actual worker pool.
        let err = OramConfig {
            crash: Some(CrashConfig::first(KillPoint::PooledEncrypt)),
            ..OramConfig::small_for_tests(256)
        }
        .check()
        .unwrap_err();
        assert!(err.to_string().contains("crypto_threads >= 2"), "{err}");
        // Crossings are 1-based.
        let err = OramConfig {
            crash: Some(CrashConfig::at(KillPoint::WriteBack, 0)),
            ..OramConfig::small_for_tests(256)
        }
        .check()
        .unwrap_err();
        assert_eq!(err.field(), "crash");
        // And the well-formed variants pass.
        OramConfig {
            crash: Some(CrashConfig::at(KillPoint::MidJournal, 3)),
            ..OramConfig::small_for_tests(256)
        }
        .validate();
        OramConfig {
            crash: Some(CrashConfig::first(KillPoint::PooledEncrypt)),
            crypto_threads: 3,
            ..OramConfig::small_for_tests(256)
        }
        .validate();
    }

    #[test]
    fn scaled_changes_only_size() {
        let cfg = OramConfig::scaled(1 << 16);
        assert_eq!(cfg.num_data_blocks, 1 << 16);
        assert_eq!(cfg.z, 3);
        cfg.validate();
    }

    #[test]
    fn builder_round_trips_the_default() {
        let built = OramConfig::builder().build().expect("default is valid");
        assert_eq!(built, OramConfig::default());
    }

    #[test]
    fn builder_sets_every_field_it_names() {
        let cfg = OramConfig::builder()
            .num_data_blocks(1 << 12)
            .z(4)
            .entries_per_posmap_block(8)
            .on_tree_hierarchies(2)
            .stash_limit(50)
            .plb_blocks(8)
            .dense_tree(false)
            .treetop_levels(1)
            .tree_layout(crate::layout::TreeLayout::SubtreePacked { height: 1 })
            .store_payloads(true)
            .verify_image(true)
            .trace_capacity(1 << 10)
            .init_group_size(4)
            .stash_hard_capacity(200)
            .scrub_interval(64)
            .crypto_threads(3)
            .build()
            .expect("consistent configuration");
        assert_eq!(cfg.num_data_blocks, 1 << 12);
        assert_eq!(cfg.init_group_size, 4);
        assert_eq!(cfg.stash_hard_capacity, Some(200));
        assert_eq!(cfg.scrub_interval, 64);
        assert_eq!(cfg.crypto_threads, 3);
        assert_eq!(
            cfg.layout,
            crate::layout::TreeLayout::SubtreePacked { height: 1 }
        );
    }

    #[test]
    fn builder_rejects_absurd_crypto_threads() {
        let err = OramConfig::builder()
            .crypto_threads(1000)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "crypto_threads");
        assert!(err.to_string().contains("256-thread cap"), "{err}");
    }

    #[test]
    fn builder_rejects_zero_block_trees() {
        let err = OramConfig::builder()
            .num_data_blocks(0)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "num_data_blocks");
        assert!(err.to_string().contains("at least one data block"));
    }

    #[test]
    fn builder_rejects_non_power_of_two_banks() {
        let err = OramConfig::builder()
            .pipeline(proram_mem::BankConfig {
                banks: 3,
                ..proram_mem::BankConfig::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "pipeline");
        assert!(err.to_string().contains("power of two"), "{err}");
    }

    #[test]
    fn builder_rejects_zero_bandwidth_pipeline() {
        let err = OramConfig::builder()
            .pipeline(proram_mem::BankConfig {
                bytes_per_cycle: 0,
                ..proram_mem::BankConfig::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "pipeline");
        assert!(err.to_string().contains("bandwidth"), "{err}");
    }

    #[test]
    fn builder_rejects_incompatible_options_with_legacy_messages() {
        // check() must report the exact strings validate() panicked with,
        // so Result- and panic-based callers see one vocabulary.
        let err = OramConfig::builder()
            .fault(FaultConfig::silent(1))
            .build()
            .unwrap_err();
        assert!(err
            .to_string()
            .contains("fault injection requires store_payloads"));
        let err = OramConfig::builder()
            .num_data_blocks(256)
            .scrub_interval(10)
            .build()
            .unwrap_err();
        assert!(err
            .to_string()
            .contains("scrubbing requires store_payloads"));
        let err = OramConfig::builder().stash_limit(0).build().unwrap_err();
        assert!(err.to_string().contains("stash limit must be positive"));
    }

    #[test]
    fn to_builder_derives_variants() {
        let base = OramConfig::small_for_tests(256);
        let derived = base
            .to_builder()
            .store_payloads(false)
            .verify_image(false)
            .build()
            .expect("still consistent");
        assert_eq!(derived.num_data_blocks, base.num_data_blocks);
        assert!(!derived.store_payloads);
    }

    #[test]
    fn check_matches_validate_on_valid_configs() {
        for cfg in [
            OramConfig::default(),
            OramConfig::small_for_tests(64),
            OramConfig::scaled(1 << 10),
        ] {
            assert!(cfg.check().is_ok());
            cfg.validate();
        }
    }
}
