//! The position-map lookaside buffer (PLB).
//!
//! The unified baseline "caches position map ORAM blocks to exploit
//! locality (similar to the TLB exploiting locality in page tables)"
//! (paper Section 2.3). PLB-resident posmap blocks are on-chip: reading or
//! updating their entries costs no tree access. On a miss the controller
//! fetches the block with a real ORAM access and inserts it here; the LRU
//! victim returns to the stash.

use crate::block::Block;
use proram_mem::BlockAddr;
use std::collections::VecDeque;

/// A small fully-associative LRU cache of position-map blocks.
///
/// # Examples
///
/// ```
/// use proram_oram::{Block, Leaf, Plb, PosEntry};
/// use proram_mem::BlockAddr;
///
/// let mut plb = Plb::new(2);
/// let pm = Block::posmap(BlockAddr(100), Leaf(0), vec![PosEntry::new(Leaf(5))].into());
/// assert!(plb.insert(pm).is_none());
/// assert!(plb.get_mut(BlockAddr(100)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Plb {
    /// Most recently used first. A deque so the MRU insert and LRU
    /// eviction on every PLB miss are O(1) instead of shifting the whole
    /// buffer; the LRU order (and thus every eviction decision) is
    /// unchanged.
    blocks: VecDeque<Block>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Plb {
    /// Creates an empty PLB holding up to `capacity` posmap blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "PLB capacity must be positive");
        Plb {
            blocks: VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Looks up a resident posmap block, refreshing LRU and counting
    /// hit/miss statistics.
    pub fn get_mut(&mut self, addr: BlockAddr) -> Option<&mut Block> {
        match self.blocks.iter().position(|b| b.addr == addr) {
            Some(pos) => {
                self.hits += 1;
                if pos != 0 {
                    let b = self.blocks.remove(pos).expect("position just found");
                    self.blocks.push_front(b);
                }
                Some(&mut self.blocks[0])
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Tag probe without LRU or counter effects.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.blocks.iter().any(|b| b.addr == addr)
    }

    /// Borrows a resident block without touching LRU order or the hit/miss
    /// counters. Used for entry reads that follow an already-counted
    /// lookup.
    pub fn peek_mut(&mut self, addr: BlockAddr) -> Option<&mut Block> {
        self.blocks.iter_mut().find(|b| b.addr == addr)
    }

    /// Borrows a resident block immutably without statistics effects.
    pub fn peek(&self, addr: BlockAddr) -> Option<&Block> {
        self.blocks.iter().find(|b| b.addr == addr)
    }

    /// Inserts a posmap block as MRU; returns the LRU victim if full.
    ///
    /// # Panics
    ///
    /// Panics if the block is not a posmap block or is already resident.
    pub fn insert(&mut self, block: Block) -> Option<Block> {
        assert!(block.payload.is_posmap(), "PLB holds only posmap blocks");
        assert!(!self.contains(block.addr), "posmap block already in PLB");
        let victim = if self.blocks.len() == self.capacity {
            self.blocks.pop_back()
        } else {
            None
        };
        self.blocks.push_front(block);
        victim
    }

    /// Removes every resident block (used when flushing state for tests).
    pub fn drain(&mut self) -> Vec<Block> {
        std::mem::take(&mut self.blocks).into_iter().collect()
    }

    /// Iterates resident blocks in recency order, MRU first (used to
    /// serialize the PLB into a crash-consistency checkpoint).
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Leaf;
    use crate::posmap::PosEntry;

    fn pm(addr: u64) -> Block {
        Block::posmap(
            BlockAddr(addr),
            Leaf(0),
            vec![PosEntry::new(Leaf(1))].into(),
        )
    }

    #[test]
    fn insert_and_lookup() {
        let mut p = Plb::new(4);
        p.insert(pm(1));
        assert!(p.get_mut(BlockAddr(1)).is_some());
        assert!(p.get_mut(BlockAddr(2)).is_none());
        assert_eq!(p.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut p = Plb::new(2);
        p.insert(pm(1));
        p.insert(pm(2));
        p.get_mut(BlockAddr(1)); // 2 becomes LRU
        let victim = p.insert(pm(3)).expect("victim");
        assert_eq!(victim.addr, BlockAddr(2));
    }

    #[test]
    fn entries_survive_and_mutate() {
        let mut p = Plb::new(2);
        p.insert(pm(1));
        p.get_mut(BlockAddr(1)).unwrap().entries_mut()[0].leaf = Leaf(42);
        assert_eq!(p.get_mut(BlockAddr(1)).unwrap().entries()[0].leaf, Leaf(42));
    }

    #[test]
    #[should_panic(expected = "only posmap blocks")]
    fn data_block_rejected() {
        Plb::new(2).insert(Block::opaque(BlockAddr(0), Leaf(0)));
    }

    #[test]
    #[should_panic(expected = "already in PLB")]
    fn duplicate_rejected() {
        let mut p = Plb::new(2);
        p.insert(pm(1));
        p.insert(pm(1));
    }

    #[test]
    fn drain_empties() {
        let mut p = Plb::new(3);
        p.insert(pm(1));
        p.insert(pm(2));
        let all = p.drain();
        assert_eq!(all.len(), 2);
        assert!(p.is_empty());
    }

    #[test]
    fn contains_does_not_touch_stats() {
        let mut p = Plb::new(2);
        p.insert(pm(1));
        assert!(p.contains(BlockAddr(1)));
        assert_eq!(p.stats(), (0, 0));
    }
}
