//! Parallel runs must be byte-identical to serial runs.
//!
//! The scheduler hands each simulation the same `(spec, scale, config)`
//! inputs it would see serially and reassembles rows in submission
//! order, so the rendered tables cannot depend on the job count. These
//! tests render representative experiments at a tiny scale with
//! `jobs = 1` and `jobs = 4` and compare the output strings exactly.

use proram_bench::exp::{self, RunCtx};
use proram_workloads::Scale;

fn tiny() -> Scale {
    Scale {
        ops: 600,
        warmup_ops: 0,
        footprint_scale: 0.02,
        seed: 11,
    }
}

fn render(name: &str, jobs: usize) -> String {
    let runner = exp::by_name(name).expect("experiment registered");
    let tables = runner(RunCtx::with_jobs(tiny(), jobs));
    tables.iter().map(|t| format!("{t}\n")).collect::<String>()
}

#[test]
fn table1_is_jobs_invariant() {
    assert_eq!(render("table1", 1), render("table1", 4));
}

#[test]
fn fig5_is_jobs_invariant() {
    assert_eq!(render("fig5", 1), render("fig5", 4));
}

#[test]
fn fig10_sweep_is_jobs_invariant() {
    assert_eq!(render("fig10", 1), render("fig10", 4));
}

#[test]
fn fig11_norm_completion_is_jobs_invariant() {
    assert_eq!(render("fig11", 1), render("fig11", 4));
}
