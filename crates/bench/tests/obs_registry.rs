//! Registry-vs-RunMetrics invariant on a real experiment workload.
//!
//! `RunMetrics::snapshot_into` publishes every run and per-core counter
//! into a `MetricsRegistry`; `registry_consistent` re-aggregates the
//! per-core entries and compares them against the run totals. These
//! tests pin that invariant on the Table 1 configuration (paper-default
//! ORAM system) driving a registered benchmark, both single- and
//! multi-core, so the registry stays a faithful substitute for the
//! `per_core` breakdown on the workloads the experiments actually run.

use proram_bench::common;
use proram_core::SchemeConfig;
use proram_obs::MetricsRegistry;
use proram_sim::runner;
use proram_workloads::synthetic::LocalityMix;
use proram_workloads::{suite, Scale, Suite};

fn table1_scale() -> Scale {
    Scale {
        ops: 4_000,
        warmup_ops: 500,
        footprint_scale: 0.03,
        seed: 3,
    }
}

#[test]
fn registry_reaggregates_table1_run() {
    let spec = suite::specs(Suite::Splash2)[0];
    let cfg = common::oram_config(SchemeConfig::dynamic(2));
    let metrics = runner::run_spec(spec, table1_scale(), &cfg);
    assert!(metrics.trace_ops > 0);

    let mut registry = MetricsRegistry::default();
    metrics.snapshot_into(&mut registry);
    assert!(metrics.registry_consistent(&registry));

    // The published totals equal the struct's fields verbatim.
    assert_eq!(registry.counter("run.trace_ops"), metrics.trace_ops);
    assert_eq!(registry.counter("run.cycles"), metrics.cycles);
    assert_eq!(
        registry.counter("run.demand_fetches"),
        metrics.demand_fetches
    );
}

#[test]
fn registry_reaggregates_multicore_run() {
    let cfg = common::oram_config(SchemeConfig::dynamic(2));
    let metrics = runner::run_multicore(&cfg, 2, 0, |id| {
        Box::new(LocalityMix::with_stride(
            1 << 18,
            0.8,
            2_000,
            11 + id as u64,
            64,
        ))
    });
    assert_eq!(metrics.per_core.len(), 2);

    let mut registry = MetricsRegistry::default();
    metrics.snapshot_into(&mut registry);
    assert!(metrics.registry_consistent(&registry));

    // Tampering with one per-core counter must break the cross-check.
    let mut tampered = MetricsRegistry::default();
    metrics.snapshot_into(&mut tampered);
    tampered.counter_add("run.core0.trace_ops", 1);
    assert!(!metrics.registry_consistent(&tampered));
}
