//! Experiment harness regenerating every table and figure of the PrORAM
//! paper's evaluation (Section 5).
//!
//! Each experiment module produces the same rows/series the paper plots;
//! the `proram-bench` binary prints them as text tables. Absolute numbers
//! differ from the paper (different workload substitution and scale — see
//! EXPERIMENTS.md) but the comparisons the paper draws are reproduced.
//!
//! # Examples
//!
//! ```no_run
//! use proram_bench::exp::{self, RunCtx};
//! use proram_workloads::Scale;
//!
//! let tables = exp::fig6::run_6a(RunCtx::serial(Scale::quick()));
//! println!("{tables}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod crash;
pub mod exp;
pub mod hotpath;
pub mod jobs;
pub mod microbench;
pub mod obs;
pub mod parallel;
pub mod pipeline;
pub mod treetop;
