//! The crypto-thread sweep behind `proram-bench parallel`.
//!
//! Runs the encrypted hot-path kernel at several `crypto_threads`
//! settings — `0` is the serial baseline, the pool path otherwise — and
//! measures the widened keystream against the retained scalar reference
//! ([`proram_oram::StreamCipher::apply_scalar_reference`]). Emits the
//! `BENCH_parallel.json` report.
//!
//! Two contracts ride along:
//!
//! * the widened cipher must beat the scalar loop: the soft target is
//!   [`CIPHER_SPEEDUP_FLOOR`] (typically met — the widening is pure
//!   instruction-level parallelism), and [`measure`] *asserts* the
//!   noise-tolerant [`CIPHER_SPEEDUP_HARD_FLOOR`] so a real regression
//!   fails the run while a noisy shared-core runner does not;
//! * thread-count *speedups* are reported, not asserted: wall-clock
//!   scaling needs real cores, and the report records how many the
//!   machine had so a single-core CI box doesn't fail the build.

use crate::hotpath::{run_kernel_threads, NUM_BLOCKS, WARMUP};
use crate::microbench::Throughput;
use proram_oram::StreamCipher;
use std::time::Instant;

/// Target widened-over-scalar cipher throughput ratio. The 8-wide
/// keystream is pure ILP, so this is machine-independent and typically
/// measures ~1.55x; [`measure`] retries a trial that misses it (shared
/// runners dip under co-tenant load) and records the achieved ratio in
/// the report.
pub const CIPHER_SPEEDUP_FLOOR: f64 = 1.5;

/// Hard assertion floor for the cipher ratio: [`measure`] panics when
/// even the best retry lands below this. Set with enough margin below
/// [`CIPHER_SPEEDUP_FLOOR`] that sustained interference on a shared
/// single-core runner (observed compressing the measured ratio to
/// ~1.2x) does not fail the build, while a genuine loss of the widened
/// path's ILP (ratio ~1.0x) still does.
pub const CIPHER_SPEEDUP_HARD_FLOOR: f64 = 1.1;

/// Thread counts swept by `proram-bench parallel` (0 = pool disabled).
pub const SWEEP: [usize; 4] = [0, 1, 2, 4];

/// Cipher-microbench buffer size: one plausible bucket body (Z = 3 slots
/// of a little over 1 KiB each).
const CIPHER_BUF_BYTES: usize = 4096;

/// One point of the thread sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelPoint {
    /// `crypto_threads` the kernel ran with (0 = serial baseline).
    pub threads: usize,
    /// The measured throughput.
    pub after: Throughput,
}

/// The full `proram-bench parallel` result.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelReport {
    /// Encrypted-kernel throughput per swept thread count.
    pub points: Vec<ParallelPoint>,
    /// Widened-keystream cipher throughput, bytes/sec.
    pub cipher_wide_bps: f64,
    /// Scalar-reference cipher throughput, bytes/sec.
    pub cipher_scalar_bps: f64,
    /// Cores the machine reported (context for the thread speedups).
    pub cores: usize,
}

impl ParallelReport {
    /// Widened-over-scalar cipher throughput ratio.
    pub fn cipher_speedup(&self) -> f64 {
        self.cipher_wide_bps / self.cipher_scalar_bps
    }

    /// Accesses/sec of the serial (`threads == 0`) baseline point.
    pub fn baseline_accesses_per_sec(&self) -> f64 {
        self.points
            .iter()
            .find(|p| p.threads == 0)
            .map(|p| p.after.units_per_sec())
            .unwrap_or(f64::NAN)
    }

    /// `point / serial-baseline` accesses-per-second ratio.
    pub fn speedup_at(&self, threads: usize) -> f64 {
        self.points
            .iter()
            .find(|p| p.threads == threads)
            .map(|p| p.after.units_per_sec() / self.baseline_accesses_per_sec())
            .unwrap_or(f64::NAN)
    }
}

/// Interleaved slices per cipher trial: both variants run many short
/// alternating timed slices and keep their best slice, so transient
/// interference (a noisy co-tenant, a frequency dip) hits individual
/// slices instead of biasing one whole side of the comparison.
const CIPHER_SLICES: usize = 8;

/// Measures both cipher formulations over alternating timed slices of
/// roughly `ms` milliseconds each; returns `(wide, scalar)` best-slice
/// throughput in bytes/sec.
fn cipher_rates(ms: u64) -> (f64, f64) {
    let cipher = StreamCipher::new(0x5EED_CAFE_F00D_D00D);
    let mut best = [0.0f64; 2];
    let mut buf = vec![0u8; CIPHER_BUF_BYTES];
    let mut nonce = 1u64;
    for _ in 0..CIPHER_SLICES {
        for (side, best_side) in best.iter_mut().enumerate() {
            let start = Instant::now();
            let mut bytes = 0u64;
            while start.elapsed().as_millis() < u128::from(ms) {
                for _ in 0..16 {
                    nonce = nonce.wrapping_add(1);
                    if side == 0 {
                        cipher.apply(nonce, &mut buf);
                    } else {
                        cipher.apply_scalar_reference(nonce, &mut buf);
                    }
                }
                bytes += 16 * CIPHER_BUF_BYTES as u64;
            }
            std::hint::black_box(&buf);
            *best_side = best_side.max(bytes as f64 / start.elapsed().as_secs_f64());
        }
    }
    (best[0], best[1])
}

/// Runs the cipher microbench and the thread sweep (roughly `ms`
/// milliseconds per timed region).
///
/// # Panics
///
/// Panics if the widened cipher fails to beat the scalar reference by
/// [`CIPHER_SPEEDUP_HARD_FLOOR`] on three consecutive trials — that
/// regression would mean the widened keystream lost its
/// instruction-level parallelism. Trials below the soft
/// [`CIPHER_SPEEDUP_FLOOR`] are retried and the best ratio is kept.
pub fn measure(ms: u64) -> ParallelReport {
    // Per-slice budget: the trial runs 2 * CIPHER_SLICES slices.
    let slice_ms = (ms / (2 * CIPHER_SLICES as u64)).clamp(10, 50);
    // The soft target is a floor on a wall-clock ratio; on a loaded
    // shared runner even best-of-slices can dip, so retry the whole
    // trial and keep the best ratio seen. Only a best ratio below the
    // hard floor — the widened path essentially tying the scalar loop —
    // is a regression worth failing on.
    let mut cipher_wide_bps = 0.0;
    let mut cipher_scalar_bps = 0.0;
    let mut best_ratio = 0.0f64;
    for _ in 0..3 {
        let (wide, scalar) = cipher_rates(slice_ms);
        let ratio = wide / scalar;
        if ratio > best_ratio {
            best_ratio = ratio;
            cipher_wide_bps = wide;
            cipher_scalar_bps = scalar;
        }
        if best_ratio >= CIPHER_SPEEDUP_FLOOR {
            break;
        }
    }
    assert!(
        best_ratio >= CIPHER_SPEEDUP_HARD_FLOOR,
        "widened keystream must be >= {CIPHER_SPEEDUP_HARD_FLOOR}x the scalar reference \
         (soft target {CIPHER_SPEEDUP_FLOOR}x), got {best_ratio:.2}x \
         ({cipher_wide_bps:.3e} vs {cipher_scalar_bps:.3e} bytes/sec) after 3 attempts"
    );
    let points = SWEEP
        .iter()
        .map(|&threads| ParallelPoint {
            threads,
            after: run_kernel_threads(true, ms, threads),
        })
        .collect();
    ParallelReport {
        points,
        cipher_wide_bps,
        cipher_scalar_bps,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Renders the report as the `BENCH_parallel.json` document.
pub fn to_json(report: &ParallelReport, ms: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"oram-access encrypted kernel, crypto-thread sweep\",\n");
    out.push_str("  \"harness\": \"proram-bench parallel\",\n");
    out.push_str(&format!("  \"measure_ms\": {ms},\n"));
    out.push_str(&format!("  \"cores\": {},\n", report.cores));
    out.push_str(&format!(
        "  \"config\": {{\"num_data_blocks\": {NUM_BLOCKS}, \"entries_per_posmap_block\": 8, \"warmup_accesses\": {WARMUP}, \"store_payloads\": true}},\n"
    ));
    out.push_str(&format!(
        "  \"cipher\": {{\"wide_bytes_per_sec\": {:.4e}, \"scalar_bytes_per_sec\": {:.4e}, \"speedup\": {:.3}, \"floor\": {CIPHER_SPEEDUP_FLOOR}, \"hard_floor\": {CIPHER_SPEEDUP_HARD_FLOOR}}},\n",
        report.cipher_wide_bps,
        report.cipher_scalar_bps,
        report.cipher_speedup()
    ));
    out.push_str("  \"threads\": [\n");
    for (i, p) in report.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"crypto_threads\": {}, \"accesses_per_sec\": {:.1}, \"bytes_per_sec\": {:.4e}, \"timed_accesses\": {}, \"speedup_vs_serial\": {:.3}}}{}\n",
            p.threads,
            p.after.units_per_sec(),
            p.after.bytes_per_sec(),
            p.after.units,
            p.after.units_per_sec() / report.baseline_accesses_per_sec(),
            if i + 1 == report.points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_shaped_like_a_report() {
        let report = ParallelReport {
            points: vec![
                ParallelPoint {
                    threads: 0,
                    after: Throughput {
                        units: 1000,
                        bytes: 1 << 20,
                        allocations_avoided: 2000,
                        secs: 1.0,
                    },
                },
                ParallelPoint {
                    threads: 4,
                    after: Throughput {
                        units: 2500,
                        bytes: 1 << 20,
                        allocations_avoided: 5000,
                        secs: 1.0,
                    },
                },
            ],
            cipher_wide_bps: 2.0e9,
            cipher_scalar_bps: 1.0e9,
            cores: 8,
        };
        assert!((report.cipher_speedup() - 2.0).abs() < 1e-9);
        assert!((report.speedup_at(4) - 2.5).abs() < 1e-9);
        let json = to_json(&report, 500);
        assert!(json.contains("\"crypto_threads\": 4"));
        assert!(json.contains("\"speedup_vs_serial\": 2.500"));
        assert!(json.contains("\"cores\": 8"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn cipher_rates_report_positive_throughput() {
        let (wide, scalar) = cipher_rates(2);
        assert!(wide > 0.0);
        assert!(scalar > 0.0);
    }
}
