//! The crash-consistency sweep behind `proram-bench crash`.
//!
//! Exhaustively fires every [`KillPoint`] of the commit protocol
//! (DESIGN.md section 15) over several crossing indices on a small tree,
//! recovers after each injected crash, audits block conservation, and
//! compares the post-recovery state digest against the crash-free run.
//! Any violation — a kill that never fired, a recovery that left the
//! state diverged, an auditor failure — **panics**, so the command
//! doubles as a CI smoke gate. The per-cell recovery work and modeled
//! recovery latency are reported as `BENCH_crash.json`.

use proram_mem::{AccessKind, BlockAddr};
use proram_oram::{
    CrashConfig, KillPoint, OramConfig, OramError, PathOram, RecoveryMode, RecoveryReport,
};
use proram_stats::{Rng64, Xoshiro256};

/// Data blocks in the sweep tree — small enough that the full sweep runs
/// in well under a second, deep enough that every kill point is reachable.
pub const NUM_BLOCKS: u64 = 128;
/// Accesses per sweep cell.
pub const ACCESSES: usize = 48;
/// Crossing indices swept per kill point (the Nth time the point is
/// reached fires the kill).
pub const CROSSINGS: [u64; 3] = [1, 2, 3];
const ORAM_SEED: u64 = 11;
const WORKLOAD_SEED: u64 = 5;

/// One sweep cell: one kill point fired at one crossing, then recovered.
#[derive(Debug, Clone)]
pub struct CrashCell {
    /// Kill point name.
    pub point: String,
    /// Crossing index the kill fired on.
    pub crossing: u64,
    /// What recovery found and did.
    pub recovery: RecoveryReport,
}

/// The full sweep: every kill point x every crossing, all recovered to
/// the crash-free digest.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// One cell per (kill point, crossing) pair, sweep order.
    pub cells: Vec<CrashCell>,
    /// State digest of the crash-free run every cell recovered to.
    pub baseline_digest: u64,
}

impl CrashReport {
    /// Cells whose recovery rolled the journal back.
    pub fn rollbacks(&self) -> usize {
        self.count(RecoveryMode::RolledBack)
    }

    /// Cells whose recovery replayed a committed transaction forward.
    pub fn replays(&self) -> usize {
        self.count(RecoveryMode::Replayed)
    }

    /// Cells that crashed before the first journaled write (nothing to
    /// undo).
    pub fn clean_recoveries(&self) -> usize {
        self.count(RecoveryMode::Clean)
    }

    fn count(&self, mode: RecoveryMode) -> usize {
        self.cells
            .iter()
            .filter(|c| c.recovery.mode == mode)
            .count()
    }

    /// `(min, mean, max)` modeled recovery latency in cycles across every
    /// cell (clean recoveries cost zero and are included).
    pub fn latency_stats(&self) -> (u64, f64, u64) {
        let cycles: Vec<u64> = self.cells.iter().map(|c| c.recovery.cycles).collect();
        let min = cycles.iter().copied().min().unwrap_or(0);
        let max = cycles.iter().copied().max().unwrap_or(0);
        let mean = if cycles.is_empty() {
            0.0
        } else {
            cycles.iter().sum::<u64>() as f64 / cycles.len() as f64
        };
        (min, mean, max)
    }
}

fn config(point: KillPoint, crossing: Option<u64>) -> OramConfig {
    OramConfig {
        // The pooled-encrypt kill lives inside the worker dispatch path,
        // which only exists with a pool attached.
        crypto_threads: if point == KillPoint::PooledEncrypt {
            2
        } else {
            0
        },
        trace_capacity: 0,
        crash: crossing.map(|n| CrashConfig::at(point, n)),
        ..OramConfig::small_for_tests(NUM_BLOCKS)
    }
}

/// The fixed sweep workload, drawn from a stream independent of the
/// controller's RNG.
fn addresses() -> Vec<BlockAddr> {
    let mut rng = Xoshiro256::seed_from(WORKLOAD_SEED);
    (0..ACCESSES)
        .map(|_| BlockAddr(rng.next_below(NUM_BLOCKS)))
        .collect()
}

fn crash_free_digest(point: KillPoint) -> u64 {
    let mut oram = PathOram::new(config(point, None), ORAM_SEED);
    for &addr in &addresses() {
        oram.try_access_block(addr, AccessKind::Read)
            .expect("crash-free run cannot fail");
    }
    oram.audit_full();
    oram.state_digest()
}

/// Runs one sweep cell: the workload with `point` armed at `crossing`,
/// recovery and (after a rollback) one retry at the crash site.
///
/// # Panics
///
/// Panics if the kill never fires, recovery leaves the auditor unhappy,
/// or the final digest diverges from `baseline`.
fn run_cell(point: KillPoint, crossing: u64, baseline: u64) -> CrashCell {
    let mut oram = PathOram::new(config(point, Some(crossing)), ORAM_SEED);
    let mut recovery = None;
    for &addr in &addresses() {
        match oram.try_access_block(addr, AccessKind::Read) {
            Ok(_) => {}
            Err(OramError::Crashed { .. }) => {
                let rec = oram.recover();
                oram.audit_full();
                if rec.mode != RecoveryMode::Replayed {
                    oram.try_access_block(addr, AccessKind::Read)
                        .expect("retry after rollback must succeed");
                }
                recovery = Some(rec);
            }
            Err(e) => panic!("{point} crossing {crossing}: unexpected error {e}"),
        }
    }
    let stats = oram.crash_stats();
    assert_eq!(
        stats.crashes_injected, 1,
        "{point} crossing {crossing}: kill never fired"
    );
    oram.audit_full();
    assert_eq!(
        oram.state_digest(),
        baseline,
        "{point} crossing {crossing}: post-recovery state diverged"
    );
    CrashCell {
        point: point.to_string(),
        crossing,
        recovery: recovery.expect("a fired kill always surfaces"),
    }
}

/// Runs the exhaustive sweep.
///
/// # Panics
///
/// Panics on the first cell that violates the crash-consistency
/// contract: a kill that never fires, an auditor failure after
/// recovery, or a post-recovery digest diverging from the baseline.
pub fn measure() -> CrashReport {
    // The baseline digest is thread-count independent (pooled and serial
    // crypto are byte-identical); assert that here so the report's single
    // baseline is honest.
    let serial = crash_free_digest(KillPoint::WriteBack);
    let pooled = crash_free_digest(KillPoint::PooledEncrypt);
    assert_eq!(serial, pooled, "worker pool changed observable state");
    let mut cells = Vec::new();
    for point in KillPoint::ALL {
        for crossing in CROSSINGS {
            cells.push(run_cell(point, crossing, serial));
        }
    }
    CrashReport {
        cells,
        baseline_digest: serial,
    }
}

fn mode_str(mode: RecoveryMode) -> &'static str {
    match mode {
        RecoveryMode::Clean => "clean",
        RecoveryMode::RolledBack => "rolled_back",
        RecoveryMode::Replayed => "replayed",
    }
}

/// Renders the report as the `BENCH_crash.json` document.
pub fn to_json(report: &CrashReport) -> String {
    let (min, mean, max) = report.latency_stats();
    let mut out = String::from("{\n");
    out.push_str(
        "  \"benchmark\": \"crash-consistent commit protocol, exhaustive kill-point sweep\",\n",
    );
    out.push_str("  \"harness\": \"proram-bench crash\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"num_data_blocks\": {NUM_BLOCKS}, \"accesses_per_cell\": {ACCESSES}, \"crossings\": {:?}, \"oram_seed\": {ORAM_SEED}, \"workload_seed\": {WORKLOAD_SEED}}},\n",
        CROSSINGS
    ));
    out.push_str(&format!(
        "  \"summary\": {{\"cells\": {}, \"rollbacks\": {}, \"replays\": {}, \"clean_recoveries\": {}, \"all_digests_match_baseline\": true, \"baseline_digest\": \"{:#018x}\"}},\n",
        report.cells.len(),
        report.rollbacks(),
        report.replays(),
        report.clean_recoveries(),
        report.baseline_digest
    ));
    out.push_str(&format!(
        "  \"recovery_cycles\": {{\"min\": {min}, \"mean\": {mean:.1}, \"max\": {max}}},\n"
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in report.cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"point\": \"{}\", \"crossing\": {}, \"mode\": \"{}\", \"journal_entries\": {}, \"buckets_restored\": {}, \"buckets_reverified\": {}, \"recovery_cycles\": {}}}{}\n",
            c.point,
            c.crossing,
            mode_str(c.recovery.mode),
            c.recovery.journal_entries,
            c.recovery.buckets_restored,
            c.recovery.buckets_reverified,
            c.recovery.cycles,
            if i + 1 == report.cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_point_and_recovers_everywhere() {
        let report = measure();
        assert_eq!(report.cells.len(), KillPoint::ALL.len() * CROSSINGS.len());
        // Every recovery class is exercised somewhere in the sweep.
        assert!(report.rollbacks() > 0, "no rollback cell");
        assert!(report.replays() > 0, "no replay cell");
        let (_, mean, max) = report.latency_stats();
        assert!(max > 0, "recovery never cost cycles");
        assert!(mean <= max as f64);
    }

    #[test]
    fn json_is_shaped_like_a_report() {
        let report = CrashReport {
            cells: vec![CrashCell {
                point: "write_back".into(),
                crossing: 2,
                recovery: RecoveryReport {
                    mode: RecoveryMode::RolledBack,
                    journal_entries: 9,
                    buckets_restored: 9,
                    buckets_reverified: 14,
                    cycles: 1234,
                },
            }],
            baseline_digest: 0xdead_beef,
        };
        let json = to_json(&report);
        assert!(json.contains("\"harness\": \"proram-bench crash\""));
        assert!(json.contains("\"rollbacks\": 1"));
        assert!(json.contains("\"recovery_cycles\": 1234"));
        assert!(json.contains("\"mode\": \"rolled_back\""));
        assert!(json.ends_with("}\n"));
    }
}
