//! The observability demo + smoke harness behind `proram-bench obs`.
//!
//! Three instrumented runs share one ring-buffered [`Obs`] handle so the
//! resulting trace exercises every layer the obs layer hooks into:
//!
//! 1. a staged-pipeline kernel (`PathOram` demand reads) for the
//!    per-stage attribution table,
//! 2. a two-core sharded-ORAM simulation for tile issue/retire events
//!    and the `Demand` round-trip profile,
//! 3. a directly driven [`ShardedOram`] for the per-shard attribution
//!    table.
//!
//! The collected events are emitted as one-line-per-event JSONL; the
//! overhead microbench replays the hot-path kernel with the sink
//! disabled, with a [`NoopSink`], and with a [`RingSink`]-backed handle
//! and reports the throughput ratios in `BENCH_obs.json`. [`check`]
//! panics when the trace violates the bounded-retention or JSONL-schema
//! contracts, so running the subcommand doubles as a CI smoke gate.
//!
//! [`RingSink`]: proram_obs::RingSink

use crate::hotpath;
use proram_mem::{AccessKind, BlockAddr, MemRequest, MemoryBackend};
use proram_obs::{NoopSink, Obs, ObsEvent, StageKind, StageProfile};
use proram_oram::{OramConfig, PathOram};
use proram_sim::{MemoryKind, MultiCoreSystem, ShardedOram, SystemConfig};
use proram_stats::{Rng64, Table, Xoshiro256};
use proram_workloads::synthetic::LocalityMix;
use std::time::Instant;

use proram_core::SchemeConfig;

/// Ring capacity of each instrumented run's sink.
pub const RING_CAPACITY: usize = 1 << 14;

/// Upper bound on the emitted trace: one ring per instrumented run.
pub const MAX_TRACE_EVENTS: usize = 3 * RING_CAPACITY;

/// Accesses driven through the staged-pipeline kernel.
const STAGE_KERNEL_ACCESSES: u64 = 2_000;
/// Per-core trace ops in the multi-core run.
const SIM_OPS: u64 = 4_000;
/// Requests driven directly through the sharded controller.
const SHARD_REQUESTS: u64 = 4_000;
/// Shards in the direct sharded-controller run.
const SHARDS: usize = 4;

/// One shard's attribution row.
#[derive(Debug, Clone, Copy)]
pub struct ShardRow {
    /// Shard index.
    pub shard: usize,
    /// Logical demand reads routed to this shard.
    pub demand_reads: u64,
    /// Super-block merges performed by this shard.
    pub merges: u64,
    /// Super-block breaks performed by this shard.
    pub breaks: u64,
    /// Prefetched blocks this shard delivered.
    pub prefetches: u64,
    /// All-time stash peak of this shard's ORAM.
    pub stash_peak: usize,
}

/// Everything `proram-bench obs` collects.
#[derive(Debug)]
pub struct ObsReport {
    /// The retained event trace (oldest-first, ring-bounded).
    pub events: Vec<ObsEvent>,
    /// Events the ring evicted once full.
    pub dropped: u64,
    /// Per-stage cycle attribution aggregated over every run.
    pub profile: StageProfile,
    /// Per-shard attribution from the direct sharded run.
    pub shards: Vec<ShardRow>,
    /// Hot-path throughput with observability detached.
    pub disabled_accesses_per_sec: f64,
    /// Hot-path throughput with an enabled no-op sink.
    pub noop_accesses_per_sec: f64,
    /// Hot-path throughput with a live ring sink.
    pub ring_accesses_per_sec: f64,
}

impl ObsReport {
    /// Fractional slowdown of the enabled no-op sink vs. detached.
    pub fn noop_overhead(&self) -> f64 {
        1.0 - self.noop_accesses_per_sec / self.disabled_accesses_per_sec
    }

    /// Fractional slowdown of the live ring sink vs. detached.
    pub fn ring_overhead(&self) -> f64 {
        1.0 - self.ring_accesses_per_sec / self.disabled_accesses_per_sec
    }
}

fn stage_kernel_config() -> OramConfig {
    OramConfig::builder()
        .num_data_blocks(1 << 10)
        .entries_per_posmap_block(8)
        .store_payloads(false)
        .trace_capacity(0)
        .build()
        .expect("valid stage-kernel configuration")
}

/// Run 1: demand reads through the staged access pipeline, populating
/// the `ResolvePosmap..Backoff` rows of the stage profile.
fn run_stage_kernel(obs: &Obs) {
    let mut oram = PathOram::new(stage_kernel_config(), 17);
    oram.attach_obs_handle(obs.clone());
    let mut rng = Xoshiro256::seed_from(23);
    for _ in 0..STAGE_KERNEL_ACCESSES {
        oram.try_access_block(BlockAddr(rng.next_below(1 << 10)), AccessKind::Read)
            .expect("no faults injected");
    }
}

/// Run 2: a two-core system over a two-shard dynamic-scheme ORAM —
/// tile issue/retire events plus the `Demand` round-trip profile.
fn run_multicore(obs: &Obs) {
    let cfg = SystemConfig::quick_test(MemoryKind::OramShards(SchemeConfig::dynamic(2), 2));
    let mut sys = MultiCoreSystem::build(&cfg, 2, |id| {
        Box::new(LocalityMix::with_stride(
            1 << 18,
            0.8,
            SIM_OPS,
            31 + id as u64,
            64,
        ))
    });
    sys.attach_obs(obs.clone());
    sys.run();
}

/// A FIFO set standing in for the LLC: the super-block scheme only
/// merges when a block's pair neighbor is cache-resident and only
/// counts prefetch hits that the cache reports, so driving the sharded
/// controller bare (with [`NoProbe`]) would leave both machines idle.
#[derive(Default)]
struct FifoLlc {
    resident: std::cell::RefCell<std::collections::VecDeque<u64>>,
}

impl FifoLlc {
    const CAPACITY: usize = 512;

    /// Records a delivered block, evicting FIFO order past capacity;
    /// returns any evicted block.
    fn insert(&self, block: BlockAddr) -> Option<BlockAddr> {
        let mut r = self.resident.borrow_mut();
        if r.contains(&block.0) {
            return None;
        }
        r.push_back(block.0);
        if r.len() > Self::CAPACITY {
            return r.pop_front().map(BlockAddr);
        }
        None
    }
}

impl proram_mem::CacheProbe for FifoLlc {
    fn contains(&self, block: BlockAddr) -> bool {
        self.resident.borrow().contains(&block.0)
    }
}

/// Run 3: drive a sharded controller directly and read back per-shard
/// attribution through [`ShardedOram::shard`].
fn run_sharded(obs: &Obs) -> Vec<ShardRow> {
    let cfg = SystemConfig::quick_test(MemoryKind::OramShards(SchemeConfig::dynamic(2), SHARDS));
    let mut sharded = ShardedOram::from_system(&cfg, &SchemeConfig::dynamic(2), SHARDS, 1 << 20);
    sharded.attach_obs(obs.clone());
    let llc = FifoLlc::default();
    let mut rng = Xoshiro256::seed_from(41);
    let mut now = 0;
    for i in 0..SHARD_REQUESTS {
        // Alternate a sequential walk (drives merging) with random
        // probes (drives breaking) so the trace shows both decisions.
        // Phases of sequential pairs (drives merging) alternating with
        // random probes (evicts prefetches unused, driving breaking).
        let sequential = (i / 500) % 2 == 0;
        let addr = BlockAddr(if sequential {
            i / 2
        } else {
            rng.next_below(1 << 12)
        });
        if proram_mem::CacheProbe::contains(&llc, addr) {
            // LLC hit: the scheme learns about it (hit bits drive the
            // break counters) and memory is not accessed.
            sharded.note_llc_hit(addr);
            continue;
        }
        let outcome = sharded.access(now, MemRequest::read(addr), &llc);
        now = outcome.complete_at;
        for fill in outcome.fills {
            if let Some(evicted) = llc.insert(fill.block) {
                sharded.note_llc_eviction(evicted);
            }
        }
    }
    (0..sharded.num_shards())
        .map(|i| {
            let shard = sharded.shard(i);
            let stats = shard.scheme_stats();
            ShardRow {
                shard: i,
                demand_reads: stats.demand_reads,
                merges: stats.merges,
                breaks: stats.breaks,
                prefetches: stats.prefetches_issued,
                stash_peak: shard.oram().stash().peak(),
            }
        })
        .collect()
}

/// One mode's warmed hot-path kernel for the overhead microbench.
struct OverheadKernel {
    oram: PathOram,
    rng: Xoshiro256,
    slices: Vec<f64>,
}

impl OverheadKernel {
    fn warmed(obs: Obs) -> Self {
        let mut oram = PathOram::new(hotpath::kernel_config(false, 0), 1);
        oram.attach_obs_handle(obs);
        let mut rng = Xoshiro256::seed_from(2);
        for _ in 0..hotpath::WARMUP {
            oram.try_access_block(
                BlockAddr(rng.next_below(hotpath::NUM_BLOCKS)),
                AccessKind::Read,
            )
            .expect("no faults injected");
        }
        OverheadKernel {
            oram,
            rng,
            slices: Vec::new(),
        }
    }

    /// Accesses per timed batch.
    const BATCH: u64 = 4 * hotpath::CHUNK;

    /// Runs one fixed-size batch and records its duration.
    fn run_batch(&mut self) {
        let start = Instant::now();
        for _ in 0..Self::BATCH {
            self.oram
                .try_access_block(
                    BlockAddr(self.rng.next_below(hotpath::NUM_BLOCKS)),
                    AccessKind::Read,
                )
                .expect("no faults injected");
        }
        self.slices.push(start.elapsed().as_secs_f64());
    }

    /// Best-batch throughput. Scheduler preemption, frequency dips and
    /// other machine noise only ever add time, so the fastest batch is
    /// the least-contaminated estimate of the kernel's true speed.
    fn accesses_per_sec(&self) -> f64 {
        let best = self.slices.iter().copied().fold(f64::INFINITY, f64::min);
        Self::BATCH as f64 / best
    }
}

/// Measures the detached / no-op / ring kernels in interleaved
/// fixed-size batches for roughly `ms` per mode, rotating the mode
/// order every round and discarding a priming round, then reports each
/// mode's best-batch throughput (see [`OverheadKernel::accesses_per_sec`]).
fn measure_overhead(ms: u64) -> (f64, f64, f64) {
    let mut kernels = [
        OverheadKernel::warmed(Obs::disabled()),
        OverheadKernel::warmed(Obs::with_sink(Box::new(NoopSink))),
        OverheadKernel::warmed(Obs::ring(RING_CAPACITY)),
    ];
    let budget = std::time::Duration::from_millis(ms * 3);
    let start = Instant::now();
    let mut round = 0usize;
    while round == 0 || (start.elapsed() < budget && round < 10_000) {
        for k in 0..kernels.len() {
            kernels[(round + k) % kernels.len()].run_batch();
        }
        if round == 0 {
            // Priming round: every mode ran once; start measuring fresh.
            for kernel in &mut kernels {
                kernel.slices.clear();
            }
        }
        round += 1;
    }
    let [disabled, noop, ring] = kernels;
    (
        disabled.accesses_per_sec(),
        noop.accesses_per_sec(),
        ring.accesses_per_sec(),
    )
}

/// Runs the three instrumented workloads, each with its own ring so an
/// event-heavy run cannot starve the others out of the trace, then the
/// overhead microbench. Events are concatenated in run order; the stage
/// profiles are merged.
fn collect() -> (Vec<ObsEvent>, u64, StageProfile, Vec<ShardRow>) {
    let rings = [
        Obs::ring(RING_CAPACITY),
        Obs::ring(RING_CAPACITY),
        Obs::ring(RING_CAPACITY),
    ];
    run_stage_kernel(&rings[0]);
    run_multicore(&rings[1]);
    let shards = run_sharded(&rings[2]);
    let mut events = Vec::new();
    let mut dropped = 0;
    let mut profile = StageProfile::default();
    for obs in &rings {
        events.extend(obs.events());
        dropped += obs.dropped();
        profile.merge(&obs.profile_snapshot());
    }
    (events, dropped, profile, shards)
}

/// Runs all three instrumented workloads plus the overhead microbench.
pub fn measure(overhead_ms: u64) -> ObsReport {
    let (events, dropped, profile, shards) = collect();
    let (disabled, noop, ring) = measure_overhead(overhead_ms);
    let report = ObsReport {
        events,
        dropped,
        profile,
        shards,
        disabled_accesses_per_sec: disabled,
        noop_accesses_per_sec: noop,
        ring_accesses_per_sec: ring,
    };
    check(&report);
    report
}

/// The smoke-gate contracts: bounded retention and JSONL shape.
///
/// # Panics
///
/// Panics if the ring retained more events than its capacity, if the
/// trace is empty, if any event renders to something other than a
/// single-line flat JSON object, or if an event kind falls outside the
/// published taxonomy.
pub fn check(report: &ObsReport) {
    assert!(
        report.events.len() <= MAX_TRACE_EVENTS,
        "trace retained {} events, bound {MAX_TRACE_EVENTS}",
        report.events.len()
    );
    assert!(
        !report.events.is_empty(),
        "instrumented runs emitted no events"
    );
    for e in &report.events {
        assert!(
            ObsEvent::KINDS.contains(&e.kind()),
            "unknown event kind {:?}",
            e.kind()
        );
        let line = e.to_json();
        assert!(
            line.starts_with("{\"type\":\"") && line.ends_with('}') && !line.contains('\n'),
            "event does not render as one-line JSON: {line}"
        );
        assert_eq!(
            line.matches('{').count(),
            1,
            "event JSON must be flat: {line}"
        );
    }
    // Both the machine stages and the sim's demand round trip were hit.
    assert!(report.profile.entries(StageKind::ResolvePosmap) > 0);
    assert!(report.profile.entries(StageKind::Demand) > 0);
    assert!(report.shards.iter().any(|s| s.demand_reads > 0));
}

/// Renders the retained trace as JSON Lines (one event per line).
pub fn to_jsonl(events: &[ObsEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

/// The per-stage cycle-attribution table.
pub fn stage_table(profile: &StageProfile) -> Table {
    let mut t = Table::new(&["stage", "entries", "cycles", "avg cycles"])
        .with_title("per-stage attribution (pipeline kernel + demand round trips)");
    for (stage, cycles, entries) in profile.iter() {
        let avg = if entries == 0 {
            0.0
        } else {
            cycles as f64 / entries as f64
        };
        t.row(&[
            stage.name().to_string(),
            entries.to_string(),
            cycles.to_string(),
            format!("{avg:.1}"),
        ]);
    }
    t
}

/// The per-shard attribution table from the direct sharded run.
pub fn shard_table(rows: &[ShardRow]) -> Table {
    let mut t = Table::new(&[
        "shard",
        "demand reads",
        "merges",
        "breaks",
        "prefetches",
        "stash peak",
    ])
    .with_title("per-shard attribution (4-shard dynamic scheme)");
    for r in rows {
        t.row(&[
            r.shard.to_string(),
            r.demand_reads.to_string(),
            r.merges.to_string(),
            r.breaks.to_string(),
            r.prefetches.to_string(),
            r.stash_peak.to_string(),
        ]);
    }
    t
}

/// The event-count-by-kind table.
pub fn kind_table(events: &[ObsEvent]) -> Table {
    let mut t = Table::new(&["event kind", "count"]).with_title("retained trace by event kind");
    for kind in ObsEvent::KINDS {
        let n = events.iter().filter(|e| e.kind() == kind).count();
        if n > 0 {
            t.row(&[kind.to_string(), n.to_string()]);
        }
    }
    t
}

/// Renders the report as the `BENCH_obs.json` document.
pub fn to_json(report: &ObsReport, overhead_ms: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"observability layer\",\n");
    out.push_str("  \"harness\": \"proram-bench obs\",\n");
    out.push_str(&format!("  \"ring_capacity\": {RING_CAPACITY},\n"));
    out.push_str(&format!(
        "  \"trace\": {{\"events_retained\": {}, \"events_dropped\": {}}},\n",
        report.events.len(),
        report.dropped
    ));
    out.push_str("  \"stages\": [\n");
    let stages: Vec<_> = report.profile.iter().collect();
    for (i, (stage, cycles, entries)) in stages.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"stage\": \"{}\", \"entries\": {entries}, \"cycles\": {cycles}}}{}\n",
            stage.name(),
            if i + 1 == stages.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"overhead\": {{\"measure_ms\": {overhead_ms}, \"disabled_accesses_per_sec\": {:.1}, \"noop_accesses_per_sec\": {:.1}, \"ring_accesses_per_sec\": {:.1}, \"noop_overhead\": {:.4}, \"ring_overhead\": {:.4}}}\n",
        report.disabled_accesses_per_sec,
        report.noop_accesses_per_sec,
        report.ring_accesses_per_sec,
        report.noop_overhead(),
        report.ring_overhead()
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collected() -> ObsReport {
        let (events, dropped, profile, shards) = collect();
        ObsReport {
            events,
            dropped,
            profile,
            shards,
            disabled_accesses_per_sec: 100.0,
            noop_accesses_per_sec: 99.0,
            ring_accesses_per_sec: 97.0,
        }
    }

    #[test]
    fn collected_trace_passes_the_smoke_contracts() {
        let report = collected();
        check(&report);
        // The three runs cover tile, scheme and controller layers.
        let kinds: std::collections::BTreeSet<_> = report.events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains("access_issued"));
        assert!(kinds.contains("tile_issue"));
        assert!(kinds.contains("prefetch_window"));
        assert!(kinds.contains("stash_watermark"));
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let report = collected();
        let jsonl = to_jsonl(&report.events);
        assert_eq!(jsonl.lines().count(), report.events.len());
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"type\":\""));
            assert!(line.ends_with('}'));
        }
    }

    #[test]
    fn tables_and_json_render() {
        let report = collected();
        let json = to_json(&report, 100);
        assert!(json.contains("\"ring_overhead\": 0.0300"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(stage_table(&report.profile)
            .to_string()
            .contains("resolve_posmap"));
        assert!(shard_table(&report.shards)
            .to_string()
            .contains("demand reads"));
        assert!(!kind_table(&report.events).is_empty());
    }
}
