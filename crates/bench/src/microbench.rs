//! A tiny self-contained microbenchmark harness.
//!
//! The `cargo bench` targets used to sit on an external harness crate;
//! this module provides the small subset the benches need — named
//! benchmarks, groups, `iter`/`iter_batched` — with no dependencies, so
//! the workspace builds offline. Each benchmark is calibrated to a fixed
//! wall-clock budget and reported as nanoseconds per iteration on stdout.
//!
//! Set `PRORAM_BENCH_MS` to change the per-benchmark measurement budget
//! (default 200 ms; CI can use `PRORAM_BENCH_MS=10` for a smoke run).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; kept for API familiarity — the
/// harness always re-runs setup per batch and times only the routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is cheap to hold; batches of one.
    SmallInput,
    /// Setup output is large; batches of one as well.
    LargeInput,
}

/// Passed to each benchmark closure; runs and times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    /// Measured cost of one iteration, filled by `iter`/`iter_batched`.
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            ns_per_iter: f64::NAN,
            iters: 0,
        }
    }

    /// Times `routine` over as many iterations as fit the budget.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Brief warmup so one-time lazy initialization stays out of the
        // measurement.
        let warm_until = Instant::now() + self.budget / 10;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            // Check the clock in batches to keep timer overhead out of
            // short routines.
            if iters.is_multiple_of(16) && start.elapsed() >= self.budget {
                break;
            }
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }

    /// Times `routine(setup())`, excluding `setup` from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let start = Instant::now();
        let mut iters = 0u64;
        let mut in_routine = Duration::ZERO;
        while start.elapsed() < self.budget || iters == 0 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            in_routine += t.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.ns_per_iter = in_routine.as_nanos() as f64 / iters as f64;
    }
}

/// Accumulates work counters alongside a timed region and converts them
/// to rates — the before/after throughput record behind
/// `BENCH_hotpath.json` (see [`crate::hotpath`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Throughput {
    /// Work units completed (e.g. logical ORAM accesses).
    pub units: u64,
    /// Bytes processed over the region.
    pub bytes: u64,
    /// Heap allocations avoided by buffer reuse over the region.
    pub allocations_avoided: u64,
    /// Wall-clock seconds of the timed region.
    pub secs: f64,
}

impl Throughput {
    /// Work units per second.
    pub fn units_per_sec(&self) -> f64 {
        self.units as f64 / self.secs
    }

    /// Bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.secs
    }

    /// Ratio of this throughput over a baseline measurement.
    pub fn speedup_over(&self, before: &Throughput) -> f64 {
        self.units_per_sec() / before.units_per_sec()
    }
}

fn default_budget() -> Duration {
    let ms = std::env::var("PRORAM_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(1))
}

fn report(name: &str, b: &Bencher) {
    let ns = b.ns_per_iter;
    let pretty = if ns < 1_000.0 {
        format!("{ns:10.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:10.2} µs/iter", ns / 1_000.0)
    } else {
        format!("{:10.2} ms/iter", ns / 1_000_000.0)
    };
    println!("bench {name:<44} {pretty}   ({} iters)", b.iters);
}

/// The harness: owns the measurement budget and prints results.
#[derive(Debug)]
pub struct Harness {
    budget: Duration,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// Creates a harness with the budget from `PRORAM_BENCH_MS`.
    pub fn new() -> Self {
        Harness {
            budget: default_budget(),
        }
    }

    /// Creates a harness with an explicit per-benchmark budget.
    pub fn with_budget(budget: Duration) -> Self {
        Harness { budget }
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_owned(),
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
}

impl Group<'_> {
    /// Accepted for API familiarity; the time-budget calibration makes an
    /// explicit sample count unnecessary.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        self.harness.bench_function(&full, f);
        self
    }

    /// Ends the group (drop would do; kept for call-site symmetry).
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut h = Harness::with_budget(Duration::from_millis(5));
        h.bench_function("spin", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x
            });
        });
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(|| vec![0u8; 1024], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
        assert!(b.ns_per_iter.is_finite());
    }

    #[test]
    fn groups_prefix_names() {
        let mut h = Harness::with_budget(Duration::from_millis(1));
        let mut g = h.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
