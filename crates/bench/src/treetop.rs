//! The treetop-cache sweep behind `proram-bench treetop`.
//!
//! Sweeps `treetop_levels` × store layout over the encrypted hot-path
//! kernel: every on-chip level removes its share of serialization,
//! AES-CTR work, MAC verification and DRAM traffic from each path
//! access, so encrypted throughput should rise roughly in proportion to
//! the off-chip suffix that remains. `proram-bench treetop` writes the
//! sweep as `BENCH_treetop.json` and enforces the optimization's floor:
//! `treetop_levels = 4` must beat the uncached run by at least
//! [`SPEEDUP_FLOOR`]× on the flat layout.

use crate::microbench::Throughput;
use proram_mem::{AccessKind, BlockAddr};
use proram_oram::{OramConfig, PathOram, TreeLayout};
use proram_stats::{Rng64, Xoshiro256};
use std::time::Instant;

/// Data blocks in the sweep tree (2^12 => 12 levels at Z=3).
pub(crate) const NUM_BLOCKS: u64 = 1 << 12;
/// Accesses executed before timing starts.
const WARMUP: u64 = 1_000;
/// Accesses per timer check.
const CHUNK: u64 = 256;
/// Treetop level counts swept (0 is the uncached baseline).
pub const SWEEP: [u32; 5] = [0, 1, 2, 4, 6];
/// Minimum accesses-per-second ratio of `treetop_levels = 4` over the
/// uncached baseline (flat layout both sides). [`measure`] panics below
/// this, so the CI smoke run doubles as a regression gate.
pub const SPEEDUP_FLOOR: f64 = 1.3;

/// One sweep point: the measurement of a `(treetop_levels, layout)`
/// pair on the encrypted kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// On-chip (plaintext) tree levels for this point.
    pub treetop_levels: u32,
    /// Off-chip store layout, in display form (`flat`,
    /// `subtree_packed(h)`).
    pub layout: String,
    /// Off-chip bytes one path access moves (fetch + write-back).
    pub bytes_per_access: u64,
    /// DRAM bytes the treetop saved during the timed phase.
    pub bytes_saved: u64,
    /// The timed measurement: `units` are logical ORAM accesses,
    /// `bytes` are off-chip path bytes moved.
    pub throughput: Throughput,
}

fn kernel_config(treetop_levels: u32, layout: TreeLayout) -> OramConfig {
    OramConfig::builder()
        .num_data_blocks(NUM_BLOCKS)
        .entries_per_posmap_block(8)
        .store_payloads(true)
        .trace_capacity(0)
        .treetop_levels(treetop_levels)
        .tree_layout(layout)
        .build()
        .expect("kernel configuration is valid")
}

/// The tallest packing height in `1..=4` that divides the off-chip
/// depth left by `treetop_levels` — the most aggressive subtree band
/// the config validator accepts for this geometry.
pub fn packed_height(tree_levels: u32, treetop_levels: u32) -> u32 {
    let depth = tree_levels - treetop_levels;
    (1..=4u32)
        .rev()
        .find(|&h| depth.is_multiple_of(h))
        .expect("1 divides everything")
}

/// Runs the encrypted kernel at one sweep point for roughly `ms`
/// milliseconds of timed accesses.
pub fn run_kernel(treetop_levels: u32, layout: TreeLayout, ms: u64) -> SweepPoint {
    let layout_name = layout.to_string();
    let mut oram = PathOram::new(kernel_config(treetop_levels, layout), 1);
    let mut rng = Xoshiro256::seed_from(2);
    for _ in 0..WARMUP {
        oram.try_access_block(BlockAddr(rng.next_below(NUM_BLOCKS)), AccessKind::Read)
            .unwrap();
    }
    let before = oram.oram_stats();
    let start = Instant::now();
    let mut accesses = 0u64;
    loop {
        for _ in 0..CHUNK {
            oram.try_access_block(BlockAddr(rng.next_below(NUM_BLOCKS)), AccessKind::Read)
                .unwrap();
        }
        accesses += CHUNK;
        if start.elapsed().as_millis() >= u128::from(ms) {
            break;
        }
    }
    let after = oram.oram_stats();
    let bytes = after.bytes_moved - before.bytes_moved;
    SweepPoint {
        treetop_levels,
        layout: layout_name,
        // bytes_moved counts only off-chip traffic and is exactly
        // linear in the access count, so the ratio is exact.
        bytes_per_access: bytes / (after.total_path_accesses() - before.total_path_accesses()),
        bytes_saved: after.treetop_bytes_saved - before.treetop_bytes_saved,
        throughput: Throughput {
            units: accesses,
            bytes,
            allocations_avoided: 0,
            secs: start.elapsed().as_secs_f64(),
        },
    }
}

/// Measures every `treetop_levels` in [`SWEEP`] under both layouts
/// (flat and the tallest valid subtree packing), then enforces
/// [`SPEEDUP_FLOOR`] on the flat `4 / 0` accesses-per-second ratio.
pub fn measure(ms: u64) -> Vec<SweepPoint> {
    let levels = kernel_config(0, TreeLayout::Flat).tree_levels();
    let mut points = Vec::new();
    for treetop in SWEEP {
        let height = packed_height(levels, treetop);
        points.push(run_kernel(treetop, TreeLayout::Flat, ms));
        points.push(run_kernel(
            treetop,
            TreeLayout::SubtreePacked { height },
            ms,
        ));
    }
    let flat_rate = |t: u32| {
        points
            .iter()
            .find(|p| p.treetop_levels == t && p.layout == "flat")
            .expect("flat point measured")
            .throughput
            .units_per_sec()
    };
    let speedup = flat_rate(4) / flat_rate(0);
    assert!(
        speedup >= SPEEDUP_FLOOR,
        "treetop_levels=4 speedup {speedup:.3}x is below the {SPEEDUP_FLOOR}x floor"
    );
    points
}

/// Renders the sweep as the `BENCH_treetop.json` document.
pub fn to_json(points: &[SweepPoint], ms: u64) -> String {
    let rate = |t: u32, layout: &str| {
        points
            .iter()
            .find(|p| p.treetop_levels == t && p.layout == layout)
            .map(|p| p.throughput.units_per_sec())
    };
    let speedup = match (rate(4, "flat"), rate(0, "flat")) {
        (Some(fast), Some(base)) if base > 0.0 => fast / base,
        _ => 0.0,
    };
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"treetop cache + store layout sweep\",\n");
    out.push_str("  \"harness\": \"proram-bench treetop\",\n");
    out.push_str(&format!("  \"measure_ms\": {ms},\n"));
    out.push_str(&format!(
        "  \"config\": {{\"num_data_blocks\": {NUM_BLOCKS}, \"entries_per_posmap_block\": 8, \"store_payloads\": true, \"warmup_accesses\": {WARMUP}}},\n"
    ));
    out.push_str(&format!(
        "  \"flat_speedup_treetop4_over_0\": {speedup:.3},\n"
    ));
    out.push_str(&format!("  \"speedup_floor\": {SPEEDUP_FLOOR},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"treetop_levels\": {},\n      \"layout\": \"{}\",\n",
            p.treetop_levels, p.layout
        ));
        out.push_str(&format!(
            "      \"accesses_per_sec\": {:.1},\n      \"bytes_per_sec\": {:.4e},\n",
            p.throughput.units_per_sec(),
            p.throughput.bytes_per_sec()
        ));
        out.push_str(&format!(
            "      \"bytes_per_access\": {},\n      \"treetop_bytes_saved\": {},\n",
            p.bytes_per_access, p.bytes_saved
        ));
        out.push_str(&format!(
            "      \"timed_accesses\": {}\n",
            p.throughput.units
        ));
        out.push_str(if i + 1 == points.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_height_divides_the_off_chip_depth() {
        let levels = kernel_config(0, TreeLayout::Flat).tree_levels();
        for treetop in SWEEP {
            let h = packed_height(levels, treetop);
            assert!((1..=4).contains(&h));
            assert_eq!((levels - treetop) % h, 0, "treetop {treetop}");
        }
    }

    #[test]
    fn kernel_point_accounts_for_the_treetop() {
        let base = run_kernel(0, TreeLayout::Flat, 20);
        assert!(base.throughput.units >= CHUNK);
        assert_eq!(base.bytes_saved, 0);
        let cached = run_kernel(4, TreeLayout::Flat, 20);
        assert!(cached.bytes_saved > 0, "cached levels must save bytes");
        assert!(
            cached.bytes_per_access < base.bytes_per_access,
            "treetop must shrink the off-chip path"
        );
    }

    #[test]
    fn json_is_shaped_like_a_sweep() {
        let point = |treetop_levels: u32, layout: &str, rate: u64| SweepPoint {
            treetop_levels,
            layout: layout.to_string(),
            bytes_per_access: 9216,
            bytes_saved: 1024,
            throughput: Throughput {
                units: rate,
                bytes: 9216 * rate,
                allocations_avoided: 0,
                secs: 1.0,
            },
        };
        let points = [point(0, "flat", 100), point(4, "flat", 150)];
        let json = to_json(&points, 200);
        assert!(json.contains("\"flat_speedup_treetop4_over_0\": 1.500"));
        assert!(json.contains("\"treetop_levels\": 4"));
        assert!(json.contains("\"layout\": \"flat\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
