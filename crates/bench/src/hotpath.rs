//! The ORAM-access hot-path kernels behind `proram-bench hotpath`.
//!
//! Two kernels drive a `PathOram` directly — no cache hierarchy, no
//! workload model — so their throughput isolates the controller + path
//! engine (`opaque`) and the same plus the encrypted byte-level image
//! (`encrypted`). `proram-bench hotpath` measures both and writes
//! `BENCH_hotpath.json` with the pre-optimization baseline alongside,
//! so the speedup of the allocation-free hot path stays auditable.

use crate::microbench::Throughput;
use proram_mem::{AccessKind, BlockAddr};
use proram_oram::{OramConfig, PathOram};
use proram_stats::{Rng64, Xoshiro256};
use std::time::Instant;

/// Data blocks in the kernel tree (2^14 => 14 levels at Z=3).
pub(crate) const NUM_BLOCKS: u64 = 1 << 14;
/// Accesses executed before timing starts.
pub(crate) const WARMUP: u64 = 2_000;
/// Accesses per timer check.
pub(crate) const CHUNK: u64 = 256;

/// A kernel's measurement next to the recorded pre-optimization
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelReport {
    /// Kernel name (`oram-access/opaque`, `oram-access/encrypted`).
    pub name: &'static str,
    /// Throughput of the seed implementation on the same harness,
    /// recorded before the hot-path optimization landed.
    pub before_accesses_per_sec: f64,
    /// Byte throughput of the seed implementation.
    pub before_bytes_per_sec: f64,
    /// The fresh measurement. `units` are logical ORAM accesses;
    /// `bytes` are path bytes moved (`OramStats::bytes_moved`);
    /// `allocations_avoided` counts path-scratch reuses — each one a
    /// `read_path`/`write_path` round trip that allocated nothing.
    pub after: Throughput,
}

impl KernelReport {
    /// `after / before` accesses-per-second ratio.
    pub fn speedup(&self) -> f64 {
        self.after.units_per_sec() / self.before_accesses_per_sec
    }
}

pub(crate) fn kernel_config(store_payloads: bool, crypto_threads: usize) -> OramConfig {
    OramConfig::builder()
        .num_data_blocks(NUM_BLOCKS)
        .entries_per_posmap_block(8)
        .store_payloads(store_payloads)
        .trace_capacity(0)
        .crypto_threads(crypto_threads)
        .build()
        .expect("kernel configuration is valid")
}

/// Runs one kernel for roughly `ms` milliseconds of timed accesses.
pub fn run_kernel(store_payloads: bool, ms: u64) -> Throughput {
    run_kernel_threads(store_payloads, ms, 0)
}

/// [`run_kernel`] with the crypto pool armed: `threads` cooperating
/// threads re-encrypt each written path's buckets in parallel
/// (`0` disables the pool — the serial baseline). Statistics and the
/// encrypted image are byte-identical at any thread count; only
/// wall-clock time changes.
pub fn run_kernel_threads(store_payloads: bool, ms: u64, threads: usize) -> Throughput {
    let mut oram = PathOram::new(kernel_config(store_payloads, threads), 1);
    let mut rng = Xoshiro256::seed_from(2);
    for _ in 0..WARMUP {
        oram.try_access_block(BlockAddr(rng.next_below(NUM_BLOCKS)), AccessKind::Read)
            .unwrap();
    }
    let bytes_before = oram.oram_stats().bytes_moved;
    let reuse_before = oram.allocs_avoided();
    let start = Instant::now();
    let mut accesses = 0u64;
    loop {
        for _ in 0..CHUNK {
            oram.try_access_block(BlockAddr(rng.next_below(NUM_BLOCKS)), AccessKind::Read)
                .unwrap();
        }
        accesses += CHUNK;
        if start.elapsed().as_millis() >= u128::from(ms) {
            break;
        }
    }
    Throughput {
        units: accesses,
        bytes: oram.oram_stats().bytes_moved - bytes_before,
        allocations_avoided: oram.allocs_avoided() - reuse_before,
        secs: start.elapsed().as_secs_f64(),
    }
}

/// Measures both kernels against their recorded baselines.
///
/// The baseline numbers were captured on the seed implementation (PR 1)
/// with this exact harness — same tree, seeds, warmup and chunking —
/// immediately before the hot-path optimization, on the same class of
/// machine CI uses. `crypto_threads` arms the crypto pool
/// (`proram-bench hotpath --threads N`); the opaque kernel has no
/// encrypted image, so only the encrypted kernel's wall-clock moves.
pub fn measure(ms: u64, crypto_threads: usize) -> Vec<KernelReport> {
    vec![
        KernelReport {
            name: "oram-access/opaque",
            before_accesses_per_sec: 177_859.3,
            before_bytes_per_sec: 6.158e9,
            after: run_kernel_threads(false, ms, crypto_threads),
        },
        KernelReport {
            name: "oram-access/encrypted",
            before_accesses_per_sec: 22_760.3,
            before_bytes_per_sec: 7.878e8,
            after: run_kernel_threads(true, ms, crypto_threads),
        },
    ]
}

/// Renders the reports as the `BENCH_hotpath.json` document.
pub fn to_json(reports: &[KernelReport], ms: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"oram-access hot path\",\n");
    out.push_str("  \"harness\": \"proram-bench hotpath\",\n");
    out.push_str(&format!("  \"measure_ms\": {ms},\n"));
    out.push_str(&format!(
        "  \"config\": {{\"num_data_blocks\": {NUM_BLOCKS}, \"entries_per_posmap_block\": 8, \"warmup_accesses\": {WARMUP}}},\n"
    ));
    out.push_str("  \"kernels\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!(
            "      \"before\": {{\"accesses_per_sec\": {:.1}, \"bytes_per_sec\": {:.4e}}},\n",
            r.before_accesses_per_sec, r.before_bytes_per_sec
        ));
        out.push_str(&format!(
            "      \"after\": {{\"accesses_per_sec\": {:.1}, \"bytes_per_sec\": {:.4e}, \"timed_accesses\": {}, \"allocations_avoided\": {}}},\n",
            r.after.units_per_sec(),
            r.after.bytes_per_sec(),
            r.after.units,
            r.after.allocations_avoided
        ));
        out.push_str(&format!("      \"speedup\": {:.3}\n", r.speedup()));
        out.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_runs_and_reuses_scratch() {
        let r = run_kernel(false, 30);
        assert!(r.units >= CHUNK);
        assert!(r.units_per_sec() > 0.0);
        assert!(r.bytes_per_sec() > 0.0);
        // Every timed round trip after warmup reuses the scratch.
        assert!(r.allocations_avoided >= r.units);
    }

    #[test]
    fn json_is_shaped_like_a_report() {
        let reports = [KernelReport {
            name: "oram-access/opaque",
            before_accesses_per_sec: 100.0,
            before_bytes_per_sec: 1.0e6,
            after: Throughput {
                units: 512,
                bytes: 5_120_000,
                allocations_avoided: 1024,
                secs: 2.048,
            },
        }];
        let json = to_json(&reports, 1000);
        assert!(json.contains("\"speedup\": 2.500"));
        assert!(json.contains("\"allocations_avoided\": 1024"));
        assert!(json.contains("oram-access/opaque"));
        // Balanced braces as a crude well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
