//! A std-only parallel job scheduler for the experiment harness.
//!
//! Experiments are embarrassingly parallel — every `runner::run_spec`
//! call is a pure function of `(spec, scale, config)` — so the harness
//! fans independent runs over a fixed worker pool. Results come back in
//! submission order, and each unit is computed by exactly one worker
//! from the same inputs it would see serially, so the assembled tables
//! are byte-identical to a serial run regardless of the job count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on up to `jobs` worker threads, preserving
/// input order in the output.
///
/// `jobs <= 1` (or a single item) runs inline on the caller's thread
/// with no thread or lock overhead — the serial path is not just
/// equivalent but literally the same sequence of calls. A panic in any
/// worker propagates to the caller once all workers have stopped.
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Each slot carries its input in and its result out; workers claim
    // slots by atomically taking the next index.
    let slots: Vec<Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|item| Mutex::new((Some(item), None)))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let input = slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .0
                        .take()
                        .expect("job claimed twice");
                    let output = f(input);
                    slots[i].lock().expect("job slot poisoned").1 = Some(output);
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload reaches the caller
        // intact instead of the scope's generic panic message.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot poisoned")
                .1
                .expect("worker completed every claimed job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map(4, (0..100).collect(), |x: u64| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let f = |x: u64| {
            x.wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407)
        };
        assert_eq!(parallel_map(1, items.clone(), f), parallel_map(8, items, f));
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(4, Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_items() {
        let out = parallel_map(64, vec![1u64, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_jobs_runs_inline() {
        let out = parallel_map(0, vec![5u64], |x| x);
        assert_eq!(out, vec![5]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        parallel_map(2, vec![1u64, 2, 3, 4], |x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
