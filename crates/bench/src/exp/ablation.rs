//! Ablations beyond the paper's figures: the extensions DESIGN.md calls
//! out (strided super blocks, Section 6.2; treetop caching from the
//! baseline's design space \[25\]; PLB sizing for the unified position
//! map).

use crate::common;
use crate::exp::RunCtx;
use proram_core::SchemeConfig;
use proram_sim::runner;
use proram_stats::{table, Table};
use proram_workloads::synthetic::StridedScan;
use proram_workloads::{suite, Scale, Suite};

/// Strided super blocks on a strided scan: the contiguous scheme finds
/// nothing; the stride-matched scheme prefetches like the sequential
/// case.
pub fn strided_super_blocks(scale: Scale) -> Table {
    let mut t = Table::new(&["scheme", "speedup", "prefetch_hits", "norm_accesses"])
        .with_title("Ablation: strided super blocks (Section 6.2 extension), 8-block-stride scan");
    // 8-block (1 KiB) stride over a footprint sized for several sweeps.
    let footprint = (scale.ops * 1024 / 3).clamp(2 << 20, 16 << 20);
    let build = || StridedScan::new(footprint, 1024, scale.ops, scale.seed);
    let schemes: Vec<(&str, SchemeConfig)> = vec![
        ("oram", SchemeConfig::baseline()),
        ("dyn_contig", SchemeConfig::dynamic(2)),
        (
            "dyn_stride8",
            SchemeConfig::dynamic(2).with_super_block_stride(8),
        ),
    ];
    let mut baseline = None;
    for (name, scheme) in schemes {
        let m = common::run_built(build, &common::oram_config(scheme));
        let base = baseline.get_or_insert_with(|| m.clone());
        t.row(&[
            name.to_owned(),
            table::pct(m.speedup_over(base)),
            m.backend.prefetch_hits.to_string(),
            table::f3(m.norm_memory_accesses(base)),
        ]);
    }
    t
}

/// Treetop caching sweep: on-chip top levels shorten the paid path.
pub fn treetop_caching(scale: Scale) -> Table {
    let mut t = Table::new(&["treetop_levels", "oram", "dyn"])
        .with_title("Ablation: treetop caching (completion time normalized to 0 levels)");
    let spec = suite::specs(Suite::Splash2)
        .into_iter()
        .find(|s| s.name == "ocean_c")
        .expect("registered");
    let run = |levels: u32, scheme: SchemeConfig| {
        let mut cfg = common::oram_config(scheme);
        cfg.oram.treetop_levels = levels;
        runner::run_spec(spec, scale, &cfg)
    };
    let base_oram = run(0, SchemeConfig::baseline());
    let base_dyn = run(0, SchemeConfig::dynamic(2));
    for levels in [0u32, 2, 4, 6] {
        let oram = run(levels, SchemeConfig::baseline());
        let dynamic = run(levels, SchemeConfig::dynamic(2));
        t.row(&[
            levels.to_string(),
            table::f3(oram.norm_completion_time(&base_oram)),
            table::f3(dynamic.norm_completion_time(&base_dyn)),
        ]);
    }
    t
}

/// PLB capacity sweep: the unified position map's on-chip cache governs
/// how many extra tree accesses each miss costs.
pub fn plb_sizing(scale: Scale) -> Table {
    let mut t = Table::new(&["plb_blocks", "posmap_per_demand", "norm_time"])
        .with_title("Ablation: PLB capacity (baseline ORAM on a scattered workload)");
    let spec = suite::specs(Suite::Spec06)
        .into_iter()
        .find(|s| s.name == "mcf")
        .expect("registered");
    let run = |blocks: usize| {
        let mut cfg = common::oram_config(SchemeConfig::baseline());
        cfg.oram.plb_blocks = blocks;
        runner::run_spec(spec, scale, &cfg)
    };
    let base = run(64);
    for blocks in [4usize, 16, 64, 256] {
        let m = run(blocks);
        let per_demand = if m.demand_fetches == 0 {
            0.0
        } else {
            m.backend.posmap_accesses as f64 / m.demand_fetches as f64
        };
        t.row(&[
            blocks.to_string(),
            table::f3(per_demand),
            table::f3(m.norm_completion_time(&base)),
        ]);
    }
    t
}

/// Adaptive O_int (dynamic timing protection, \[9\]): performance and
/// leakage against fixed intervals.
pub fn adaptive_interval(scale: Scale) -> Table {
    use proram_core::SuperBlockOram;
    use proram_mem::{AdaptivePeriodic, AdaptivePeriodicConfig, MemoryBackend};
    use proram_sim::RunMetrics;

    let mut t = Table::new(&[
        "protection",
        "cycles_vs_fixed100",
        "dummy_accesses",
        "leaked_bits",
    ])
    .with_title("Ablation: fixed vs adaptive O_int timing protection");
    let spec = suite::specs(Suite::Splash2)
        .into_iter()
        .find(|s| s.name == "cholesky")
        .expect("registered");

    // Fixed intervals go through the standard runner.
    let fixed = |interval: u64| -> RunMetrics {
        let mut cfg = common::oram_config(SchemeConfig::baseline());
        cfg.periodic_interval = Some(interval);
        runner::run_spec(spec, scale, &cfg)
    };
    let f100 = fixed(100);
    let f800 = fixed(800);

    // The adaptive wrapper is driven directly (it is not part of the
    // paper's configurations, so the system builder does not know it).
    let mut workload = suite::build(spec, scale);
    let blocks = (workload.footprint_bytes().div_ceil(128))
        .next_power_of_two()
        .max(1 << 14);
    let oram_cfg = common::oram_config(SchemeConfig::baseline())
        .oram
        .to_builder()
        .num_data_blocks(blocks)
        .build()
        .expect("valid ablation configuration");
    let backend = SuperBlockOram::new(oram_cfg, SchemeConfig::baseline(), scale.seed);
    let mut adaptive = AdaptivePeriodic::new(backend, AdaptivePeriodicConfig::default());
    let mut now = 0u64;
    let mut ops = 0u64;
    while let Some(op) = workload.next_op() {
        now += u64::from(op.comp_cycles);
        ops += 1;
        // Memory-side only: every 16th op goes to memory (a crude LLC),
        // enough to exercise the interval controller end to end.
        if ops.is_multiple_of(16) {
            let req = proram_mem::MemRequest::read(proram_mem::BlockAddr(op.addr / 128));
            now = adaptive.access(now, req, &proram_mem::NoProbe).complete_at;
        }
    }
    t.row(&[
        "fixed O_int=100".to_owned(),
        table::f3(1.0),
        f100.backend.dummy_accesses.to_string(),
        "0".to_owned(),
    ]);
    t.row(&[
        "fixed O_int=800".to_owned(),
        table::f3(f800.cycles as f64 / f100.cycles as f64),
        f800.backend.dummy_accesses.to_string(),
        "0".to_owned(),
    ]);
    t.row(&[
        "adaptive ladder".to_owned(),
        "-".to_owned(),
        adaptive.stats().dummy_accesses.to_string(),
        format!("{:.1}", adaptive.leaked_bits()),
    ]);
    t
}

/// Super blocks on a different tree ORAM (paper Section 6.1): the same
/// dynamic controller on the Shi-style backend, driven by a sequential
/// workload, against its own baseline.
pub fn shi_generality(scale: Scale) -> Table {
    use proram_core::SuperBlockOram;
    use proram_mem::{BlockAddr, MemRequest, MemoryBackend};
    use proram_oram::{ShiOram, ShiOramConfig};
    use proram_stats::{Rng64, Xoshiro256};

    let mut t = Table::new(&["backend+scheme", "tree_accesses", "prefetch_hits"])
        .with_title("Ablation: super blocks generalize beyond Path ORAM (Section 6.1)");
    let blocks = 1u64 << 12;
    let run = |scheme: SchemeConfig| {
        let backend = ShiOram::new(
            ShiOramConfig {
                num_data_blocks: blocks,
                ..Default::default()
            },
            scale.seed,
        );
        let mut oram = SuperBlockOram::from_backend(backend, scheme);
        // Drive a raw sequential-with-reuse request stream (no cache
        // model: this isolates the ORAM-level effect).
        let mut rng = Xoshiro256::seed_from(scale.seed);
        let mut resident: std::collections::VecDeque<u64> = Default::default();
        struct Probe(std::collections::HashSet<u64>);
        impl proram_mem::CacheProbe for Probe {
            fn contains(&self, b: BlockAddr) -> bool {
                self.0.contains(&b.0)
            }
        }
        let mut probe = Probe(Default::default());
        let n = scale.ops / 8;
        for i in 0..n {
            let addr = if rng.next_bool(0.8) {
                BlockAddr(i % blocks) // sequential sweep
            } else {
                BlockAddr(rng.next_below(blocks))
            };
            if probe.0.contains(&addr.0) {
                oram.note_llc_hit(addr);
                continue;
            }
            let out = oram.access(i, MemRequest::read(addr), &probe);
            for f in out.fills {
                probe.0.insert(f.block.0);
                resident.push_back(f.block.0);
                if resident.len() > 2048 {
                    let v = resident.pop_front().expect("nonempty");
                    probe.0.remove(&v);
                    oram.note_llc_eviction(BlockAddr(v));
                }
            }
        }
        let label = oram.label().to_owned();
        let stats = MemoryBackend::stats(&oram);
        (label, stats)
    };
    for scheme in [SchemeConfig::baseline(), SchemeConfig::dynamic(2)] {
        let (label, stats) = run(scheme);
        t.row(&[
            label,
            stats.physical_accesses.to_string(),
            stats.prefetch_hits.to_string(),
        ]);
    }
    t
}

/// Stash occupancy under the three schemes: the quantity background
/// eviction exists to bound (cf. the stash design space in \[25\]).
pub fn stash_occupancy(scale: Scale) -> Table {
    use proram_core::SuperBlockOram;
    use proram_mem::{BlockAddr, MemRequest, MemoryBackend};
    use proram_stats::{Rng64, Xoshiro256};

    let mut t = Table::new(&["scheme", "p50", "p99", "peak", "bg_evictions"])
        .with_title("Ablation: stash occupancy during a mixed workload (Z=3)");
    for scheme in [
        SchemeConfig::baseline(),
        SchemeConfig::static_scheme(2),
        SchemeConfig::dynamic(2),
    ] {
        let mut cfg = common::oram_config(scheme.clone()).oram;
        cfg.num_data_blocks = 1 << 13;
        let mut oram = SuperBlockOram::new(cfg, scheme, scale.seed);
        let mut rng = Xoshiro256::seed_from(scale.seed);
        // A small resident-set model so the dynamic scheme sees locality
        // evidence and actually merges.
        struct Probe(std::collections::HashSet<u64>);
        impl proram_mem::CacheProbe for Probe {
            fn contains(&self, b: BlockAddr) -> bool {
                self.0.contains(&b.0)
            }
        }
        let mut probe = Probe(Default::default());
        let mut order: std::collections::VecDeque<u64> = Default::default();
        let n = (scale.ops / 10).max(2_000);
        for i in 0..n {
            let addr = if rng.next_bool(0.6) {
                BlockAddr(i % (1 << 12))
            } else {
                BlockAddr(rng.next_below(1 << 13))
            };
            let out = oram.access(i, MemRequest::read(addr), &probe);
            for f in out.fills {
                if probe.0.insert(f.block.0) {
                    order.push_back(f.block.0);
                }
                if order.len() > 1024 {
                    let v = order.pop_front().expect("nonempty");
                    probe.0.remove(&v);
                    oram.note_llc_eviction(BlockAddr(v));
                }
            }
        }
        let hist = oram.oram().stash().occupancy_histogram().clone();
        let stats = oram.oram().oram_stats();
        t.row(&[
            oram.label().to_owned(),
            hist.quantile(0.5).unwrap_or(0).to_string(),
            hist.quantile(0.99).unwrap_or(0).to_string(),
            oram.oram().stash().peak().to_string(),
            stats.background_evictions.to_string(),
        ]);
    }
    t
}

/// Multi-core scaling (paper Section 2.6): "a single ORAM access
/// saturates the available DRAM bandwidth, it brings no benefits to
/// serve multiple ORAM requests in parallel". Throughput is trace ops
/// per kilocycle, summed over cores.
pub fn multicore_scaling(scale: Scale) -> Table {
    use proram_sim::{runner, MemoryKind, SystemConfig};
    use proram_workloads::synthetic::LocalityMix;

    let mut t = Table::new(&[
        "cores",
        "dram_ops_per_kcycle",
        "dram_core_cpi",
        "oram_ops_per_kcycle",
        "oram_core_cpi",
    ])
    .with_title("Ablation: multi-core throughput scaling (Section 2.6)");
    let ops = (scale.ops / 4).max(2_000);
    // Returns (aggregate throughput, per-core CPI range) — the range
    // shows how evenly the shared memory controller serves the tiles.
    let run = |kind: MemoryKind, cores: usize| {
        let cfg = SystemConfig::paper_default(kind);
        let m = runner::run_multicore(&cfg, cores, 0, |id| {
            Box::new(LocalityMix::with_stride(
                1 << 20,
                0.8,
                ops,
                scale.seed + id as u64,
                128,
            ))
        });
        let cpis: Vec<f64> = m.per_core.iter().map(|c| c.cpi()).collect();
        let lo = cpis.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = cpis.iter().cloned().fold(0.0, f64::max);
        let throughput = m.trace_ops as f64 * 1000.0 / m.cycles as f64;
        (throughput, format!("{lo:.1}..{hi:.1}"))
    };
    for cores in [1usize, 2, 4] {
        let (dram_tp, dram_cpi) = run(MemoryKind::Dram, cores);
        let (oram_tp, oram_cpi) = run(MemoryKind::Oram(SchemeConfig::baseline()), cores);
        t.row(&[
            cores.to_string(),
            table::f3(dram_tp),
            dram_cpi,
            table::f3(oram_tp),
            oram_cpi,
        ]);
    }
    t
}

/// Runs all ablations. The seven studies are independent, so they fan
/// over the worker pool; tables come back in presentation order.
pub fn run(ctx: RunCtx) -> Vec<Table> {
    let studies: Vec<fn(Scale) -> Table> = vec![
        strided_super_blocks,
        treetop_caching,
        plb_sizing,
        adaptive_interval,
        shi_generality,
        stash_occupancy,
        multicore_scaling,
    ];
    crate::jobs::parallel_map(ctx.jobs, studies, |study| study(ctx.scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            ops: 1200,
            warmup_ops: 200,
            footprint_scale: 0.02,
            seed: 1,
        }
    }

    #[test]
    fn strided_table_has_three_schemes() {
        assert_eq!(strided_super_blocks(tiny()).len(), 3);
    }

    #[test]
    fn treetop_sweep_has_four_points() {
        assert_eq!(treetop_caching(tiny()).len(), 4);
    }

    #[test]
    fn plb_sweep_has_four_points() {
        assert_eq!(plb_sizing(tiny()).len(), 4);
    }

    #[test]
    fn adaptive_interval_reports_leakage() {
        let t = adaptive_interval(tiny());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn multicore_scaling_has_three_rows() {
        let t = multicore_scaling(Scale {
            ops: 4000,
            warmup_ops: 0,
            footprint_scale: 0.02,
            seed: 3,
        });
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn stash_occupancy_reports_three_schemes() {
        let t = stash_occupancy(Scale {
            ops: 3000,
            warmup_ops: 0,
            footprint_scale: 0.02,
            seed: 2,
        });
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn shi_generality_compares_two_schemes() {
        let t = shi_generality(Scale {
            ops: 4000,
            warmup_ops: 0,
            footprint_scale: 0.02,
            seed: 1,
        });
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(s.contains("oram_shi"));
        assert!(s.contains("dyn_shi"));
    }
}
