//! The serialization ablation: reproduce the paper's Section 2.6
//! observation — one ORAM controller serializes every request, so extra
//! cores buy almost nothing — then relax it with address-partitioned
//! controller shards ([`proram_sim::ShardedOram`]).
//!
//! `shards=1` must track the stock single controller; larger shard
//! counts recover multi-core scaling in proportion to how much of the
//! wall was controller serialization rather than the access pattern.

use crate::exp::RunCtx;
use crate::jobs;
use proram_core::SchemeConfig;
use proram_sim::{runner, MemoryKind, SystemConfig};
use proram_stats::{table, Table};
use proram_workloads::synthetic::LocalityMix;
use proram_workloads::Scale;

/// Core counts swept (rows).
const CORES: [usize; 3] = [1, 2, 4];
/// Shard counts swept (columns after the stock controller).
const SHARDS: [usize; 3] = [1, 2, 4];

fn throughput(kind: MemoryKind, cores: usize, scale: Scale) -> f64 {
    let ops = (scale.ops / 4).clamp(1_000, 8_000);
    let cfg = SystemConfig::paper_default(kind);
    let m = runner::run_multicore(&cfg, cores, 0, |id| {
        Box::new(LocalityMix::with_stride(
            1 << 20,
            0.8,
            ops,
            scale.seed + id as u64,
            128,
        ))
    });
    m.trace_ops as f64 * 1000.0 / m.cycles as f64
}

/// Regenerates the serialization-ablation table: aggregate throughput
/// (trace ops per kilocycle) of the stock serialized controller next to
/// `OramShards(N)` for every core count.
pub fn run(ctx: RunCtx) -> Vec<Table> {
    let mut t = Table::new(&["cores", "oram", "oram_sh1", "oram_sh2", "oram_sh4"]).with_title(
        "Serialization ablation (Section 2.6): one controller caps scaling; shards relax it",
    );
    // All (core count, memory kind) cells are independent runs: fan them
    // over the worker pool, then reassemble rows in sweep order.
    let mut cells = Vec::new();
    for &cores in &CORES {
        cells.push((cores, MemoryKind::Oram(SchemeConfig::baseline())));
        for &n in &SHARDS {
            cells.push((cores, MemoryKind::OramShards(SchemeConfig::baseline(), n)));
        }
    }
    let results = jobs::parallel_map(ctx.jobs, cells, |(cores, kind)| {
        throughput(kind, cores, ctx.scale)
    });
    let per_row = 1 + SHARDS.len();
    for (i, &cores) in CORES.iter().enumerate() {
        let row = &results[i * per_row..(i + 1) * per_row];
        let mut cols = vec![cores.to_string()];
        cols.extend(row.iter().map(|tp| table::f3(*tp)));
        t.row(&cols);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sweeps_all_core_counts() {
        let ctx = RunCtx::with_jobs(
            Scale {
                ops: 4_000,
                warmup_ops: 0,
                footprint_scale: 0.02,
                seed: 3,
            },
            2,
        );
        let tables = run(ctx);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), CORES.len());
        let s = tables[0].to_string();
        assert!(s.contains("oram_sh4"));
    }
}
