//! Fault sweep: detection rate, recovery rate and latency overhead of
//! the ORAM's fault machinery across fault class x injection rate.
//!
//! Each cell runs a seeded read stream against a [`PathOram`] whose
//! backing store injects one fault class at one rate, with the periodic
//! scrub and the stash hard capacity engaged. The experiment asserts the
//! robustness contract directly: **zero undetected corruptions** in every
//! cell (the injector's ground-truth `undetected` counter stays zero) and
//! a zero-rate injector that is observationally identical to running with
//! no injector at all.

use crate::exp::RunCtx;
use crate::jobs::parallel_map;
use proram_mem::{AccessKind, BlockAddr, FaultStats};
use proram_oram::{FaultClass, FaultConfig, OramConfig, PathOram};
use proram_stats::{table, Rng64, Table, Xoshiro256};

/// Data blocks in the swept tree: small enough that every cell runs in
/// milliseconds, large enough that paths overlap and rollbacks replay
/// genuinely stale buckets.
const NUM_BLOCKS: u64 = 256;
/// Injector seed; the access stream uses its own.
const INJECT_SEED: u64 = 0xFA17;

/// Write-fault rates swept per class (`transient` uses them per read
/// attempt instead of per write).
const RATES: [f64; 3] = [0.002, 0.01, 0.05];

struct CellOutcome {
    stats: FaultStats,
    /// Accesses that surfaced a typed error to the caller (degraded, not
    /// panicked).
    errored_accesses: u64,
    total_latency: u64,
}

fn run_cell(fault: Option<FaultConfig>, ops: u64) -> CellOutcome {
    let mut cfg = OramConfig::small_for_tests(NUM_BLOCKS);
    // Engage the whole robustness surface: periodic scrub plus a stash
    // hard capacity (emergency eviction before fail-stop).
    cfg.scrub_interval = 256;
    cfg.stash_hard_capacity = Some(cfg.stash_limit);
    cfg.fault = fault;
    let mut oram = PathOram::new(cfg, 42);
    let mut rng = Xoshiro256::seed_from(7);
    let mut errored_accesses = 0u64;
    let mut total_latency = 0u64;
    for _ in 0..ops {
        let addr = BlockAddr(rng.next_below(NUM_BLOCKS));
        match oram.try_access_block(addr, AccessKind::Read) {
            Ok(report) => total_latency += report.latency,
            Err(_) => errored_accesses += 1,
        }
    }
    CellOutcome {
        stats: oram.fault_stats(),
        errored_accesses,
        total_latency,
    }
}

fn row_cells(
    class_name: &str,
    rate: f64,
    cell: &CellOutcome,
    baseline_latency: u64,
) -> Vec<String> {
    let s = cell.stats;
    vec![
        class_name.to_owned(),
        format!("{rate}"),
        s.total_injected().to_string(),
        s.masked_by_overwrite.to_string(),
        s.total_detected().to_string(),
        s.recovered.to_string(),
        (s.unrecovered + cell.errored_accesses).to_string(),
        s.undetected.to_string(),
        s.detection_rate()
            .map_or_else(|| "-".to_owned(), table::pct),
        s.transient_retries.to_string(),
        s.scrub_runs.to_string(),
        s.emergency_evictions.to_string(),
        table::f3(cell.total_latency as f64 / baseline_latency as f64),
    ]
}

/// Runs the sweep and builds the detection/recovery/overhead table.
///
/// # Panics
///
/// Panics if any injected corruption survives undetected (a false
/// negative) or if the zero-rate injector perturbs the fault-free run —
/// the assertions CI's fault smoke relies on.
pub fn run(ctx: RunCtx) -> Vec<Table> {
    // Enough accesses that even the lowest rate injects faults, scaled
    // down for --scale quick.
    let ops = (ctx.scale.ops / 10).clamp(2_000, 6_000);
    let baseline = run_cell(None, ops);
    assert!(baseline.total_latency > 0, "baseline did not execute");

    // Zero-rate identity: a structurally present but silent injector must
    // not change anything observable.
    let silent = run_cell(Some(FaultConfig::silent(INJECT_SEED)), ops);
    assert_eq!(
        silent.total_latency, baseline.total_latency,
        "zero-rate injector changed the access timeline"
    );
    assert_eq!(
        silent.stats, baseline.stats,
        "zero-rate injector changed fault counters"
    );

    let grid: Vec<(FaultClass, f64)> = FaultClass::ALL
        .into_iter()
        .flat_map(|class| RATES.into_iter().map(move |rate| (class, rate)))
        .collect();
    let outcomes = parallel_map(ctx.jobs, grid, |(class, rate)| {
        let cell = run_cell(Some(FaultConfig::single(class, rate, INJECT_SEED)), ops);
        (class, rate, cell)
    });

    let mut t = Table::new(&[
        "class",
        "rate",
        "injected",
        "masked",
        "detected",
        "recovered",
        "unrecovered",
        "undetected",
        "detect%",
        "retries",
        "scrubs",
        "emerg_evict",
        "latency_x",
    ])
    .with_title(format!(
        "Fault sweep: detection / recovery / overhead ({ops} reads, {NUM_BLOCKS} blocks)"
    ));
    t.row(&row_cells("none", 0.0, &baseline, baseline.total_latency));
    for (class, rate, cell) in &outcomes {
        assert_eq!(
            cell.stats.undetected,
            0,
            "false negative: {} at rate {rate} survived an authenticated read",
            class.name()
        );
        assert!(
            cell.stats.total_injected() > 0,
            "{} at rate {rate} injected nothing; sweep too short",
            class.name()
        );
        t.row(&row_cells(
            class.name(),
            *rate,
            cell,
            baseline.total_latency,
        ));
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proram_workloads::Scale;

    #[test]
    fn sweep_detects_everything_and_is_silent_at_rate_zero() {
        // run() itself asserts zero false negatives and the zero-rate
        // identity; this exercises both on the quick scale.
        let tables = run(RunCtx::serial(Scale::quick()));
        assert_eq!(tables.len(), 1);
        // One baseline row plus every class x rate cell.
        assert_eq!(tables[0].len(), 1 + FaultClass::ALL.len() * RATES.len());
    }

    #[test]
    fn corruption_cells_recover() {
        let ops = 2_000;
        let cell = run_cell(
            Some(FaultConfig::single(FaultClass::BitFlip, 0.05, INJECT_SEED)),
            ops,
        );
        assert!(cell.stats.injected_bit_flips > 0);
        assert_eq!(cell.stats.undetected, 0);
        assert!(cell.stats.recovered > 0, "repairs must succeed");
        assert_eq!(cell.errored_accesses, 0, "recovery keeps accesses alive");
    }
}
