//! Shared machinery for the sensitivity sweeps of Figures 11-14: run
//! oram / stat / dyn (and the DRAM reference) under a swept system
//! parameter and report completion time normalized to DRAM.

use crate::common;
use crate::exp::RunCtx;
use crate::jobs::parallel_map;
use proram_core::SchemeConfig;
use proram_sim::{runner, SystemConfig};
use proram_stats::{table, Table};
use proram_workloads::Suite;

/// One point of a sweep: a label and a configuration transform.
pub struct SweptConfig {
    /// Row label (e.g. `"8GB/s"`, `"Z=4"`).
    pub label: String,
    /// Applies the swept parameter to a base configuration. `Send +
    /// Sync` so sweep points can be shared across worker threads.
    pub apply: Box<dyn Fn(SystemConfig) -> SystemConfig + Send + Sync>,
}

impl std::fmt::Debug for SweptConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SweptConfig({})", self.label)
    }
}

/// Runs `benchmarks x sweeps`, producing one row per combination with
/// oram/stat/dyn completion times normalized to the DRAM run under the
/// same swept parameter.
///
/// Every `(benchmark, sweep point)` cell is an independent set of four
/// runs, so the grid fans over `ctx.jobs` workers; rows are assembled
/// in grid order afterwards, identical to a serial run.
pub fn norm_completion_rows(
    title: &str,
    benchmarks: &[&str],
    sweeps: Vec<SweptConfig>,
    ctx: RunCtx,
) -> Table {
    let mut t = Table::new(&["bench", "sweep", "oram", "stat", "dyn"]).with_title(title);
    let combos: Vec<_> = common::specs(Suite::Splash2)
        .into_iter()
        .filter(|s| benchmarks.contains(&s.name))
        .flat_map(|spec| sweeps.iter().map(move |sweep| (spec, sweep)))
        .collect();
    let rows = parallel_map(ctx.jobs, combos, |(spec, sweep)| {
        let scale = ctx.scale;
        let dram_cfg = (sweep.apply)(common::dram_config());
        let dram = runner::run_spec(spec, scale, &dram_cfg);
        let mut cells = vec![spec.name.to_owned(), sweep.label.clone()];
        for scheme in [
            SchemeConfig::baseline(),
            SchemeConfig::static_scheme(2),
            SchemeConfig::dynamic(2),
        ] {
            let cfg = (sweep.apply)(common::oram_config(scheme));
            let m = runner::run_spec(spec, scale, &cfg);
            cells.push(table::f3(m.norm_completion_time(&dram)));
        }
        cells
    });
    for cells in rows {
        t.row(&cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use proram_workloads::Scale;

    fn tiny() -> RunCtx {
        RunCtx::serial(Scale {
            ops: 500,
            warmup_ops: 0,
            footprint_scale: 0.02,
            seed: 1,
        })
    }

    #[test]
    fn sweep_produces_expected_grid() {
        let sweeps = vec![SweptConfig {
            label: "base".into(),
            apply: Box::new(|c| c),
        }];
        let t = norm_completion_rows("test", &["fft"], sweeps, tiny());
        assert_eq!(t.len(), 1);
        let s = t.to_string();
        assert!(s.contains("fft"));
    }

    #[test]
    fn parallel_grid_matches_serial() {
        let mk = || {
            vec![
                SweptConfig {
                    label: "a".into(),
                    apply: Box::new(|c| c),
                },
                SweptConfig {
                    label: "b".into(),
                    apply: Box::new(|mut c: SystemConfig| {
                        c.oram.z = 4;
                        c
                    }),
                },
            ]
        };
        let serial = norm_completion_rows("t", &["fft"], mk(), tiny());
        let parallel = norm_completion_rows("t", &["fft"], mk(), RunCtx { jobs: 4, ..tiny() });
        assert_eq!(serial.to_string(), parallel.to_string());
    }

    #[test]
    fn swept_config_debug() {
        let s = SweptConfig {
            label: "x".into(),
            apply: Box::new(|c| c),
        };
        assert!(format!("{s:?}").contains('x'));
    }
}
