//! Shared machinery for the sensitivity sweeps of Figures 11-14: run
//! oram / stat / dyn (and the DRAM reference) under a swept system
//! parameter and report completion time normalized to DRAM.

use crate::common;
use proram_core::SchemeConfig;
use proram_sim::{runner, SystemConfig};
use proram_stats::{table, Table};
use proram_workloads::{Scale, Suite};

/// One point of a sweep: a label and a configuration transform.
pub struct SweptConfig {
    /// Row label (e.g. `"8GB/s"`, `"Z=4"`).
    pub label: String,
    /// Applies the swept parameter to a base configuration.
    pub apply: Box<dyn Fn(SystemConfig) -> SystemConfig>,
}

impl std::fmt::Debug for SweptConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SweptConfig({})", self.label)
    }
}

/// Runs `benchmarks x sweeps`, producing one row per combination with
/// oram/stat/dyn completion times normalized to the DRAM run under the
/// same swept parameter.
pub fn norm_completion_rows(
    title: &str,
    benchmarks: &[&str],
    sweeps: Vec<SweptConfig>,
    scale: Scale,
) -> Table {
    let mut t = Table::new(&["bench", "sweep", "oram", "stat", "dyn"]).with_title(title);
    for spec in common::specs(Suite::Splash2)
        .into_iter()
        .filter(|s| benchmarks.contains(&s.name))
    {
        for sweep in &sweeps {
            let dram_cfg = (sweep.apply)(common::dram_config());
            let dram = runner::run_spec(spec, scale, &dram_cfg);
            let mut cells = vec![spec.name.to_owned(), sweep.label.clone()];
            for scheme in [
                SchemeConfig::baseline(),
                SchemeConfig::static_scheme(2),
                SchemeConfig::dynamic(2),
            ] {
                let cfg = (sweep.apply)(common::oram_config(scheme));
                let m = runner::run_spec(spec, scale, &cfg);
                cells.push(table::f3(m.norm_completion_time(&dram)));
            }
            t.row(&cells);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_expected_grid() {
        let sweeps = vec![SweptConfig {
            label: "base".into(),
            apply: Box::new(|c| c),
        }];
        let t = norm_completion_rows(
            "test",
            &["fft"],
            sweeps,
            Scale {
                ops: 500,
                warmup_ops: 0,
                footprint_scale: 0.02,
                seed: 1,
            },
        );
        assert_eq!(t.len(), 1);
        let s = t.to_string();
        assert!(s.contains("fft"));
    }

    #[test]
    fn swept_config_debug() {
        let s = SweptConfig {
            label: "x".into(),
            apply: Box::new(|c| c),
        };
        assert!(format!("{s:?}").contains('x'));
    }
}
