//! Table 1: system configuration.

use crate::common;
use proram_core::SchemeConfig;
use proram_oram::{OramConfig, OramTiming};
use proram_stats::Table;

use crate::exp::RunCtx;

/// Prints the configuration the simulator runs with, alongside the
/// paper's values.
pub fn run(_ctx: RunCtx) -> Vec<Table> {
    let cfg = common::oram_config(SchemeConfig::dynamic(2));
    let mut t = Table::new(&["parameter", "paper", "this reproduction"])
        .with_title("Table 1: System Configuration");
    t.row(&[
        "core model",
        "1 GHz, in order",
        "1 GHz, in order (trace-driven)",
    ]);
    t.row(&[
        "L1 I/D cache",
        "32 KB, 4-way",
        &format!(
            "{} KB, {}-way",
            cfg.hierarchy.l1.capacity_bytes / 1024,
            cfg.hierarchy.l1.ways
        ),
    ]);
    t.row(&[
        "shared L2",
        "512 KB per tile, 8-way",
        &format!(
            "{} KB, {}-way",
            cfg.hierarchy.l2.capacity_bytes / 1024,
            cfg.hierarchy.l2.ways
        ),
    ]);
    t.row(&[
        "cacheline (block)",
        "128 bytes",
        &format!("{} bytes", cfg.line_bytes()),
    ]);
    t.row(&[
        "DRAM bandwidth",
        "16 GB/s",
        &format!("{} GB/s", cfg.dram.bytes_per_cycle),
    ]);
    t.row(&[
        "DRAM latency",
        "100 cycles",
        &format!("{} cycles", cfg.dram.latency_cycles),
    ]);
    t.row(&["ORAM capacity", "8 GB", "sized per workload (scaled)"]);
    t.row(&[
        "ORAM hierarchies",
        "4",
        &format!("{}", cfg.oram.on_tree_hierarchies + 2),
    ]);
    t.row(&[
        "ORAM basic block",
        "128 bytes",
        &format!("{} bytes", cfg.oram.timing.block_bytes),
    ]);
    // Full-scale latency check: 8 GB => 2^26 data blocks => 26-level tree.
    let full = OramConfig::builder()
        .num_data_blocks(1 << 26)
        .build()
        .expect("valid full-scale configuration");
    let full_latency = OramTiming::paper_calibrated().path_cycles(full.tree_levels(), full.z);
    t.row(&[
        "Path ORAM latency",
        "2364 cycles",
        &format!(
            "{full_latency} cycles at full scale / {} at sim scale",
            cfg.oram.path_cycles()
        ),
    ]);
    t.row(&["Z", "3", &format!("{}", cfg.oram.z)]);
    t.row(&["max super block size", "2", "2"]);
    t.row(&["stash size", "100", &format!("{}", cfg.oram.stash_limit)]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_mentions_key_parameters() {
        let t = &run(RunCtx::serial(proram_workloads::Scale::quick()))[0];
        let s = t.to_string();
        assert!(s.contains("Path ORAM latency"));
        assert!(s.contains("2364"));
        assert!(s.contains("stash size"));
    }

    #[test]
    fn full_scale_latency_close_to_paper() {
        let full = OramConfig::builder()
            .num_data_blocks(1 << 26)
            .build()
            .expect("valid full-scale configuration");
        assert_eq!(full.tree_levels(), 26);
        let latency = OramTiming::paper_calibrated().path_cycles(26, 3);
        assert!((latency as f64 - 2364.0).abs() / 2364.0 < 0.02);
    }
}
