//! Figure 11: DRAM bandwidth sweep (4/8/16 GB/s).
//!
//! "The performance gain of the dynamic super block scheme is consistent
//! across all configurations for memory intensive benchmarks ... this
//! gain is orthogonal to the DRAM bandwidth."

use crate::exp::sweep::{norm_completion_rows, SweptConfig};
use crate::exp::RunCtx;
use proram_stats::Table;

/// Benchmarks of the paper's Figure 11.
pub const BENCHMARKS: &[&str] = &["ocean_c", "volrend"];

/// Runs the sweep: normalized completion time (vs DRAM at the same
/// bandwidth) for oram/stat/dyn.
pub fn run(ctx: RunCtx) -> Table {
    let sweeps: Vec<SweptConfig> = [4u32, 8, 16]
        .into_iter()
        .map(|gbps| SweptConfig {
            label: format!("{gbps}GB/s"),
            apply: Box::new(move |cfg| cfg.with_bandwidth_gbps(gbps)),
        })
        .collect();
    norm_completion_rows(
        "Figure 11: DRAM bandwidth sweep, completion time normalized to DRAM",
        BENCHMARKS,
        sweeps,
        ctx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_benchmarks_times_sweep_points() {
        let t = run(RunCtx::serial(proram_workloads::Scale {
            ops: 600,
            warmup_ops: 0,
            footprint_scale: 0.02,
            seed: 2,
        }));
        assert_eq!(t.len(), BENCHMARKS.len() * 3);
    }
}
