//! Figure 9: prefetch miss rates of the static and dynamic schemes.
//!
//! "Since the static super block scheme prefetches all the neighbor
//! blocks, the miss rate is very high for benchmarks that lack spatial
//! locality. On average, the dynamic super block scheme lowers the
//! overall prefetch miss rate."

use crate::common;
use crate::exp::RunCtx;
use crate::jobs::parallel_map;
use proram_stats::{table, Table};
use proram_workloads::Suite;

/// Runs the miss-rate comparison on one suite, skipping benchmarks whose
/// runs resolve no prefetches at all (the paper likewise drops
/// `water_ns`/`water_s`: "they are too compute bound and do not access
/// ORAM frequently").
pub fn run_suite(suite: Suite, ctx: RunCtx) -> Table {
    let mut t = Table::new(&["bench", "stat_miss_rate", "dyn_miss_rate"])
        .with_title(format!("Figure 9 ({}): prefetch miss rate", suite.name()));
    let mut stat_rates = Vec::new();
    let mut dyn_rates = Vec::new();
    let per_spec = parallel_map(ctx.jobs, common::specs(suite), |spec| {
        let (_oram, stat, dynamic) = common::run_three_schemes(spec, ctx.scale);
        (
            spec.name,
            stat.prefetch_miss_rate(),
            dynamic.prefetch_miss_rate(),
        )
    });
    for (name, stat_rate, dyn_rate) in per_spec {
        let Some(sm) = stat_rate else { continue };
        // The dynamic scheme may issue no prefetches on a no-locality
        // benchmark; count that as a 0% miss rate (it wasted nothing).
        let dm = dyn_rate.unwrap_or(0.0);
        stat_rates.push(sm);
        dyn_rates.push(dm);
        t.row(&[name, &table::f3(sm), &table::f3(dm)]);
    }
    if !stat_rates.is_empty() {
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        t.row(&[
            "avg",
            &table::f3(avg(&stat_rates)),
            &table::f3(avg(&dyn_rates)),
        ]);
    }
    t
}

/// Runs Figures 9a (Splash2) and 9b (SPEC06).
pub fn run(ctx: RunCtx) -> Vec<Table> {
    vec![
        run_suite(Suite::Splash2, ctx),
        run_suite(Suite::Spec06, ctx),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proram_workloads::Scale;

    #[test]
    fn rates_are_probabilities() {
        let t = run_suite(
            Suite::Dbms,
            RunCtx::serial(Scale {
                ops: 1500,
                warmup_ops: 0,
                footprint_scale: 0.02,
                seed: 3,
            }),
        );
        for line in t.to_string().lines().skip(2) {
            for cell in line.split_whitespace().skip(1) {
                if let Ok(v) = cell.parse::<f64>() {
                    assert!((0.0..=1.0).contains(&v), "miss rate {v} out of range");
                }
            }
        }
    }
}
