//! Figure 12: stash size sweep.
//!
//! "For super block schemes ... performance increases as stash size
//! becomes larger. The baseline ORAM does not change much."

use crate::exp::sweep::{norm_completion_rows, SweptConfig};
use crate::exp::RunCtx;
use proram_stats::Table;

/// Benchmarks of the paper's Figure 12.
pub const BENCHMARKS: &[&str] = &["ocean_c", "volrend"];

/// Stash sizes swept (blocks).
pub const STASH_SIZES: &[usize] = &[25, 50, 100, 200, 400];

/// Runs the sweep.
pub fn run(ctx: RunCtx) -> Table {
    let sweeps: Vec<SweptConfig> = STASH_SIZES
        .iter()
        .map(|&size| SweptConfig {
            label: format!("stash={size}"),
            apply: Box::new(move |mut cfg| {
                cfg.oram.stash_limit = size;
                cfg
            }),
        })
        .collect();
    norm_completion_rows(
        "Figure 12: stash size sweep, completion time normalized to DRAM",
        BENCHMARKS,
        sweeps,
        ctx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_size() {
        let t = run(RunCtx::serial(proram_workloads::Scale {
            ops: 400,
            warmup_ops: 0,
            footprint_scale: 0.02,
            seed: 2,
        }));
        assert_eq!(t.len(), BENCHMARKS.len() * STASH_SIZES.len());
    }
}
