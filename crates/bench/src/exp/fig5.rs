//! Figure 5: traditional data prefetching on DRAM vs ORAM.
//!
//! "Prefetching helps to improve performance on DRAM based systems. The
//! ORAM, however, takes too much memory bandwidth and the memory
//! subsystem is busy serving useful requests."

use crate::common;
use crate::exp::RunCtx;
use crate::jobs::parallel_map;
use proram_core::SchemeConfig;
use proram_sim::runner;
use proram_stats::{table, Table};
use proram_workloads::{splash2, suite, BenchSpec, Suite};

/// Runs the six Figure 5 benchmarks with a stream prefetcher on DRAM and
/// on baseline ORAM; reports speedup of prefetching over the same system
/// without it.
pub fn run(ctx: RunCtx) -> Vec<Table> {
    let mut t = Table::new(&["bench", "dram_pre", "oram_pre"])
        .with_title("Figure 5: traditional prefetching speedup (vs same system without prefetch)");
    let specs: Vec<BenchSpec> = suite::specs(Suite::Splash2)
        .into_iter()
        .filter(|s| splash2::FIG5_NAMES.contains(&s.name))
        .collect();
    // Each benchmark's four runs are independent of every other
    // benchmark's; fan the benchmarks over the worker pool.
    let gains = parallel_map(ctx.jobs, specs, |spec| {
        let scale = ctx.scale;
        let dram = runner::run_spec(spec, scale, &common::dram_config());
        let mut dram_pf = common::dram_config();
        dram_pf.prefetch = Some(Default::default());
        let dram_pre = runner::run_spec(spec, scale, &dram_pf);

        let oram_cfg = common::oram_config(SchemeConfig::baseline());
        let oram = runner::run_spec(spec, scale, &oram_cfg);
        let mut oram_pf = oram_cfg.clone();
        oram_pf.prefetch = Some(Default::default());
        let oram_pre = runner::run_spec(spec, scale, &oram_pf);

        (
            spec.name,
            dram_pre.speedup_over(&dram),
            oram_pre.speedup_over(&oram),
        )
    });
    let mut dram_gains = Vec::new();
    let mut oram_gains = Vec::new();
    for (name, dg, og) in gains {
        dram_gains.push(dg);
        oram_gains.push(og);
        t.row(&[name, &table::pct(dg), &table::pct(og)]);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    t.row(&[
        "avg",
        &table::pct(avg(&dram_gains)),
        &table::pct(avg(&oram_gains)),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proram_workloads::Scale;

    #[test]
    fn produces_one_row_per_benchmark_plus_average() {
        let t = &run(RunCtx::serial(Scale {
            ops: 800,
            warmup_ops: 0,
            footprint_scale: 0.02,
            seed: 2,
        }))[0];
        assert_eq!(t.len(), splash2::FIG5_NAMES.len() + 1);
    }
}
