//! Figure 14: cacheline (block) size sweep: 64 / 128 / 256 bytes.
//!
//! "In general, the behaviors of dynamic and static super block schemes
//! do not change."

use crate::exp::sweep::{norm_completion_rows, SweptConfig};
use crate::exp::RunCtx;
use proram_stats::Table;

/// Benchmarks of the paper's Figure 14.
pub const BENCHMARKS: &[&str] = &["ocean_c", "volrend"];

/// Runs the line-size sweep.
pub fn run(ctx: RunCtx) -> Table {
    let sweeps: Vec<SweptConfig> = [64u32, 128, 256]
        .into_iter()
        .map(|lb| SweptConfig {
            label: format!("{lb}B"),
            apply: Box::new(move |cfg| cfg.with_line_bytes(lb)),
        })
        .collect();
    norm_completion_rows(
        "Figure 14: cacheline size sweep, completion time normalized to DRAM",
        BENCHMARKS,
        sweeps,
        ctx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_size() {
        let t = run(RunCtx::serial(proram_workloads::Scale {
            ops: 400,
            warmup_ops: 0,
            footprint_scale: 0.02,
            seed: 2,
        }));
        assert_eq!(t.len(), BENCHMARKS.len() * 3);
    }
}
