//! Figure 15: periodic ORAM accesses (timing-channel protection).
//!
//! Speedup of non-periodic baseline ORAM, periodic static (`stat_intvl`)
//! and periodic dynamic (`dyn_intvl`) super blocks, all relative to the
//! *periodic* baseline ORAM, with `O_int = 100`.

use crate::common;
use crate::exp::RunCtx;
use crate::jobs::parallel_map;
use proram_core::SchemeConfig;
use proram_sim::runner;
use proram_stats::{summary, table, Table};
use proram_workloads::Suite;

/// The paper's public access interval.
pub const O_INT: u64 = 100;

/// Runs one suite.
pub fn run_suite(suite: Suite, ctx: RunCtx) -> Table {
    let mut t = Table::new(&["bench", "oram", "stat_intvl", "dyn_intvl"]).with_title(format!(
        "Figure 15 ({}): speedup vs periodic baseline ORAM, O_int = {O_INT}",
        suite.name()
    ));
    let periodic = |scheme: SchemeConfig| {
        let mut cfg = common::oram_config(scheme);
        cfg.periodic_interval = Some(O_INT);
        cfg
    };
    let mut gains: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let per_spec = parallel_map(ctx.jobs, common::specs(suite), |spec| {
        let scale = ctx.scale;
        let base = runner::run_spec(spec, scale, &periodic(SchemeConfig::baseline()));
        let oram_np = runner::run_spec(spec, scale, &common::oram_config(SchemeConfig::baseline()));
        let stat = runner::run_spec(spec, scale, &periodic(SchemeConfig::static_scheme(2)));
        let dynamic = runner::run_spec(spec, scale, &periodic(SchemeConfig::dynamic(2)));
        (
            spec.name,
            [
                oram_np.speedup_over(&base),
                stat.speedup_over(&base),
                dynamic.speedup_over(&base),
            ],
        )
    });
    for (name, cells) in per_spec {
        for (v, g) in cells.iter().zip(gains.iter_mut()) {
            g.push(1.0 + v);
        }
        t.row(&[
            name,
            &table::pct(cells[0]),
            &table::pct(cells[1]),
            &table::pct(cells[2]),
        ]);
    }
    t.row(&[
        "avg",
        &table::pct(summary::geometric_mean(&gains[0]) - 1.0),
        &table::pct(summary::geometric_mean(&gains[1]) - 1.0),
        &table::pct(summary::geometric_mean(&gains[2]) - 1.0),
    ]);
    t
}

/// Runs all three suites.
pub fn run(ctx: RunCtx) -> Vec<Table> {
    vec![
        run_suite(Suite::Splash2, ctx),
        run_suite(Suite::Spec06, ctx),
        run_suite(Suite::Dbms, ctx),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proram_workloads::Scale;

    #[test]
    fn dbms_rows() {
        let t = run_suite(
            Suite::Dbms,
            RunCtx::serial(Scale {
                ops: 800,
                warmup_ops: 0,
                footprint_scale: 0.02,
                seed: 1,
            }),
        );
        assert_eq!(t.len(), 3); // YCSB, TPCC, avg
    }
}
