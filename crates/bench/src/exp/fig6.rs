//! Figure 6: synthetic locality sweep (6a) and phase change (6b).
//!
//! Both use Z = 4, as the paper does for its synthetic studies ("Z = 4 is
//! chosen here to make it easier to see the performance difference").

use crate::common;
use crate::exp::RunCtx;
use crate::jobs::parallel_map;
use proram_core::SchemeConfig;
use proram_sim::SystemConfig;
use proram_stats::{table, Table};
use proram_workloads::synthetic::{LocalityMix, PhaseChange};

/// Line-granular stride so each op touches a fresh cache line and a
/// fixed op budget sweeps the array several times.
const STRIDE: u64 = 128;

/// Synthetic footprint: a small multiple of the 512 KB LLC, so the LLC
/// holds a meaningful fraction of the array (making cache pollution by
/// useless prefetches *visible*, as in the paper's Figure 6a where the
/// static scheme loses at low locality), while the op budget still covers
/// many sweeps.
fn footprint_for(ops: u64) -> u64 {
    (ops * STRIDE / 8).clamp(1 << 20, 2 << 20)
}

fn z4(scheme: SchemeConfig) -> SystemConfig {
    let mut cfg = common::oram_config(scheme);
    cfg.oram.z = 4;
    // At the paper's full scale a Z=4 path (26 levels x 4 = 104 blocks)
    // exceeds the 100-block stash, so super-block schemes run under
    // standing eviction pressure. Our scaled trees have ~56-block paths;
    // a 60-block stash reproduces that stash:path ratio.
    cfg.oram.stash_limit = 60;
    cfg
}

/// Figure 6a: sweep the percentage of data with locality; `stat` and
/// `dyn` speedup over baseline ORAM.
pub fn run_6a(ctx: RunCtx) -> Table {
    let mut t = Table::new(&["locality", "stat", "dyn"])
        .with_title("Figure 6a: locality sweep, speedup vs baseline ORAM (Z=4)");
    let scale = ctx.scale;
    let footprint = footprint_for(scale.ops);
    // The six sweep points are independent triples of runs.
    let rows = parallel_map(ctx.jobs, vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0], |pct| {
        let build = || LocalityMix::with_stride(footprint, pct, scale.ops, scale.seed, STRIDE);
        let oram = common::run_built(build, &z4(SchemeConfig::baseline()));
        let stat = common::run_built(build, &z4(SchemeConfig::static_scheme(2)));
        let dynamic = common::run_built(build, &z4(SchemeConfig::dynamic(2)));
        [
            format!("{:.0}%", pct * 100.0),
            table::pct(stat.speedup_over(&oram)),
            table::pct(dynamic.speedup_over(&oram)),
        ]
    });
    for row in rows {
        t.row(&row);
    }
    t
}

/// Figure 6b: phase-change behaviour of the merge/break variants.
pub fn run_6b(ctx: RunCtx) -> Table {
    let scale = ctx.scale;
    let mut t = Table::new(&["scheme", "speedup", "norm_accesses"])
        .with_title("Figure 6b: phase change, speedup and normalized memory accesses (Z=4)");
    // Phases must each sweep the array several times: merges from a
    // sequential phase only hurt (and breaking only pays off) once the
    // now-random half is revisited repeatedly. The phase study therefore
    // runs a longer trace over a larger array than the locality sweep.
    let ops = scale.ops * 3;
    let footprint = footprint_for(scale.ops) * 2;
    let phase_len = (ops / 3).max(1);
    // A dense tree raises eviction pressure, making stale super blocks
    // genuinely costly — the effect breaking exists to avoid.
    let dense = |scheme: SchemeConfig| {
        let mut cfg = z4(scheme);
        cfg.oram.dense_tree = true;
        cfg
    };
    let build = || PhaseChange::with_stride(footprint, phase_len, ops, scale.seed, STRIDE);
    let oram = common::run_built(build, &dense(SchemeConfig::baseline()));
    let variants: Vec<(&str, SchemeConfig)> = vec![
        ("static", SchemeConfig::static_scheme(2)),
        ("sm_nb", SchemeConfig::static_merge_no_break(2)),
        ("am_nb", SchemeConfig::adaptive_merge_no_break(2)),
        ("am_ab", SchemeConfig::adaptive_merge_adaptive_break(2)),
    ];
    for (name, scheme) in variants {
        let m = common::run_built(build, &dense(scheme));
        t.row(&[
            name,
            &table::pct(m.speedup_over(&oram)),
            &table::f3(m.norm_memory_accesses(&oram)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunCtx {
        RunCtx::serial(proram_workloads::Scale {
            ops: 1500,
            warmup_ops: 0,
            footprint_scale: 1.0,
            seed: 4,
        })
    }

    #[test]
    fn sweep_has_six_points() {
        assert_eq!(run_6a(tiny()).len(), 6);
    }

    #[test]
    fn phase_change_has_four_variants() {
        assert_eq!(run_6b(tiny()).len(), 4);
    }
}
