//! Figure 10: sweep of the Equation-1 merge/break coefficients.
//!
//! "mxny in the figure means that Cmerge = x and Cbreak = y." Smaller
//! merge coefficients merge earlier and help benchmarks with locality;
//! coefficients do not matter for benchmarks without locality.

use crate::common;
use crate::exp::RunCtx;
use crate::jobs::parallel_map;
use proram_core::SchemeConfig;
use proram_sim::runner;
use proram_stats::{table, Table};
use proram_workloads::Suite;

/// The coefficient pairs of the paper's sweep.
pub const COEFFICIENTS: &[(&str, f64, f64)] = &[
    ("m1b1", 1.0, 1.0),
    ("m2b2", 2.0, 2.0),
    ("m4b1", 4.0, 1.0),
    ("m4b4", 4.0, 4.0),
    ("m8b8", 8.0, 8.0),
];

/// Benchmarks used in the paper's Figure 10.
pub const BENCHMARKS: &[&str] = &["ocean_c", "ocean_nc", "fft", "volrend"];

/// Runs the sweep: dynamic-scheme speedup over baseline ORAM for every
/// coefficient pair.
pub fn run(ctx: RunCtx) -> Table {
    let headers: Vec<String> = std::iter::once("bench".to_owned())
        .chain(COEFFICIENTS.iter().map(|(n, _, _)| (*n).to_owned()))
        .collect();
    let mut t = Table::new(&headers)
        .with_title("Figure 10: merge/break coefficient sweep, dyn speedup vs baseline ORAM");
    let specs: Vec<_> = common::specs(Suite::Splash2)
        .into_iter()
        .filter(|s| BENCHMARKS.contains(&s.name))
        .collect();
    let rows = parallel_map(ctx.jobs, specs, |spec| {
        let scale = ctx.scale;
        let oram = runner::run_spec(spec, scale, &common::oram_config(SchemeConfig::baseline()));
        let mut row = vec![spec.name.to_owned()];
        for &(_, cm, cb) in COEFFICIENTS {
            let scheme = SchemeConfig::dynamic(2).with_coefficients(cm, cb);
            let m = runner::run_spec(spec, scale, &common::oram_config(scheme));
            row.push(table::pct(m.speedup_over(&oram)));
        }
        row
    });
    for row in rows {
        t.row(&row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_row_per_benchmark() {
        let t = run(RunCtx::serial(proram_workloads::Scale {
            ops: 800,
            warmup_ops: 0,
            footprint_scale: 0.02,
            seed: 2,
        }));
        assert_eq!(t.len(), BENCHMARKS.len());
    }
}
