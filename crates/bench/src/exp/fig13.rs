//! Figure 13: Z = 3 vs Z = 4.
//!
//! "Z = 3 achieves better performance than Z = 4 for the baseline ORAM,
//! which corroborates previous results. The dynamic super block scheme
//! has consistent performance gain for both Z values."

use crate::exp::sweep::{norm_completion_rows, SweptConfig};
use crate::exp::RunCtx;
use proram_stats::Table;

/// Benchmarks of the paper's Figure 13.
pub const BENCHMARKS: &[&str] = &["fft", "ocean_c", "ocean_nc", "volrend"];

/// Runs the Z sweep.
pub fn run(ctx: RunCtx) -> Table {
    let sweeps: Vec<SweptConfig> = [3usize, 4]
        .into_iter()
        .map(|z| SweptConfig {
            label: format!("Z={z}"),
            apply: Box::new(move |mut cfg| {
                cfg.oram.z = z;
                cfg
            }),
        })
        .collect();
    norm_completion_rows(
        "Figure 13: Z sweep, completion time normalized to DRAM",
        BENCHMARKS,
        sweeps,
        ctx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_size() {
        let t = run(RunCtx::serial(proram_workloads::Scale {
            ops: 400,
            warmup_ops: 0,
            footprint_scale: 0.02,
            seed: 2,
        }));
        assert_eq!(t.len(), BENCHMARKS.len() * 2);
    }
}
