//! Figure 8: speedup and normalized memory accesses of the static and
//! dynamic super block schemes on Splash2 (8a), SPEC06 (8b) and DBMS
//! (8c).

use crate::common;
use crate::exp::RunCtx;
use crate::jobs::parallel_map;
use proram_stats::{summary, table, Table};
use proram_workloads::Suite;

/// Runs one suite's comparison.
pub fn run_suite(suite: Suite, ctx: RunCtx) -> Table {
    let title = match suite {
        Suite::Splash2 => "Figure 8a: Splash2",
        Suite::Spec06 => "Figure 8b: SPEC06",
        Suite::Dbms => "Figure 8c: DBMS",
    };
    let mut t = Table::new(&["bench", "stat", "dyn", "stat_norm_acc", "dyn_norm_acc"]).with_title(
        format!("{title}: speedup and norm. memory accesses vs baseline ORAM"),
    );
    let mut stat_ratio = Vec::new();
    let mut dyn_ratio = Vec::new();
    let mut stat_mem = Vec::new();
    let mut dyn_mem = Vec::new();
    let per_spec = parallel_map(ctx.jobs, common::specs(suite), |spec| {
        let (oram, stat, dynamic) = common::run_three_schemes(spec, ctx.scale);
        (
            spec,
            stat.speedup_over(&oram),
            dynamic.speedup_over(&oram),
            stat.norm_memory_accesses(&oram),
            dynamic.norm_memory_accesses(&oram),
        )
    });
    for (spec, sg, dg, s_acc, d_acc) in per_spec {
        t.row(&[
            spec.name,
            &table::pct(sg),
            &table::pct(dg),
            &table::f3(s_acc),
            &table::f3(d_acc),
        ]);
        stat_ratio.push(1.0 + sg);
        dyn_ratio.push(1.0 + dg);
        if spec.memory_intensive {
            stat_mem.push(1.0 + sg);
            dyn_mem.push(1.0 + dg);
        }
    }
    let avg_row = |label: &str, stat: &[f64], dynamic: &[f64], t: &mut Table| {
        if stat.is_empty() {
            return;
        }
        t.row(&[
            label,
            &table::pct(summary::geometric_mean(stat) - 1.0),
            &table::pct(summary::geometric_mean(dynamic) - 1.0),
            "-",
            "-",
        ]);
    };
    avg_row("avg", &stat_ratio, &dyn_ratio, &mut t);
    avg_row("mem_avg", &stat_mem, &dyn_mem, &mut t);
    t
}

/// Runs all three suites. Each suite already fans its benchmarks over
/// the worker pool, so the suites run in sequence.
pub fn run_all(ctx: RunCtx) -> Vec<Table> {
    vec![
        run_suite(Suite::Splash2, ctx),
        run_suite(Suite::Spec06, ctx),
        run_suite(Suite::Dbms, ctx),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proram_workloads::Scale;

    #[test]
    fn dbms_suite_rows() {
        let t = run_suite(
            Suite::Dbms,
            RunCtx::serial(Scale {
                ops: 1000,
                warmup_ops: 0,
                footprint_scale: 0.02,
                seed: 1,
            }),
        );
        // YCSB + TPCC + avg + mem_avg.
        assert_eq!(t.len(), 4);
        let s = t.to_string();
        assert!(s.contains("YCSB"));
        assert!(s.contains("TPCC"));
    }
}
