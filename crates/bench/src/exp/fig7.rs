//! Figure 7: super-block size sweep on a 100%-locality synthetic trace.
//!
//! "Even with perfect locality, as sbsize increases, performance of the
//! static super block scheme still degrades quickly due to excessive
//! background evictions. The dynamic super block scheme will throttle
//! merging of too large super blocks."

use crate::common;
use proram_core::SchemeConfig;
use proram_stats::{table, Table};
use proram_workloads::synthetic::LocalityMix;

use crate::exp::RunCtx;

/// Runs the sbsize in {2, 4, 8} sweep.
pub fn run(ctx: RunCtx) -> Table {
    let scale = ctx.scale;
    let mut t = Table::new(&["sbsize", "stat", "dyn", "stat_norm_acc", "dyn_norm_acc"])
        .with_title("Figure 7: super block size sweep, 100% locality (Z=4)");
    let footprint = (scale.ops * 128 / 8).clamp(1 << 20, 2 << 20);
    let build = || LocalityMix::with_stride(footprint, 1.0, scale.ops, scale.seed, 128);
    let z4 = |scheme: SchemeConfig| {
        let mut cfg = common::oram_config(scheme);
        cfg.oram.z = 4;
        cfg.oram.stash_limit = 60; // see fig6: the paper's stash:path ratio
        cfg
    };
    let oram = common::run_built(build, &z4(SchemeConfig::baseline()));
    for sbsize in [2u64, 4, 8] {
        let stat_cfg = z4(SchemeConfig::static_scheme(sbsize));
        let dyn_cfg = z4(SchemeConfig::dynamic(sbsize));
        let stat = common::run_built(build, &stat_cfg);
        let dynamic = common::run_built(build, &dyn_cfg);
        t.row(&[
            &sbsize.to_string(),
            &table::pct(stat.speedup_over(&oram)),
            &table::pct(dynamic.speedup_over(&oram)),
            &table::f3(stat.norm_memory_accesses(&oram)),
            &table::f3(dynamic.norm_memory_accesses(&oram)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_three_sizes() {
        let t = run(RunCtx::serial(proram_workloads::Scale {
            ops: 1200,
            warmup_ops: 0,
            footprint_scale: 1.0,
            seed: 1,
        }));
        assert_eq!(t.len(), 3);
    }
}
