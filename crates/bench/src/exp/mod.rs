//! One module per paper table/figure.

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod sweep;
pub mod table1;

use proram_stats::Table;
use proram_workloads::Scale;

/// An experiment entry point: scale in, regenerated tables out.
pub type ExperimentFn = fn(Scale) -> Vec<Table>;

/// Every experiment, addressable by CLI name.
pub const EXPERIMENTS: &[(&str, ExperimentFn)] = &[
    ("table1", table1::run),
    ("fig5", fig5::run),
    ("fig6a", |s| vec![fig6::run_6a(s)]),
    ("fig6b", |s| vec![fig6::run_6b(s)]),
    ("fig7", |s| vec![fig7::run(s)]),
    ("fig8", fig8::run_all),
    ("fig9", fig9::run),
    ("fig10", |s| vec![fig10::run(s)]),
    ("fig11", |s| vec![fig11::run(s)]),
    ("fig12", |s| vec![fig12::run(s)]),
    ("fig13", |s| vec![fig13::run(s)]),
    ("fig14", |s| vec![fig14::run(s)]),
    ("fig15", fig15::run),
    ("ablation", ablation::run),
];

/// Looks up an experiment by name.
pub fn by_name(name: &str) -> Option<ExperimentFn> {
    EXPERIMENTS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| *f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_figures() {
        let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
        for expected in [
            "table1", "fig5", "fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15",
        ] {
            assert!(
                names.contains(&expected),
                "{expected} missing from registry"
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("fig7").is_some());
        assert!(by_name("fig99").is_none());
    }
}
