//! One module per paper table/figure.

pub mod ablation;
pub mod fault_sweep;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod serialization;
pub mod sweep;
pub mod table1;

use proram_stats::Table;
use proram_workloads::Scale;

/// How an experiment should run: the workload scale plus the worker
/// budget for its independent simulation runs.
///
/// Every simulated run is a pure function of `(spec, scale, config)`,
/// so `jobs` only changes wall-clock time — the produced tables are
/// byte-identical for any job count.
#[derive(Debug, Clone, Copy)]
pub struct RunCtx {
    /// Workload scaling knobs, forwarded to every run.
    pub scale: Scale,
    /// Maximum worker threads for an experiment's independent runs.
    pub jobs: usize,
}

impl RunCtx {
    /// A context running everything on the caller's thread.
    pub fn serial(scale: Scale) -> Self {
        RunCtx { scale, jobs: 1 }
    }

    /// A context with an explicit worker budget.
    pub fn with_jobs(scale: Scale, jobs: usize) -> Self {
        RunCtx {
            scale,
            jobs: jobs.max(1),
        }
    }
}

/// An experiment entry point: run context in, regenerated tables out.
pub type ExperimentFn = fn(RunCtx) -> Vec<Table>;

/// Every experiment, addressable by CLI name.
pub const EXPERIMENTS: &[(&str, ExperimentFn)] = &[
    ("table1", table1::run),
    ("fig5", fig5::run),
    ("fig6a", |c| vec![fig6::run_6a(c)]),
    ("fig6b", |c| vec![fig6::run_6b(c)]),
    ("fig7", |c| vec![fig7::run(c)]),
    ("fig8", fig8::run_all),
    ("fig9", fig9::run),
    ("fig10", |c| vec![fig10::run(c)]),
    ("fig11", |c| vec![fig11::run(c)]),
    ("fig12", |c| vec![fig12::run(c)]),
    ("fig13", |c| vec![fig13::run(c)]),
    ("fig14", |c| vec![fig14::run(c)]),
    ("fig15", fig15::run),
    ("ablation", ablation::run),
    ("fault_sweep", fault_sweep::run),
    ("serialization", serialization::run),
];

/// Looks up an experiment by name.
pub fn by_name(name: &str) -> Option<ExperimentFn> {
    EXPERIMENTS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| *f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_figures() {
        let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
        for expected in [
            "table1", "fig5", "fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15",
        ] {
            assert!(
                names.contains(&expected),
                "{expected} missing from registry"
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("fig7").is_some());
        assert!(by_name("fig99").is_none());
    }

    #[test]
    fn ctx_clamps_jobs() {
        assert_eq!(RunCtx::with_jobs(Scale::quick(), 0).jobs, 1);
        assert_eq!(RunCtx::serial(Scale::quick()).jobs, 1);
    }
}
