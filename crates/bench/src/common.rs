//! Shared experiment plumbing.

use proram_core::SchemeConfig;
use proram_sim::{runner, MemoryKind, RunMetrics, SystemConfig};
use proram_workloads::{suite, BenchSpec, Scale, Workload};

/// The three memory systems every comparison figure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseScheme {
    /// Baseline Path ORAM (`oram`).
    Oram,
    /// Static super block scheme (`stat`).
    Static,
    /// Dynamic super block scheme / PrORAM (`dyn`).
    Dynamic,
}

impl BaseScheme {
    /// The scheme configuration with the given maximum super-block size.
    pub fn scheme(self, max_sbsize: u64) -> SchemeConfig {
        match self {
            BaseScheme::Oram => SchemeConfig::baseline(),
            BaseScheme::Static => SchemeConfig::static_scheme(max_sbsize),
            BaseScheme::Dynamic => SchemeConfig::dynamic(max_sbsize),
        }
    }

    /// All three, in presentation order.
    pub fn all() -> [BaseScheme; 3] {
        [BaseScheme::Oram, BaseScheme::Static, BaseScheme::Dynamic]
    }
}

/// Builds the default ORAM system configuration for a scheme.
pub fn oram_config(scheme: SchemeConfig) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(MemoryKind::Oram(scheme));
    // Experiments run at laptop scale: trees are sized per workload by
    // the runner; this is only the floor.
    cfg.oram.num_data_blocks = 1 << 14;
    cfg
}

/// Builds the DRAM system configuration.
pub fn dram_config() -> SystemConfig {
    SystemConfig::paper_default(MemoryKind::Dram)
}

/// Runs `spec` under baseline / static / dynamic ORAM with the default
/// max super-block size (2), returning `(oram, stat, dyn)` metrics.
pub fn run_three_schemes(spec: BenchSpec, scale: Scale) -> (RunMetrics, RunMetrics, RunMetrics) {
    run_three_schemes_sized(spec, scale, 2)
}

/// Like [`run_three_schemes`] with an explicit max super-block size.
pub fn run_three_schemes_sized(
    spec: BenchSpec,
    scale: Scale,
    max_sbsize: u64,
) -> (RunMetrics, RunMetrics, RunMetrics) {
    let run = |s: BaseScheme| runner::run_spec(spec, scale, &oram_config(s.scheme(max_sbsize)));
    (
        run(BaseScheme::Oram),
        run(BaseScheme::Static),
        run(BaseScheme::Dynamic),
    )
}

/// Runs a self-built workload (synthetic benchmarks) under a config.
/// The builder is called fresh per run so traces are identical.
pub fn run_built<W, F>(build: F, config: &SystemConfig) -> RunMetrics
where
    W: Workload,
    F: Fn() -> W,
{
    let mut w = build();
    runner::run_workload(&mut w, config)
}

/// Convenience: specs of a suite.
pub fn specs(s: suite::Suite) -> Vec<BenchSpec> {
    suite::specs(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proram_workloads::Suite;

    #[test]
    fn scheme_labels() {
        assert_eq!(BaseScheme::Oram.scheme(2).label(), "oram");
        assert_eq!(BaseScheme::Static.scheme(2).label(), "stat");
        assert_eq!(BaseScheme::Dynamic.scheme(2).label(), "dyn");
    }

    #[test]
    fn three_scheme_run_produces_comparable_metrics() {
        let spec = specs(Suite::Splash2)
            .into_iter()
            .find(|s| s.name == "fft")
            .unwrap();
        let scale = Scale {
            ops: 1200,
            warmup_ops: 0,
            footprint_scale: 0.03,
            seed: 3,
        };
        let (oram, stat, dynamic) = run_three_schemes(spec, scale);
        assert_eq!(oram.trace_ops, stat.trace_ops);
        assert_eq!(oram.trace_ops, dynamic.trace_ops);
        assert_eq!(oram.label, "oram");
        assert_eq!(stat.label, "stat");
        assert_eq!(dynamic.label, "dyn");
    }
}
