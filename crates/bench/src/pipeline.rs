//! The staged-pipeline / bank-overlap report behind `proram-bench
//! pipeline`.
//!
//! Three measurements back the serialization ablation (DESIGN.md
//! Section 12):
//!
//! 1. **Per-path fetch cost** straight from the controller:
//!    pipeline-off must price a path at the legacy lump sum, a
//!    single-bank pipeline serializes every bucket read behind one bank,
//!    and added banks overlap bucket latencies until only the shared bus
//!    is left.
//! 2. **End-to-end completion time** of a single-core system over a
//!    locality-mix workload, with the same bank sweep.
//! 3. **Sharded-controller scaling**: multi-core throughput over
//!    `OramShards(N)`, where `N = 1` reproduces the paper's Section 2.6
//!    serialized controller and `N > 1` relaxes it.
//!
//! [`measure`] panics if the measured win disappears (a pipelined fetch
//! with >= 2 banks must beat the serialized single bank), so the CI
//! smoke run doubles as a regression gate. The JSON document written by
//! [`to_json`] is checked in as `BENCH_pipeline.json`.

use crate::jobs;
use proram_core::SchemeConfig;
use proram_mem::BankConfig;
use proram_oram::{OramConfig, PathOram};
use proram_sim::{runner, MemoryKind, SystemConfig};
use proram_workloads::synthetic::LocalityMix;
use proram_workloads::Scale;

/// One point of the per-path fetch-cost sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchPoint {
    /// `off` for the lump-sum model, `banks1`..`banks8` for the
    /// bank-aware scheduler.
    pub label: String,
    /// Banks in the scheduler (`0` when the pipeline is off).
    pub banks: u32,
    /// Cycles one off-chip path fetch costs under this configuration.
    pub fetch_cycles: u64,
}

/// One end-to-end single-core run of the bank sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemPoint {
    /// Same labels as [`FetchPoint`].
    pub label: String,
    /// Completion time of the run in cycles.
    pub cycles: u64,
    /// Trace operations executed (identical across the sweep).
    pub trace_ops: u64,
}

/// One multi-core throughput point of the sharded-controller sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPoint {
    /// Independent ORAM controllers.
    pub shards: usize,
    /// Tiles driving them.
    pub cores: usize,
    /// Aggregate throughput in trace ops per kilocycle.
    pub ops_per_kcycle: f64,
}

/// Everything `BENCH_pipeline.json` records.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// The legacy lump-sum path cost the pipeline-off mode must match.
    pub lump_sum_cycles: u64,
    /// Per-path fetch-cost sweep.
    pub fetch: Vec<FetchPoint>,
    /// End-to-end single-core sweep.
    pub system: Vec<SystemPoint>,
    /// Sharded-controller scaling sweep.
    pub shards: Vec<ShardPoint>,
}

impl PipelineReport {
    fn fetch_for(&self, label: &str) -> u64 {
        self.fetch
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.fetch_cycles)
            .expect("sweep covers label")
    }

    fn system_for(&self, label: &str) -> u64 {
        self.system
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.cycles)
            .expect("sweep covers label")
    }

    /// Serialized-over-pipelined fetch-cost ratio (`> 1` is the win).
    pub fn fetch_overlap_gain(&self) -> f64 {
        self.fetch_for("banks1") as f64 / self.fetch_for("banks8") as f64
    }

    /// Serialized-over-pipelined end-to-end ratio (`> 1` is the win).
    pub fn system_overlap_gain(&self) -> f64 {
        self.system_for("banks1") as f64 / self.system_for("banks8") as f64
    }
}

/// Bank counts the sweeps cover (besides pipeline-off).
const BANK_SWEEP: [u32; 4] = [1, 2, 4, 8];

fn sweep_configs() -> Vec<(String, Option<BankConfig>)> {
    let mut v = vec![("off".to_owned(), None)];
    v.extend(BANK_SWEEP.iter().map(|&banks| {
        (
            format!("banks{banks}"),
            Some(BankConfig {
                banks,
                ..BankConfig::default()
            }),
        )
    }));
    v
}

fn fetch_sweep() -> (u64, Vec<FetchPoint>) {
    let base_cfg = OramConfig::builder()
        .num_data_blocks(1 << 12)
        .store_payloads(false)
        .trace_capacity(0)
        .build()
        .expect("valid sweep configuration");
    let lump_sum = PathOram::new(base_cfg.clone(), 1).path_cycles();
    let points = sweep_configs()
        .into_iter()
        .map(|(label, pipeline)| {
            let mut builder = base_cfg.clone().to_builder();
            if let Some(bank) = pipeline {
                builder = builder.pipeline(bank);
            }
            let oram = PathOram::new(builder.build().expect("valid sweep configuration"), 1);
            FetchPoint {
                label,
                banks: pipeline.map_or(0, |b| b.banks),
                fetch_cycles: oram.fetch_cycles(),
            }
        })
        .collect();
    (lump_sum, points)
}

fn system_sweep(scale: Scale, njobs: usize) -> Vec<SystemPoint> {
    let ops = (scale.ops / 2).clamp(2_000, 20_000);
    jobs::parallel_map(njobs, sweep_configs(), move |(label, pipeline)| {
        let mut cfg = SystemConfig::paper_default(MemoryKind::Oram(SchemeConfig::baseline()));
        cfg.oram.pipeline = pipeline;
        let mut workload = LocalityMix::with_stride(1 << 20, 0.8, ops, scale.seed, 128);
        let m = runner::run_workload(&mut workload, &cfg);
        SystemPoint {
            label,
            cycles: m.cycles,
            trace_ops: m.trace_ops,
        }
    })
}

fn shard_sweep(scale: Scale, njobs: usize) -> Vec<ShardPoint> {
    let ops = (scale.ops / 4).clamp(1_000, 8_000);
    let cores = 4usize;
    jobs::parallel_map(njobs, vec![1usize, 2, 4], move |shards| {
        let cfg =
            SystemConfig::paper_default(MemoryKind::OramShards(SchemeConfig::baseline(), shards));
        let m = runner::run_multicore(&cfg, cores, 0, |id| {
            Box::new(LocalityMix::with_stride(
                1 << 20,
                0.8,
                ops,
                scale.seed + id as u64,
                128,
            ))
        });
        ShardPoint {
            shards,
            cores,
            ops_per_kcycle: m.trace_ops as f64 * 1000.0 / m.cycles as f64,
        }
    })
}

/// Runs all three sweeps and checks the report's invariants:
/// pipeline-off prices a path at the lump sum, more banks never cost
/// more, and >= 2 banks strictly beat the serialized single bank both
/// per path and end to end.
///
/// # Panics
///
/// Panics if any of those regress — the CI smoke run relies on this.
pub fn measure(scale: Scale, njobs: usize) -> PipelineReport {
    let (lump_sum_cycles, fetch) = fetch_sweep();
    let system = system_sweep(scale, njobs);
    let shards = shard_sweep(scale, njobs);
    let report = PipelineReport {
        lump_sum_cycles,
        fetch,
        system,
        shards,
    };
    assert_eq!(
        report.fetch_for("off"),
        lump_sum_cycles,
        "pipeline-off must keep the legacy lump-sum path cost"
    );
    for pair in report.fetch.windows(2).skip(1) {
        assert!(
            pair[1].fetch_cycles <= pair[0].fetch_cycles,
            "adding banks must never slow a fetch: {pair:?}"
        );
    }
    assert!(
        report.fetch_for("banks2") < report.fetch_for("banks1"),
        "two banks must overlap bucket reads"
    );
    assert!(
        report.system_for("banks2") < report.system_for("banks1"),
        "the per-path overlap must survive end to end"
    );
    assert!(
        report.shards.last().expect("sweep ran").ops_per_kcycle
            > report.shards.first().expect("sweep ran").ops_per_kcycle,
        "sharding must relax controller serialization"
    );
    report
}

/// Renders the report as the `BENCH_pipeline.json` document.
pub fn to_json(report: &PipelineReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"staged access pipeline + bank scheduler\",\n");
    out.push_str("  \"harness\": \"proram-bench pipeline\",\n");
    out.push_str(&format!(
        "  \"lump_sum_path_cycles\": {},\n",
        report.lump_sum_cycles
    ));
    out.push_str("  \"path_fetch_cycles\": {");
    for (i, p) in report.fetch.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        out.push_str(&format!("{sep}\"{}\": {}", p.label, p.fetch_cycles));
    }
    out.push_str("},\n");
    out.push_str("  \"end_to_end_cycles\": {");
    for (i, p) in report.system.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        out.push_str(&format!("{sep}\"{}\": {}", p.label, p.cycles));
    }
    out.push_str("},\n");
    out.push_str("  \"shard_scaling\": [\n");
    for (i, p) in report.shards.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"cores\": {}, \"ops_per_kcycle\": {:.3}}}{}\n",
            p.shards,
            p.cores,
            p.ops_per_kcycle,
            if i + 1 == report.shards.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"overlap_gain\": {{\"path_fetch\": {:.3}, \"end_to_end\": {:.3}}}\n",
        report.fetch_overlap_gain(),
        report.system_overlap_gain()
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_sweep_orders_bank_counts() {
        let (lump, points) = fetch_sweep();
        assert_eq!(points[0].label, "off");
        assert_eq!(points[0].fetch_cycles, lump);
        let b1 = points.iter().find(|p| p.banks == 1).expect("banks1");
        let b8 = points.iter().find(|p| p.banks == 8).expect("banks8");
        assert!(b8.fetch_cycles < b1.fetch_cycles);
    }

    #[test]
    fn measure_upholds_its_invariants() {
        let scale = Scale {
            ops: 4_000,
            warmup_ops: 0,
            footprint_scale: 0.02,
            seed: 7,
        };
        let report = measure(scale, 2);
        assert!(report.fetch_overlap_gain() > 1.0);
        assert!(report.system_overlap_gain() > 1.0);
        let json = to_json(&report);
        assert!(json.contains("\"banks8\""));
        assert!(json.contains("\"shard_scaling\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
