//! `proram-bench`: regenerate the PrORAM paper's tables and figures.
//!
//! ```text
//! proram-bench <experiment|all> [--scale quick|standard] [--ops N]
//!              [--fp-scale F] [--seed N] [--jobs N] [--svg DIR]
//! ```
//!
//! `--jobs N` runs independent simulations on N worker threads. Output
//! is byte-identical to a serial run: every simulation is seeded from
//! its own config (never from run order) and rows are assembled in the
//! order the experiment defines, so parallelism changes wall-clock time
//! only.
//!
//! With `--svg DIR`, every regenerated table is also rendered as a
//! grouped bar chart into `DIR/<experiment>_<n>.svg`.
//!
//! Experiments: `table1`, `fig5`, `fig6a`, `fig6b`, `fig7`, `fig8`,
//! `fig9`, `fig10`, `fig11`, `fig12`, `fig13`, `fig14`, `fig15`,
//! `ablation`, `fault_sweep`, `serialization`.
//!
//! `proram-bench trace <benchmark>` dumps a benchmark's memory trace to
//! stdout in the portable text format of `proram_workloads::tracefile`.
//!
//! `proram-bench hotpath [--ms N] [--threads N] [--out PATH]` measures
//! the raw ORAM-access kernels against the recorded pre-optimization
//! baseline and emits the `BENCH_hotpath.json` report (stdout unless
//! `--out`). `--threads N` arms the deterministic crypto worker pool
//! (`OramConfig::crypto_threads`); statistics stay byte-identical, only
//! wall-clock throughput moves.
//!
//! `proram-bench parallel [--ms N] [--out PATH]` sweeps the encrypted
//! kernel over `crypto_threads` in {0, 1, 2, 4}, runs the widened-cipher
//! microbench (panics if the 4-wide keystream is not >= 1.5x the scalar
//! reference), and emits the `BENCH_parallel.json` report.
//!
//! `proram-bench pipeline [--scale quick|standard] [--jobs N]
//! [--out PATH]` sweeps the staged access pipeline's bank scheduler and
//! the sharded-controller ablation, asserts the bank-overlap win holds,
//! and emits the `BENCH_pipeline.json` report (stdout unless `--out`).
//!
//! `proram-bench crash [--out PATH]` runs the exhaustive kill-point
//! sweep of the crash-consistent commit protocol: every kill point x
//! crossing cell must fire exactly once, recover auditor-clean, and land
//! on the crash-free state digest — the command panics on any violation,
//! making it a CI smoke gate. Emits the `BENCH_crash.json` report with
//! per-cell recovery work and modeled recovery-latency statistics
//! (written to `BENCH_crash.json` unless `--out` overrides the path).
//!
//! `proram-bench treetop [--ms N] [--out PATH]` sweeps the functional
//! treetop cache (`treetop_levels` in {0, 1, 2, 4, 6}) crossed with the
//! flat and subtree-packed store layouts on the encrypted hot-path
//! kernel, and emits the `BENCH_treetop.json` report (written to
//! `BENCH_treetop.json` unless `--out` overrides the path). The sweep
//! panics if `treetop_levels = 4` is not at least 1.3x the uncached
//! baseline in accesses/sec, so it doubles as a CI smoke gate.
//!
//! `proram-bench fault` runs the fault-injection sweep (alias of the
//! `fault_sweep` experiment): every fault class x rate cell must detect
//! 100% of observable injected corruptions, and a zero-rate injector
//! must be observationally identical to a fault-free run — the command
//! exits nonzero (panics) if either robustness contract is violated.
//!
//! `proram-bench obs [--ms N] [--trace PATH] [--out PATH]` runs three
//! instrumented workloads with a shared ring sink, dumps the event
//! trace as JSONL to `--trace` (default `target/obs_trace.jsonl`),
//! prints the per-stage and per-shard attribution tables, measures the
//! hot-path overhead of the enabled sinks, and emits the
//! `BENCH_obs.json` report (stdout unless `--out`). The command panics
//! if the trace violates the bounded-retention or JSONL-schema
//! contracts, so it doubles as a CI smoke gate.

use proram_bench::exp::{self, RunCtx};
use proram_bench::{crash, hotpath, jobs, obs, parallel, pipeline, treetop};
use proram_stats::{BarChart, Table};
use proram_workloads::{suite, tracefile, Scale, Suite};
use std::path::PathBuf;
use std::process::ExitCode;

fn emit(name: &str, tables: &[Table], svg_dir: Option<&PathBuf>) {
    for (i, table) in tables.iter().enumerate() {
        println!("{table}");
        let Some(dir) = svg_dir else { continue };
        let Some(chart) = BarChart::from_table(table) else {
            continue;
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}_{i}.svg"));
        match std::fs::write(&path, chart.to_svg()) {
            Ok(()) => eprintln!("[wrote {}]", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: proram-bench <experiment|all|list> [--scale quick|standard] [--ops N] [--fp-scale F] [--seed N] [--jobs N] [--svg DIR]"
    );
    eprintln!("       proram-bench trace <benchmark> [--ops N] [--fp-scale F] [--seed N]");
    eprintln!("       proram-bench hotpath [--ms N] [--threads N] [--out PATH]");
    eprintln!("       proram-bench parallel [--ms N] [--out PATH]");
    eprintln!("       proram-bench pipeline [--scale quick|standard] [--jobs N] [--out PATH]");
    eprintln!("       proram-bench crash [--out PATH]");
    eprintln!("       proram-bench treetop [--ms N] [--out PATH]");
    eprintln!("       proram-bench fault [--scale quick|standard] [--jobs N]");
    eprintln!("       proram-bench obs [--ms N] [--trace PATH] [--out PATH]");
    eprintln!("experiments:");
    for (name, _) in exp::EXPERIMENTS {
        eprintln!("  {name}");
    }
    ExitCode::FAILURE
}

fn dump_trace(bench: &str, mut scale: Scale) -> ExitCode {
    // Trace dumps are verbatim: no measurement warmup prefix.
    scale.warmup_ops = 0;
    let spec = [Suite::Splash2, Suite::Spec06, Suite::Dbms]
        .into_iter()
        .flat_map(suite::specs)
        .find(|s| s.name == bench);
    let Some(spec) = spec else {
        eprintln!("unknown benchmark '{bench}'");
        return ExitCode::FAILURE;
    };
    let mut workload = suite::build(spec, scale);
    let mut stdout = std::io::stdout().lock();
    match tracefile::dump(workload.as_mut(), &mut stdout) {
        Ok(n) => {
            eprintln!("[dumped {n} ops of {bench}]");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace dump failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn write_or_print(json: &str, out: Option<&PathBuf>) -> ExitCode {
    match out {
        Some(path) => match std::fs::write(path, json) {
            Ok(()) => {
                eprintln!("[wrote {}]", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{json}");
            ExitCode::SUCCESS
        }
    }
}

fn run_hotpath(ms: u64, threads: usize, out: Option<&PathBuf>) -> ExitCode {
    match threads {
        0 => eprintln!("[measuring hot-path kernels, {ms} ms each...]"),
        n => eprintln!("[measuring hot-path kernels, {ms} ms each, crypto_threads={n}...]"),
    }
    let reports = hotpath::measure(ms, threads);
    for r in &reports {
        eprintln!(
            "[{}: {:.1} acc/s ({:.2}x over baseline {:.1}), {} allocations avoided]",
            r.name,
            r.after.units_per_sec(),
            r.speedup(),
            r.before_accesses_per_sec,
            r.after.allocations_avoided
        );
    }
    write_or_print(&hotpath::to_json(&reports, ms), out)
}

fn run_parallel(ms: u64, out: Option<&PathBuf>) -> ExitCode {
    eprintln!(
        "[sweeping crypto_threads over {:?}, {ms} ms each...]",
        parallel::SWEEP
    );
    // measure() panics if the widened cipher loses its >= 1.5x win over
    // the scalar reference — the satellite regression gate.
    let report = parallel::measure(ms);
    eprintln!(
        "[cipher widening: {:.2}x over scalar reference (floor {})]",
        report.cipher_speedup(),
        parallel::CIPHER_SPEEDUP_FLOOR
    );
    for p in &report.points {
        eprintln!(
            "[crypto_threads={}: {:.1} acc/s ({:.2}x vs serial), {} cores on this machine]",
            p.threads,
            p.after.units_per_sec(),
            p.after.units_per_sec() / report.baseline_accesses_per_sec(),
            report.cores
        );
    }
    write_or_print(&parallel::to_json(&report, ms), out)
}

fn run_pipeline(scale: Scale, njobs: usize, out: Option<&PathBuf>) -> ExitCode {
    eprintln!("[sweeping pipeline banks and controller shards...]");
    let report = pipeline::measure(scale, njobs);
    eprintln!(
        "[bank overlap: {:.2}x per path, {:.2}x end to end; {} shard points]",
        report.fetch_overlap_gain(),
        report.system_overlap_gain(),
        report.shards.len()
    );
    let json = pipeline::to_json(&report);
    match out {
        Some(path) => match std::fs::write(path, &json) {
            Ok(()) => {
                eprintln!("[wrote {}]", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{json}");
            ExitCode::SUCCESS
        }
    }
}

fn run_obs(ms: u64, trace_path: &PathBuf, out: Option<&PathBuf>) -> ExitCode {
    eprintln!("[running instrumented workloads and the sink-overhead microbench...]");
    // measure() panics if the trace breaks the bounded-retention or
    // JSONL-schema contracts — the CI smoke gate.
    let report = obs::measure(ms);
    if let Some(dir) = trace_path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(trace_path, obs::to_jsonl(&report.events)) {
        eprintln!("cannot write {}: {e}", trace_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[wrote {} ({} events, {} dropped by the ring)]",
        trace_path.display(),
        report.events.len(),
        report.dropped
    );
    println!("{}", obs::kind_table(&report.events));
    println!("{}", obs::stage_table(&report.profile));
    println!("{}", obs::shard_table(&report.shards));
    eprintln!(
        "[sink overhead vs detached: noop {:.2}%, ring {:.2}%]",
        report.noop_overhead() * 100.0,
        report.ring_overhead() * 100.0
    );
    let json = obs::to_json(&report, ms);
    match out {
        Some(path) => match std::fs::write(path, &json) {
            Ok(()) => {
                eprintln!("[wrote {}]", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{json}");
            ExitCode::SUCCESS
        }
    }
}

fn run_crash(out: Option<&PathBuf>) -> ExitCode {
    eprintln!(
        "[sweeping {} kill points x {} crossings with recovery...]",
        proram_oram::KillPoint::ALL.len(),
        crash::CROSSINGS.len()
    );
    // measure() panics if any cell fails to fire, recover auditor-clean,
    // or land on the crash-free digest — the CI smoke gate.
    let report = crash::measure();
    let (min, mean, max) = report.latency_stats();
    eprintln!(
        "[{} cells recovered: {} rollbacks, {} replays, {} clean; recovery cycles min {min} / mean {mean:.0} / max {max}]",
        report.cells.len(),
        report.rollbacks(),
        report.replays(),
        report.clean_recoveries()
    );
    write_or_print(&crash::to_json(&report), out)
}

fn run_treetop(ms: u64, out: Option<&PathBuf>) -> ExitCode {
    eprintln!(
        "[sweeping treetop_levels over {:?} x {{flat, subtree_packed}}, {ms} ms each...]",
        treetop::SWEEP
    );
    // measure() panics if the treetop_levels=4 win drops below the
    // floor — the CI smoke gate.
    let points = treetop::measure(ms);
    for p in &points {
        eprintln!(
            "[treetop={} layout={}: {:.1} acc/s, {} B/access, {} B saved]",
            p.treetop_levels,
            p.layout,
            p.throughput.units_per_sec(),
            p.bytes_per_access,
            p.bytes_saved
        );
    }
    write_or_print(&treetop::to_json(&points, ms), out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first().cloned() else {
        return usage();
    };

    let mut scale = Scale::standard();
    let mut svg_dir: Option<PathBuf> = None;
    let mut trace_bench: Option<String> = None;
    let mut njobs: usize = 1;
    let mut hotpath_ms: Option<u64> = None;
    let mut hotpath_out: Option<PathBuf> = None;
    let mut crypto_threads: usize = 0;
    let mut obs_trace = PathBuf::from("target/obs_trace.jsonl");
    let mut i = 1;
    if which == "trace" {
        match args.get(i) {
            Some(b) => trace_bench = Some(b.clone()),
            None => return usage(),
        }
        i += 1;
    }
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("quick") => scale = Scale::quick(),
                    Some("standard") => scale = Scale::standard(),
                    other => {
                        eprintln!("unknown scale {other:?}");
                        return usage();
                    }
                }
            }
            "--ops" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => scale.ops = n,
                    None => return usage(),
                }
            }
            "--fp-scale" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(f) => scale.footprint_scale = f,
                    None => return usage(),
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(s) => scale.seed = s,
                    None => return usage(),
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => njobs = n,
                    _ => return usage(),
                }
            }
            "--ms" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => hotpath_ms = Some(n),
                    _ => return usage(),
                }
            }
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => crypto_threads = n,
                    None => return usage(),
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => hotpath_out = Some(PathBuf::from(path)),
                    None => return usage(),
                }
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(path) => obs_trace = PathBuf::from(path),
                    None => return usage(),
                }
            }
            "--svg" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => svg_dir = Some(PathBuf::from(dir)),
                    None => return usage(),
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                return usage();
            }
        }
        i += 1;
    }

    if let Some(bench) = trace_bench {
        return dump_trace(&bench, scale);
    }
    match which.as_str() {
        "list" => {
            for (name, _) in exp::EXPERIMENTS {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        "hotpath" => run_hotpath(
            hotpath_ms.unwrap_or(3_000),
            crypto_threads,
            hotpath_out.as_ref(),
        ),
        // Crypto-thread sweep; measure() asserts the cipher-widening win.
        "parallel" => run_parallel(hotpath_ms.unwrap_or(1_000), hotpath_out.as_ref()),
        // Observability smoke: measure() asserts the trace contracts.
        "obs" => run_obs(hotpath_ms.unwrap_or(500), &obs_trace, hotpath_out.as_ref()),
        // Regression smoke: measure() panics if the bank-overlap win or
        // shard scaling regresses.
        "pipeline" => run_pipeline(scale, njobs, hotpath_out.as_ref()),
        // Crash-consistency smoke: measure() asserts every kill point
        // recovers to the crash-free state. Defaults to the repo-root
        // artifact name like every other BENCH_*.json producer.
        "crash" => {
            let default = PathBuf::from("BENCH_crash.json");
            run_crash(Some(hotpath_out.as_ref().unwrap_or(&default)))
        }
        // Treetop-cache sweep; measure() asserts the speedup floor.
        "treetop" => {
            let default = PathBuf::from("BENCH_treetop.json");
            run_treetop(
                hotpath_ms.unwrap_or(1_000),
                Some(hotpath_out.as_ref().unwrap_or(&default)),
            )
        }
        // Robustness smoke: the sweep asserts zero undetected corruptions
        // and zero-rate silence internally.
        "fault" => {
            emit(
                "fault_sweep",
                &exp::fault_sweep::run(RunCtx::with_jobs(scale, njobs)),
                svg_dir.as_ref(),
            );
            ExitCode::SUCCESS
        }
        "all" => {
            // Fan out across experiments rather than within them: the
            // registry's work items are coarse and independent, and each
            // experiment's tables come back in registry order, so stdout
            // matches a serial run byte for byte.
            let runs: Vec<_> = exp::EXPERIMENTS.to_vec();
            let results = jobs::parallel_map(njobs, runs, |(name, runner)| {
                eprintln!("[running {name}...]");
                (name, runner(RunCtx::serial(scale)))
            });
            for (name, tables) in results {
                emit(name, &tables, svg_dir.as_ref());
            }
            ExitCode::SUCCESS
        }
        name => match exp::by_name(name) {
            Some(runner) => {
                emit(
                    name,
                    &runner(RunCtx::with_jobs(scale, njobs)),
                    svg_dir.as_ref(),
                );
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment '{name}'");
                usage()
            }
        },
    }
}
