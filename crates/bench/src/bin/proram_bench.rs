//! `proram-bench`: regenerate the PrORAM paper's tables and figures.
//!
//! ```text
//! proram-bench <experiment|all> [--scale quick|standard] [--ops N]
//!              [--fp-scale F] [--seed N] [--svg DIR]
//! ```
//!
//! With `--svg DIR`, every regenerated table is also rendered as a
//! grouped bar chart into `DIR/<experiment>_<n>.svg`.
//!
//! Experiments: `table1`, `fig5`, `fig6a`, `fig6b`, `fig7`, `fig8`,
//! `fig9`, `fig10`, `fig11`, `fig12`, `fig13`, `fig14`, `fig15`,
//! `ablation`.
//!
//! `proram-bench trace <benchmark>` dumps a benchmark's memory trace to
//! stdout in the portable text format of `proram_workloads::tracefile`.

use proram_bench::exp;
use proram_stats::{BarChart, Table};
use proram_workloads::{suite, tracefile, Scale, Suite};
use std::path::PathBuf;
use std::process::ExitCode;

fn emit(name: &str, tables: &[Table], svg_dir: Option<&PathBuf>) {
    for (i, table) in tables.iter().enumerate() {
        println!("{table}");
        let Some(dir) = svg_dir else { continue };
        let Some(chart) = BarChart::from_table(table) else {
            continue;
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}_{i}.svg"));
        match std::fs::write(&path, chart.to_svg()) {
            Ok(()) => eprintln!("[wrote {}]", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: proram-bench <experiment|all|list> [--scale quick|standard] [--ops N] [--fp-scale F] [--seed N] [--svg DIR]"
    );
    eprintln!("       proram-bench trace <benchmark> [--ops N] [--fp-scale F] [--seed N]");
    eprintln!("experiments:");
    for (name, _) in exp::EXPERIMENTS {
        eprintln!("  {name}");
    }
    ExitCode::FAILURE
}

fn dump_trace(bench: &str, mut scale: Scale) -> ExitCode {
    // Trace dumps are verbatim: no measurement warmup prefix.
    scale.warmup_ops = 0;
    let spec = [Suite::Splash2, Suite::Spec06, Suite::Dbms]
        .into_iter()
        .flat_map(suite::specs)
        .find(|s| s.name == bench);
    let Some(spec) = spec else {
        eprintln!("unknown benchmark '{bench}'");
        return ExitCode::FAILURE;
    };
    let mut workload = suite::build(spec, scale);
    let mut stdout = std::io::stdout().lock();
    match tracefile::dump(workload.as_mut(), &mut stdout) {
        Ok(n) => {
            eprintln!("[dumped {n} ops of {bench}]");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace dump failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first().cloned() else {
        return usage();
    };

    let mut scale = Scale::standard();
    let mut svg_dir: Option<PathBuf> = None;
    let mut trace_bench: Option<String> = None;
    let mut i = 1;
    if which == "trace" {
        match args.get(i) {
            Some(b) => trace_bench = Some(b.clone()),
            None => return usage(),
        }
        i += 1;
    }
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("quick") => scale = Scale::quick(),
                    Some("standard") => scale = Scale::standard(),
                    other => {
                        eprintln!("unknown scale {other:?}");
                        return usage();
                    }
                }
            }
            "--ops" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => scale.ops = n,
                    None => return usage(),
                }
            }
            "--fp-scale" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(f) => scale.footprint_scale = f,
                    None => return usage(),
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(s) => scale.seed = s,
                    None => return usage(),
                }
            }
            "--svg" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => svg_dir = Some(PathBuf::from(dir)),
                    None => return usage(),
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                return usage();
            }
        }
        i += 1;
    }

    if let Some(bench) = trace_bench {
        return dump_trace(&bench, scale);
    }
    match which.as_str() {
        "list" => {
            for (name, _) in exp::EXPERIMENTS {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        "all" => {
            for (name, runner) in exp::EXPERIMENTS {
                eprintln!("[running {name}...]");
                emit(name, &runner(scale), svg_dir.as_ref());
            }
            ExitCode::SUCCESS
        }
        name => match exp::by_name(name) {
            Some(runner) => {
                emit(name, &runner(scale), svg_dir.as_ref());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment '{name}'");
                usage()
            }
        },
    }
}
