//! Microbenchmarks of trace generation: the simulator's frontend must
//! never be the bottleneck.

use proram_bench::microbench::Harness;
use proram_workloads::dbms::{Tpcc, Ycsb};
use proram_workloads::synthetic::LocalityMix;
use proram_workloads::{spec06, splash2, Workload};
use std::hint::black_box;

fn bench_kernel_generation(c: &mut Harness) {
    let mut group = c.benchmark_group("trace_generation");
    group.bench_function("splash2_ocean_c", |b| {
        let mut k = splash2::build("ocean_c", 0.25, u64::MAX / 2, 1);
        b.iter(|| black_box(k.next_op()));
    });
    group.bench_function("spec06_mcf", |b| {
        let mut k = spec06::build("mcf", 0.25, u64::MAX / 2, 1);
        b.iter(|| black_box(k.next_op()));
    });
    group.bench_function("synthetic_mix", |b| {
        let mut w = LocalityMix::new(8 << 20, 0.5, u64::MAX / 2, 1);
        b.iter(|| black_box(w.next_op()));
    });
    group.finish();
}

fn bench_dbms_engines(c: &mut Harness) {
    let mut group = c.benchmark_group("dbms_trace");
    group.bench_function("ycsb_op", |b| {
        let mut w = Ycsb::new(50_000, 0.5, u64::MAX / 2, 2);
        b.iter(|| black_box(w.next_op()));
    });
    group.bench_function("tpcc_op", |b| {
        let mut w = Tpcc::new(2, u64::MAX / 2, 3);
        b.iter(|| black_box(w.next_op()));
    });
    group.finish();
}

fn main() {
    let mut c = Harness::new();
    bench_kernel_generation(&mut c);
    bench_dbms_engines(&mut c);
}
