//! Microbenchmarks of the super-block machinery: group algebra,
//! counter/threshold math, stash and tree primitives.

use proram_bench::microbench::Harness;
use proram_core::{SchemeConfig, SuperBlock, Thresholds, WindowStats};
use proram_mem::BlockAddr;
use proram_oram::{eviction, Block, Leaf, OramTree, Stash};
use proram_stats::{Rng64, Xoshiro256};
use std::hint::black_box;

fn bench_superblock_algebra(c: &mut Harness) {
    c.bench_function("superblock_algebra", |b| {
        let mut rng = Xoshiro256::seed_from(1);
        b.iter(|| {
            let addr = BlockAddr(rng.next_below(1 << 20));
            let sb = SuperBlock::containing(addr, 4);
            black_box((sb.neighbor(), sb.parent(), sb.half_containing(addr)));
        });
    });
}

fn bench_threshold_math(c: &mut Harness) {
    c.bench_function("adaptive_threshold", |b| {
        let cfg = SchemeConfig::dynamic(8);
        let mut w = WindowStats::new(1000);
        for i in 0..1000 {
            w.record_request(i % 3, 2000, 1500);
        }
        let rates = w.rates();
        b.iter(|| {
            let th = Thresholds::new(&cfg, rates);
            black_box((th.merge_threshold(2), th.break_threshold(4)));
        });
    });
}

fn bench_path_read_write(c: &mut Harness) {
    c.bench_function("path_read_write_20_levels", |b| {
        let mut tree = OramTree::new(20, 3);
        let mut stash = Stash::new(1000);
        let mut rng = Xoshiro256::seed_from(3);
        // Pre-populate some blocks.
        for i in 0..2000u64 {
            let leaf = Leaf(rng.next_below(1 << 19) as u32);
            stash.insert(Block::opaque(BlockAddr(i), leaf));
        }
        for i in 0..64 {
            eviction::write_path(&mut tree, &mut stash, Leaf(i * 8191));
        }
        b.iter(|| {
            let leaf = Leaf(rng.next_below(1 << 19) as u32);
            eviction::read_path(&mut tree, &mut stash, leaf);
            black_box(eviction::write_path(&mut tree, &mut stash, leaf));
        });
    });
}

fn bench_stash_ops(c: &mut Harness) {
    c.bench_function("stash_insert_take", |b| {
        let mut stash = Stash::new(10_000);
        let mut rng = Xoshiro256::seed_from(4);
        b.iter(|| {
            let addr = BlockAddr(rng.next_below(1 << 30));
            if !stash.contains(addr) {
                stash.insert(Block::opaque(addr, Leaf(0)));
                black_box(stash.take(addr));
            }
        });
    });
}

fn main() {
    let mut c = Harness::new();
    bench_superblock_algebra(&mut c);
    bench_threshold_math(&mut c);
    bench_path_read_write(&mut c);
    bench_stash_ops(&mut c);
}
