//! Microbenchmarks of the ORAM controller itself: access cost of the
//! baseline versus super-block configurations, Z sensitivity and
//! background eviction.

use proram_bench::microbench::{BatchSize, Harness};
use proram_core::{SchemeConfig, SuperBlockOram};
use proram_mem::{BlockAddr, MemRequest, MemoryBackend, NoProbe};
use proram_oram::{OramConfig, PathOram};
use proram_stats::{Rng64, Xoshiro256};
use std::hint::black_box;

fn oram_cfg(num_blocks: u64, z: usize) -> OramConfig {
    OramConfig {
        num_data_blocks: num_blocks,
        z,
        store_payloads: false,
        trace_capacity: 0,
        ..OramConfig::default()
    }
}

fn bench_baseline_access(c: &mut Harness) {
    let mut group = c.benchmark_group("path_oram_access");
    for z in [3usize, 4] {
        group.bench_function(format!("random_access_z{z}"), |b| {
            let mut oram = PathOram::new(oram_cfg(1 << 14, z), 1);
            let mut rng = Xoshiro256::seed_from(2);
            b.iter(|| {
                let addr = BlockAddr(rng.next_below(1 << 14));
                black_box(oram.try_access_block(addr, proram_mem::AccessKind::Read)).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_background_eviction(c: &mut Harness) {
    c.bench_function("background_eviction", |b| {
        let mut oram = PathOram::new(oram_cfg(1 << 14, 3), 3);
        b.iter(|| oram.try_background_evict().expect("healthy tree evicts"));
    });
}

fn bench_superblock_access(c: &mut Harness) {
    let mut group = c.benchmark_group("superblock_access");
    for (name, scheme) in [
        ("baseline", SchemeConfig::baseline()),
        ("static2", SchemeConfig::static_scheme(2)),
        ("dynamic2", SchemeConfig::dynamic(2)),
    ] {
        group.bench_function(name, |b| {
            let mut oram = SuperBlockOram::new(oram_cfg(1 << 14, 3), scheme.clone(), 4);
            let mut rng = Xoshiro256::seed_from(5);
            let mut cursor = 0u64;
            b.iter(|| {
                // Half sequential, half random: exercises merge paths.
                let addr = if rng.next_bool(0.5) {
                    cursor += 1;
                    BlockAddr(cursor % (1 << 14))
                } else {
                    BlockAddr(rng.next_below(1 << 14))
                };
                black_box(oram.access(0, MemRequest::read(addr), &NoProbe));
            });
        });
    }
    group.finish();
}

fn bench_shi_oram_access(c: &mut Harness) {
    use proram_oram::{OramBackend, ShiOram, ShiOramConfig};
    c.bench_function("shi_oram_access", |b| {
        let mut oram = ShiOram::new(
            ShiOramConfig {
                num_data_blocks: 1 << 14,
                ..Default::default()
            },
            9,
        );
        let mut rng = Xoshiro256::seed_from(10);
        b.iter(|| {
            let addr = BlockAddr(rng.next_below(1 << 14));
            black_box(oram.access_block(addr, proram_mem::AccessKind::Read));
        });
        black_box(oram.oram_stats());
    });
}

fn bench_strided_scheme_access(c: &mut Harness) {
    c.bench_function("strided_dynamic_access", |b| {
        let mut oram = SuperBlockOram::new(
            oram_cfg(1 << 14, 3),
            SchemeConfig::dynamic(2).with_super_block_stride(8),
            11,
        );
        let mut cursor = 0u64;
        b.iter(|| {
            cursor += 8;
            black_box(oram.access(0, MemRequest::read(BlockAddr(cursor % (1 << 14))), &NoProbe));
        });
    });
}

fn bench_oram_construction(c: &mut Harness) {
    c.bench_function("oram_init_16k_blocks", |b| {
        b.iter_batched(
            || oram_cfg(1 << 14, 3),
            |cfg| black_box(PathOram::new(cfg, 7)),
            BatchSize::SmallInput,
        );
    });
}

fn main() {
    let mut c = Harness::new();
    bench_baseline_access(&mut c);
    bench_background_eviction(&mut c);
    bench_superblock_access(&mut c);
    bench_shi_oram_access(&mut c);
    bench_strided_scheme_access(&mut c);
    bench_oram_construction(&mut c);
}
