//! Microbench wrappers around the figure experiments at smoke scale —
//! `cargo bench` exercises every table/figure generator end to end and
//! tracks regressions in full-system simulation throughput.

use proram_bench::exp;
use proram_bench::microbench::Harness;
use proram_core::SchemeConfig;
use proram_sim::{runner, MemoryKind, SystemConfig};
use proram_workloads::{suite, Scale, Suite};
use std::hint::black_box;

fn smoke_scale() -> Scale {
    Scale {
        ops: 600,
        warmup_ops: 0,
        footprint_scale: 0.02,
        seed: 42,
    }
}

fn bench_full_system_run(c: &mut Harness) {
    let mut group = c.benchmark_group("system_run");
    group.sample_size(10);
    let spec = suite::specs(Suite::Splash2)
        .into_iter()
        .find(|s| s.name == "fft")
        .expect("fft is registered in the Splash2 suite");
    for (name, kind) in [
        ("dram", MemoryKind::Dram),
        ("oram", MemoryKind::Oram(SchemeConfig::baseline())),
        ("dyn", MemoryKind::Oram(SchemeConfig::dynamic(2))),
    ] {
        group.bench_function(name, |b| {
            let cfg = SystemConfig::quick_test(kind.clone());
            b.iter(|| black_box(runner::run_spec(spec, smoke_scale(), &cfg)));
        });
    }
    group.finish();
}

fn bench_figure_generators(c: &mut Harness) {
    let mut group = c.benchmark_group("figures_smoke");
    group.sample_size(10);
    // The fast figure generators run end to end; the heavyweight suites
    // (fig8/fig9/fig15 iterate dozens of benchmarks) are covered by the
    // binary and the per-run benchmark above.
    for name in ["table1", "fig6a", "fig6b", "fig7"] {
        let f = exp::by_name(name).expect("registered");
        group.bench_function(name, |b| {
            b.iter(|| black_box(f(exp::RunCtx::serial(smoke_scale()))));
        });
    }
    group.finish();
}

fn main() {
    let mut c = Harness::new();
    bench_full_system_run(&mut c);
    bench_figure_generators(&mut c);
}
