//! One-call experiment execution.

use crate::config::SystemConfig;
use crate::metrics::RunMetrics;
use crate::multicore::MultiCoreSystem;
use crate::system::System;
use proram_workloads::{suite, BenchSpec, Scale, Workload};

/// Runs a workload on a freshly built system.
pub fn run_workload(workload: &mut dyn Workload, config: &SystemConfig) -> RunMetrics {
    let system = System::build(config, workload.footprint_bytes());
    system.run(workload)
}

/// Builds a registered benchmark at `scale` and runs it, excluding the
/// scale's warmup prefix from the metrics.
pub fn run_spec(spec: BenchSpec, scale: Scale, config: &SystemConfig) -> RunMetrics {
    let mut workload = suite::build(spec, scale);
    let system = System::build(config, workload.footprint_bytes());
    system.run_with_warmup(workload.as_mut(), scale.warmup_ops)
}

/// Runs one benchmark under several memory configurations, returning the
/// metrics in the same order. Each run rebuilds the workload so traces
/// are identical across configurations.
pub fn compare(spec: BenchSpec, scale: Scale, configs: &[SystemConfig]) -> Vec<RunMetrics> {
    configs
        .iter()
        .map(|cfg| run_spec(spec, scale, cfg))
        .collect()
}

/// Builds an `num_cores`-tile system running `build_workload(core_id)` on
/// each core and runs it to completion, excluding the scale's warmup
/// prefix on every core. The result carries one [`CoreMetrics`] entry per
/// core in [`RunMetrics::per_core`].
///
/// [`CoreMetrics`]: crate::metrics::CoreMetrics
pub fn run_multicore(
    config: &SystemConfig,
    num_cores: usize,
    warmup_ops: u64,
    build_workload: impl FnMut(usize) -> Box<dyn Workload>,
) -> RunMetrics {
    MultiCoreSystem::build(config, num_cores, build_workload).run_with_warmup(warmup_ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryKind;
    use proram_core::SchemeConfig;
    use proram_workloads::Suite;

    fn quick_scale() -> Scale {
        Scale {
            ops: 1500,
            warmup_ops: 0,
            footprint_scale: 0.03,
            seed: 5,
        }
    }

    #[test]
    fn run_spec_executes_named_benchmark() {
        let spec = suite::specs(Suite::Splash2)
            .into_iter()
            .find(|s| s.name == "fft")
            .expect("fft registered");
        let cfg = SystemConfig::quick_test(MemoryKind::Dram);
        let m = run_spec(spec, quick_scale(), &cfg);
        assert_eq!(m.benchmark, "fft");
        assert_eq!(m.trace_ops, 1500);
    }

    #[test]
    fn compare_keeps_traces_identical() {
        let spec = suite::specs(Suite::Splash2)
            .into_iter()
            .find(|s| s.name == "ocean_c")
            .expect("registered");
        let configs = vec![
            SystemConfig::quick_test(MemoryKind::Oram(SchemeConfig::baseline())),
            SystemConfig::quick_test(MemoryKind::Oram(SchemeConfig::baseline())),
        ];
        let results = compare(spec, quick_scale(), &configs);
        // Identical configs on identical traces give identical cycles.
        assert_eq!(results[0].cycles, results[1].cycles);
        assert_eq!(results[0].trace_ops, results[1].trace_ops);
    }

    #[test]
    fn dbms_benchmarks_run() {
        let cfg = SystemConfig::quick_test(MemoryKind::Dram);
        for spec in suite::specs(Suite::Dbms) {
            let m = run_spec(spec, quick_scale(), &cfg);
            assert_eq!(m.trace_ops, 1500, "{}", spec.name);
        }
    }

    #[test]
    fn run_multicore_reports_per_core_breakdown() {
        use proram_workloads::synthetic::LocalityMix;
        let cfg = SystemConfig::quick_test(MemoryKind::Dram);
        let m = run_multicore(&cfg, 2, 200, |id| {
            Box::new(LocalityMix::new(1 << 20, 0.5, 1200, 5 + id as u64))
        });
        assert_eq!(m.per_core.len(), 2);
        assert_eq!(m.trace_ops, 2 * 1000);
        for c in &m.per_core {
            assert_eq!(c.trace_ops, 1000);
        }
    }
}
