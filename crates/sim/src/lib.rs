//! The trace-driven system simulator.
//!
//! Plays the role of Graphite \[21\] in the paper's methodology: a 1 GHz
//! in-order core (Table 1) executes a memory trace against the two-level
//! cache hierarchy; last-level misses go to a pluggable main memory —
//! DRAM, baseline Path ORAM, or an ORAM with static/dynamic super blocks
//! — optionally through a traditional stream prefetcher and/or the
//! periodic-access timing-channel protection.
//!
//! * [`config`] — system configuration (Table 1 defaults),
//! * [`engine`] — the shared tile engine: the one implementation of the
//!   step path, backend construction and per-core metrics accounting,
//! * [`system`] — the single-tile instantiation of the engine,
//! * [`multicore`] — the N-tile instantiation of the engine,
//! * [`metrics`] — per-run measurements (with per-core breakdowns) and
//!   the derived quantities the figures plot (speedup, normalized memory
//!   accesses, miss rates),
//! * [`runner`] — one-call experiment execution.
//!
//! # Examples
//!
//! ```
//! use proram_sim::{runner, MemoryKind, SystemConfig};
//! use proram_workloads::{suite, Scale, Suite};
//!
//! let spec = suite::specs(Suite::Splash2)[0];
//! let scale = Scale { ops: 2_000, warmup_ops: 0, footprint_scale: 0.03, seed: 1 };
//! let cfg = SystemConfig::quick_test(MemoryKind::Dram);
//! let metrics = runner::run_spec(spec, scale, &cfg);
//! assert!(metrics.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod metrics;
pub mod multicore;
pub mod runner;
pub mod sharded;
pub mod system;

pub use config::{MemoryKind, SystemConfig};
pub use engine::TileEngine;
pub use metrics::{CoreMetrics, RunMetrics};
pub use multicore::MultiCoreSystem;
pub use sharded::ShardedOram;
pub use system::System;
