//! Multi-core simulation: several in-order cores with private L1s, a
//! shared LLC, and one memory controller — the tiled-chip shape of the
//! paper's Graphite setup ("We assume there is only one memory controller
//! on the chip").
//!
//! The point it reproduces is Section 2.6: "Since a single ORAM access
//! saturates the available DRAM bandwidth, it brings no benefits to serve
//! multiple ORAM requests in parallel" — DRAM throughput scales with
//! cores (bank overlap), ORAM throughput does not (one serialized
//! controller).
//!
//! Simplifications (documented in DESIGN.md): each core runs its own
//! trace over a private address range (SPMD-style data partitioning), so
//! no cache-coherence traffic exists; private L1 victims are not kept
//! inclusive in the shared LLC across cores — their dirtiness is folded
//! into a write-back directly.

use crate::config::{MemoryKind, SystemConfig};
use crate::metrics::RunMetrics;
use proram_cache::{Cache, CacheConfig};
use proram_core::SuperBlockOram;
use proram_mem::{BlockAddr, Cycle, Dram, MemRequest, MemoryBackend, Periodic};
use proram_oram::OramConfig;
use proram_workloads::{TraceOp, Workload};

/// A workload wrapper giving each core a disjoint address range.
struct ShardedWorkload {
    inner: Box<dyn Workload>,
    offset: u64,
}

impl ShardedWorkload {
    fn next_op(&mut self) -> Option<TraceOp> {
        self.inner.next_op().map(|mut op| {
            op.addr += self.offset;
            op
        })
    }
}

struct CoreState {
    l1: Cache,
    workload: ShardedWorkload,
    now: Cycle,
    done: bool,
    ops: u64,
}

/// A multi-core system: one tile per workload shard.
pub struct MultiCoreSystem {
    cores: Vec<CoreState>,
    llc: Cache,
    memory: Box<dyn MemoryBackend>,
    line_bytes: u64,
    l1_latency: u64,
    llc_latency: u64,
    label: String,
}

impl std::fmt::Debug for MultiCoreSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiCoreSystem")
            .field("cores", &self.cores.len())
            .field("memory", &self.memory.label())
            .finish_non_exhaustive()
    }
}

impl MultiCoreSystem {
    /// Builds `num_cores` tiles, each running a fresh workload from
    /// `build_workload(core_id)` over its own address shard.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or the configuration is invalid.
    pub fn build(
        config: &SystemConfig,
        num_cores: usize,
        mut build_workload: impl FnMut(usize) -> Box<dyn Workload>,
    ) -> Self {
        assert!(num_cores > 0, "need at least one core");
        config.validate();
        let line_bytes = config.line_bytes();
        let mut cores = Vec::with_capacity(num_cores);
        let mut total_footprint = 0u64;
        for id in 0..num_cores {
            let inner = build_workload(id);
            // Line-align each shard's base.
            let offset = total_footprint.div_ceil(line_bytes) * line_bytes;
            total_footprint = offset + inner.footprint_bytes();
            cores.push(CoreState {
                l1: Cache::new(config.hierarchy.l1),
                workload: ShardedWorkload { inner, offset },
                now: 0,
                done: false,
                ops: 0,
            });
        }
        let memory: Box<dyn MemoryBackend> = match &config.memory {
            MemoryKind::Dram => Box::new(Dram::new(config.dram)),
            MemoryKind::Oram(scheme) => {
                let needed = total_footprint.div_ceil(line_bytes).next_power_of_two();
                let oram_cfg = OramConfig {
                    num_data_blocks: needed.max(config.oram.num_data_blocks),
                    ..config.oram.clone()
                };
                let backend = SuperBlockOram::new(oram_cfg, scheme.clone(), config.seed);
                match config.periodic_interval {
                    Some(interval) => Box::new(Periodic::new(backend, interval)),
                    None => Box::new(backend),
                }
            }
        };
        // The shared LLC keeps the single-tile capacity (512 KB per tile
        // in Table 1 refers to the tile's slice; a constant-capacity LLC
        // makes the scaling comparison conservative for DRAM).
        let llc_cfg: CacheConfig = config.hierarchy.l2;
        MultiCoreSystem {
            cores,
            llc: Cache::new(llc_cfg),
            memory,
            line_bytes,
            l1_latency: u64::from(config.hierarchy.l1.hit_latency),
            llc_latency: u64::from(config.hierarchy.l1.hit_latency)
                + u64::from(config.hierarchy.l2.hit_latency),
            label: config.memory.label().to_owned(),
        }
    }

    /// Runs every core to completion; returns the aggregate metrics
    /// (cycles = the slowest core's completion time).
    pub fn run(mut self) -> RunMetrics {
        // Advance the globally-earliest unfinished core by one op, until
        // every core's trace ends.
        while let Some(idx) = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.done)
            .min_by_key(|(_, c)| c.now)
            .map(|(i, _)| i)
        {
            let Some(op) = self.cores[idx].workload.next_op() else {
                self.cores[idx].done = true;
                continue;
            };
            self.step(idx, op);
        }
        let cycles = self.cores.iter().map(|c| c.now).max().unwrap_or(0);
        let trace_ops = self.cores.iter().map(|c| c.ops).sum();
        RunMetrics {
            label: self.label,
            benchmark: format!("{}-core", self.cores.len()),
            cycles,
            trace_ops,
            backend: self.memory.stats(),
            ..RunMetrics::default()
        }
    }

    fn step(&mut self, idx: usize, op: TraceOp) {
        let MultiCoreSystem {
            cores,
            llc,
            memory,
            line_bytes,
            l1_latency,
            llc_latency,
            ..
        } = self;
        let core = &mut cores[idx];
        core.now += u64::from(op.comp_cycles);
        core.ops += 1;
        let block = BlockAddr::from_byte_addr(op.addr, *line_bytes);
        if core.l1.lookup(block, op.write).is_some() {
            core.now += *l1_latency;
            return;
        }
        if let Some(hit) = llc.lookup(block, false) {
            core.now += *llc_latency;
            if hit.prefetch_first_use {
                memory.note_llc_hit(block);
            }
            let now = core.now;
            Self::fill_l1(core, llc, &mut **memory, block, op.write, now);
            return;
        }
        core.now += *llc_latency;
        let outcome = memory.access(core.now, MemRequest::read(block), &*llc);
        core.now = outcome.complete_at;
        let now = core.now;
        for fill in &outcome.fills {
            if let Some(victim) = llc.insert(fill.block, fill.prefetched) {
                memory.note_llc_eviction(victim.block);
                if victim.dirty {
                    memory.access(now, MemRequest::write(victim.block), &*llc);
                }
            }
        }
        Self::fill_l1(core, llc, &mut **memory, block, op.write, now);
    }

    fn fill_l1(
        core: &mut CoreState,
        llc: &mut Cache,
        memory: &mut dyn MemoryBackend,
        block: BlockAddr,
        write: bool,
        now: Cycle,
    ) {
        if let Some(victim) = core.l1.insert(block, false) {
            if victim.dirty && !llc.mark_dirty(victim.block) {
                // Shards are private, but the victim may have left the
                // shared LLC already; write it back directly.
                memory.access(now, MemRequest::write(victim.block), &*llc);
            }
        }
        if write {
            core.l1.mark_dirty(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proram_core::SchemeConfig;
    use proram_workloads::synthetic::LocalityMix;

    fn run_cores(kind: MemoryKind, num_cores: usize, ops: u64) -> RunMetrics {
        let cfg = SystemConfig::quick_test(kind);
        let sys = MultiCoreSystem::build(&cfg, num_cores, |id| {
            Box::new(LocalityMix::with_stride(
                1 << 20,
                0.8,
                ops,
                7 + id as u64,
                128,
            ))
        });
        sys.run()
    }

    #[test]
    fn single_core_matches_expectations() {
        let m = run_cores(MemoryKind::Dram, 1, 3000);
        assert_eq!(m.trace_ops, 3000);
        assert!(m.cycles > 0);
    }

    #[test]
    fn all_cores_complete_their_traces() {
        let m = run_cores(MemoryKind::Dram, 4, 1500);
        assert_eq!(m.trace_ops, 4 * 1500);
    }

    #[test]
    fn dram_throughput_scales_with_cores_but_oram_does_not() {
        // The Section 2.6 claim. Throughput = total ops / cycles.
        let throughput = |kind: MemoryKind, cores: usize| {
            let m = run_cores(kind, cores, 4000);
            m.trace_ops as f64 / m.cycles as f64
        };
        let dram_scaling = throughput(MemoryKind::Dram, 4) / throughput(MemoryKind::Dram, 1);
        let oram_scaling = throughput(MemoryKind::Oram(SchemeConfig::baseline()), 4)
            / throughput(MemoryKind::Oram(SchemeConfig::baseline()), 1);
        assert!(
            dram_scaling > oram_scaling + 0.3,
            "DRAM should scale better: dram x{dram_scaling:.2} vs oram x{oram_scaling:.2}"
        );
        assert!(
            oram_scaling < 1.5,
            "ORAM serialization must cap multi-core scaling: x{oram_scaling:.2}"
        );
    }

    #[test]
    fn shards_are_disjoint() {
        let cfg = SystemConfig::quick_test(MemoryKind::Dram);
        let mut ranges = Vec::new();
        let sys = MultiCoreSystem::build(&cfg, 3, |id| {
            let w = LocalityMix::with_stride(1 << 18, 1.0, 100, id as u64, 128);
            ranges.push(w.footprint_bytes());
            Box::new(w)
        });
        // Drive to completion; addresses must never alias across shards
        // (checked implicitly: per-shard sequential scans would corrupt
        // each other's L1 hit rates if they aliased).
        let m = sys.run();
        assert_eq!(m.trace_ops, 300);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let cfg = SystemConfig::quick_test(MemoryKind::Dram);
        MultiCoreSystem::build(&cfg, 0, |_| Box::new(LocalityMix::new(1 << 16, 1.0, 10, 1)));
    }
}
