//! Multi-core simulation: several in-order cores with private L1s, a
//! shared LLC, and one memory controller — the tiled-chip shape of the
//! paper's Graphite setup ("We assume there is only one memory controller
//! on the chip").
//!
//! The point it reproduces is Section 2.6: "Since a single ORAM access
//! saturates the available DRAM bandwidth, it brings no benefits to serve
//! multiple ORAM requests in parallel" — DRAM throughput scales with
//! cores (bank overlap), ORAM throughput does not (one serialized
//! controller).
//!
//! This is the N-tile instantiation of the shared [`TileEngine`]: step
//! path, warmup, stream prefetching and the full cache/backend accounting
//! are the same code the single-core [`crate::System`] runs, so
//! multi-core figures are measured with the same instrument — including
//! the per-core breakdown in [`RunMetrics::per_core`].
//!
//! Simplifications (documented in DESIGN.md): each core runs its own
//! trace over a private address range (SPMD-style data partitioning), so
//! no cache-coherence traffic exists; the shared LLC is inclusive of
//! every private L1, and an LLC eviction back-invalidates all of them.

use crate::config::SystemConfig;
use crate::engine::TileEngine;
use crate::metrics::RunMetrics;
use proram_mem::MemoryBackend;
use proram_workloads::{TraceOp, Workload};

/// A workload wrapper giving each core a disjoint address range.
struct ShardedWorkload {
    inner: Box<dyn Workload>,
    offset: u64,
}

impl Workload for ShardedWorkload {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn footprint_bytes(&self) -> u64 {
        self.offset + self.inner.footprint_bytes()
    }

    fn next_op(&mut self) -> Option<TraceOp> {
        self.inner.next_op().map(|mut op| {
            op.addr += self.offset;
            op
        })
    }
}

/// A multi-core system: one tile per workload shard.
pub struct MultiCoreSystem {
    engine: TileEngine,
    workloads: Vec<ShardedWorkload>,
}

impl std::fmt::Debug for MultiCoreSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiCoreSystem")
            .field("cores", &self.workloads.len())
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

impl MultiCoreSystem {
    /// Builds `num_cores` tiles, each running a fresh workload from
    /// `build_workload(core_id)` over its own address shard.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or the configuration is invalid.
    pub fn build(
        config: &SystemConfig,
        num_cores: usize,
        mut build_workload: impl FnMut(usize) -> Box<dyn Workload>,
    ) -> Self {
        assert!(num_cores > 0, "need at least one core");
        let line_bytes = config.line_bytes();
        let mut workloads = Vec::with_capacity(num_cores);
        let mut total_footprint = 0u64;
        for id in 0..num_cores {
            let inner = build_workload(id);
            // Line-align each shard's base.
            let offset = total_footprint.div_ceil(line_bytes) * line_bytes;
            total_footprint = offset + inner.footprint_bytes();
            workloads.push(ShardedWorkload { inner, offset });
        }
        MultiCoreSystem {
            engine: TileEngine::build(config, num_cores, total_footprint),
            workloads,
        }
    }

    /// The memory backend (for ORAM-specific inspection in tests).
    pub fn memory(&self) -> &dyn MemoryBackend {
        self.engine.memory()
    }

    /// Attaches an observability handle to every tile and the shared
    /// backend.
    ///
    /// Attach before running; the caller's clone of the handle keeps
    /// seeing events and stage profiles after the run consumes the
    /// system.
    pub fn attach_obs(&mut self, obs: proram_obs::Obs) {
        self.engine.attach_obs(obs);
    }

    /// Runs every core to completion; returns the aggregate metrics
    /// (cycles = the slowest core's completion time) with the per-core
    /// breakdown in [`RunMetrics::per_core`].
    pub fn run(self) -> RunMetrics {
        self.run_with_warmup(0)
    }

    /// Runs every core to completion, excluding each core's first
    /// `warmup_ops` operations from the reported metrics.
    pub fn run_with_warmup(mut self, warmup_ops: u64) -> RunMetrics {
        let mut refs: Vec<&mut dyn Workload> = self
            .workloads
            .iter_mut()
            .map(|w| w as &mut dyn Workload)
            .collect();
        self.engine.run(&mut refs, warmup_ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryKind;
    use crate::system::System;
    use proram_core::SchemeConfig;
    use proram_workloads::synthetic::LocalityMix;

    fn run_cores(kind: MemoryKind, num_cores: usize, ops: u64) -> RunMetrics {
        let cfg = SystemConfig::quick_test(kind);
        let sys = MultiCoreSystem::build(&cfg, num_cores, |id| {
            Box::new(LocalityMix::with_stride(
                1 << 20,
                0.8,
                ops,
                7 + id as u64,
                128,
            ))
        });
        sys.run()
    }

    #[test]
    fn single_core_matches_expectations() {
        let m = run_cores(MemoryKind::Dram, 1, 3000);
        assert_eq!(m.trace_ops, 3000);
        assert!(m.cycles > 0);
    }

    #[test]
    fn all_cores_complete_their_traces() {
        let m = run_cores(MemoryKind::Dram, 4, 1500);
        assert_eq!(m.trace_ops, 4 * 1500);
        assert_eq!(m.per_core.len(), 4);
        for c in &m.per_core {
            assert_eq!(c.trace_ops, 1500);
        }
    }

    /// Regression test: multi-core runs used to return `RunMetrics` with
    /// `caches`, `demand_fetches`, `writebacks` and
    /// `unused_prefetch_evictions` zeroed out. After unifying on the tile
    /// engine they must be populated, per core and in aggregate.
    #[test]
    fn multicore_metrics_are_fully_populated() {
        // Miss-heavy: random accesses over footprints well beyond the
        // caches, with writes.
        let cfg = SystemConfig::quick_test(MemoryKind::Dram);
        let sys = MultiCoreSystem::build(&cfg, 4, |id| {
            Box::new(LocalityMix::new(4 << 20, 0.0, 6000, 3 + id as u64))
        });
        let m = sys.run();
        assert!(m.caches.l1.misses > 0, "L1 stats zeroed");
        assert!(m.caches.l2.misses > 0, "LLC stats zeroed");
        assert!(m.demand_fetches > 0, "demand fetches zeroed");
        assert!(m.writebacks > 0, "writebacks zeroed");
        assert!(m.backend.demand_accesses > 0);
        assert_eq!(m.per_core.len(), 4);
        for (i, c) in m.per_core.iter().enumerate() {
            assert!(c.demand_fetches > 0, "core {i} demand fetches zeroed");
            assert!(c.l1.misses > 0, "core {i} L1 stats zeroed");
            assert!(c.llc.misses > 0, "core {i} LLC attribution zeroed");
            assert!(c.cycles > 0, "core {i} cycles zeroed");
        }
        // Aggregates match the per-core breakdown.
        assert_eq!(
            m.demand_fetches,
            m.per_core.iter().map(|c| c.demand_fetches).sum()
        );
        assert_eq!(m.writebacks, m.per_core.iter().map(|c| c.writebacks).sum());
    }

    /// The refactor's key invariant: a 1-core multi-core system IS the
    /// single-core system — identical timing and accounting for the same
    /// seed, workload and configuration.
    fn assert_one_core_equivalence(kind: MemoryKind) {
        let cfg = SystemConfig::quick_test(kind);
        let build = || LocalityMix::with_stride(1 << 20, 0.8, 4000, 7, 128);

        let mut w = build();
        let single = System::build(&cfg, w.footprint_bytes()).run(&mut w);

        let multi = MultiCoreSystem::build(&cfg, 1, |_| Box::new(build())).run();

        assert_eq!(single.cycles, multi.cycles, "cycles diverged");
        assert_eq!(
            single.demand_fetches, multi.demand_fetches,
            "demand fetches diverged"
        );
        assert_eq!(
            single.backend.physical_accesses, multi.backend.physical_accesses,
            "physical accesses diverged"
        );
        assert_eq!(single.writebacks, multi.writebacks);
        assert_eq!(single.caches.l1, multi.caches.l1);
        assert_eq!(single.caches.l2, multi.caches.l2);
    }

    #[test]
    fn one_core_equals_single_system_on_dram() {
        assert_one_core_equivalence(MemoryKind::Dram);
    }

    #[test]
    fn one_core_equals_single_system_on_dynamic_oram() {
        assert_one_core_equivalence(MemoryKind::Oram(SchemeConfig::dynamic(2)));
    }

    #[test]
    fn multicore_inherits_warmup() {
        let cfg = SystemConfig::quick_test(MemoryKind::Dram);
        let build_sys = || {
            MultiCoreSystem::build(&cfg, 2, |id| {
                Box::new(LocalityMix::new(1 << 20, 0.5, 5000, 9 + id as u64))
            })
        };
        let cold = build_sys().run();
        let warm = build_sys().run_with_warmup(2000);
        assert_eq!(warm.trace_ops, 2 * 3000);
        assert!(warm.cycles < cold.cycles);
    }

    #[test]
    fn dram_throughput_scales_with_cores_but_oram_does_not() {
        // The Section 2.6 claim. Throughput = total ops / cycles.
        let throughput = |kind: MemoryKind, cores: usize| {
            let m = run_cores(kind, cores, 4000);
            m.trace_ops as f64 / m.cycles as f64
        };
        let dram_scaling = throughput(MemoryKind::Dram, 4) / throughput(MemoryKind::Dram, 1);
        let oram_scaling = throughput(MemoryKind::Oram(SchemeConfig::baseline()), 4)
            / throughput(MemoryKind::Oram(SchemeConfig::baseline()), 1);
        assert!(
            dram_scaling > oram_scaling + 0.3,
            "DRAM should scale better: dram x{dram_scaling:.2} vs oram x{oram_scaling:.2}"
        );
        assert!(
            oram_scaling < 1.5,
            "ORAM serialization must cap multi-core scaling: x{oram_scaling:.2}"
        );
    }

    /// `OramShards(s, 1)` is the serialized single controller with a
    /// different label: timing and accounting must match exactly.
    #[test]
    fn one_shard_matches_single_controller() {
        let run = |kind: MemoryKind| run_cores(kind, 2, 2500);
        let single = run(MemoryKind::Oram(SchemeConfig::baseline()));
        let sharded = run(MemoryKind::OramShards(SchemeConfig::baseline(), 1));
        assert_eq!(sharded.label, "oram_sh1");
        assert_eq!(single.cycles, sharded.cycles, "N=1 shard must serialize");
        assert_eq!(
            single.backend.physical_accesses,
            sharded.backend.physical_accesses
        );
        assert_eq!(single.demand_fetches, sharded.demand_fetches);
    }

    /// The serialization ablation: the Section 2.6 scaling wall is (in
    /// part) the single controller. Partitioning blocks over independent
    /// controllers lets multi-core ORAM throughput scale again.
    #[test]
    fn sharding_relaxes_oram_serialization() {
        let throughput = |kind: MemoryKind, cores: usize| {
            let m = run_cores(kind, cores, 4000);
            m.trace_ops as f64 / m.cycles as f64
        };
        let serial_scaling = throughput(MemoryKind::OramShards(SchemeConfig::baseline(), 1), 4)
            / throughput(MemoryKind::OramShards(SchemeConfig::baseline(), 1), 1);
        let sharded_scaling = throughput(MemoryKind::OramShards(SchemeConfig::baseline(), 4), 4)
            / throughput(MemoryKind::OramShards(SchemeConfig::baseline(), 4), 1);
        assert!(
            serial_scaling < 1.5,
            "one controller must reproduce the serialization cap: x{serial_scaling:.2}"
        );
        assert!(
            sharded_scaling > serial_scaling + 0.3,
            "4 shards should relax serialization: x{sharded_scaling:.2} vs x{serial_scaling:.2}"
        );
    }

    #[test]
    fn shards_are_disjoint() {
        let cfg = SystemConfig::quick_test(MemoryKind::Dram);
        let mut ranges = Vec::new();
        let sys = MultiCoreSystem::build(&cfg, 3, |id| {
            let w = LocalityMix::with_stride(1 << 18, 1.0, 100, id as u64, 128);
            ranges.push(w.footprint_bytes());
            Box::new(w)
        });
        // Drive to completion; addresses must never alias across shards
        // (checked implicitly: per-shard sequential scans would corrupt
        // each other's L1 hit rates if they aliased).
        let m = sys.run();
        assert_eq!(m.trace_ops, 300);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let cfg = SystemConfig::quick_test(MemoryKind::Dram);
        MultiCoreSystem::build(&cfg, 0, |_| Box::new(LocalityMix::new(1 << 16, 1.0, 10, 1)));
    }
}
