//! System configuration (the paper's Table 1).

use proram_cache::HierarchyConfig;
use proram_core::SchemeConfig;
use proram_mem::{Cycle, DramConfig};
use proram_oram::OramConfig;
use proram_prefetch::StreamPrefetcherConfig;

/// Which main-memory technology backs the LLC.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoryKind {
    /// Insecure DRAM (the paper's `dram` baseline).
    Dram,
    /// Path ORAM with the given super-block scheme. Use
    /// [`SchemeConfig::baseline`] for plain ORAM, `static_scheme` for
    /// `stat`, `dynamic` for PrORAM.
    Oram(SchemeConfig),
    /// `N` independent ORAM controllers behind one scheduler, blocks
    /// statically address-partitioned over them
    /// ([`crate::sharded::ShardedOram`]). `OramShards(s, 1)` reproduces
    /// the serialized single controller of the paper's Section 2.6;
    /// larger `N` relaxes it (the serialization ablation).
    OramShards(SchemeConfig, usize),
}

impl MemoryKind {
    /// Short label for experiment output.
    pub fn label(&self) -> String {
        match self {
            MemoryKind::Dram => "dram".to_owned(),
            MemoryKind::Oram(s) => s.label().to_owned(),
            MemoryKind::OramShards(s, n) => format!("{}_sh{n}", s.label()),
        }
    }
}

/// Full system configuration.
///
/// Defaults mirror Table 1: 1 GHz in-order core, 32 KB L1, 512 KB L2,
/// 128-byte lines, 16 GB/s DRAM, Z = 3 ORAM with 100-entry stash and a
/// maximum super-block size of 2.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Main-memory technology.
    pub memory: MemoryKind,
    /// ORAM parameters (used when `memory` is [`MemoryKind::Oram`]).
    /// `num_data_blocks` is treated as a minimum — the runner grows it to
    /// cover the workload footprint.
    pub oram: OramConfig,
    /// DRAM parameters (used for DRAM runs; the pin bandwidth also feeds
    /// the ORAM timing model).
    pub dram: DramConfig,
    /// Enable the traditional stream prefetcher (Figure 5).
    pub prefetch: Option<StreamPrefetcherConfig>,
    /// Periodic-access interval `O_int` for timing-channel protection
    /// (Figure 15); `None` disables it.
    pub periodic_interval: Option<Cycle>,
    /// RNG seed for the ORAM.
    pub seed: u64,
}

impl SystemConfig {
    /// Table 1 defaults with the given memory kind.
    pub fn paper_default(memory: MemoryKind) -> Self {
        SystemConfig {
            hierarchy: HierarchyConfig::default(),
            memory,
            oram: OramConfig::default(),
            dram: DramConfig::default(),
            prefetch: None,
            periodic_interval: None,
            seed: 42,
        }
    }

    /// A tiny configuration for unit tests: small caches and ORAM so runs
    /// finish in milliseconds.
    pub fn quick_test(memory: MemoryKind) -> Self {
        SystemConfig {
            oram: OramConfig {
                num_data_blocks: 1 << 12,
                store_payloads: false,
                trace_capacity: 0,
                ..OramConfig::default()
            },
            ..SystemConfig::paper_default(memory)
        }
    }

    /// Line size in bytes (shared by caches, DRAM and ORAM blocks).
    pub fn line_bytes(&self) -> u64 {
        u64::from(self.hierarchy.l2.line_bytes)
    }

    /// Applies a line-size sweep (Figure 14), keeping every component
    /// consistent.
    pub fn with_line_bytes(mut self, line_bytes: u32) -> Self {
        self.hierarchy = HierarchyConfig::paper(line_bytes);
        self.dram.line_bytes = line_bytes;
        self.oram.timing.block_bytes = line_bytes;
        self
    }

    /// Applies a bandwidth sweep in GB/s at 1 GHz (Figure 11).
    pub fn with_bandwidth_gbps(mut self, gbps: u32) -> Self {
        self.dram.bytes_per_cycle = gbps;
        self.oram.timing.bytes_per_cycle = gbps;
        self
    }

    /// Checks consistency of line sizes across components.
    ///
    /// # Panics
    ///
    /// Panics if cache, DRAM and ORAM line sizes disagree.
    pub fn validate(&self) {
        assert_eq!(
            self.hierarchy.l1.line_bytes, self.hierarchy.l2.line_bytes,
            "L1/L2 line sizes differ"
        );
        assert_eq!(
            self.dram.line_bytes, self.hierarchy.l2.line_bytes,
            "DRAM line size differs"
        );
        assert_eq!(
            self.oram.timing.block_bytes, self.hierarchy.l2.line_bytes,
            "ORAM block size differs from the cache line size"
        );
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_default(MemoryKind::Oram(SchemeConfig::dynamic(2)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.hierarchy.l1.capacity_bytes, 32 * 1024);
        assert_eq!(cfg.hierarchy.l2.capacity_bytes, 512 * 1024);
        assert_eq!(cfg.line_bytes(), 128);
        assert_eq!(cfg.dram.bytes_per_cycle, 16);
        assert_eq!(cfg.oram.z, 3);
        assert_eq!(cfg.oram.stash_limit, 100);
        cfg.validate();
    }

    #[test]
    fn line_size_sweep_stays_consistent() {
        for lb in [64u32, 128, 256] {
            let cfg = SystemConfig::default().with_line_bytes(lb);
            cfg.validate();
            assert_eq!(cfg.line_bytes(), u64::from(lb));
        }
    }

    #[test]
    fn bandwidth_sweep_updates_both_models() {
        let cfg = SystemConfig::default().with_bandwidth_gbps(4);
        assert_eq!(cfg.dram.bytes_per_cycle, 4);
        assert_eq!(cfg.oram.timing.bytes_per_cycle, 4);
    }

    #[test]
    fn memory_labels() {
        assert_eq!(MemoryKind::Dram.label(), "dram");
        assert_eq!(MemoryKind::Oram(SchemeConfig::dynamic(2)).label(), "dyn");
        assert_eq!(MemoryKind::Oram(SchemeConfig::baseline()).label(), "oram");
        assert_eq!(
            MemoryKind::OramShards(SchemeConfig::baseline(), 4).label(),
            "oram_sh4"
        );
    }

    #[test]
    #[should_panic(expected = "ORAM block size")]
    fn inconsistent_line_size_rejected() {
        let mut cfg = SystemConfig::default();
        cfg.oram.timing.block_bytes = 64;
        cfg.validate();
    }
}
