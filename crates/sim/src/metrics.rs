//! Per-run measurements and the derived quantities the paper's figures
//! plot.

use proram_cache::{CacheStats, HierarchyStats};
use proram_mem::{BackendStats, Cycle, FaultStats};
use proram_obs::MetricsRegistry;

/// Per-core (per-tile) measurements from one simulation run.
///
/// Produced by the shared tile engine for every tile; a single-core run
/// carries exactly one entry. Aggregating the entries reproduces the
/// run-level totals in [`RunMetrics`] (cycles aggregate as the maximum,
/// counters as sums; the shared-LLC view in `llc` attributes each demand
/// lookup and each fill-triggered eviction to the tile that issued it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreMetrics {
    /// This core's completion time in cycles (its final clock).
    pub cycles: Cycle,
    /// Trace operations this core executed.
    pub trace_ops: u64,
    /// This core's private-L1 counters.
    pub l1: CacheStats,
    /// This core's share of shared-LLC events: demand hits/misses it
    /// issued and evictions its fills triggered. Dirty-eviction counts
    /// include dirtiness folded in from private L1 copies.
    pub llc: CacheStats,
    /// LLC demand misses this core turned into memory fetches.
    pub demand_fetches: u64,
    /// Dirty write-backs this core's fills pushed to memory.
    pub writebacks: u64,
    /// Prefetched lines evicted unused by this core's fills.
    pub unused_prefetch_evictions: u64,
    /// Prefetcher candidates dropped because the line was resident.
    pub prefetch_candidates_filtered: u64,
    /// Fault injection / detection / recovery counters attributed to this
    /// core's demand fetches (all-zero without fault injection).
    pub faults: FaultStats,
}

impl CoreMetrics {
    /// Subtracts a warmup-boundary snapshot so the metrics cover only the
    /// measured phase.
    pub fn subtract_baseline(&mut self, baseline: &CoreMetrics) {
        self.cycles -= baseline.cycles;
        self.trace_ops -= baseline.trace_ops;
        self.l1 = self.l1 - baseline.l1;
        self.llc = self.llc - baseline.llc;
        self.demand_fetches -= baseline.demand_fetches;
        self.writebacks -= baseline.writebacks;
        self.unused_prefetch_evictions -= baseline.unused_prefetch_evictions;
        self.prefetch_candidates_filtered -= baseline.prefetch_candidates_filtered;
        self.faults = self.faults - baseline.faults;
    }

    /// Average cycles per trace op on this core.
    pub fn cpi(&self) -> f64 {
        if self.trace_ops == 0 {
            0.0
        } else {
            self.cycles as f64 / self.trace_ops as f64
        }
    }

    /// Accumulates this core's counters into `registry` under `prefix`
    /// (e.g. `run.core0.`).
    pub fn snapshot_into(&self, registry: &mut MetricsRegistry, prefix: &str) {
        let counters = [
            ("cycles", self.cycles),
            ("trace_ops", self.trace_ops),
            ("demand_fetches", self.demand_fetches),
            ("writebacks", self.writebacks),
            ("unused_prefetch_evictions", self.unused_prefetch_evictions),
            (
                "prefetch_candidates_filtered",
                self.prefetch_candidates_filtered,
            ),
            ("l1.hits", self.l1.hits),
            ("l1.misses", self.l1.misses),
            ("llc.hits", self.llc.hits),
            ("llc.misses", self.llc.misses),
            ("llc.evictions", self.llc.evictions),
            ("llc.dirty_evictions", self.llc.dirty_evictions),
        ];
        for (name, value) in counters {
            registry.counter_add(&format!("{prefix}{name}"), value);
        }
        self.faults
            .snapshot_into(registry, &format!("{prefix}faults."));
    }
}

/// Everything measured during one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Memory-system label (`dram`, `oram`, `stat`, `dyn`, ...).
    pub label: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Completion time in cycles.
    pub cycles: Cycle,
    /// Trace operations executed.
    pub trace_ops: u64,
    /// Cache statistics.
    pub caches: HierarchyStats,
    /// Memory-backend statistics.
    pub backend: BackendStats,
    /// LLC demand misses (memory fetches issued).
    pub demand_fetches: u64,
    /// Dirty write-backs issued to memory.
    pub writebacks: u64,
    /// Prefetched lines evicted from the LLC without being used.
    pub unused_prefetch_evictions: u64,
    /// Prefetcher candidates dropped because the line was resident.
    pub prefetch_candidates_filtered: u64,
    /// Per-core breakdown (one entry per tile; aggregates to the totals
    /// above).
    pub per_core: Vec<CoreMetrics>,
}

impl RunMetrics {
    /// The paper's *Speedup* metric of a run against a baseline run:
    /// positive means this run is faster (e.g. `0.42` = 42% gain).
    pub fn speedup_over(&self, baseline: &RunMetrics) -> f64 {
        assert!(self.cycles > 0, "run did not execute");
        baseline.cycles as f64 / self.cycles as f64 - 1.0
    }

    /// The paper's *Norm. Memory Accesses* metric (proportional to
    /// memory-subsystem energy): physical accesses of this run over the
    /// baseline's.
    pub fn norm_memory_accesses(&self, baseline: &RunMetrics) -> f64 {
        if baseline.backend.physical_accesses == 0 {
            return 1.0;
        }
        self.backend.physical_accesses as f64 / baseline.backend.physical_accesses as f64
    }

    /// Normalized completion time (Figures 11-14 plot this against the
    /// DRAM baseline).
    pub fn norm_completion_time(&self, baseline: &RunMetrics) -> f64 {
        assert!(baseline.cycles > 0, "baseline did not execute");
        self.cycles as f64 / baseline.cycles as f64
    }

    /// Prefetch miss rate (Figure 9): unused prefetches over all resolved
    /// prefetches, combining scheme-level and LLC-level accounting.
    pub fn prefetch_miss_rate(&self) -> Option<f64> {
        let hits = self.backend.prefetch_hits;
        let misses = self.backend.prefetch_misses;
        let total = hits + misses;
        (total > 0).then(|| misses as f64 / total as f64)
    }

    /// Average cycles per trace op (a cost-per-instruction proxy).
    pub fn cpi(&self) -> f64 {
        if self.trace_ops == 0 {
            0.0
        } else {
            self.cycles as f64 / self.trace_ops as f64
        }
    }

    /// Fraction of trace ops that missed the LLC.
    pub fn llc_miss_rate(&self) -> f64 {
        self.caches.l2.miss_rate()
    }

    /// Whether the backend's per-stage cycle attribution (data paths +
    /// posmap/PLB paths + dummy paths) sums to its reported busy cycles.
    /// The tile engine asserts this at the end of every run.
    pub fn stage_cycles_consistent(&self) -> bool {
        self.backend.stage_cycles_consistent()
    }

    /// Accumulates the run into `registry`: run totals under `run.`,
    /// backend counters under `run.backend.`, and every core's breakdown
    /// under `run.core{i}.` — so the per-core view is derivable from the
    /// registry alone (see [`RunMetrics::registry_consistent`]).
    pub fn snapshot_into(&self, registry: &mut MetricsRegistry) {
        registry.counter_add("run.cycles", self.cycles);
        registry.counter_add("run.trace_ops", self.trace_ops);
        registry.counter_add("run.demand_fetches", self.demand_fetches);
        registry.counter_add("run.writebacks", self.writebacks);
        registry.gauge_set("run.cpi", self.cpi());
        registry.gauge_set("run.llc_miss_rate", self.llc_miss_rate());
        self.backend.snapshot_into(registry, "run.backend.");
        for (i, core) in self.per_core.iter().enumerate() {
            core.snapshot_into(registry, &format!("run.core{i}."));
        }
    }

    /// Cross-checks that the per-core counters written by
    /// [`RunMetrics::snapshot_into`] re-aggregate to this run's totals —
    /// the invariant that makes the registry a faithful substitute for
    /// `per_core`.
    pub fn registry_consistent(&self, registry: &MetricsRegistry) -> bool {
        registry.sum_matching("run.core", ".trace_ops") == self.trace_ops
            && registry.sum_matching("run.core", ".demand_fetches") == self.demand_fetches
            && registry.sum_matching("run.core", ".writebacks") == self.writebacks
            && registry.sum_matching("run.core", ".l1.hits") == self.caches.l1.hits
            && registry.sum_matching("run.core", ".l1.misses") == self.caches.l1.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(cycles: Cycle, accesses: u64) -> RunMetrics {
        RunMetrics {
            cycles,
            trace_ops: 100,
            backend: BackendStats {
                physical_accesses: accesses,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn speedup_sign_convention() {
        let base = metrics(1000, 10);
        let faster = metrics(800, 10);
        let slower = metrics(1250, 10);
        assert!((faster.speedup_over(&base) - 0.25).abs() < 1e-12);
        assert!((slower.speedup_over(&base) + 0.2).abs() < 1e-12);
        assert_eq!(base.speedup_over(&base), 0.0);
    }

    #[test]
    fn norm_accesses() {
        let base = metrics(1000, 100);
        let leaner = metrics(900, 80);
        assert!((leaner.norm_memory_accesses(&base) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn norm_completion_time() {
        let base = metrics(1000, 10);
        let x = metrics(5000, 10);
        assert!((x.norm_completion_time(&base) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn prefetch_miss_rate_requires_data() {
        let mut m = metrics(10, 1);
        assert_eq!(m.prefetch_miss_rate(), None);
        m.backend.prefetch_hits = 3;
        m.backend.prefetch_misses = 1;
        assert_eq!(m.prefetch_miss_rate(), Some(0.25));
    }

    #[test]
    fn cpi_computation() {
        let m = metrics(1000, 1);
        assert!((m.cpi() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn core_metrics_baseline_subtraction() {
        let mut c = CoreMetrics {
            cycles: 1000,
            trace_ops: 200,
            demand_fetches: 30,
            writebacks: 8,
            ..CoreMetrics::default()
        };
        c.l1.hits = 150;
        c.l1.misses = 50;
        let mut base = CoreMetrics {
            cycles: 400,
            trace_ops: 80,
            demand_fetches: 12,
            writebacks: 3,
            ..CoreMetrics::default()
        };
        base.l1.hits = 60;
        base.l1.misses = 20;
        c.subtract_baseline(&base);
        assert_eq!(c.cycles, 600);
        assert_eq!(c.trace_ops, 120);
        assert_eq!(c.demand_fetches, 18);
        assert_eq!(c.writebacks, 5);
        assert_eq!(c.l1.hits, 90);
        assert_eq!(c.l1.misses, 30);
    }

    #[test]
    fn registry_snapshot_re_aggregates_per_core_totals() {
        let mut core0 = CoreMetrics {
            cycles: 900,
            trace_ops: 120,
            demand_fetches: 30,
            writebacks: 4,
            ..CoreMetrics::default()
        };
        core0.l1.hits = 70;
        core0.l1.misses = 50;
        let mut core1 = CoreMetrics {
            cycles: 1000,
            trace_ops: 80,
            demand_fetches: 10,
            writebacks: 2,
            ..CoreMetrics::default()
        };
        core1.l1.hits = 55;
        core1.l1.misses = 25;
        let mut m = RunMetrics {
            cycles: 1000,
            trace_ops: 200,
            demand_fetches: 40,
            writebacks: 6,
            per_core: vec![core0, core1],
            ..RunMetrics::default()
        };
        m.caches.l1.hits = 125;
        m.caches.l1.misses = 75;
        let mut registry = MetricsRegistry::new();
        m.snapshot_into(&mut registry);
        assert_eq!(registry.counter("run.trace_ops"), 200);
        assert_eq!(registry.counter("run.core0.trace_ops"), 120);
        assert_eq!(registry.counter("run.core1.demand_fetches"), 10);
        assert!(m.registry_consistent(&registry));
        // A tampered registry fails the cross-check.
        registry.counter_add("run.core1.writebacks", 1);
        assert!(!m.registry_consistent(&registry));
    }

    #[test]
    fn core_cpi() {
        let c = CoreMetrics {
            cycles: 500,
            trace_ops: 100,
            ..CoreMetrics::default()
        };
        assert!((c.cpi() - 5.0).abs() < 1e-12);
        assert_eq!(CoreMetrics::default().cpi(), 0.0);
    }
}
