//! Per-run measurements and the derived quantities the paper's figures
//! plot.

use proram_cache::HierarchyStats;
use proram_mem::{BackendStats, Cycle};

/// Everything measured during one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Memory-system label (`dram`, `oram`, `stat`, `dyn`, ...).
    pub label: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Completion time in cycles.
    pub cycles: Cycle,
    /// Trace operations executed.
    pub trace_ops: u64,
    /// Cache statistics.
    pub caches: HierarchyStats,
    /// Memory-backend statistics.
    pub backend: BackendStats,
    /// LLC demand misses (memory fetches issued).
    pub demand_fetches: u64,
    /// Dirty write-backs issued to memory.
    pub writebacks: u64,
    /// Prefetched lines evicted from the LLC without being used.
    pub unused_prefetch_evictions: u64,
    /// Prefetcher candidates dropped because the line was resident.
    pub prefetch_candidates_filtered: u64,
}

impl RunMetrics {
    /// The paper's *Speedup* metric of a run against a baseline run:
    /// positive means this run is faster (e.g. `0.42` = 42% gain).
    pub fn speedup_over(&self, baseline: &RunMetrics) -> f64 {
        assert!(self.cycles > 0, "run did not execute");
        baseline.cycles as f64 / self.cycles as f64 - 1.0
    }

    /// The paper's *Norm. Memory Accesses* metric (proportional to
    /// memory-subsystem energy): physical accesses of this run over the
    /// baseline's.
    pub fn norm_memory_accesses(&self, baseline: &RunMetrics) -> f64 {
        if baseline.backend.physical_accesses == 0 {
            return 1.0;
        }
        self.backend.physical_accesses as f64 / baseline.backend.physical_accesses as f64
    }

    /// Normalized completion time (Figures 11-14 plot this against the
    /// DRAM baseline).
    pub fn norm_completion_time(&self, baseline: &RunMetrics) -> f64 {
        assert!(baseline.cycles > 0, "baseline did not execute");
        self.cycles as f64 / baseline.cycles as f64
    }

    /// Prefetch miss rate (Figure 9): unused prefetches over all resolved
    /// prefetches, combining scheme-level and LLC-level accounting.
    pub fn prefetch_miss_rate(&self) -> Option<f64> {
        let hits = self.backend.prefetch_hits;
        let misses = self.backend.prefetch_misses;
        let total = hits + misses;
        (total > 0).then(|| misses as f64 / total as f64)
    }

    /// Average cycles per trace op (a cost-per-instruction proxy).
    pub fn cpi(&self) -> f64 {
        if self.trace_ops == 0 {
            0.0
        } else {
            self.cycles as f64 / self.trace_ops as f64
        }
    }

    /// Fraction of trace ops that missed the LLC.
    pub fn llc_miss_rate(&self) -> f64 {
        self.caches.l2.miss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(cycles: Cycle, accesses: u64) -> RunMetrics {
        RunMetrics {
            cycles,
            trace_ops: 100,
            backend: BackendStats {
                physical_accesses: accesses,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn speedup_sign_convention() {
        let base = metrics(1000, 10);
        let faster = metrics(800, 10);
        let slower = metrics(1250, 10);
        assert!((faster.speedup_over(&base) - 0.25).abs() < 1e-12);
        assert!((slower.speedup_over(&base) + 0.2).abs() < 1e-12);
        assert_eq!(base.speedup_over(&base), 0.0);
    }

    #[test]
    fn norm_accesses() {
        let base = metrics(1000, 100);
        let leaner = metrics(900, 80);
        assert!((leaner.norm_memory_accesses(&base) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn norm_completion_time() {
        let base = metrics(1000, 10);
        let x = metrics(5000, 10);
        assert!((x.norm_completion_time(&base) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn prefetch_miss_rate_requires_data() {
        let mut m = metrics(10, 1);
        assert_eq!(m.prefetch_miss_rate(), None);
        m.backend.prefetch_hits = 3;
        m.backend.prefetch_misses = 1;
        assert_eq!(m.prefetch_miss_rate(), Some(0.25));
    }

    #[test]
    fn cpi_computation() {
        let m = metrics(1000, 1);
        assert!((m.cpi() - 10.0).abs() < 1e-12);
    }
}
