//! `N` independent ORAM controllers behind one scheduler.
//!
//! Paper Section 2.6 observes that "since a single ORAM access saturates
//! the available DRAM bandwidth, it brings no benefits to serve multiple
//! ORAM requests in parallel" — the simulator's single serialized
//! controller reproduces that claim. [`ShardedOram`] *relaxes* it as an
//! ablation: blocks are statically address-partitioned over `N`
//! controllers (shard = address mod `N`), each owning a private tree and
//! bandwidth, so requests to different shards overlap. `N = 1` is exactly
//! the serialized baseline; the gap between `N = 1` and `N > 1` measures
//! how much of the multi-core scaling wall is controller serialization
//! rather than the access pattern.
//!
//! Each shard is a full [`SuperBlockOram`] over [`PathOram`], so sharding
//! composes with super-block prefetching and the staged access pipeline.

use crate::config::SystemConfig;
use proram_core::{SchemeConfig, SuperBlockOram};
use proram_mem::{
    AccessOutcome, BackendStats, BlockAddr, CacheProbe, Cycle, MemRequest, MemoryBackend,
};
use proram_obs::Obs;
use proram_oram::{OramConfig, PathOram};

/// Translates a shard's local block addresses back to global ones before
/// probing the LLC, so super-block detection inside a shard sees the
/// cache contents it actually cares about.
struct ShardProbe<'a> {
    llc: &'a dyn CacheProbe,
    shards: u64,
    shard: u64,
}

impl CacheProbe for ShardProbe<'_> {
    fn contains(&self, local: BlockAddr) -> bool {
        self.llc
            .contains(BlockAddr(local.0 * self.shards + self.shard))
    }
}

/// `N` address-partitioned ORAM controllers behind one request scheduler.
pub struct ShardedOram {
    shards: Vec<SuperBlockOram<PathOram>>,
    label: String,
}

impl std::fmt::Debug for ShardedOram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedOram")
            .field("shards", &self.shards.len())
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl ShardedOram {
    /// Builds `num_shards` controllers, each sized to its slice of
    /// `total_data_blocks` (rounded up to a power of two) and seeded
    /// distinctly from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or the per-shard configuration is
    /// invalid.
    pub fn new(
        oram: &OramConfig,
        scheme: &SchemeConfig,
        num_shards: usize,
        total_data_blocks: u64,
        seed: u64,
    ) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let per_shard = total_data_blocks
            .div_ceil(num_shards as u64)
            .next_power_of_two()
            .max(64);
        let shards = (0..num_shards)
            .map(|i| {
                let cfg = OramConfig {
                    num_data_blocks: per_shard,
                    ..oram.clone()
                };
                SuperBlockOram::new(cfg, scheme.clone(), seed.wrapping_add(i as u64))
            })
            .collect();
        ShardedOram {
            shards,
            label: format!("{}_sh{num_shards}", scheme.label()),
        }
    }

    /// Builds from a [`SystemConfig`] whose memory kind is
    /// [`crate::config::MemoryKind::OramShards`], covering
    /// `footprint_bytes`.
    pub fn from_system(
        config: &SystemConfig,
        scheme: &SchemeConfig,
        num_shards: usize,
        footprint_bytes: u64,
    ) -> Self {
        let needed = footprint_bytes
            .div_ceil(config.line_bytes())
            .max(config.oram.num_data_blocks);
        ShardedOram::new(&config.oram, scheme, num_shards, needed, config.seed)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Borrows shard `i`'s controller (per-shard attribution in
    /// `proram-bench obs`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard(&self, i: usize) -> &SuperBlockOram<PathOram> {
        &self.shards[i]
    }

    /// The shard owning a global block and that block's local address.
    fn route(&self, block: BlockAddr) -> (usize, BlockAddr) {
        let n = self.shards.len() as u64;
        ((block.0 % n) as usize, BlockAddr(block.0 / n))
    }

    /// A global address from a shard-local one.
    fn unroute(&self, shard: usize, local: BlockAddr) -> BlockAddr {
        BlockAddr(local.0 * self.shards.len() as u64 + shard as u64)
    }
}

impl MemoryBackend for ShardedOram {
    fn access(&mut self, now: Cycle, req: MemRequest, llc: &dyn CacheProbe) -> AccessOutcome {
        let (shard, local) = self.route(req.block);
        let probe = ShardProbe {
            llc,
            shards: self.shards.len() as u64,
            shard: shard as u64,
        };
        let local_req = MemRequest {
            block: local,
            ..req
        };
        let mut outcome = self.shards[shard].access(now, local_req, &probe);
        for fill in &mut outcome.fills {
            fill.block = self.unroute(shard, fill.block);
        }
        outcome
    }

    fn dummy_access(&mut self, now: Cycle) -> Cycle {
        // Periodic dummies go to the earliest-free shard, mirroring how a
        // bank scheduler picks banks.
        let shard = self
            .shards
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.free_at())
            .map(|(i, _)| i)
            .expect("at least one shard");
        self.shards[shard].dummy_access(now)
    }

    fn free_at(&self) -> Cycle {
        // The scheduler can issue as soon as any shard is free.
        self.shards.iter().map(|s| s.free_at()).min().unwrap_or(0)
    }

    fn note_llc_hit(&mut self, block: BlockAddr) {
        let (shard, local) = self.route(block);
        self.shards[shard].note_llc_hit(local);
    }

    fn note_llc_eviction(&mut self, block: BlockAddr) {
        let (shard, local) = self.route(block);
        self.shards[shard].note_llc_eviction(local);
    }

    fn stats(&self) -> BackendStats {
        self.shards
            .iter()
            .map(|s| s.stats())
            .fold(BackendStats::default(), |acc, s| acc + s)
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn attach_obs(&mut self, obs: Obs) {
        // Every shard shares the one sink; shard identity is recoverable
        // from each shard's own statistics (`ShardedOram::shard`).
        for shard in &mut self.shards {
            shard.attach_obs(obs.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proram_mem::NoProbe;

    fn sharded(n: usize) -> ShardedOram {
        let oram = OramConfig {
            num_data_blocks: 1 << 10,
            store_payloads: false,
            trace_capacity: 0,
            ..OramConfig::default()
        };
        ShardedOram::new(&oram, &SchemeConfig::baseline(), n, 1 << 10, 42)
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        sharded(0);
    }

    #[test]
    fn routing_round_trips() {
        let s = sharded(4);
        for a in [0u64, 1, 5, 1023] {
            let (shard, local) = s.route(BlockAddr(a));
            assert_eq!(s.unroute(shard, local), BlockAddr(a));
        }
    }

    #[test]
    fn every_block_is_served_by_its_shard() {
        let mut s = sharded(4);
        for a in 0..64u64 {
            let o = s.access(0, MemRequest::read(BlockAddr(a)), &NoProbe);
            assert_eq!(o.fills.len(), 1);
            assert_eq!(o.fills[0].block, BlockAddr(a), "fill not mapped back");
        }
        let stats = s.stats();
        assert_eq!(stats.demand_accesses, 64);
        assert!(stats.stage_cycles_consistent());
    }

    #[test]
    fn one_shard_serializes_requests() {
        // N = 1 is the paper's serialized controller: back-to-back
        // requests to different blocks cannot overlap.
        let mut s = sharded(1);
        let a = s.access(0, MemRequest::read(BlockAddr(0)), &NoProbe);
        let b = s.access(0, MemRequest::read(BlockAddr(1)), &NoProbe);
        assert!(b.complete_at > a.complete_at);
    }

    #[test]
    fn shards_overlap_requests_to_different_shards() {
        // With 4 shards, blocks 0..4 land on distinct controllers, so all
        // four requests issued at cycle 0 overlap; the serialized
        // controller must take ~4x longer for the same work.
        let run = |n: usize| {
            let mut s = sharded(n);
            (0..4u64)
                .map(|a| {
                    s.access(0, MemRequest::read(BlockAddr(a)), &NoProbe)
                        .complete_at
                })
                .max()
                .unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert!(
            parallel * 2 < serial,
            "4 shards should overlap 4 requests: {parallel} vs serialized {serial}"
        );
    }

    #[test]
    fn dummy_access_picks_an_idle_shard() {
        let mut s = sharded(2);
        let before: u64 = s.stats().dummy_accesses;
        s.dummy_access(0);
        s.dummy_access(0);
        assert_eq!(s.stats().dummy_accesses, before + 2);
    }
}
