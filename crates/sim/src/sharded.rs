//! `N` independent ORAM controllers behind one scheduler.
//!
//! Paper Section 2.6 observes that "since a single ORAM access saturates
//! the available DRAM bandwidth, it brings no benefits to serve multiple
//! ORAM requests in parallel" — the simulator's single serialized
//! controller reproduces that claim. [`ShardedOram`] *relaxes* it as an
//! ablation: blocks are statically address-partitioned over `N`
//! controllers (shard = address mod `N`), each owning a private tree and
//! bandwidth, so requests to different shards overlap. `N = 1` is exactly
//! the serialized baseline; the gap between `N = 1` and `N > 1` measures
//! how much of the multi-core scaling wall is controller serialization
//! rather than the access pattern.
//!
//! Each shard is a full [`SuperBlockOram`] over [`PathOram`], so sharding
//! composes with super-block prefetching and the staged access pipeline.

use crate::config::SystemConfig;
use proram_core::{SchemeConfig, SuperBlockOram};
use proram_mem::{
    AccessOutcome, BackendStats, BlockAddr, CacheProbe, Cycle, MemRequest, MemoryBackend, NoProbe,
};
use proram_obs::Obs;
use proram_oram::{OramConfig, PathOram};
use proram_par::WorkerPool;
use std::sync::Arc;

/// Translates a shard's local block addresses back to global ones before
/// probing the LLC, so super-block detection inside a shard sees the
/// cache contents it actually cares about.
struct ShardProbe<'a> {
    llc: &'a dyn CacheProbe,
    shards: u64,
    shard: u64,
}

impl CacheProbe for ShardProbe<'_> {
    fn contains(&self, local: BlockAddr) -> bool {
        self.llc
            .contains(BlockAddr(local.0 * self.shards + self.shard))
    }
}

/// `N` address-partitioned ORAM controllers behind one request scheduler.
pub struct ShardedOram {
    shards: Vec<SuperBlockOram<PathOram>>,
    label: String,
    /// Worker pool for [`ShardedOram::access_batch`]; `None` (the
    /// default) steps shards serially on the calling thread.
    pool: Option<Arc<WorkerPool>>,
    /// Batches in which a shard worker panicked and the abandoned slice
    /// was re-served serially (graceful degradation, never an abort).
    batch_panics: u64,
    /// Armed fault injection: the next *parallel* batch panics inside its
    /// worker on reaching this original request index (taken once).
    panic_at: Option<usize>,
}

impl std::fmt::Debug for ShardedOram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedOram")
            .field("shards", &self.shards.len())
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// One shard's slice of a batch: the controller is *moved* onto a worker
/// thread along with its requests and moved back at the merge barrier.
struct ShardJob {
    shard: usize,
    ctrl: SuperBlockOram<PathOram>,
    /// `(original request index, shard-local request)` in issue order.
    reqs: Vec<(usize, MemRequest)>,
    /// Outcomes, same order as `reqs` (filled by the worker).
    outcomes: Vec<(usize, AccessOutcome)>,
    /// Set when a request panicked on the worker: the remaining slice is
    /// abandoned and re-served serially at the merge barrier. Catching
    /// *inside* the job is what keeps the moved controller alive — a
    /// panic that escaped the closure would consume the job, and the
    /// shard's tree, stash and position map with it.
    panicked: bool,
}

impl ShardedOram {
    /// Builds `num_shards` controllers, each sized to its slice of
    /// `total_data_blocks` (rounded up to a power of two) and seeded
    /// distinctly from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or the per-shard configuration is
    /// invalid.
    pub fn new(
        oram: &OramConfig,
        scheme: &SchemeConfig,
        num_shards: usize,
        total_data_blocks: u64,
        seed: u64,
    ) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let per_shard = total_data_blocks
            .div_ceil(num_shards as u64)
            .next_power_of_two()
            .max(64);
        let shards = (0..num_shards)
            .map(|i| {
                let cfg = OramConfig {
                    num_data_blocks: per_shard,
                    ..oram.clone()
                };
                SuperBlockOram::new(cfg, scheme.clone(), seed.wrapping_add(i as u64))
            })
            .collect();
        ShardedOram {
            shards,
            label: format!("{}_sh{num_shards}", scheme.label()),
            pool: None,
            batch_panics: 0,
            panic_at: None,
        }
    }

    /// Builds from a [`SystemConfig`] whose memory kind is
    /// [`crate::config::MemoryKind::OramShards`], covering
    /// `footprint_bytes`.
    pub fn from_system(
        config: &SystemConfig,
        scheme: &SchemeConfig,
        num_shards: usize,
        footprint_bytes: u64,
    ) -> Self {
        let needed = footprint_bytes
            .div_ceil(config.line_bytes())
            .max(config.oram.num_data_blocks);
        ShardedOram::new(&config.oram, scheme, num_shards, needed, config.seed)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Borrows shard `i`'s controller (per-shard attribution in
    /// `proram-bench obs`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard(&self, i: usize) -> &SuperBlockOram<PathOram> {
        &self.shards[i]
    }

    /// The shard owning a global block and that block's local address.
    fn route(&self, block: BlockAddr) -> (usize, BlockAddr) {
        let n = self.shards.len() as u64;
        ((block.0 % n) as usize, BlockAddr(block.0 / n))
    }

    /// A global address from a shard-local one.
    fn unroute(&self, shard: usize, local: BlockAddr) -> BlockAddr {
        BlockAddr(local.0 * self.shards.len() as u64 + shard as u64)
    }

    /// Attaches a worker pool; subsequent [`ShardedOram::access_batch`]
    /// calls step shards on its threads. Results are identical to the
    /// serial path at any thread count (see DESIGN.md section 14).
    pub fn attach_worker_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// Convenience: builds and attaches a pool sized for `threads`
    /// cooperating threads (the caller included); `threads <= 1` detaches
    /// instead, restoring the serial path.
    pub fn set_worker_threads(&mut self, threads: usize) {
        if threads <= 1 {
            self.pool = None;
        } else {
            self.pool = Some(Arc::new(WorkerPool::new(threads)));
        }
    }

    /// Serves a batch of independent requests, all issued at `now`, and
    /// returns one outcome per request (same order).
    ///
    /// Requests are partitioned by owning shard; with a pool attached
    /// ([`ShardedOram::attach_worker_pool`]) each shard's controller is
    /// *moved* onto a worker thread, steps its slice of the batch in issue
    /// order, and is moved back at the merge barrier — the retire order
    /// seen by the caller is the original request order regardless of
    /// which worker finished first, so outcomes, per-shard statistics and
    /// adversary traces are identical at any thread count.
    ///
    /// Shard controllers are `!Sync` while borrowed by the caller's LLC
    /// probe, so batch accesses see no LLC ([`NoProbe`]): super-block
    /// detection runs on access-pattern history alone. Single-request
    /// traffic that wants LLC-aware prefetch decisions should keep using
    /// [`MemoryBackend::access`].
    pub fn access_batch(&mut self, now: Cycle, reqs: &[MemRequest]) -> Vec<AccessOutcome> {
        let n = self.shards.len() as u64;
        let parallel = self
            .pool
            .as_ref()
            .is_some_and(|p| p.workers() > 0 && reqs.len() >= 2);
        if !parallel {
            return reqs
                .iter()
                .map(|req| self.access(now, *req, &NoProbe))
                .collect();
        }
        // Fork: partition requests by shard, preserving issue order
        // within each shard, and move every controller into its job.
        let mut per_shard: Vec<Vec<(usize, MemRequest)>> = Vec::new();
        per_shard.resize_with(self.shards.len(), Vec::new);
        for (i, req) in reqs.iter().enumerate() {
            let (shard, local) = self.route(req.block);
            per_shard[shard].push((
                i,
                MemRequest {
                    block: local,
                    ..*req
                },
            ));
        }
        let jobs: Vec<ShardJob> = std::mem::take(&mut self.shards)
            .into_iter()
            .zip(per_shard)
            .enumerate()
            .map(|(shard, (ctrl, reqs))| ShardJob {
                shard,
                ctrl,
                reqs,
                outcomes: Vec::new(),
                panicked: false,
            })
            .collect();
        let pool = Arc::clone(self.pool.as_ref().expect("parallel implies pool"));
        let panic_at = self.panic_at.take();
        let done = pool.run(jobs, move |mut job: ShardJob| {
            job.outcomes.reserve(job.reqs.len());
            for &(orig, req) in &job.reqs {
                let boom = panic_at == Some(orig);
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    assert!(!boom, "injected shard worker panic");
                    job.ctrl.access(now, req, &NoProbe)
                }));
                let Ok(mut outcome) = attempt else {
                    // Keep the controller; its unserved requests fall
                    // back to the caller thread at the merge barrier.
                    job.panicked = true;
                    break;
                };
                for fill in &mut outcome.fills {
                    fill.block = BlockAddr(fill.block.0 * n + job.shard as u64);
                }
                job.outcomes.push((orig, outcome));
            }
            job
        });
        // Join: controllers return to their slots in shard order and
        // outcomes merge back to original request positions.
        let mut out: Vec<Option<AccessOutcome>> = reqs.iter().map(|_| None).collect();
        let mut unserved: Vec<usize> = Vec::new();
        for job in done {
            debug_assert_eq!(job.shard, self.shards.len());
            if job.panicked {
                self.batch_panics += 1;
                unserved.extend(
                    job.reqs
                        .iter()
                        .skip(job.outcomes.len())
                        .map(|&(orig, _)| orig),
                );
            }
            self.shards.push(job.ctrl);
            for (orig, outcome) in job.outcomes {
                out[orig] = Some(outcome);
            }
        }
        // Graceful degradation: requests a panicked shard abandoned are
        // re-served serially through the normal single-request path, so
        // the batch still returns one outcome per request and later
        // batches keep working.
        for orig in unserved {
            out[orig] = Some(self.access(now, reqs[orig], &NoProbe));
        }
        out.into_iter()
            .map(|o| o.expect("every request served by its shard"))
            .collect()
    }

    /// Times a shard batch hit a worker panic and fell back to serial
    /// service for the abandoned slice.
    pub fn batch_panics(&self) -> u64 {
        self.batch_panics
    }

    /// Arms deterministic worker-panic injection: the next parallel batch
    /// panics inside the worker thread when it reaches the request at
    /// original index `orig`, exercising the abandoned-slice serial
    /// fallback without corrupting any controller.
    pub fn inject_worker_panic(&mut self, orig: usize) {
        self.panic_at = Some(orig);
    }
}

impl MemoryBackend for ShardedOram {
    fn access(&mut self, now: Cycle, req: MemRequest, llc: &dyn CacheProbe) -> AccessOutcome {
        let (shard, local) = self.route(req.block);
        let probe = ShardProbe {
            llc,
            shards: self.shards.len() as u64,
            shard: shard as u64,
        };
        let local_req = MemRequest {
            block: local,
            ..req
        };
        let mut outcome = self.shards[shard].access(now, local_req, &probe);
        for fill in &mut outcome.fills {
            fill.block = self.unroute(shard, fill.block);
        }
        outcome
    }

    fn dummy_access(&mut self, now: Cycle) -> Cycle {
        // Periodic dummies go to the earliest-free shard, mirroring how a
        // bank scheduler picks banks.
        let shard = self
            .shards
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.free_at())
            .map(|(i, _)| i)
            .expect("at least one shard");
        self.shards[shard].dummy_access(now)
    }

    fn free_at(&self) -> Cycle {
        // The scheduler can issue as soon as any shard is free.
        self.shards.iter().map(|s| s.free_at()).min().unwrap_or(0)
    }

    fn note_llc_hit(&mut self, block: BlockAddr) {
        let (shard, local) = self.route(block);
        self.shards[shard].note_llc_hit(local);
    }

    fn note_llc_eviction(&mut self, block: BlockAddr) {
        let (shard, local) = self.route(block);
        self.shards[shard].note_llc_eviction(local);
    }

    fn stats(&self) -> BackendStats {
        self.shards
            .iter()
            .map(|s| s.stats())
            .fold(BackendStats::default(), |acc, s| acc + s)
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn attach_obs(&mut self, obs: Obs) {
        // Every shard shares the one sink; shard identity is recoverable
        // from each shard's own statistics (`ShardedOram::shard`).
        for shard in &mut self.shards {
            shard.attach_obs(obs.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proram_mem::NoProbe;

    fn sharded(n: usize) -> ShardedOram {
        let oram = OramConfig {
            num_data_blocks: 1 << 10,
            store_payloads: false,
            trace_capacity: 0,
            ..OramConfig::default()
        };
        ShardedOram::new(&oram, &SchemeConfig::baseline(), n, 1 << 10, 42)
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        sharded(0);
    }

    #[test]
    fn routing_round_trips() {
        let s = sharded(4);
        for a in [0u64, 1, 5, 1023] {
            let (shard, local) = s.route(BlockAddr(a));
            assert_eq!(s.unroute(shard, local), BlockAddr(a));
        }
    }

    #[test]
    fn every_block_is_served_by_its_shard() {
        let mut s = sharded(4);
        for a in 0..64u64 {
            let o = s.access(0, MemRequest::read(BlockAddr(a)), &NoProbe);
            assert_eq!(o.fills.len(), 1);
            assert_eq!(o.fills[0].block, BlockAddr(a), "fill not mapped back");
        }
        let stats = s.stats();
        assert_eq!(stats.demand_accesses, 64);
        assert!(stats.stage_cycles_consistent());
    }

    #[test]
    fn one_shard_serializes_requests() {
        // N = 1 is the paper's serialized controller: back-to-back
        // requests to different blocks cannot overlap.
        let mut s = sharded(1);
        let a = s.access(0, MemRequest::read(BlockAddr(0)), &NoProbe);
        let b = s.access(0, MemRequest::read(BlockAddr(1)), &NoProbe);
        assert!(b.complete_at > a.complete_at);
    }

    #[test]
    fn shards_overlap_requests_to_different_shards() {
        // With 4 shards, blocks 0..4 land on distinct controllers, so all
        // four requests issued at cycle 0 overlap; the serialized
        // controller must take ~4x longer for the same work.
        let run = |n: usize| {
            let mut s = sharded(n);
            (0..4u64)
                .map(|a| {
                    s.access(0, MemRequest::read(BlockAddr(a)), &NoProbe)
                        .complete_at
                })
                .max()
                .unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert!(
            parallel * 2 < serial,
            "4 shards should overlap 4 requests: {parallel} vs serialized {serial}"
        );
    }

    #[test]
    fn batch_results_identical_at_any_worker_thread_count() {
        // The tentpole determinism contract at the shard level: moving
        // controllers onto worker threads and merging at the barrier must
        // be invisible — outcomes, aggregate statistics and every
        // per-shard stat agree with the serial path exactly.
        let reqs: Vec<MemRequest> = (0..48u64)
            .map(|a| MemRequest::read(BlockAddr((a * 7) % 1024)))
            .collect();
        let run = |threads: usize| {
            let mut s = sharded(4);
            s.set_worker_threads(threads);
            let batches: Vec<Vec<AccessOutcome>> =
                reqs.chunks(16).map(|c| s.access_batch(0, c)).collect();
            let per_shard: Vec<BackendStats> =
                (0..s.num_shards()).map(|i| s.shard(i).stats()).collect();
            (batches, s.stats(), per_shard)
        };
        let baseline = run(1);
        for threads in [2, 4, 7] {
            assert_eq!(run(threads), baseline, "threads={threads}");
        }
    }

    #[test]
    fn batch_fills_map_back_to_global_addresses() {
        let mut s = sharded(4);
        s.set_worker_threads(4);
        let reqs: Vec<MemRequest> = (0..8u64).map(|a| MemRequest::read(BlockAddr(a))).collect();
        let outcomes = s.access_batch(0, &reqs);
        assert_eq!(outcomes.len(), 8);
        for (req, o) in reqs.iter().zip(&outcomes) {
            assert!(
                o.fills.iter().any(|f| f.block == req.block),
                "demand block {:?} missing from fills",
                req.block
            );
        }
        assert_eq!(s.stats().demand_accesses, 8);
    }

    #[test]
    fn worker_panic_degrades_to_serial_and_batch_completes() {
        let reqs: Vec<MemRequest> = (0..16u64).map(|a| MemRequest::read(BlockAddr(a))).collect();
        let mut s = sharded(4);
        s.set_worker_threads(4);
        s.inject_worker_panic(5);
        let outcomes = s.access_batch(0, &reqs);
        assert_eq!(outcomes.len(), 16);
        for (req, o) in reqs.iter().zip(&outcomes) {
            assert!(
                o.fills.iter().any(|f| f.block == req.block),
                "demand block {:?} missing after panic fallback",
                req.block
            );
        }
        assert_eq!(s.batch_panics(), 1);
        // The controllers and the pool both survive: the next batch is
        // clean and the panic counter stays put.
        let again = s.access_batch(0, &reqs);
        assert_eq!(again.len(), 16);
        assert_eq!(s.batch_panics(), 1);
        assert_eq!(s.stats().demand_accesses, 32);
    }

    #[test]
    fn dummy_access_picks_an_idle_shard() {
        let mut s = sharded(2);
        let before: u64 = s.stats().dummy_accesses;
        s.dummy_access(0);
        s.dummy_access(0);
        assert_eq!(s.stats().dummy_accesses, before + 2);
    }
}
