//! The assembled system: in-order core + caches + prefetcher + memory.

use crate::config::{MemoryKind, SystemConfig};
use crate::metrics::RunMetrics;
use proram_cache::{CacheAccess, CacheHierarchy, Evicted};
use proram_core::SuperBlockOram;
use proram_mem::{BlockAddr, Cycle, Dram, MemRequest, MemoryBackend, Periodic};
use proram_oram::OramConfig;
use proram_prefetch::StreamPrefetcher;
use proram_workloads::TraceOp;

/// A runnable single-tile system.
///
/// The core is in-order and blocking (Table 1): it advances its clock by
/// each trace op's compute cycles, then performs the memory access,
/// stalling on LLC misses until the demand data returns. Write-backs and
/// prefetches are issued without stalling but occupy the memory resource,
/// which is how ORAM bandwidth contention (Section 3.1) arises.
pub struct System {
    hierarchy: CacheHierarchy,
    memory: Box<dyn MemoryBackend>,
    prefetcher: Option<StreamPrefetcher>,
    now: Cycle,
    line_bytes: u64,
    metrics: RunMetrics,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("memory", &self.memory.label())
            .field("now", &self.now)
            .field("line_bytes", &self.line_bytes)
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a system for a workload with the given footprint.
    ///
    /// The ORAM is sized to the next power of two covering
    /// `footprint_bytes` (at least the configured minimum) so every trace
    /// address maps to a valid block.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn build(config: &SystemConfig, footprint_bytes: u64) -> Self {
        config.validate();
        let line_bytes = config.line_bytes();
        let memory: Box<dyn MemoryBackend> = match &config.memory {
            MemoryKind::Dram => Box::new(Dram::new(config.dram)),
            MemoryKind::Oram(scheme) => {
                let needed = footprint_bytes.div_ceil(line_bytes).next_power_of_two();
                let oram_cfg = OramConfig {
                    num_data_blocks: needed.max(config.oram.num_data_blocks),
                    ..config.oram.clone()
                };
                let backend = SuperBlockOram::new(oram_cfg, scheme.clone(), config.seed);
                match config.periodic_interval {
                    Some(interval) => Box::new(Periodic::new(backend, interval)),
                    None => Box::new(backend),
                }
            }
        };
        let label = match config.periodic_interval {
            Some(_) => format!("{}_intvl", config.memory.label()),
            None => config.memory.label().to_owned(),
        };
        System {
            hierarchy: CacheHierarchy::new(config.hierarchy),
            memory,
            prefetcher: config.prefetch.map(StreamPrefetcher::new),
            now: 0,
            line_bytes,
            metrics: RunMetrics {
                label,
                ..RunMetrics::default()
            },
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The memory backend (for ORAM-specific inspection in tests).
    pub fn memory(&self) -> &dyn MemoryBackend {
        self.memory.as_ref()
    }

    /// Executes one trace op.
    pub fn step(&mut self, op: TraceOp) {
        self.now += u64::from(op.comp_cycles);
        self.metrics.trace_ops += 1;
        let block = BlockAddr::from_byte_addr(op.addr, self.line_bytes);
        match self.hierarchy.access(block, op.write) {
            CacheAccess::L1Hit { latency } => {
                self.now += latency;
            }
            CacheAccess::L2Hit {
                latency,
                prefetch_first_use,
            } => {
                self.now += latency;
                if prefetch_first_use {
                    self.memory.note_llc_hit(block);
                }
            }
            CacheAccess::Miss { latency } => {
                self.now += latency;
                self.demand_fetch(block, op.write);
            }
        }
    }

    /// Runs an entire workload to completion, returning the metrics.
    pub fn run(self, workload: &mut dyn proram_workloads::Workload) -> RunMetrics {
        self.run_with_warmup(workload, 0)
    }

    /// Runs a workload, excluding the first `warmup_ops` operations from
    /// the reported metrics so results reflect steady state (caches and
    /// super-block state warm) rather than cold-start behaviour.
    pub fn run_with_warmup(
        mut self,
        workload: &mut dyn proram_workloads::Workload,
        warmup_ops: u64,
    ) -> RunMetrics {
        self.metrics.benchmark = workload.name().to_owned();
        let mut executed = 0u64;
        while executed < warmup_ops {
            let Some(op) = workload.next_op() else { break };
            self.step(op);
            executed += 1;
        }
        let cycles0 = self.now;
        let caches0 = self.hierarchy.stats();
        let backend0 = self.memory.stats();
        let ops0 = self.metrics.trace_ops;
        let fetches0 = self.metrics.demand_fetches;
        let writebacks0 = self.metrics.writebacks;
        let unused0 = self.metrics.unused_prefetch_evictions;
        while let Some(op) = workload.next_op() {
            self.step(op);
        }
        let mut m = self.finish();
        m.cycles -= cycles0;
        m.caches = m.caches - caches0;
        m.backend = m.backend - backend0;
        m.trace_ops -= ops0;
        m.demand_fetches -= fetches0;
        m.writebacks -= writebacks0;
        m.unused_prefetch_evictions -= unused0;
        m
    }

    /// Finalizes and returns the metrics.
    pub fn finish(mut self) -> RunMetrics {
        self.metrics.cycles = self.now;
        self.metrics.caches = self.hierarchy.stats();
        self.metrics.backend = self.memory.stats();
        self.metrics
    }

    fn demand_fetch(&mut self, block: BlockAddr, write: bool) {
        self.metrics.demand_fetches += 1;
        // Write misses are write-allocate: fetch the line, then dirty it.
        let outcome = self
            .memory
            .access(self.now, MemRequest::read(block), &self.hierarchy);
        self.now = outcome.complete_at;
        let mut evictions: Vec<Evicted> = Vec::new();
        for fill in &outcome.fills {
            let is_demand = fill.block == block && !fill.prefetched;
            evictions.extend(
                self.hierarchy
                    .fill(fill.block, fill.prefetched, is_demand && write),
            );
        }
        for ev in evictions {
            self.handle_eviction(ev);
        }
        // Traditional prefetcher (Figure 5): candidates issue behind the
        // demand access without stalling the core, but they occupy the
        // memory resource.
        if let Some(pf) = self.prefetcher.as_mut() {
            let candidates = pf.on_miss(block);
            for cand in candidates {
                if self.hierarchy.contains_block(cand) {
                    self.metrics.prefetch_candidates_filtered += 1;
                    continue;
                }
                let o = self
                    .memory
                    .access(self.now, MemRequest::prefetch(cand), &self.hierarchy);
                let mut evs: Vec<Evicted> = Vec::new();
                for fill in &o.fills {
                    evs.extend(self.hierarchy.fill(fill.block, true, false));
                }
                for ev in evs {
                    self.handle_eviction(ev);
                }
            }
        }
    }

    fn handle_eviction(&mut self, ev: Evicted) {
        if ev.prefetched_unused {
            self.metrics.unused_prefetch_evictions += 1;
        }
        // The hit/prefetch-bit bookkeeping sees every departure.
        self.memory.note_llc_eviction(ev.block);
        if ev.dirty {
            self.metrics.writebacks += 1;
            // Write-back buffers hide the latency from the core, but the
            // access still occupies memory bandwidth.
            self.memory
                .access(self.now, MemRequest::write(ev.block), &self.hierarchy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proram_core::SchemeConfig;
    use proram_workloads::synthetic::LocalityMix;
    use proram_workloads::Workload;

    fn run(kind: MemoryKind, locality: f64, ops: u64) -> RunMetrics {
        let cfg = SystemConfig::quick_test(kind);
        let mut w = LocalityMix::new(4 << 20, locality, ops, 7);
        let sys = System::build(&cfg, w.footprint_bytes());
        sys.run(&mut w)
    }

    #[test]
    fn dram_run_completes() {
        let m = run(MemoryKind::Dram, 0.5, 2000);
        assert_eq!(m.trace_ops, 2000);
        assert!(m.cycles > 2000);
        assert_eq!(m.label, "dram");
        assert!(m.demand_fetches > 0);
    }

    #[test]
    fn oram_is_much_slower_than_dram() {
        let dram = run(MemoryKind::Dram, 0.0, 3000);
        let oram = run(MemoryKind::Oram(SchemeConfig::baseline()), 0.0, 3000);
        let slowdown = oram.cycles as f64 / dram.cycles as f64;
        assert!(
            slowdown > 2.0,
            "ORAM should be much slower on a memory-bound trace: {slowdown:.2}x"
        );
    }

    #[test]
    fn hits_do_not_touch_memory() {
        // A footprint smaller than the L1 never misses after warmup.
        let cfg = SystemConfig::quick_test(MemoryKind::Dram);
        let mut w = LocalityMix::new(8 << 10, 1.0, 5000, 3);
        let sys = System::build(&cfg, w.footprint_bytes());
        let m = sys.run(&mut w);
        assert!(
            m.backend.demand_accesses < 100,
            "tiny working set should stay cached: {} fetches",
            m.backend.demand_accesses
        );
    }

    #[test]
    fn writebacks_reach_memory() {
        // All-write sweep over a large footprint forces dirty evictions.
        let cfg = SystemConfig::quick_test(MemoryKind::Dram);
        let mut w = LocalityMix::new(8 << 20, 0.0, 20_000, 3);
        let sys = System::build(&cfg, w.footprint_bytes());
        let m = sys.run(&mut w);
        assert!(m.writebacks > 0, "no writebacks observed");
    }

    /// Sequential runs need at least two sweeps of the array: pairs
    /// merge during the first lap (when the neighbor is still cached)
    /// and pay off from the second lap on. 1 MB footprint = 8192 lines
    /// = ~131k ops per lap at 16 touches per line.
    fn run_two_laps(kind: MemoryKind) -> RunMetrics {
        let cfg = SystemConfig::quick_test(kind);
        let mut w = LocalityMix::new(1 << 20, 1.0, 280_000, 7);
        let sys = System::build(&cfg, w.footprint_bytes());
        sys.run(&mut w)
    }

    #[test]
    fn dynamic_scheme_prefetches_on_sequential_trace() {
        let m = run_two_laps(MemoryKind::Oram(SchemeConfig::dynamic(2)));
        assert!(
            m.backend.prefetch_hits > 100,
            "sequential trace should train and use super blocks: {} hits",
            m.backend.prefetch_hits
        );
        assert_eq!(m.label, "dyn");
    }

    #[test]
    fn dynamic_beats_baseline_on_sequential_trace() {
        let base = run_two_laps(MemoryKind::Oram(SchemeConfig::baseline()));
        let dynamic = run_two_laps(MemoryKind::Oram(SchemeConfig::dynamic(2)));
        let gain = dynamic.speedup_over(&base);
        assert!(gain > 0.05, "dyn gain on pure-sequential: {gain:.3}");
    }

    #[test]
    fn dynamic_tracks_baseline_on_random_trace() {
        let base = run(MemoryKind::Oram(SchemeConfig::baseline()), 0.0, 15_000);
        let dynamic = run(MemoryKind::Oram(SchemeConfig::dynamic(2)), 0.0, 15_000);
        let gain = dynamic.speedup_over(&base);
        assert!(
            gain.abs() < 0.05,
            "dyn must not hurt random traces: {gain:.3}"
        );
    }

    #[test]
    fn static_scheme_hurts_random_traces() {
        let base = run(MemoryKind::Oram(SchemeConfig::baseline()), 0.0, 15_000);
        let stat = run(
            MemoryKind::Oram(SchemeConfig::static_scheme(2)),
            0.0,
            15_000,
        );
        let gain = stat.speedup_over(&base);
        assert!(
            gain < 0.0,
            "static super blocks should lose without locality: {gain:.3}"
        );
    }

    #[test]
    fn periodic_oram_issues_dummies() {
        let mut cfg = SystemConfig::quick_test(MemoryKind::Oram(SchemeConfig::baseline()));
        cfg.periodic_interval = Some(100);
        let mut w = LocalityMix::new(1 << 20, 0.5, 3000, 5);
        let sys = System::build(&cfg, w.footprint_bytes());
        let m = sys.run(&mut w);
        assert_eq!(m.label, "oram_intvl");
        assert!(m.backend.dummy_accesses > 0);
    }

    #[test]
    fn prefetcher_on_dram_helps_sequential() {
        let plain = run(MemoryKind::Dram, 1.0, 20_000);
        let mut cfg = SystemConfig::quick_test(MemoryKind::Dram);
        cfg.prefetch = Some(Default::default());
        let mut w = LocalityMix::new(4 << 20, 1.0, 20_000, 7);
        let sys = System::build(&cfg, w.footprint_bytes());
        let with_pf = sys.run(&mut w);
        assert!(
            with_pf.cycles < plain.cycles,
            "stream prefetcher should help sequential DRAM: {} vs {}",
            with_pf.cycles,
            plain.cycles
        );
    }

    #[test]
    fn oram_sized_to_footprint() {
        let cfg = SystemConfig::quick_test(MemoryKind::Oram(SchemeConfig::baseline()));
        // A footprint larger than the configured minimum must not panic.
        let mut w = LocalityMix::new(64 << 20, 0.0, 500, 2);
        let sys = System::build(&cfg, w.footprint_bytes());
        let m = sys.run(&mut w);
        assert_eq!(m.trace_ops, 500);
    }
}
