//! The assembled single-tile system: in-order core + caches + prefetcher
//! + memory.
//!
//! This is the 1-tile instantiation of the shared [`TileEngine`] — the
//! step path, backend construction and metrics accounting all live in
//! [`crate::engine`], so single-core and multi-core runs are measured
//! with the same instrument.

use crate::config::SystemConfig;
use crate::engine::TileEngine;
use crate::metrics::RunMetrics;
use proram_mem::{Cycle, MemoryBackend};
use proram_workloads::TraceOp;

/// A runnable single-tile system.
///
/// The core is in-order and blocking (Table 1): it advances its clock by
/// each trace op's compute cycles, then performs the memory access,
/// stalling on LLC misses until the demand data returns. Write-backs and
/// prefetches are issued without stalling but occupy the memory resource,
/// which is how ORAM bandwidth contention (Section 3.1) arises.
#[derive(Debug)]
pub struct System {
    engine: TileEngine,
}

impl System {
    /// Builds a system for a workload with the given footprint.
    ///
    /// The ORAM is sized to the next power of two covering
    /// `footprint_bytes` (at least the configured minimum) so every trace
    /// address maps to a valid block.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn build(config: &SystemConfig, footprint_bytes: u64) -> Self {
        System {
            engine: TileEngine::build(config, 1, footprint_bytes),
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.engine.now(0)
    }

    /// The memory backend (for ORAM-specific inspection in tests).
    pub fn memory(&self) -> &dyn MemoryBackend {
        self.engine.memory()
    }

    /// Attaches an observability handle to the tile and its backend.
    ///
    /// Attach before running; the caller's clone of the handle keeps
    /// seeing events and stage profiles after the run consumes the
    /// system.
    pub fn attach_obs(&mut self, obs: proram_obs::Obs) {
        self.engine.attach_obs(obs);
    }

    /// Executes one trace op.
    pub fn step(&mut self, op: TraceOp) {
        self.engine.step(0, op);
    }

    /// Runs an entire workload to completion, returning the metrics.
    pub fn run(self, workload: &mut dyn proram_workloads::Workload) -> RunMetrics {
        self.run_with_warmup(workload, 0)
    }

    /// Runs a workload, excluding the first `warmup_ops` operations from
    /// the reported metrics so results reflect steady state (caches and
    /// super-block state warm) rather than cold-start behaviour.
    pub fn run_with_warmup(
        self,
        workload: &mut dyn proram_workloads::Workload,
        warmup_ops: u64,
    ) -> RunMetrics {
        self.engine.run(&mut [workload], warmup_ops)
    }

    /// Finalizes and returns the metrics.
    pub fn finish(self) -> RunMetrics {
        self.engine.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryKind;
    use proram_core::SchemeConfig;
    use proram_workloads::synthetic::LocalityMix;
    use proram_workloads::Workload;

    fn run(kind: MemoryKind, locality: f64, ops: u64) -> RunMetrics {
        let cfg = SystemConfig::quick_test(kind);
        let mut w = LocalityMix::new(4 << 20, locality, ops, 7);
        let sys = System::build(&cfg, w.footprint_bytes());
        sys.run(&mut w)
    }

    #[test]
    fn dram_run_completes() {
        let m = run(MemoryKind::Dram, 0.5, 2000);
        assert_eq!(m.trace_ops, 2000);
        assert!(m.cycles > 2000);
        assert_eq!(m.label, "dram");
        assert!(m.demand_fetches > 0);
    }

    #[test]
    fn single_tile_run_reports_one_core_entry() {
        let m = run(MemoryKind::Dram, 0.5, 2000);
        assert_eq!(m.per_core.len(), 1);
        let c = &m.per_core[0];
        assert_eq!(c.cycles, m.cycles);
        assert_eq!(c.trace_ops, m.trace_ops);
        assert_eq!(c.demand_fetches, m.demand_fetches);
        assert_eq!(c.writebacks, m.writebacks);
        assert_eq!(c.l1, m.caches.l1);
        assert_eq!(c.llc.hits, m.caches.l2.hits);
        assert_eq!(c.llc.misses, m.caches.l2.misses);
    }

    #[test]
    fn oram_is_much_slower_than_dram() {
        let dram = run(MemoryKind::Dram, 0.0, 3000);
        let oram = run(MemoryKind::Oram(SchemeConfig::baseline()), 0.0, 3000);
        let slowdown = oram.cycles as f64 / dram.cycles as f64;
        assert!(
            slowdown > 2.0,
            "ORAM should be much slower on a memory-bound trace: {slowdown:.2}x"
        );
    }

    #[test]
    fn hits_do_not_touch_memory() {
        // A footprint smaller than the L1 never misses after warmup.
        let cfg = SystemConfig::quick_test(MemoryKind::Dram);
        let mut w = LocalityMix::new(8 << 10, 1.0, 5000, 3);
        let sys = System::build(&cfg, w.footprint_bytes());
        let m = sys.run(&mut w);
        assert!(
            m.backend.demand_accesses < 100,
            "tiny working set should stay cached: {} fetches",
            m.backend.demand_accesses
        );
    }

    #[test]
    fn writebacks_reach_memory() {
        // All-write sweep over a large footprint forces dirty evictions.
        let cfg = SystemConfig::quick_test(MemoryKind::Dram);
        let mut w = LocalityMix::new(8 << 20, 0.0, 20_000, 3);
        let sys = System::build(&cfg, w.footprint_bytes());
        let m = sys.run(&mut w);
        assert!(m.writebacks > 0, "no writebacks observed");
    }

    /// Sequential runs need at least two sweeps of the array: pairs
    /// merge during the first lap (when the neighbor is still cached)
    /// and pay off from the second lap on. 1 MB footprint = 8192 lines
    /// = ~131k ops per lap at 16 touches per line.
    fn run_two_laps(kind: MemoryKind) -> RunMetrics {
        let cfg = SystemConfig::quick_test(kind);
        let mut w = LocalityMix::new(1 << 20, 1.0, 280_000, 7);
        let sys = System::build(&cfg, w.footprint_bytes());
        sys.run(&mut w)
    }

    #[test]
    fn dynamic_scheme_prefetches_on_sequential_trace() {
        let m = run_two_laps(MemoryKind::Oram(SchemeConfig::dynamic(2)));
        assert!(
            m.backend.prefetch_hits > 100,
            "sequential trace should train and use super blocks: {} hits",
            m.backend.prefetch_hits
        );
        assert_eq!(m.label, "dyn");
    }

    #[test]
    fn dynamic_beats_baseline_on_sequential_trace() {
        let base = run_two_laps(MemoryKind::Oram(SchemeConfig::baseline()));
        let dynamic = run_two_laps(MemoryKind::Oram(SchemeConfig::dynamic(2)));
        let gain = dynamic.speedup_over(&base);
        assert!(gain > 0.05, "dyn gain on pure-sequential: {gain:.3}");
    }

    #[test]
    fn dynamic_tracks_baseline_on_random_trace() {
        let base = run(MemoryKind::Oram(SchemeConfig::baseline()), 0.0, 15_000);
        let dynamic = run(MemoryKind::Oram(SchemeConfig::dynamic(2)), 0.0, 15_000);
        let gain = dynamic.speedup_over(&base);
        assert!(
            gain.abs() < 0.05,
            "dyn must not hurt random traces: {gain:.3}"
        );
    }

    #[test]
    fn static_scheme_hurts_random_traces() {
        let base = run(MemoryKind::Oram(SchemeConfig::baseline()), 0.0, 15_000);
        let stat = run(
            MemoryKind::Oram(SchemeConfig::static_scheme(2)),
            0.0,
            15_000,
        );
        let gain = stat.speedup_over(&base);
        assert!(
            gain < 0.0,
            "static super blocks should lose without locality: {gain:.3}"
        );
    }

    #[test]
    fn periodic_oram_issues_dummies() {
        let mut cfg = SystemConfig::quick_test(MemoryKind::Oram(SchemeConfig::baseline()));
        cfg.periodic_interval = Some(100);
        let mut w = LocalityMix::new(1 << 20, 0.5, 3000, 5);
        let sys = System::build(&cfg, w.footprint_bytes());
        let m = sys.run(&mut w);
        assert_eq!(m.label, "oram_intvl");
        assert!(m.backend.dummy_accesses > 0);
    }

    #[test]
    fn prefetcher_on_dram_helps_sequential() {
        let plain = run(MemoryKind::Dram, 1.0, 20_000);
        let mut cfg = SystemConfig::quick_test(MemoryKind::Dram);
        cfg.prefetch = Some(Default::default());
        let mut w = LocalityMix::new(4 << 20, 1.0, 20_000, 7);
        let sys = System::build(&cfg, w.footprint_bytes());
        let with_pf = sys.run(&mut w);
        assert!(
            with_pf.cycles < plain.cycles,
            "stream prefetcher should help sequential DRAM: {} vs {}",
            with_pf.cycles,
            plain.cycles
        );
    }

    #[test]
    fn oram_sized_to_footprint() {
        let cfg = SystemConfig::quick_test(MemoryKind::Oram(SchemeConfig::baseline()));
        // A footprint larger than the configured minimum must not panic.
        let mut w = LocalityMix::new(64 << 20, 0.0, 500, 2);
        let sys = System::build(&cfg, w.footprint_bytes());
        let m = sys.run(&mut w);
        assert_eq!(m.trace_ops, 500);
    }
}
