//! Set-associative cache hierarchy for the PrORAM simulator.
//!
//! Models the processor-side cache system from the paper's Table 1: a
//! private L1 (32 KB, 4-way) backed by a shared L2 / last-level cache
//! (512 KB, 8-way) with 128-byte lines, LRU replacement and write-back,
//! write-allocate policy. The L2 is inclusive of the L1 so the ORAM
//! controller's tag probe (`proram_mem::CacheProbe`) only needs to look in
//! one place.
//!
//! Last-level-cache lines carry the two state bits the dynamic super block
//! scheme needs (paper Section 4.3): a *prefetch* bit marking lines that
//! were brought in by a super-block prefetch rather than a demand access,
//! and a *used* bit recording whether such a line was touched after being
//! prefetched.
//!
//! # Examples
//!
//! ```
//! use proram_cache::{Cache, CacheConfig};
//! use proram_mem::BlockAddr;
//!
//! let mut cache = Cache::new(CacheConfig::new(1024, 2, 128, 1));
//! assert!(cache.lookup(BlockAddr(0), false).is_none()); // cold miss
//! cache.insert(BlockAddr(0), false);
//! assert!(cache.lookup(BlockAddr(0), false).is_some()); // hit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod tiled;

pub use crate::cache::{Cache, CacheStats, Evicted, HitInfo};
pub use config::CacheConfig;
pub use hierarchy::{CacheAccess, CacheHierarchy, HierarchyConfig, HierarchyStats};
pub use tiled::TiledHierarchy;
