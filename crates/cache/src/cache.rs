//! A single set-associative, write-back cache with LRU replacement.

use crate::config::CacheConfig;
use proram_mem::{BlockAddr, CacheProbe};

/// Per-line metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    block: BlockAddr,
    dirty: bool,
    /// Set when the line was filled by a prefetch rather than a demand.
    prefetched: bool,
    /// Set on the first demand touch of a prefetched line.
    used: bool,
}

/// Information returned on a cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitInfo {
    /// `true` if this was the first demand touch of a prefetched line —
    /// the event that sets the paper's *hit bit* (Algorithm 2).
    pub prefetch_first_use: bool,
}

/// A line pushed out of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The block that lost its line.
    pub block: BlockAddr,
    /// `true` if the line held modified data and must be written back.
    pub dirty: bool,
    /// `true` if the line was prefetched and never used — a prefetch miss
    /// in the paper's accounting.
    pub prefetched_unused: bool,
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub hits: u64,
    /// Demand lookups that missed.
    pub misses: u64,
    /// Lines evicted (any reason).
    pub evictions: u64,
    /// Dirty lines evicted.
    pub dirty_evictions: u64,
}

impl std::ops::Sub for CacheStats {
    type Output = CacheStats;

    /// Field-wise difference; used to exclude warmup from run statistics.
    fn sub(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - rhs.hits,
            misses: self.misses - rhs.misses,
            evictions: self.evictions - rhs.evictions,
            dirty_evictions: self.dirty_evictions - rhs.dirty_evictions,
        }
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    /// Field-wise sum; used to aggregate per-tile counters.
    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            evictions: self.evictions + rhs.evictions,
            dirty_evictions: self.dirty_evictions + rhs.dirty_evictions,
        }
    }
}

impl CacheStats {
    /// Miss ratio over demand lookups; `0.0` before any lookup.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative, write-back, write-allocate cache with true-LRU
/// replacement.
///
/// Each set is kept in recency order (index 0 = most recently used), which
/// makes LRU exact and cheap at simulator-scale associativities.
///
/// # Examples
///
/// ```
/// use proram_cache::{Cache, CacheConfig};
/// use proram_mem::BlockAddr;
///
/// let mut c = Cache::new(CacheConfig::new(256, 2, 128, 1)); // 1 set, 2 ways
/// c.insert(BlockAddr(0), false);
/// c.insert(BlockAddr(1), false);
/// let evicted = c.insert(BlockAddr(2), false).expect("set was full");
/// assert_eq!(evicted.block, BlockAddr(0)); // LRU victim
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![Vec::with_capacity(config.ways as usize); config.num_sets() as usize];
        Cache {
            config,
            sets,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Demand lookup. On a hit the line becomes MRU, `write` marks it
    /// dirty, and a prefetched line records its first use. Returns `None`
    /// on a miss.
    pub fn lookup(&mut self, block: BlockAddr, write: bool) -> Option<HitInfo> {
        let set = self.config.set_index(block.0);
        let lines = &mut self.sets[set];
        match lines.iter().position(|l| l.block == block) {
            Some(pos) => {
                let mut line = lines.remove(pos);
                line.dirty |= write;
                let first_use = line.prefetched && !line.used;
                line.used = true;
                lines.insert(0, line);
                self.stats.hits += 1;
                Some(HitInfo {
                    prefetch_first_use: first_use,
                })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Tag-only probe; does not disturb LRU or counters.
    pub fn peek(&self, block: BlockAddr) -> bool {
        let set = self.config.set_index(block.0);
        self.sets[set].iter().any(|l| l.block == block)
    }

    /// Inserts `block` as MRU, evicting the LRU line if the set is full.
    ///
    /// `prefetched` marks a super-block / prefetcher fill. If the block is
    /// already resident the existing line is refreshed instead (its dirty
    /// bit is kept; a resident line is never downgraded to prefetched).
    pub fn insert(&mut self, block: BlockAddr, prefetched: bool) -> Option<Evicted> {
        let set = self.config.set_index(block.0);
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|l| l.block == block) {
            let line = lines.remove(pos);
            lines.insert(0, line);
            return None;
        }
        let victim = if lines.len() == self.config.ways as usize {
            let v = lines.pop().expect("set nonempty");
            self.stats.evictions += 1;
            if v.dirty {
                self.stats.dirty_evictions += 1;
            }
            Some(Evicted {
                block: v.block,
                dirty: v.dirty,
                prefetched_unused: v.prefetched && !v.used,
            })
        } else {
            None
        };
        lines.insert(
            0,
            Line {
                block,
                dirty: false,
                prefetched,
                used: !prefetched,
            },
        );
        victim
    }

    /// Marks a resident line dirty; returns `false` if absent.
    pub fn mark_dirty(&mut self, block: BlockAddr) -> bool {
        let set = self.config.set_index(block.0);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.block == block) {
            line.dirty = true;
            true
        } else {
            false
        }
    }

    /// Removes `block`, returning its eviction record if it was resident.
    ///
    /// Used for inclusive-hierarchy back-invalidation.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<Evicted> {
        let set = self.config.set_index(block.0);
        let lines = &mut self.sets[set];
        let pos = lines.iter().position(|l| l.block == block)?;
        let v = lines.remove(pos);
        Some(Evicted {
            block: v.block,
            dirty: v.dirty,
            prefetched_unused: v.prefetched && !v.used,
        })
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// `true` if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Iterates over resident blocks (unspecified order).
    pub fn resident_blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.sets.iter().flatten().map(|l| l.block)
    }
}

impl CacheProbe for Cache {
    fn contains(&self, block: BlockAddr) -> bool {
        self.peek(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 1 set, 2 ways.
        Cache::new(CacheConfig::new(256, 2, 128, 1))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(c.lookup(BlockAddr(0), false).is_none());
        c.insert(BlockAddr(0), false);
        assert!(c.lookup(BlockAddr(0), false).is_some());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        c.insert(BlockAddr(0), false);
        c.insert(BlockAddr(1), false);
        // Touch 0 so 1 becomes LRU.
        c.lookup(BlockAddr(0), false);
        let e = c.insert(BlockAddr(2), false).expect("eviction");
        assert_eq!(e.block, BlockAddr(1));
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_it() {
        let mut c = tiny();
        c.insert(BlockAddr(0), false);
        c.lookup(BlockAddr(0), true);
        c.insert(BlockAddr(1), false);
        let e = c.insert(BlockAddr(2), false).expect("eviction");
        assert_eq!(e.block, BlockAddr(0));
        assert!(e.dirty);
    }

    #[test]
    fn prefetched_line_first_use_reported_once() {
        let mut c = tiny();
        c.insert(BlockAddr(7), true);
        let h1 = c.lookup(BlockAddr(7), false).unwrap();
        assert!(h1.prefetch_first_use);
        let h2 = c.lookup(BlockAddr(7), false).unwrap();
        assert!(!h2.prefetch_first_use);
    }

    #[test]
    fn demand_fill_never_reports_first_use() {
        let mut c = tiny();
        c.insert(BlockAddr(7), false);
        assert!(!c.lookup(BlockAddr(7), false).unwrap().prefetch_first_use);
    }

    #[test]
    fn unused_prefetch_eviction_flagged() {
        let mut c = tiny();
        c.insert(BlockAddr(0), true);
        c.insert(BlockAddr(1), false);
        c.lookup(BlockAddr(1), false);
        let e = c.insert(BlockAddr(2), false).expect("eviction");
        assert_eq!(e.block, BlockAddr(0));
        assert!(e.prefetched_unused);
    }

    #[test]
    fn used_prefetch_eviction_not_flagged() {
        let mut c = tiny();
        c.insert(BlockAddr(0), true);
        c.lookup(BlockAddr(0), false); // use it
        c.insert(BlockAddr(1), false);
        c.lookup(BlockAddr(1), false);
        let e = c.insert(BlockAddr(2), false).expect("eviction");
        assert_eq!(e.block, BlockAddr(0));
        assert!(!e.prefetched_unused);
    }

    #[test]
    fn reinserting_resident_block_keeps_dirty() {
        let mut c = tiny();
        c.insert(BlockAddr(0), false);
        c.lookup(BlockAddr(0), true);
        assert!(c.insert(BlockAddr(0), false).is_none());
        c.insert(BlockAddr(1), false);
        let e = c.insert(BlockAddr(2), false).expect("eviction");
        // Block 1 is LRU? No: insert(0) made 0 MRU, then 1 MRU. LRU is 0.
        assert_eq!(e.block, BlockAddr(0));
        assert!(e.dirty, "dirty bit survives re-insertion");
    }

    #[test]
    fn peek_does_not_affect_lru_or_stats() {
        let mut c = tiny();
        c.insert(BlockAddr(0), false);
        c.insert(BlockAddr(1), false);
        assert!(c.peek(BlockAddr(0)));
        // 0 is still LRU despite the peek.
        let e = c.insert(BlockAddr(2), false).expect("eviction");
        assert_eq!(e.block, BlockAddr(0));
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.insert(BlockAddr(0), false);
        c.lookup(BlockAddr(0), true);
        let e = c.invalidate(BlockAddr(0)).expect("was resident");
        assert!(e.dirty);
        assert!(!c.peek(BlockAddr(0)));
        assert!(c.invalidate(BlockAddr(0)).is_none());
    }

    #[test]
    fn mark_dirty_on_absent_block() {
        let mut c = tiny();
        assert!(!c.mark_dirty(BlockAddr(3)));
        c.insert(BlockAddr(3), false);
        assert!(c.mark_dirty(BlockAddr(3)));
    }

    #[test]
    fn len_and_resident_blocks() {
        let mut c = Cache::new(CacheConfig::new(1024, 2, 128, 1));
        assert!(c.is_empty());
        c.insert(BlockAddr(0), false);
        c.insert(BlockAddr(4), false);
        assert_eq!(c.len(), 2);
        let mut blocks: Vec<u64> = c.resident_blocks().map(|b| b.0).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![0, 4]);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = Cache::new(CacheConfig::new(1024, 2, 128, 1)); // 4 sets
                                                                   // Fill set 0 with blocks 0 and 4; block 1 goes to set 1.
        c.insert(BlockAddr(0), false);
        c.insert(BlockAddr(4), false);
        assert!(c.insert(BlockAddr(1), false).is_none());
        // Third block in set 0 evicts.
        assert!(c.insert(BlockAddr(8), false).is_some());
    }

    #[test]
    fn probe_trait_is_the_tag_peek() {
        let mut c = tiny();
        c.insert(BlockAddr(3), false);
        let probe: &dyn CacheProbe = &c;
        assert!(probe.contains(BlockAddr(3)));
        assert!(!probe.contains(BlockAddr(4)));
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = tiny();
        c.lookup(BlockAddr(0), false);
        c.insert(BlockAddr(0), false);
        c.lookup(BlockAddr(0), false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }
}
