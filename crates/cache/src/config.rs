//! Cache geometry configuration.

/// Geometry and timing of one cache level.
///
/// # Examples
///
/// ```
/// use proram_cache::CacheConfig;
///
/// let l2 = CacheConfig::new(512 * 1024, 8, 128, 8);
/// assert_eq!(l2.num_sets(), 512);
/// assert_eq!(l2.num_lines(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (lines per set).
    pub ways: u32,
    /// Line size in bytes; must match the memory system's block size.
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless capacity, ways and line size are positive, capacity is
    /// a multiple of `ways * line_bytes`, and the resulting set count is a
    /// power of two (required for the index function).
    pub fn new(capacity_bytes: u64, ways: u32, line_bytes: u32, hit_latency: u32) -> Self {
        assert!(
            capacity_bytes > 0 && ways > 0 && line_bytes > 0,
            "cache geometry must be positive"
        );
        let cfg = CacheConfig {
            capacity_bytes,
            ways,
            line_bytes,
            hit_latency,
        };
        let set_bytes = u64::from(ways) * u64::from(line_bytes);
        assert!(
            capacity_bytes.is_multiple_of(set_bytes),
            "capacity {capacity_bytes} not a multiple of ways*line ({set_bytes})"
        );
        assert!(
            cfg.num_sets().is_power_of_two(),
            "set count must be a power of two"
        );
        cfg
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.capacity_bytes / (u64::from(self.ways) * u64::from(self.line_bytes))
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> u64 {
        self.capacity_bytes / u64::from(self.line_bytes)
    }

    /// Set index for a block address.
    pub fn set_index(&self, block: u64) -> usize {
        (block & (self.num_sets() - 1)) as usize
    }

    /// The paper's L1: 32 KB, 4-way (Table 1).
    pub fn paper_l1(line_bytes: u32) -> Self {
        CacheConfig::new(32 * 1024, 4, line_bytes, 1)
    }

    /// The paper's shared L2: 512 KB per tile, 8-way (Table 1).
    pub fn paper_l2(line_bytes: u32) -> Self {
        CacheConfig::new(512 * 1024, 8, line_bytes, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derivations() {
        let c = CacheConfig::new(32 * 1024, 4, 128, 1);
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.num_lines(), 256);
    }

    #[test]
    fn set_index_wraps() {
        let c = CacheConfig::new(1024, 2, 128, 1); // 4 sets
        assert_eq!(c.set_index(0), 0);
        assert_eq!(c.set_index(5), 1);
        assert_eq!(c.set_index(7), 3);
    }

    #[test]
    fn paper_configs() {
        assert_eq!(CacheConfig::paper_l1(128).num_lines(), 256);
        assert_eq!(CacheConfig::paper_l2(128).num_lines(), 4096);
        // Cacheline sweep (Fig 14) keeps geometry valid at 64 and 256 B.
        for lb in [64, 128, 256] {
            CacheConfig::paper_l1(lb);
            CacheConfig::paper_l2(lb);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panic() {
        CacheConfig::new(3 * 128 * 2, 2, 128, 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_ways_panic() {
        CacheConfig::new(1024, 0, 128, 1);
    }
}
