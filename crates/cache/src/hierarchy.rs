//! The two-level inclusive cache hierarchy (L1 + shared L2/LLC).

use crate::cache::{Cache, CacheStats, Evicted};
use crate::config::CacheConfig;
use crate::tiled::TiledHierarchy;
use proram_mem::{BlockAddr, CacheProbe};

/// Geometry of the two levels.
///
/// Defaults are the paper's Table 1 (32 KB 4-way L1, 512 KB 8-way L2,
/// 128-byte lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Private first-level cache.
    pub l1: CacheConfig,
    /// Shared second-level (last-level) cache.
    pub l2: CacheConfig,
}

impl HierarchyConfig {
    /// The paper's configuration at a given line size (the Fig 14 sweep
    /// uses 64/128/256 bytes).
    pub fn paper(line_bytes: u32) -> Self {
        HierarchyConfig {
            l1: CacheConfig::paper_l1(line_bytes),
            l2: CacheConfig::paper_l2(line_bytes),
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::paper(128)
    }
}

/// Outcome of a demand access to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// Served by the L1.
    L1Hit {
        /// Cycles to serve the access.
        latency: u64,
    },
    /// Served by the L2; the line was promoted into the L1.
    L2Hit {
        /// Cycles to serve the access (L1 probe + L2 hit).
        latency: u64,
        /// `true` on the first demand touch of a super-block-prefetched
        /// line — the event that must set the ORAM-side hit bit.
        prefetch_first_use: bool,
    },
    /// Missed both levels; main memory must be accessed.
    Miss {
        /// Cycles spent discovering the miss (both lookups).
        latency: u64,
    },
}

impl CacheAccess {
    /// Cycles consumed inside the hierarchy.
    pub fn latency(&self) -> u64 {
        match *self {
            CacheAccess::L1Hit { latency }
            | CacheAccess::L2Hit { latency, .. }
            | CacheAccess::Miss { latency } => latency,
        }
    }

    /// `true` unless main memory is needed.
    pub fn is_hit(&self) -> bool {
        !matches!(self, CacheAccess::Miss { .. })
    }
}

/// Hit/miss counters for both levels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// First-level counters.
    pub l1: CacheStats,
    /// Second-level counters.
    pub l2: CacheStats,
}

impl std::ops::Sub for HierarchyStats {
    type Output = HierarchyStats;

    fn sub(self, rhs: HierarchyStats) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1 - rhs.l1,
            l2: self.l2 - rhs.l2,
        }
    }
}

impl std::ops::Add for HierarchyStats {
    type Output = HierarchyStats;

    fn add(self, rhs: HierarchyStats) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1 + rhs.l1,
            l2: self.l2 + rhs.l2,
        }
    }
}

/// An inclusive L1 + L2 hierarchy with write-back, write-allocate policy.
///
/// Demand fills land in both levels; prefetch fills (super-block members,
/// stream-prefetcher lines) land in the L2 only, matching the paper: "The
/// block of interest is returned to the processor and the other blocks are
/// prefetched and put into the LLC."
///
/// This is the single-tile view of [`TiledHierarchy`], which owns the one
/// shared implementation of the lookup/fill/evict path.
///
/// # Examples
///
/// ```
/// use proram_cache::{CacheAccess, CacheHierarchy, HierarchyConfig};
/// use proram_mem::BlockAddr;
///
/// let mut h = CacheHierarchy::new(HierarchyConfig::default());
/// assert!(matches!(h.access(BlockAddr(3), false), CacheAccess::Miss { .. }));
/// h.fill(BlockAddr(3), false, false);
/// assert!(matches!(h.access(BlockAddr(3), false), CacheAccess::L1Hit { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    tiled: TiledHierarchy,
}

impl CacheHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        CacheHierarchy {
            tiled: TiledHierarchy::new(config, 1),
        }
    }

    /// The geometry this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        self.tiled.config()
    }

    /// Performs a demand access (load if `write` is false, store
    /// otherwise).
    ///
    /// On an L2 hit the line is promoted to the L1; any dirty L1 victim
    /// folds its dirty bit into the (inclusive) L2 copy.
    pub fn access(&mut self, block: BlockAddr, write: bool) -> CacheAccess {
        self.tiled.access(0, block, write)
    }

    /// Installs a block arriving from memory.
    ///
    /// `prefetched` fills stop at the L2; demand fills are also promoted
    /// into the L1, where `write` marks them dirty. Returns the evictions
    /// that must leave the hierarchy entirely: dirty ones need a memory
    /// writeback, clean ones only a notification.
    pub fn fill(&mut self, block: BlockAddr, prefetched: bool, write: bool) -> Vec<Evicted> {
        self.tiled.fill(0, block, prefetched, write)
    }

    /// `true` if the block is resident anywhere in the hierarchy.
    ///
    /// Because the hierarchy is inclusive this is just the LLC tag probe
    /// that the PrORAM merge scheme performs.
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        self.tiled.contains_block(block)
    }

    /// Counters for both levels.
    pub fn stats(&self) -> HierarchyStats {
        self.tiled.stats()
    }

    /// Read-only view of the last-level cache.
    pub fn llc(&self) -> &Cache {
        self.tiled.llc()
    }

    /// Read-only view of the first-level cache.
    pub fn l1(&self) -> &Cache {
        self.tiled.l1(0)
    }
}

impl CacheProbe for CacheHierarchy {
    fn contains(&self, block: BlockAddr) -> bool {
        self.contains_block(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheHierarchy {
        // L1: 1 set x 2 ways; L2: 2 sets x 2 ways.
        CacheHierarchy::new(HierarchyConfig {
            l1: CacheConfig::new(256, 2, 128, 1),
            l2: CacheConfig::new(512, 2, 128, 8),
        })
    }

    #[test]
    fn cold_miss_then_l1_hit() {
        let mut h = small();
        let a = h.access(BlockAddr(0), false);
        assert_eq!(a, CacheAccess::Miss { latency: 9 });
        assert!(h.fill(BlockAddr(0), false, false).is_empty());
        let b = h.access(BlockAddr(0), false);
        assert_eq!(b, CacheAccess::L1Hit { latency: 1 });
    }

    #[test]
    fn prefetch_fill_hits_in_l2_not_l1() {
        let mut h = small();
        h.fill(BlockAddr(5), true, false);
        match h.access(BlockAddr(5), false) {
            CacheAccess::L2Hit {
                prefetch_first_use, ..
            } => assert!(prefetch_first_use),
            other => panic!("expected L2 hit, got {other:?}"),
        }
        // Promoted now; second access is an L1 hit.
        assert!(matches!(
            h.access(BlockAddr(5), false),
            CacheAccess::L1Hit { .. }
        ));
    }

    #[test]
    fn first_use_reported_only_once() {
        let mut h = small();
        h.fill(BlockAddr(5), true, false);
        assert!(matches!(
            h.access(BlockAddr(5), false),
            CacheAccess::L2Hit {
                prefetch_first_use: true,
                ..
            }
        ));
        // Push it out of L1 but keep it in L2 (L1 is 1 set x 2 ways).
        h.fill(BlockAddr(1), false, false);
        h.fill(BlockAddr(2), false, false);
        match h.access(BlockAddr(5), false) {
            CacheAccess::L2Hit {
                prefetch_first_use, ..
            } => assert!(!prefetch_first_use),
            other => panic!("expected L2 hit, got {other:?}"),
        }
    }

    #[test]
    fn dirty_l2_eviction_reported_for_writeback() {
        let mut h = small();
        h.fill(BlockAddr(0), false, true); // store -> dirty in L1
                                           // Evict 0 from L2 set 0 by filling two more blocks in that set.
        h.fill(BlockAddr(2), false, false);
        let evs = h.fill(BlockAddr(4), false, false);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].block, BlockAddr(0));
        assert!(evs[0].dirty, "dirtiness must fold in from the L1 copy");
        assert!(!h.contains_block(BlockAddr(0)));
    }

    #[test]
    fn clean_eviction_reported_clean() {
        let mut h = small();
        h.fill(BlockAddr(0), false, false);
        h.fill(BlockAddr(2), false, false);
        let evs = h.fill(BlockAddr(4), false, false);
        assert_eq!(evs.len(), 1);
        assert!(!evs[0].dirty);
    }

    #[test]
    fn inclusion_back_invalidates_l1() {
        let mut h = small();
        h.fill(BlockAddr(0), false, false);
        h.fill(BlockAddr(2), false, false);
        h.fill(BlockAddr(4), false, false); // evicts 0 from L2 and L1
                                            // A fresh access to 0 must be a full miss.
        assert!(matches!(
            h.access(BlockAddr(0), false),
            CacheAccess::Miss { .. }
        ));
    }

    #[test]
    fn unused_prefetch_eviction_flagged() {
        let mut h = small();
        h.fill(BlockAddr(0), true, false);
        h.fill(BlockAddr(2), false, false);
        let evs = h.fill(BlockAddr(4), false, false);
        assert_eq!(evs.len(), 1);
        assert!(evs[0].prefetched_unused);
    }

    #[test]
    fn write_through_hierarchy_marks_l1_dirty() {
        let mut h = small();
        h.fill(BlockAddr(0), false, false);
        assert!(matches!(
            h.access(BlockAddr(0), true),
            CacheAccess::L1Hit { .. }
        ));
        // Force the line out of both levels and check the writeback.
        h.fill(BlockAddr(2), false, false);
        let evs = h.fill(BlockAddr(4), false, false);
        assert!(evs[0].dirty);
    }

    #[test]
    fn probe_trait_matches_l2_contents() {
        let mut h = small();
        h.fill(BlockAddr(9), true, false);
        let probe: &dyn CacheProbe = &h;
        assert!(probe.contains(BlockAddr(9)));
        assert!(!probe.contains(BlockAddr(10)));
    }

    #[test]
    fn stats_accumulate_per_level() {
        let mut h = small();
        h.access(BlockAddr(0), false); // L1 miss + L2 miss
        h.fill(BlockAddr(0), false, false);
        h.access(BlockAddr(0), false); // L1 hit
        let s = h.stats();
        assert_eq!(s.l1.hits, 1);
        assert_eq!(s.l1.misses, 1);
        assert_eq!(s.l2.misses, 1);
    }

    #[test]
    fn default_config_is_paper_geometry() {
        let h = CacheHierarchy::new(HierarchyConfig::default());
        assert_eq!(h.config().l1.capacity_bytes, 32 * 1024);
        assert_eq!(h.config().l2.capacity_bytes, 512 * 1024);
        assert_eq!(h.config().l2.line_bytes, 128);
    }

    #[test]
    fn l2_hit_latency_includes_l1_probe() {
        let mut h = small();
        h.fill(BlockAddr(3), true, false);
        assert_eq!(h.access(BlockAddr(3), false).latency(), 9);
    }
}
