//! The tiled cache fabric: N private L1s in front of one shared,
//! inclusive LLC.
//!
//! This is the single implementation of the fill/evict/promote path used
//! by every simulated chip shape. The single-tile [`CacheHierarchy`]
//! (`hierarchy.rs`) and the multi-core tile engine in `proram-sim` are
//! both thin views over this structure, so the two simulation paths
//! cannot diverge in cache semantics.
//!
//! Inclusion is maintained globally: every line resident in any tile's L1
//! is also resident in the shared LLC, and an LLC eviction
//! back-invalidates the line from every L1, folding any L1 dirtiness into
//! the departing line.
//!
//! [`CacheHierarchy`]: crate::CacheHierarchy

use crate::cache::{Cache, CacheStats, Evicted};
use crate::hierarchy::{CacheAccess, HierarchyConfig, HierarchyStats};
use proram_mem::{BlockAddr, CacheProbe};

/// `tiles` private L1 caches sharing one inclusive LLC.
///
/// Every operation that involves an L1 takes the tile index it acts on;
/// the LLC is shared state. With `tiles == 1` the behaviour is exactly
/// the classic two-level inclusive hierarchy.
///
/// # Examples
///
/// ```
/// use proram_cache::{CacheAccess, HierarchyConfig, TiledHierarchy};
/// use proram_mem::BlockAddr;
///
/// let mut t = TiledHierarchy::new(HierarchyConfig::default(), 2);
/// assert!(matches!(t.access(0, BlockAddr(3), false), CacheAccess::Miss { .. }));
/// t.fill(0, BlockAddr(3), false, false);
/// // Tile 0 has the line in its L1; tile 1 finds it in the shared LLC.
/// assert!(matches!(t.access(0, BlockAddr(3), false), CacheAccess::L1Hit { .. }));
/// assert!(matches!(t.access(1, BlockAddr(3), false), CacheAccess::L2Hit { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct TiledHierarchy {
    config: HierarchyConfig,
    l1s: Vec<Cache>,
    l2: Cache,
}

impl TiledHierarchy {
    /// Creates an empty fabric with `tiles` private L1s.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn new(config: HierarchyConfig, tiles: usize) -> Self {
        assert!(tiles > 0, "need at least one tile");
        TiledHierarchy {
            config,
            l1s: (0..tiles).map(|_| Cache::new(config.l1)).collect(),
            l2: Cache::new(config.l2),
        }
    }

    /// Number of tiles (private L1s).
    pub fn tiles(&self) -> usize {
        self.l1s.len()
    }

    /// The geometry this fabric was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Performs a demand access from `tile` (load if `write` is false,
    /// store otherwise).
    ///
    /// On an LLC hit the line is promoted into the tile's L1; any dirty
    /// L1 victim folds its dirty bit into the (inclusive) LLC copy.
    pub fn access(&mut self, tile: usize, block: BlockAddr, write: bool) -> CacheAccess {
        let l1_lat = u64::from(self.config.l1.hit_latency);
        if self.l1s[tile].lookup(block, write).is_some() {
            return CacheAccess::L1Hit { latency: l1_lat };
        }
        let l2_lat = l1_lat + u64::from(self.config.l2.hit_latency);
        match self.l2.lookup(block, false) {
            Some(hit) => {
                self.promote_to_l1(tile, block, write);
                CacheAccess::L2Hit {
                    latency: l2_lat,
                    prefetch_first_use: hit.prefetch_first_use,
                }
            }
            None => CacheAccess::Miss { latency: l2_lat },
        }
    }

    /// Installs a block arriving from memory on behalf of `tile`.
    ///
    /// `prefetched` fills stop at the shared LLC; demand fills are also
    /// promoted into the tile's L1, where `write` marks them dirty.
    /// Returns the evictions that must leave the fabric entirely: dirty
    /// ones need a memory writeback, clean ones only a notification.
    pub fn fill(
        &mut self,
        tile: usize,
        block: BlockAddr,
        prefetched: bool,
        write: bool,
    ) -> Vec<Evicted> {
        let mut out = Vec::new();
        if let Some(mut victim) = self.l2.insert(block, prefetched) {
            // Inclusive fabric: every L1 copy (any tile) must go too, and
            // its dirtiness folds into the departing line.
            for l1 in &mut self.l1s {
                if let Some(l1_victim) = l1.invalidate(victim.block) {
                    victim.dirty |= l1_victim.dirty;
                }
            }
            out.push(victim);
        }
        if prefetched {
            debug_assert!(!write, "prefetch fills cannot be stores");
        } else {
            self.promote_to_l1(tile, block, write);
        }
        out
    }

    fn promote_to_l1(&mut self, tile: usize, block: BlockAddr, write: bool) {
        if let Some(victim) = self.l1s[tile].insert(block, false) {
            if victim.dirty && !self.l2.mark_dirty(victim.block) {
                // Inclusion guarantees the LLC still holds the line; this
                // branch would mean the invariant broke.
                unreachable!(
                    "inclusion violated: L1 victim {} absent from LLC",
                    victim.block
                );
            }
        }
        if write {
            self.l1s[tile].mark_dirty(block);
        }
    }

    /// `true` if the block is resident anywhere in the fabric.
    ///
    /// Because the fabric is inclusive this is just the LLC tag probe
    /// that the PrORAM merge scheme performs.
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        self.l2.peek(block)
    }

    /// Aggregate counters: L1 counters summed over tiles, plus the shared
    /// LLC's counters.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: self
                .l1s
                .iter()
                .fold(CacheStats::default(), |acc, c| acc + c.stats()),
            l2: self.l2.stats(),
        }
    }

    /// Counters of one tile's private L1.
    pub fn l1_stats(&self, tile: usize) -> CacheStats {
        self.l1s[tile].stats()
    }

    /// Read-only view of the shared last-level cache.
    pub fn llc(&self) -> &Cache {
        &self.l2
    }

    /// Read-only view of one tile's first-level cache.
    pub fn l1(&self, tile: usize) -> &Cache {
        &self.l1s[tile]
    }
}

impl CacheProbe for TiledHierarchy {
    fn contains(&self, block: BlockAddr) -> bool {
        self.contains_block(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn small(tiles: usize) -> TiledHierarchy {
        // L1: 1 set x 2 ways; L2: 2 sets x 2 ways.
        TiledHierarchy::new(
            HierarchyConfig {
                l1: CacheConfig::new(256, 2, 128, 1),
                l2: CacheConfig::new(512, 2, 128, 8),
            },
            tiles,
        )
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_tiles_rejected() {
        small(0);
    }

    #[test]
    fn l1s_are_private_but_llc_is_shared() {
        let mut t = small(2);
        t.fill(0, BlockAddr(0), false, false);
        // Tile 1's L1 does not have the line, the shared LLC does.
        assert!(matches!(
            t.access(1, BlockAddr(0), false),
            CacheAccess::L2Hit { .. }
        ));
        // Now both L1s hold it.
        assert!(matches!(
            t.access(0, BlockAddr(0), false),
            CacheAccess::L1Hit { .. }
        ));
        assert!(matches!(
            t.access(1, BlockAddr(0), false),
            CacheAccess::L1Hit { .. }
        ));
    }

    #[test]
    fn llc_eviction_back_invalidates_every_tile() {
        let mut t = small(2);
        t.fill(0, BlockAddr(0), false, false);
        t.access(1, BlockAddr(0), false); // promote into tile 1's L1 too
        t.fill(0, BlockAddr(2), false, false);
        let evs = t.fill(1, BlockAddr(4), false, false); // evicts 0 from LLC
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].block, BlockAddr(0));
        // A fresh access from either tile must be a full miss.
        assert!(matches!(
            t.access(0, BlockAddr(0), false),
            CacheAccess::Miss { .. }
        ));
        assert!(matches!(
            t.access(1, BlockAddr(0), false),
            CacheAccess::Miss { .. }
        ));
    }

    #[test]
    fn remote_l1_dirtiness_folds_into_llc_eviction() {
        let mut t = small(2);
        t.fill(1, BlockAddr(0), false, true); // dirty in tile 1's L1 only
        t.fill(0, BlockAddr(2), false, false);
        let evs = t.fill(0, BlockAddr(4), false, false);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].block, BlockAddr(0));
        assert!(evs[0].dirty, "tile 1's dirtiness must fold in");
    }

    #[test]
    fn stats_sum_l1s_across_tiles() {
        let mut t = small(2);
        t.access(0, BlockAddr(0), false); // L1 miss + LLC miss
        t.fill(0, BlockAddr(0), false, false);
        t.access(1, BlockAddr(0), false); // L1 miss + LLC hit
        let s = t.stats();
        assert_eq!(s.l1.misses, 2);
        assert_eq!(s.l2.hits, 1);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(t.l1_stats(0).misses, 1);
        assert_eq!(t.l1_stats(1).misses, 1);
    }

    #[test]
    fn one_tile_matches_classic_hierarchy_semantics() {
        let mut t = small(1);
        assert_eq!(
            t.access(0, BlockAddr(0), false),
            CacheAccess::Miss { latency: 9 }
        );
        assert!(t.fill(0, BlockAddr(0), false, false).is_empty());
        assert_eq!(
            t.access(0, BlockAddr(0), false),
            CacheAccess::L1Hit { latency: 1 }
        );
    }

    #[test]
    fn probe_trait_matches_llc_contents() {
        let mut t = small(2);
        t.fill(0, BlockAddr(9), true, false);
        let probe: &dyn CacheProbe = &t;
        assert!(probe.contains(BlockAddr(9)));
        assert!(!probe.contains(BlockAddr(10)));
    }
}
