//! Property test: the cache must behave exactly like a reference
//! true-LRU model over arbitrary operation sequences.

use proptest::prelude::*;
use proram_cache::{Cache, CacheConfig};
use proram_mem::BlockAddr;
use std::collections::VecDeque;

/// Reference model: one recency list per set, most recent first.
struct RefLru {
    sets: Vec<VecDeque<(u64, bool)>>, // (block, dirty)
    ways: usize,
    num_sets: u64,
}

impl RefLru {
    fn new(num_sets: u64, ways: usize) -> Self {
        RefLru {
            sets: (0..num_sets).map(|_| VecDeque::new()).collect(),
            ways,
            num_sets,
        }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.num_sets) as usize
    }

    fn lookup(&mut self, block: u64, write: bool) -> bool {
        let set = self.set_of(block);
        if let Some(pos) = self.sets[set].iter().position(|&(b, _)| b == block) {
            let (b, d) = self.sets[set].remove(pos).expect("pos valid");
            self.sets[set].push_front((b, d || write));
            true
        } else {
            false
        }
    }

    fn insert(&mut self, block: u64) -> Option<(u64, bool)> {
        let set = self.set_of(block);
        if self.sets[set].iter().any(|&(b, _)| b == block) {
            let pos = self.sets[set]
                .iter()
                .position(|&(b, _)| b == block)
                .expect("present");
            let entry = self.sets[set].remove(pos).expect("pos valid");
            self.sets[set].push_front(entry);
            return None;
        }
        let victim = if self.sets[set].len() == self.ways {
            self.sets[set].pop_back()
        } else {
            None
        };
        self.sets[set].push_front((block, false));
        victim
    }
}

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64, bool),
    Insert(u64),
}

fn op_strategy(addr_range: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..addr_range, any::<bool>()).prop_map(|(a, w)| Op::Lookup(a, w)),
        (0..addr_range).prop_map(Op::Insert),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_matches_reference_lru(
        ops in proptest::collection::vec(op_strategy(64), 1..300),
        ways in 1usize..5,
    ) {
        // 4 sets x `ways`.
        let config = CacheConfig::new(4 * ways as u64 * 128, ways as u32, 128, 1);
        let mut cache = Cache::new(config);
        let mut model = RefLru::new(4, ways);
        for op in ops {
            match op {
                Op::Lookup(a, w) => {
                    let hit = cache.lookup(BlockAddr(a), w).is_some();
                    let model_hit = model.lookup(a, w);
                    prop_assert_eq!(hit, model_hit, "hit mismatch on {}", a);
                }
                Op::Insert(a) => {
                    let victim = cache.insert(BlockAddr(a), false);
                    let model_victim = model.insert(a);
                    match (victim, model_victim) {
                        (None, None) => {}
                        (Some(v), Some((mb, md))) => {
                            prop_assert_eq!(v.block.0, mb, "victim mismatch");
                            prop_assert_eq!(v.dirty, md, "victim dirtiness mismatch");
                        }
                        (a, b) => prop_assert!(false, "eviction mismatch: {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn peek_never_changes_behaviour(
        ops in proptest::collection::vec(op_strategy(32), 1..200),
    ) {
        // Interleaving peeks between every operation must not change any
        // outcome relative to the same run without peeks.
        let config = CacheConfig::new(2 * 128 * 2, 2, 128, 1);
        let mut plain = Cache::new(config);
        let mut peeky = Cache::new(config);
        for op in ops {
            for probe in 0..8u64 {
                peeky.peek(BlockAddr(probe));
            }
            match op {
                Op::Lookup(a, w) => {
                    prop_assert_eq!(
                        plain.lookup(BlockAddr(a), w).is_some(),
                        peeky.lookup(BlockAddr(a), w).is_some()
                    );
                }
                Op::Insert(a) => {
                    prop_assert_eq!(
                        plain.insert(BlockAddr(a), false),
                        peeky.insert(BlockAddr(a), false)
                    );
                }
            }
        }
    }
}
