//! Randomized model test: the cache must behave exactly like a reference
//! true-LRU model over arbitrary operation sequences.
//!
//! Uses the workspace's deterministic RNG (`proram_stats`) instead of an
//! external property-testing crate so the suite builds with no network
//! access; every case is reproducible from the fixed seeds below.

use proram_cache::{Cache, CacheConfig};
use proram_mem::BlockAddr;
use proram_stats::{Rng64, Xoshiro256};
use std::collections::VecDeque;

/// Reference model: one recency list per set, most recent first.
struct RefLru {
    sets: Vec<VecDeque<(u64, bool)>>, // (block, dirty)
    ways: usize,
    num_sets: u64,
}

impl RefLru {
    fn new(num_sets: u64, ways: usize) -> Self {
        RefLru {
            sets: (0..num_sets).map(|_| VecDeque::new()).collect(),
            ways,
            num_sets,
        }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.num_sets) as usize
    }

    fn lookup(&mut self, block: u64, write: bool) -> bool {
        let set = self.set_of(block);
        if let Some(pos) = self.sets[set].iter().position(|&(b, _)| b == block) {
            let (b, d) = self.sets[set].remove(pos).expect("pos valid");
            self.sets[set].push_front((b, d || write));
            true
        } else {
            false
        }
    }

    fn insert(&mut self, block: u64) -> Option<(u64, bool)> {
        let set = self.set_of(block);
        if let Some(pos) = self.sets[set].iter().position(|&(b, _)| b == block) {
            let entry = self.sets[set].remove(pos).expect("pos valid");
            self.sets[set].push_front(entry);
            return None;
        }
        let victim = if self.sets[set].len() == self.ways {
            self.sets[set].pop_back()
        } else {
            None
        };
        self.sets[set].push_front((block, false));
        victim
    }
}

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64, bool),
    Insert(u64),
}

fn random_op(rng: &mut Xoshiro256, addr_range: u64) -> Op {
    if rng.next_bool(0.5) {
        Op::Lookup(rng.next_below(addr_range), rng.next_bool(0.5))
    } else {
        Op::Insert(rng.next_below(addr_range))
    }
}

#[test]
fn cache_matches_reference_lru() {
    for case in 0..128u64 {
        let mut rng = Xoshiro256::seed_from(0xCAFE + case);
        let ways = 1 + rng.next_below(4) as usize;
        let num_ops = 1 + rng.next_below(300) as usize;
        // 4 sets x `ways`.
        let config = CacheConfig::new(4 * ways as u64 * 128, ways as u32, 128, 1);
        let mut cache = Cache::new(config);
        let mut model = RefLru::new(4, ways);
        for _ in 0..num_ops {
            match random_op(&mut rng, 64) {
                Op::Lookup(a, w) => {
                    let hit = cache.lookup(BlockAddr(a), w).is_some();
                    let model_hit = model.lookup(a, w);
                    assert_eq!(hit, model_hit, "hit mismatch on {a} (case {case})");
                }
                Op::Insert(a) => {
                    let victim = cache.insert(BlockAddr(a), false);
                    let model_victim = model.insert(a);
                    match (victim, model_victim) {
                        (None, None) => {}
                        (Some(v), Some((mb, md))) => {
                            assert_eq!(v.block.0, mb, "victim mismatch (case {case})");
                            assert_eq!(v.dirty, md, "victim dirtiness mismatch (case {case})");
                        }
                        (a, b) => panic!("eviction mismatch: {a:?} vs {b:?} (case {case})"),
                    }
                }
            }
        }
    }
}

#[test]
fn peek_never_changes_behaviour() {
    // Interleaving peeks between every operation must not change any
    // outcome relative to the same run without peeks.
    for case in 0..64u64 {
        let mut rng = Xoshiro256::seed_from(0xBEEF + case);
        let num_ops = 1 + rng.next_below(200) as usize;
        let config = CacheConfig::new(2 * 128 * 2, 2, 128, 1);
        let mut plain = Cache::new(config);
        let mut peeky = Cache::new(config);
        for _ in 0..num_ops {
            for probe in 0..8u64 {
                peeky.peek(BlockAddr(probe));
            }
            match random_op(&mut rng, 32) {
                Op::Lookup(a, w) => {
                    assert_eq!(
                        plain.lookup(BlockAddr(a), w).is_some(),
                        peeky.lookup(BlockAddr(a), w).is_some()
                    );
                }
                Op::Insert(a) => {
                    assert_eq!(
                        plain.insert(BlockAddr(a), false),
                        peeky.insert(BlockAddr(a), false)
                    );
                }
            }
        }
    }
}
