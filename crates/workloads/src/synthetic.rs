//! The synthetic microbenchmarks of paper Section 5.3.
//!
//! "The synthetic benchmark accesses an array with two patterns,
//! sequential or random. For the sequential pattern, part of the array is
//! scanned sequentially, leading to good spatial locality. For the random
//! pattern, the data is randomly accessed with no spatial locality."

use crate::pattern::Pattern;
use crate::trace::{TraceOp, Workload};
use proram_stats::{Rng64, Xoshiro256};

/// Default element size of the synthetic array (one word per access).
const ELEM_BYTES: u64 = 8;

/// Compute cycles between accesses: memory-bound, like the benchmark the
/// paper uses to isolate ORAM behaviour.
const COMP_CYCLES: u32 = 4;

/// Section 5.3.1: `X%` of the data is accessed sequentially, the rest
/// randomly.
///
/// # Examples
///
/// ```
/// use proram_workloads::{synthetic::LocalityMix, Workload};
///
/// let mut w = LocalityMix::new(1 << 16, 1.0, 100, 3);
/// let a = w.next_op().unwrap().addr;
/// let b = w.next_op().unwrap().addr;
/// assert_eq!(b - a, 8, "100% locality scans sequentially");
/// ```
#[derive(Debug, Clone)]
pub struct LocalityMix {
    name: String,
    footprint: u64,
    sequential: Pattern,
    random: Pattern,
    locality: f64,
    remaining: u64,
    elem_bytes: u64,
    rng: Xoshiro256,
}

impl LocalityMix {
    /// A trace of `ops` accesses over `footprint` bytes where a
    /// `locality` fraction of the data is scanned sequentially.
    ///
    /// # Panics
    ///
    /// Panics unless `locality` is in `\[0, 1\]` and `footprint` is at
    /// least two elements.
    pub fn new(footprint: u64, locality: f64, ops: u64, seed: u64) -> Self {
        LocalityMix::with_stride(footprint, locality, ops, seed, ELEM_BYTES)
    }

    /// Like [`LocalityMix::new`] with an explicit element stride. A
    /// stride of one cache line makes each op touch a fresh line — the
    /// figure experiments use this so a fixed op budget sweeps the array
    /// several times.
    ///
    /// # Panics
    ///
    /// Panics unless `stride` is positive and the footprint holds at
    /// least two elements.
    pub fn with_stride(footprint: u64, locality: f64, ops: u64, seed: u64, stride: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&locality),
            "locality must be in [0, 1]"
        );
        assert!(stride > 0, "stride must be positive");
        assert!(footprint >= 2 * stride, "footprint too small");
        let seq_span = ((footprint as f64 * locality) as u64 / stride).max(1) * stride;
        let rand_span = (footprint - seq_span).max(stride);
        LocalityMix {
            name: format!("synth_loc{:03.0}", locality * 100.0),
            footprint,
            sequential: Pattern::sequential(0, seq_span, stride),
            random: Pattern::random(seq_span.min(footprint - rand_span), rand_span),
            locality,
            remaining: ops,
            elem_bytes: stride,
            rng: Xoshiro256::seed_from(seed),
        }
    }

    /// The element stride in bytes.
    pub fn stride(&self) -> u64 {
        self.elem_bytes
    }
}

impl Workload for LocalityMix {
    fn name(&self) -> &str {
        &self.name
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn next_op(&mut self) -> Option<TraceOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Accesses are distributed in proportion to the data split, so
        // "X% of data accessed sequentially" holds access-wise too.
        let addr = if self.rng.next_bool(self.locality) {
            self.sequential.next_addr(&mut self.rng)
        } else {
            self.random.next_addr(&mut self.rng)
        };
        let write = self.rng.next_bool(0.3);
        Some(TraceOp {
            comp_cycles: COMP_CYCLES,
            addr,
            write,
        })
    }
}

/// Section 5.3.2: phase-change behaviour. "In the first phase, half of
/// the data are accessed sequentially and the other half randomly. In
/// the second phase, the first (second) half is randomly (sequentially)
/// accessed. The pattern keeps switching."
#[derive(Debug, Clone)]
pub struct PhaseChange {
    footprint: u64,
    phase_len: u64,
    op_index: u64,
    total_ops: u64,
    seq_lo: Pattern,
    seq_hi: Pattern,
    rng: Xoshiro256,
}

impl PhaseChange {
    /// A trace of `ops` accesses over `footprint` bytes switching phase
    /// every `phase_len` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `phase_len` is zero or the footprint is too small.
    pub fn new(footprint: u64, phase_len: u64, ops: u64, seed: u64) -> Self {
        PhaseChange::with_stride(footprint, phase_len, ops, seed, ELEM_BYTES)
    }

    /// Like [`PhaseChange::new`] with an explicit element stride (see
    /// [`LocalityMix::with_stride`]).
    ///
    /// # Panics
    ///
    /// Panics if `phase_len` or `stride` is zero or the footprint is too
    /// small.
    pub fn with_stride(footprint: u64, phase_len: u64, ops: u64, seed: u64, stride: u64) -> Self {
        assert!(phase_len > 0, "phase length must be positive");
        assert!(stride > 0, "stride must be positive");
        assert!(footprint >= 4 * stride, "footprint too small");
        let half = footprint / 2;
        PhaseChange {
            footprint,
            phase_len,
            op_index: 0,
            total_ops: ops,
            seq_lo: Pattern::sequential(0, half, stride),
            seq_hi: Pattern::sequential(half, half, stride),
            rng: Xoshiro256::seed_from(seed),
        }
    }

    /// The phase (0-based) a given op index falls into.
    pub fn phase_of(&self, op_index: u64) -> u64 {
        op_index / self.phase_len
    }
}

impl Workload for PhaseChange {
    fn name(&self) -> &str {
        "synth_phase"
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn next_op(&mut self) -> Option<TraceOp> {
        if self.op_index >= self.total_ops {
            return None;
        }
        let phase = self.phase_of(self.op_index);
        self.op_index += 1;
        let half = self.footprint / 2;
        let sequential_half_is_low = phase.is_multiple_of(2);
        let addr = if self.rng.next_bool(0.5) {
            // Touch the currently-sequential half.
            if sequential_half_is_low {
                self.seq_lo.next_addr(&mut self.rng)
            } else {
                self.seq_hi.next_addr(&mut self.rng)
            }
        } else {
            // Random access in the other half.
            let base = if sequential_half_is_low { half } else { 0 };
            base + self.rng.next_below(half)
        };
        let write = self.rng.next_bool(0.3);
        Some(TraceOp {
            comp_cycles: COMP_CYCLES,
            addr,
            write,
        })
    }
}

/// A pure strided scan: addresses advance by a fixed byte stride,
/// wrapping at the footprint — the access pattern of a column sweep over
/// a row-major matrix. Contiguous super blocks find no locality here;
/// the strided extension (paper Section 6.2) does.
#[derive(Debug, Clone)]
pub struct StridedScan {
    footprint: u64,
    pattern: Pattern,
    remaining: u64,
    write_frac: f64,
    rng: Xoshiro256,
}

impl StridedScan {
    /// A trace of `ops` accesses striding by `stride_bytes` over
    /// `footprint` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the stride is zero or larger than the footprint.
    pub fn new(footprint: u64, stride_bytes: u64, ops: u64, seed: u64) -> Self {
        assert!(stride_bytes > 0, "stride must be positive");
        assert!(stride_bytes < footprint, "stride must fit the footprint");
        StridedScan {
            footprint,
            pattern: Pattern::strided(0, footprint, stride_bytes),
            remaining: ops,
            write_frac: 0.3,
            rng: Xoshiro256::seed_from(seed),
        }
    }
}

impl Workload for StridedScan {
    fn name(&self) -> &str {
        "synth_stride"
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn next_op(&mut self) -> Option<TraceOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = self.pattern.next_addr(&mut self.rng);
        let write = self.rng.next_bool(self.write_frac);
        Some(TraceOp {
            comp_cycles: COMP_CYCLES,
            addr,
            write,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_locality_is_sequential() {
        let mut w = LocalityMix::new(1 << 16, 1.0, 1000, 1);
        let ops: Vec<TraceOp> = std::iter::from_fn(|| w.next_op()).collect();
        assert_eq!(ops.len(), 1000);
        for pair in ops.windows(2) {
            let d = pair[1].addr.wrapping_sub(pair[0].addr);
            assert!(
                d == ELEM_BYTES || pair[1].addr == 0,
                "not sequential: {pair:?}"
            );
        }
    }

    #[test]
    fn zero_locality_is_scattered() {
        let mut w = LocalityMix::new(1 << 20, 0.0, 1000, 2);
        let ops: Vec<TraceOp> = std::iter::from_fn(|| w.next_op()).collect();
        let sequential_pairs = ops
            .windows(2)
            .filter(|p| p[1].addr.wrapping_sub(p[0].addr) == ELEM_BYTES)
            .count();
        assert!(
            sequential_pairs < 20,
            "{sequential_pairs} sequential pairs at 0% locality"
        );
    }

    #[test]
    fn addresses_stay_in_footprint() {
        for locality in [0.0, 0.3, 0.7, 1.0] {
            let mut w = LocalityMix::new(1 << 14, locality, 2000, 3);
            while let Some(op) = w.next_op() {
                assert!(
                    op.addr < 1 << 14,
                    "escaped footprint at locality {locality}"
                );
            }
        }
    }

    #[test]
    fn name_encodes_locality() {
        assert_eq!(LocalityMix::new(1 << 14, 0.4, 1, 1).name(), "synth_loc040");
    }

    #[test]
    fn trace_length_respected() {
        let mut w = LocalityMix::new(1 << 14, 0.5, 17, 1);
        assert_eq!(std::iter::from_fn(|| w.next_op()).count(), 17);
        assert!(w.next_op().is_none());
    }

    #[test]
    fn phase_change_alternates_sequential_half() {
        let mut w = PhaseChange::new(1 << 16, 500, 2000, 5);
        let half = 1u64 << 15;
        let mut phase0_seq_lo = 0;
        let mut phase1_seq_hi = 0;
        let mut prev: Option<(u64, u64)> = None; // (phase, addr)
        for i in 0..2000u64 {
            let op = w.next_op().unwrap();
            let phase = i / 500;
            if let Some((p, addr)) = prev {
                if p == phase && op.addr == addr + ELEM_BYTES {
                    if phase % 2 == 0 && op.addr < half {
                        phase0_seq_lo += 1;
                    }
                    if phase % 2 == 1 && op.addr >= half {
                        phase1_seq_hi += 1;
                    }
                }
            }
            prev = Some((phase, op.addr));
        }
        assert!(phase0_seq_lo > 50, "even phases must scan the low half");
        assert!(phase1_seq_hi > 50, "odd phases must scan the high half");
    }

    #[test]
    fn phase_of_computation() {
        let w = PhaseChange::new(1 << 14, 100, 1000, 1);
        assert_eq!(w.phase_of(0), 0);
        assert_eq!(w.phase_of(99), 0);
        assert_eq!(w.phase_of(100), 1);
    }

    #[test]
    #[should_panic(expected = "locality must be in")]
    fn bad_locality_rejected() {
        LocalityMix::new(1 << 14, 1.5, 1, 1);
    }

    #[test]
    fn strided_variant_touches_fresh_lines() {
        let mut w = LocalityMix::with_stride(1 << 16, 1.0, 100, 1, 128);
        assert_eq!(w.stride(), 128);
        let a = w.next_op().unwrap().addr;
        let b = w.next_op().unwrap().addr;
        assert_eq!(b - a, 128);
    }

    #[test]
    fn phase_change_strided_builds() {
        let mut w = PhaseChange::with_stride(1 << 16, 100, 500, 2, 128);
        let n = std::iter::from_fn(|| w.next_op()).count();
        assert_eq!(n, 500);
    }

    #[test]
    fn strided_scan_advances_by_stride() {
        let mut w = StridedScan::new(1 << 16, 1024, 100, 1);
        let a = w.next_op().unwrap().addr;
        let b = w.next_op().unwrap().addr;
        assert_eq!(b - a, 1024);
        assert_eq!(w.name(), "synth_stride");
    }

    #[test]
    fn strided_scan_wraps_within_footprint() {
        let mut w = StridedScan::new(1 << 14, 4096, 500, 2);
        while let Some(op) = w.next_op() {
            assert!(op.addr < 1 << 14);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let collect = || {
            let mut w = LocalityMix::new(1 << 14, 0.5, 100, 9);
            std::iter::from_fn(move || w.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }
}
