//! The named benchmark registry used by the experiment harness.

use crate::dbms::{Tpcc, Ycsb};
use crate::trace::Workload;
use crate::{spec06, splash2};

/// Which benchmark family a spec belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Splash2-like kernels (Figure 8a).
    Splash2,
    /// SPEC06-like profiles (Figure 8b).
    Spec06,
    /// DBMS workloads (Figure 8c).
    Dbms,
}

impl Suite {
    /// Human-readable suite name.
    pub fn name(&self) -> &'static str {
        match self {
            Suite::Splash2 => "Splash2",
            Suite::Spec06 => "SPEC06",
            Suite::Dbms => "DBMS",
        }
    }
}

/// One benchmark of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchSpec {
    /// Name as it appears in the paper's figures.
    pub name: &'static str,
    /// Family.
    pub suite: Suite,
    /// `true` if the paper classifies it as memory intensive.
    pub memory_intensive: bool,
}

/// Experiment scaling knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Measured trace length in memory operations (after warmup).
    pub ops: u64,
    /// Leading trace operations executed before measurement starts, so
    /// results reflect steady state rather than cold caches — the paper's
    /// long benchmark runs make warmup negligible; at simulation scale it
    /// must be excluded explicitly.
    pub warmup_ops: u64,
    /// Multiplier on each benchmark's working set.
    pub footprint_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Scale {
    /// Fast scale for CI and smoke tests.
    pub fn quick() -> Self {
        Scale {
            ops: 20_000,
            warmup_ops: 8_000,
            footprint_scale: 0.125,
            seed: 42,
        }
    }

    /// Default experiment scale (minutes for the full figure set).
    pub fn standard() -> Self {
        Scale {
            ops: 150_000,
            warmup_ops: 50_000,
            footprint_scale: 0.25,
            seed: 42,
        }
    }

    /// Total trace operations generated (warmup + measured).
    pub fn total_ops(&self) -> u64 {
        self.ops + self.warmup_ops
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::standard()
    }
}

/// All benchmarks of a suite, in the paper's figure order.
pub fn specs(suite: Suite) -> Vec<BenchSpec> {
    match suite {
        Suite::Splash2 => splash2::NAMES
            .iter()
            .map(|&name| BenchSpec {
                name,
                suite,
                memory_intensive: splash2::MEMORY_INTENSIVE.contains(&name),
            })
            .collect(),
        Suite::Spec06 => spec06::NAMES
            .iter()
            .map(|&name| BenchSpec {
                name,
                suite,
                memory_intensive: spec06::MEMORY_INTENSIVE.contains(&name),
            })
            .collect(),
        Suite::Dbms => vec![
            BenchSpec {
                name: "YCSB",
                suite,
                memory_intensive: true,
            },
            BenchSpec {
                name: "TPCC",
                suite,
                memory_intensive: false,
            },
        ],
    }
}

/// Builds the named benchmark at the given scale.
///
/// # Panics
///
/// Panics on an unknown benchmark name.
pub fn build(spec: BenchSpec, scale: Scale) -> Box<dyn Workload> {
    let ops = scale.total_ops();
    match spec.suite {
        Suite::Splash2 => Box::new(splash2::build(
            spec.name,
            scale.footprint_scale,
            ops,
            scale.seed,
        )),
        Suite::Spec06 => Box::new(spec06::build(
            spec.name,
            scale.footprint_scale,
            ops,
            scale.seed,
        )),
        Suite::Dbms => match spec.name {
            "YCSB" => {
                let records = ((100_000.0 * scale.footprint_scale) as u64).max(1_000);
                Box::new(Ycsb::new(records, 0.5, ops, scale.seed))
            }
            "TPCC" => {
                let warehouses = ((2.0 * scale.footprint_scale).round() as u64).max(1);
                Box::new(Tpcc::new(warehouses, ops, scale.seed))
            }
            other => panic!("unknown DBMS benchmark '{other}'"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_counts_match_paper_figures() {
        assert_eq!(specs(Suite::Splash2).len(), 14);
        assert_eq!(specs(Suite::Spec06).len(), 10);
        assert_eq!(specs(Suite::Dbms).len(), 2);
    }

    #[test]
    fn every_spec_builds_and_produces_its_trace() {
        let scale = Scale {
            ops: 200,
            warmup_ops: 0,
            footprint_scale: 0.03,
            seed: 1,
        };
        for suite in [Suite::Splash2, Suite::Spec06, Suite::Dbms] {
            for spec in specs(suite) {
                let w = build(spec, scale);
                let n = w.count();
                assert_eq!(n, 200, "{} trace length", spec.name);
            }
        }
    }

    #[test]
    fn memory_intensive_classification() {
        let splash = specs(Suite::Splash2);
        assert_eq!(splash.iter().filter(|s| s.memory_intensive).count(), 6);
        let water = splash.iter().find(|s| s.name == "water_ns").unwrap();
        assert!(!water.memory_intensive);
        let ocean = splash.iter().find(|s| s.name == "ocean_c").unwrap();
        assert!(ocean.memory_intensive);
    }

    #[test]
    fn suite_names() {
        assert_eq!(Suite::Splash2.name(), "Splash2");
        assert_eq!(Suite::Dbms.name(), "DBMS");
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::quick().ops < Scale::standard().ops);
    }
}
