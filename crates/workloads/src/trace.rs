//! The trace-op model.

/// One record of a memory trace: the core executes `comp_cycles` of
/// non-memory work, then issues one memory access at byte address `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Non-memory cycles preceding the access (1 instruction = 1 cycle on
    /// the paper's in-order core).
    pub comp_cycles: u32,
    /// Byte address accessed.
    pub addr: u64,
    /// `true` for a store.
    pub write: bool,
}

impl TraceOp {
    /// A read at `addr` after `comp_cycles` of compute.
    pub fn read(comp_cycles: u32, addr: u64) -> Self {
        TraceOp {
            comp_cycles,
            addr,
            write: false,
        }
    }

    /// A write at `addr` after `comp_cycles` of compute.
    pub fn write(comp_cycles: u32, addr: u64) -> Self {
        TraceOp {
            comp_cycles,
            addr,
            write: true,
        }
    }
}

/// A finite memory-trace generator.
///
/// Implementations are deterministic functions of their construction
/// parameters (including a seed), so every experiment is reproducible.
pub trait Workload {
    /// Benchmark name as it appears in the paper's figures.
    fn name(&self) -> &str;

    /// Size of the touched address range in bytes. The simulator sizes
    /// its ORAM to cover this.
    fn footprint_bytes(&self) -> u64;

    /// Produces the next trace op, or `None` when the trace ends.
    fn next_op(&mut self) -> Option<TraceOp>;
}

/// Extension: iterate a boxed workload.
impl Iterator for Box<dyn Workload> {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        self.as_mut().next_op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Count(u32);

    impl Workload for Count {
        fn name(&self) -> &str {
            "count"
        }
        fn footprint_bytes(&self) -> u64 {
            1024
        }
        fn next_op(&mut self) -> Option<TraceOp> {
            if self.0 == 0 {
                return None;
            }
            self.0 -= 1;
            Some(TraceOp::read(1, u64::from(self.0)))
        }
    }

    #[test]
    fn constructors() {
        assert!(!TraceOp::read(3, 8).write);
        assert!(TraceOp::write(3, 8).write);
        assert_eq!(TraceOp::read(3, 8).comp_cycles, 3);
    }

    #[test]
    fn boxed_iteration() {
        let w: Box<dyn Workload> = Box::new(Count(3));
        let ops: Vec<TraceOp> = w.collect();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].addr, 2);
    }
}
