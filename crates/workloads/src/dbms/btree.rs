//! A real B-tree with traced node accesses.
//!
//! Used by the TPCC-like workload as the order-line index: inserts are
//! mostly ascending (order ids grow), so leaves are allocated — and later
//! range-scanned — in nearly sequential address order, the locality that
//! super blocks exploit on index scans.

use crate::dbms::engine::{Arena, TraceSink};
use crate::trace::TraceOp;

/// Keys per node (fanout). Kept small so trees of test size have depth.
const FANOUT: usize = 16;

/// Node size in bytes: FANOUT keys + values/children + header, rounded to
/// cache lines.
const NODE_BYTES: u64 = 256;

/// Compute cycles per node visit (binary search within the node).
const NODE_COMP: u32 = 16;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<u64>,
        values: Vec<u64>,
    },
    Inner {
        keys: Vec<u64>,
        children: Vec<usize>,
    },
}

/// A traced B-tree mapping `u64` keys to `u64` values.
///
/// # Examples
///
/// ```
/// use proram_workloads::dbms::{Arena, BTree, TraceSink};
///
/// let mut arena = Arena::new();
/// let mut tree = BTree::create(&mut arena, 1000);
/// let mut trace = TraceSink::new();
/// tree.insert(5, 50, &mut trace);
/// assert_eq!(tree.lookup(5, &mut trace), Some(50));
/// assert!(!trace.is_empty(), "operations emit node accesses");
/// ```
#[derive(Debug, Clone)]
pub struct BTree {
    base: u64,
    nodes: Vec<Node>,
    root: usize,
    len: u64,
    capacity_nodes: u64,
}

impl BTree {
    /// Allocates a tree able to index about `expected` keys.
    ///
    /// # Panics
    ///
    /// Panics if `expected` is zero.
    pub fn create(arena: &mut Arena, expected: u64) -> Self {
        assert!(expected > 0, "tree must expect at least one key");
        // Leaves plus ~1/FANOUT inner nodes, with slack for splits.
        let capacity_nodes = (expected / (FANOUT as u64 / 2) + 16) * 2;
        let base = arena.alloc(capacity_nodes * NODE_BYTES);
        BTree {
            base,
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
            }],
            root: 0,
            len: 0,
            capacity_nodes,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn node_addr(&self, id: usize) -> u64 {
        self.base + (id as u64 % self.capacity_nodes) * NODE_BYTES
    }

    fn visit(&self, id: usize, write: bool, trace: &mut TraceSink) {
        let addr = self.node_addr(id);
        // A node spans two cache lines; touch both.
        trace.push(TraceOp {
            comp_cycles: NODE_COMP,
            addr,
            write,
        });
        trace.push(TraceOp {
            comp_cycles: 2,
            addr: addr + 128,
            write,
        });
    }

    /// Inserts `key -> value`, emitting the root-to-leaf node accesses.
    /// Duplicate keys overwrite the previous value.
    pub fn insert(&mut self, key: u64, value: u64, trace: &mut TraceSink) {
        if let Some((new_child, split_key)) = self.insert_rec(self.root, key, value, trace) {
            // Root split: grow the tree by one level.
            let new_root = Node::Inner {
                keys: vec![split_key],
                children: vec![self.root, new_child],
            };
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
            self.visit(self.root, true, trace);
        }
    }

    fn insert_rec(
        &mut self,
        id: usize,
        key: u64,
        value: u64,
        trace: &mut TraceSink,
    ) -> Option<(usize, u64)> {
        self.visit(id, true, trace);
        match &mut self.nodes[id] {
            Node::Leaf { keys, values } => {
                match keys.binary_search(&key) {
                    Ok(pos) => {
                        values[pos] = value;
                        return None;
                    }
                    Err(pos) => {
                        keys.insert(pos, key);
                        values.insert(pos, value);
                        self.len += 1;
                    }
                }
                if let Node::Leaf { keys, values } = &mut self.nodes[id] {
                    if keys.len() > FANOUT {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_vals = values.split_off(mid);
                        let split_key = right_keys[0];
                        self.nodes.push(Node::Leaf {
                            keys: right_keys,
                            values: right_vals,
                        });
                        let new_id = self.nodes.len() - 1;
                        self.visit(new_id, true, trace);
                        return Some((new_id, split_key));
                    }
                }
                None
            }
            Node::Inner { keys, children } => {
                let child_pos = keys.partition_point(|&k| k <= key);
                let child = children[child_pos];
                let split = self.insert_rec(child, key, value, trace);
                if let Some((new_child, split_key)) = split {
                    if let Node::Inner { keys, children } = &mut self.nodes[id] {
                        let pos = keys.partition_point(|&k| k <= split_key);
                        keys.insert(pos, split_key);
                        children.insert(pos + 1, new_child);
                        if keys.len() > FANOUT {
                            let mid = keys.len() / 2;
                            let up_key = keys[mid];
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // up_key moves up
                            let right_children = children.split_off(mid + 1);
                            self.nodes.push(Node::Inner {
                                keys: right_keys,
                                children: right_children,
                            });
                            let new_id = self.nodes.len() - 1;
                            self.visit(new_id, true, trace);
                            return Some((new_id, up_key));
                        }
                    }
                }
                None
            }
        }
    }

    /// Looks up `key`, emitting the root-to-leaf node accesses.
    pub fn lookup(&self, key: u64, trace: &mut TraceSink) -> Option<u64> {
        let mut id = self.root;
        loop {
            self.visit(id, false, trace);
            match &self.nodes[id] {
                Node::Leaf { keys, values } => {
                    return keys.binary_search(&key).ok().map(|p| values[p]);
                }
                Node::Inner { keys, children } => {
                    id = children[keys.partition_point(|&k| k <= key)];
                }
            }
        }
    }

    /// Scans up to `limit` keys starting at `from` in ascending order,
    /// emitting the accesses; returns the collected `(key, value)` pairs.
    pub fn scan(&self, from: u64, limit: usize, trace: &mut TraceSink) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        self.scan_rec(self.root, from, limit, trace, &mut out);
        out
    }

    fn scan_rec(
        &self,
        id: usize,
        from: u64,
        limit: usize,
        trace: &mut TraceSink,
        out: &mut Vec<(u64, u64)>,
    ) {
        if out.len() >= limit {
            return;
        }
        self.visit(id, false, trace);
        match &self.nodes[id] {
            Node::Leaf { keys, values } => {
                let pos = keys.partition_point(|&k| k < from);
                for (k, v) in keys[pos..].iter().zip(&values[pos..]) {
                    if out.len() >= limit {
                        return;
                    }
                    out.push((*k, *v));
                }
            }
            Node::Inner { keys, children } => {
                let start = keys.partition_point(|&k| k <= from);
                for &child in &children[start..] {
                    if out.len() >= limit {
                        return;
                    }
                    self.scan_rec(child, from, limit, trace, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proram_stats::{Rng64, Xoshiro256};

    fn tree(expected: u64) -> (BTree, TraceSink) {
        let mut arena = Arena::new();
        (BTree::create(&mut arena, expected), TraceSink::new())
    }

    #[test]
    fn insert_and_lookup() {
        let (mut t, mut tr) = tree(100);
        for k in 0..100u64 {
            t.insert(k, k * 2, &mut tr);
        }
        for k in 0..100u64 {
            assert_eq!(t.lookup(k, &mut tr), Some(k * 2), "key {k}");
        }
        assert_eq!(t.lookup(1000, &mut tr), None);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn random_order_inserts() {
        let (mut t, mut tr) = tree(500);
        let mut keys: Vec<u64> = (0..500).map(|k| k * 3).collect();
        Xoshiro256::seed_from(5).shuffle(&mut keys);
        for &k in &keys {
            t.insert(k, k + 1, &mut tr);
        }
        for &k in &keys {
            assert_eq!(t.lookup(k, &mut tr), Some(k + 1));
        }
    }

    #[test]
    fn duplicate_key_overwrites() {
        let (mut t, mut tr) = tree(10);
        t.insert(5, 1, &mut tr);
        t.insert(5, 2, &mut tr);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(5, &mut tr), Some(2));
    }

    #[test]
    fn splits_grow_depth_and_stay_correct() {
        let (mut t, mut tr) = tree(5000);
        for k in 0..5000u64 {
            t.insert(k, k, &mut tr);
        }
        let mut rng = Xoshiro256::seed_from(1);
        for _ in 0..200 {
            let k = rng.next_below(5000);
            assert_eq!(t.lookup(k, &mut tr), Some(k));
        }
    }

    #[test]
    fn scan_returns_sorted_range() {
        let (mut t, mut tr) = tree(1000);
        for k in 0..1000u64 {
            t.insert(k, k * 10, &mut tr);
        }
        let got = t.scan(100, 14, &mut tr);
        assert_eq!(got.len(), 14);
        assert_eq!(got[0], (100, 1000));
        assert_eq!(got[13], (113, 1130));
    }

    #[test]
    fn operations_emit_traced_node_accesses() {
        let (mut t, mut tr) = tree(100);
        t.insert(1, 1, &mut tr);
        let before = tr.len();
        t.lookup(1, &mut tr);
        assert!(tr.len() > before);
        // Lookup accesses are reads.
        assert!(tr[before..].iter().all(|op| !op.write));
    }

    #[test]
    fn node_addresses_stay_in_region() {
        let mut arena = Arena::new();
        let end_before = arena.used();
        let mut t = BTree::create(&mut arena, 2000);
        let end = arena.used();
        let mut tr = TraceSink::new();
        for k in 0..2000u64 {
            t.insert(k, k, &mut tr);
        }
        for op in &tr {
            assert!(
                (end_before..end).contains(&op.addr),
                "node access escaped region"
            );
        }
    }

    #[test]
    fn ascending_inserts_allocate_sequential_leaves() {
        // The property TPCC order-line scans rely on: consecutive key
        // ranges live in nodes allocated nearby.
        let (mut t, mut tr) = tree(2000);
        for k in 0..2000u64 {
            t.insert(k, k, &mut tr);
        }
        tr.clear();
        t.scan(500, 64, &mut tr);
        let addrs: Vec<u64> = tr.iter().map(|o| o.addr).collect();
        let span = addrs.iter().max().unwrap() - addrs.iter().min().unwrap();
        // The touched nodes cluster instead of spanning the whole region.
        assert!(
            span < 2000 * NODE_BYTES / 4,
            "scan touched nodes spanning {span} bytes"
        );
    }
}
