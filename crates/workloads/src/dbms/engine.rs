//! The storage-engine substrate: address arena, record heap tables and an
//! open-addressing hash index, all instrumented to emit the byte
//! addresses they touch.

use crate::trace::TraceOp;

/// Collects the memory operations a storage-engine call performs.
pub type TraceSink = Vec<TraceOp>;

/// Compute cycles charged per engine memory touch (hashing, comparisons).
const ENGINE_COMP: u32 = 12;

/// A bump allocator for the engine's flat address space.
#[derive(Debug, Clone, Default)]
pub struct Arena {
    next: u64,
}

impl Arena {
    /// Creates an empty arena at address 0.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Reserves `bytes`, returning the region's base address. Regions are
    /// aligned to 128 bytes so tables start on cache-line boundaries.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        self.next = (self.next + bytes).div_ceil(128) * 128;
        base
    }

    /// Total bytes reserved (the workload footprint).
    pub fn used(&self) -> u64 {
        self.next
    }
}

/// A fixed-capacity heap of fixed-size records.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    base: u64,
    record_bytes: u64,
    capacity: u64,
    len: u64,
}

impl Table {
    /// Allocates a table of `capacity` records of `record_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if capacity or record size is zero.
    pub fn create(
        arena: &mut Arena,
        name: impl Into<String>,
        record_bytes: u64,
        capacity: u64,
    ) -> Self {
        assert!(
            record_bytes > 0 && capacity > 0,
            "table geometry must be positive"
        );
        let base = arena.alloc(record_bytes * capacity);
        Table {
            name: name.into(),
            base,
            record_bytes,
            capacity,
            len: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if no records have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of record `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of capacity.
    pub fn record_addr(&self, id: u64) -> u64 {
        assert!(
            id < self.capacity,
            "record {id} beyond capacity {}",
            self.capacity
        );
        self.base + id * self.record_bytes
    }

    /// Appends a record, returning its id and emitting the write(s).
    ///
    /// # Panics
    ///
    /// Panics when the table is full.
    pub fn append(&mut self, trace: &mut TraceSink) -> u64 {
        assert!(self.len < self.capacity, "table {} full", self.name);
        let id = self.len;
        self.len += 1;
        self.touch(id, true, trace);
        id
    }

    /// Emits the memory operations of reading (`write = false`) or
    /// updating record `id`: one access per cache line the record spans.
    pub fn touch(&self, id: u64, write: bool, trace: &mut TraceSink) {
        let start = self.record_addr(id);
        let end = start + self.record_bytes;
        let mut line = start / 128;
        loop {
            let addr = (line * 128).max(start);
            trace.push(TraceOp {
                comp_cycles: ENGINE_COMP,
                addr,
                write,
            });
            line += 1;
            if line * 128 >= end {
                break;
            }
        }
    }
}

/// Open-addressing (linear probing) hash index mapping `u64` keys to
/// record ids, emitting every bucket probe.
#[derive(Debug, Clone)]
pub struct HashIndex {
    base: u64,
    buckets: Vec<Option<(u64, u64)>>,
    mask: u64,
    len: u64,
}

/// Bytes per bucket (key + id + tag).
const BUCKET_BYTES: u64 = 16;

impl HashIndex {
    /// Allocates an index with at least `2 * expected` buckets (load
    /// factor <= 0.5).
    ///
    /// # Panics
    ///
    /// Panics if `expected` is zero.
    pub fn create(arena: &mut Arena, expected: u64) -> Self {
        assert!(expected > 0, "index must expect at least one key");
        let buckets = (expected * 2).next_power_of_two();
        let base = arena.alloc(buckets * BUCKET_BYTES);
        HashIndex {
            base,
            buckets: vec![None; buckets as usize],
            mask: buckets - 1,
            len: 0,
        }
    }

    fn hash(key: u64) -> u64 {
        // Fibonacci hashing; good spread for sequential keys.
        key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17
    }

    fn bucket_addr(&self, slot: u64) -> u64 {
        self.base + slot * BUCKET_BYTES
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `key -> id`, emitting probe reads and the final write.
    ///
    /// # Panics
    ///
    /// Panics if the table is full or the key already exists.
    pub fn insert(&mut self, key: u64, id: u64, trace: &mut TraceSink) {
        assert!(self.len < self.buckets.len() as u64, "hash index full");
        let mut slot = Self::hash(key) & self.mask;
        loop {
            trace.push(TraceOp::read(ENGINE_COMP, self.bucket_addr(slot)));
            match self.buckets[slot as usize] {
                None => {
                    self.buckets[slot as usize] = Some((key, id));
                    self.len += 1;
                    trace.push(TraceOp::write(ENGINE_COMP, self.bucket_addr(slot)));
                    return;
                }
                Some((k, _)) => {
                    assert_ne!(k, key, "duplicate key {key}");
                    slot = (slot + 1) & self.mask;
                }
            }
        }
    }

    /// Looks up `key`, emitting probe reads.
    pub fn lookup(&self, key: u64, trace: &mut TraceSink) -> Option<u64> {
        let mut slot = Self::hash(key) & self.mask;
        loop {
            trace.push(TraceOp::read(ENGINE_COMP, self.bucket_addr(slot)));
            match self.buckets[slot as usize] {
                None => return None,
                Some((k, id)) if k == key => return Some(id),
                Some(_) => slot = (slot + 1) & self.mask,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_is_line_aligned() {
        let mut a = Arena::new();
        let r1 = a.alloc(100);
        let r2 = a.alloc(100);
        assert_eq!(r1, 0);
        assert_eq!(r2 % 128, 0);
        assert!(a.used() >= 200);
    }

    #[test]
    fn table_addresses_are_disjoint_per_record() {
        let mut a = Arena::new();
        let t = Table::create(&mut a, "t", 100, 10);
        assert_eq!(t.record_addr(1) - t.record_addr(0), 100);
    }

    #[test]
    fn append_emits_writes_and_grows() {
        let mut a = Arena::new();
        let mut t = Table::create(&mut a, "t", 100, 4);
        let mut trace = TraceSink::new();
        let id = t.append(&mut trace);
        assert_eq!(id, 0);
        assert_eq!(t.len(), 1);
        assert!(trace.iter().all(|op| op.write));
    }

    #[test]
    fn wide_record_touches_multiple_lines() {
        let mut a = Arena::new();
        let t = Table::create(&mut a, "t", 300, 2);
        let mut trace = TraceSink::new();
        t.touch(0, false, &mut trace);
        assert!(
            trace.len() >= 3,
            "300-byte record spans >= 3 lines: {trace:?}"
        );
    }

    #[test]
    #[should_panic(expected = "full")]
    fn table_overflow_panics() {
        let mut a = Arena::new();
        let mut t = Table::create(&mut a, "t", 8, 1);
        let mut tr = TraceSink::new();
        t.append(&mut tr);
        t.append(&mut tr);
    }

    #[test]
    fn hash_index_round_trip() {
        let mut a = Arena::new();
        let mut idx = HashIndex::create(&mut a, 100);
        let mut trace = TraceSink::new();
        for k in 0..100u64 {
            idx.insert(k * 7, k, &mut trace);
        }
        for k in 0..100u64 {
            assert_eq!(idx.lookup(k * 7, &mut trace), Some(k));
        }
        assert_eq!(idx.lookup(999_999, &mut trace), None);
        assert_eq!(idx.len(), 100);
    }

    #[test]
    fn lookups_emit_probe_addresses_in_index_region() {
        let mut a = Arena::new();
        let before = a.used();
        let mut idx = HashIndex::create(&mut a, 16);
        let end = a.used();
        let mut trace = TraceSink::new();
        idx.insert(42, 1, &mut trace);
        trace.clear();
        idx.lookup(42, &mut trace);
        assert!(!trace.is_empty());
        for op in &trace {
            assert!(
                (before..end).contains(&op.addr),
                "probe outside index region"
            );
        }
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn duplicate_insert_panics() {
        let mut a = Arena::new();
        let mut idx = HashIndex::create(&mut a, 4);
        let mut tr = TraceSink::new();
        idx.insert(1, 0, &mut tr);
        idx.insert(1, 1, &mut tr);
    }

    #[test]
    fn collisions_resolved_by_linear_probing() {
        let mut a = Arena::new();
        let mut idx = HashIndex::create(&mut a, 2); // 4 buckets
        let mut tr = TraceSink::new();
        // Insert up to capacity; all must remain retrievable.
        for k in [3u64, 7, 11] {
            idx.insert(k, k * 10, &mut tr);
        }
        for k in [3u64, 7, 11] {
            assert_eq!(idx.lookup(k, &mut tr), Some(k * 10));
        }
    }
}
